// Adaptability (paper §1, motivation (iii) for steady-state scheduling):
// because the schedule is periodic and cheap to recompute, the scheduler
// can re-solve whenever observed platform conditions change and install
// the new periodic schedule for the next epoch.
//
// This example plays a day of operation in 6 epochs: backbone bandwidth
// and available connection counts drift (congestion comes and goes), the
// scheduler re-runs LPRG per epoch, and the example reports how achieved
// throughput tracks the moving LP bound — versus a static schedule
// computed once at epoch 0 and left in place.
#include <algorithm>
#include <iostream>

#include "core/heuristics.hpp"
#include "platform/platform.hpp"
#include "support/table.hpp"

namespace {

dls::platform::Platform make_platform(double wan_bw, int wan_connections) {
  using namespace dls;
  platform::Platform plat;
  const auto r0 = plat.add_router();
  const auto r1 = plat.add_router();
  const auto r2 = plat.add_router();
  plat.add_cluster(300, 200, r0, "hq");
  plat.add_cluster(80, 100, r1, "lab-1");
  plat.add_cluster(60, 100, r2, "lab-2");
  plat.add_backbone(r0, r1, wan_bw, wan_connections);
  plat.add_backbone(r0, r2, wan_bw, wan_connections);
  plat.compute_shortest_path_routes();
  return plat;
}

/// Objective the *static* epoch-0 allocation achieves under the epoch's
/// actual capacities: the network admits connections first-come (largest
/// demand evicted first on oversubscribed links), and each transfer is
/// clipped to its admitted connections' bandwidth.
double static_plan_value(const dls::core::SteadyStateProblem& problem,
                         const dls::core::Allocation& plan) {
  using namespace dls;
  const int n = plan.num_clusters();
  core::Allocation clipped(n);
  for (int k = 0; k < n; ++k)
    for (int l = 0; l < n; ++l) {
      clipped.set_alpha(k, l, plan.alpha(k, l));
      clipped.set_beta(k, l, plan.beta(k, l));
    }

  // Admission control: while any link is oversubscribed, evict one
  // connection of the heaviest user of that link.
  const platform::Platform& plat = problem.plat();
  for (bool changed = true; changed;) {
    changed = false;
    for (platform::LinkId li = 0; li < plat.num_links(); ++li) {
      double used = 0.0;
      int heaviest = -1;
      for (int r : problem.routes_through_link()[li]) {
        const auto& route = problem.routes()[r];
        used += clipped.beta(route.k, route.l);
        if (heaviest < 0 ||
            clipped.beta(route.k, route.l) >
                clipped.beta(problem.routes()[heaviest].k,
                             problem.routes()[heaviest].l))
          heaviest = r;
      }
      if (used > plat.link(li).max_connections && heaviest >= 0) {
        const auto& route = problem.routes()[heaviest];
        clipped.add_beta(route.k, route.l, -1.0);
        changed = true;
      }
    }
  }
  // Each transfer now runs at its admitted connections' bandwidth.
  for (const auto& route : problem.routes()) {
    if (!route.needs_beta) continue;
    clipped.set_alpha(route.k, route.l,
                      std::min(clipped.alpha(route.k, route.l),
                               clipped.beta(route.k, route.l) * route.pbw));
  }
  return problem.objective_of(clipped);
}

}  // namespace

int main() {
  using namespace dls;

  // Epoch scenario: (wan bandwidth per connection, admitted connections).
  const struct {
    double bw;
    int connections;
    const char* note;
  } epochs[] = {
      {20, 6, "nominal"},        {20, 6, "nominal"},
      {8, 6, "congestion"},      {8, 2, "congestion + admission limit"},
      {14, 4, "recovering"},     {20, 6, "nominal again"},
  };
  const std::vector<double> payoffs{1.0, 1.0, 1.0};

  const auto first = make_platform(epochs[0].bw, epochs[0].connections);
  const core::SteadyStateProblem first_problem(first, payoffs, core::Objective::MaxMin);
  const auto static_plan = core::run_lprg(first_problem);

  std::cout << "# re-solving each epoch (adaptive) vs keeping epoch-0's schedule (static)\n";
  TextTable table({"epoch", "conditions", "LP bound", "adaptive LPRG", "static plan"});
  int epoch = 0;
  for (const auto& e : epochs) {
    const auto plat = make_platform(e.bw, e.connections);
    const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);
    const auto bound = core::lp_upper_bound(problem);
    const auto adaptive = core::run_lprg(problem);
    const double frozen = static_plan_value(problem, static_plan.allocation);
    table.add_row({std::to_string(epoch++), e.note, TextTable::fmt(bound.objective, 1),
                   TextTable::fmt(adaptive.objective, 1), TextTable::fmt(frozen, 1)});
  }
  table.print(std::cout);
  std::cout << "\nthe adaptive scheduler tracks the bound through the congestion\n"
               "episodes; the frozen plan over-commits the degraded links and\n"
               "its worst application pays for it.\n";
  return 0;
}
