// Platform dynamics walkthrough: a grid platform drifts, fails and
// churns while an online workload runs against it.
//
//  1. generate a connected platform and a Poisson workload;
//  2. generate a scenario event trace (bandwidth drift + link
//     failure/repair + cluster churn) from one ChurnScenarioGrid cell;
//  3. replay the workload twice — static platform vs dynamic — with
//     LP-based rescheduling, and compare response times and the
//     warm/repaired/cold re-solve split.
#include <iostream>

#include "dynamics/events.hpp"
#include "online/engine.hpp"
#include "platform/generator.hpp"

int main() {
  using namespace dls;

  platform::GeneratorParams params;
  params.num_clusters = 8;
  params.ensure_connected = true;
  Rng prng(42);
  const platform::Platform plat = generate_platform(params, prng);

  online::PoissonParams arrivals;
  arrivals.count = 300;
  arrivals.rate = 2.0;
  Rng wrng(7);
  const online::Workload workload =
      poisson_workload(arrivals, plat.num_clusters(), wrng);

  // A mid-grid scenario: moderate event rate, noticeable severity.
  const double horizon = 2.0 * workload.arrivals.back().time;
  Rng erng(13);
  const dynamics::EventTrace trace =
      dynamics::scenario_trace(0.2, 0.6, horizon, plat, erng);

  online::OnlineOptions options;
  options.sched.method = online::Method::Lpr;
  options.sched.objective = core::Objective::Sum;
  const online::OnlineEngine engine(plat, options);

  const online::OnlineReport base = engine.run(workload);
  const online::OnlineReport dyn = engine.run(workload, trace);

  std::cout << "platform: " << plat.num_clusters() << " clusters, "
            << plat.num_links() << " links; trace: " << trace.size()
            << " events over horizon " << horizon << "\n";
  std::cout << "static : " << base.completed << " completed, mean response "
            << base.metrics.response.mean() << "\n";
  std::cout << "dynamic: " << dyn.completed << " completed, " << dyn.aborted
            << " aborted, " << dyn.rejected << " rejected, mean response "
            << dyn.metrics.response.mean() << "\n";
  std::cout << "re-solves under dynamics: " << dyn.warm_solves << " warm ("
            << dyn.repaired_solves << " basis-repaired), " << dyn.cold_solves
            << " cold\n";

  // The dynamic replay must conserve the application stream.
  if (dyn.completed + dyn.aborted + dyn.rejected != dyn.arrivals) {
    std::cerr << "application accounting broken\n";
    return 1;
  }
  return 0;
}
