// Payoff factors as resource-sharing policy (paper §3.1):
//   * SUM maximizes total weighted work — it will starve low-priority
//     applications if the network allows concentrating resources;
//   * MAXMIN maximizes the worst weighted throughput — weighted max-min
//     fairness (Bertsekas-Gallager) between the applications;
//   * payoff 0 removes a cluster's application entirely: the cluster
//     donates its CPU to everyone else.
#include <iostream>

#include "core/heuristics.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;

  Rng rng(7);
  platform::GeneratorParams params;
  params.num_clusters = 6;
  params.connectivity = 0.7;
  params.heterogeneity = 0.3;
  params.mean_gateway_bw = 150;
  params.mean_backbone_bw = 30;
  params.mean_max_connections = 10;
  const platform::Platform plat = generate_platform(params, rng);

  // Three priority tiers plus a donor: cluster 5 runs no application.
  const std::vector<double> payoffs{4.0, 2.0, 1.0, 1.0, 1.0, 0.0};

  std::cout << "payoffs: app0=4 (urgent), app1=2, app2..4=1, cluster5=donor\n\n";
  for (core::Objective obj : {core::Objective::Sum, core::Objective::MaxMin}) {
    const core::SteadyStateProblem problem(plat, payoffs, obj);
    const auto lprg = core::run_lprg(problem);

    std::cout << "== " << to_string(obj) << " (LPRG objective "
              << TextTable::fmt(lprg.objective, 1) << ") ==\n";
    TextTable table({"application", "payoff", "throughput", "weighted"});
    for (int k = 0; k < plat.num_clusters(); ++k) {
      const double alpha = lprg.allocation.total_alpha(k);
      table.add_row({"app" + std::to_string(k), TextTable::fmt(payoffs[k], 0),
                     TextTable::fmt(alpha, 1),
                     TextTable::fmt(payoffs[k] * alpha, 1)});
    }
    table.print(std::cout);

    // Where does the donor's CPU go?
    double donated = 0;
    for (int k = 0; k < plat.num_clusters(); ++k) donated += lprg.allocation.alpha(k, 5);
    std::cout << "work executed on the donor cluster: " << TextTable::fmt(donated, 1)
              << " units/s\n\n";
  }

  std::cout << "reading: SUM funnels resources to the payoff-4 application;\n"
               "MAXMIN equalizes payoff*throughput, so low-priority apps get\n"
               "proportionally more raw throughput. The donor computes for\n"
               "others under both policies.\n";
  return 0;
}
