// A realistic multi-site grid, modeled after the platforms that motivate
// the paper: three institutions on different continents, each a cluster
// reduced to its equivalent speed, joined by backbone segments through
// transit routers. Five divisible applications compete (two institutions
// host two each). Compares every heuristic against the LP bound and
// executes the winning schedule on the flow-level simulator.
#include <iostream>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/platform.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;

  // Topology: eu and us sites peer through a fast transatlantic segment;
  // asia reaches both through a congested transit router.
  platform::Platform plat;
  const auto r_eu = plat.add_router("r-eu");
  const auto r_us = plat.add_router("r-us");
  const auto r_asia = plat.add_router("r-asia");
  const auto r_ix = plat.add_router("r-ix");  // transit exchange

  plat.add_cluster(420, 180, r_eu, "eu-cluster");    // big site
  plat.add_cluster(250, 120, r_us, "us-cluster");
  plat.add_cluster(90, 45, r_asia, "asia-cluster");  // small site

  plat.add_backbone(r_eu, r_us, 25, 8, "transatlantic");
  plat.add_backbone(r_eu, r_ix, 12, 4, "eu-ix");
  plat.add_backbone(r_us, r_ix, 10, 4, "us-ix");
  plat.add_backbone(r_asia, r_ix, 6, 3, "asia-ix");
  plat.compute_shortest_path_routes();

  // The asia application is high priority (payoff 3): its site is small,
  // so meeting that priority requires exporting load across the transit.
  const std::vector<double> payoffs{1.0, 1.0, 3.0};

  for (core::Objective obj : {core::Objective::Sum, core::Objective::MaxMin}) {
    const core::SteadyStateProblem problem(plat, payoffs, obj);
    const auto bound = core::lp_upper_bound(problem);
    const auto g = core::run_greedy(problem);
    const auto lpr = core::run_lpr(problem);
    const auto lprg = core::run_lprg(problem);
    Rng coin(2024);
    const auto lprr = core::run_lprr(problem, coin);

    std::cout << "== objective " << to_string(obj) << " ==\n";
    TextTable table({"method", "objective", "ratio to LP", "LP solves"});
    auto row = [&](const char* name, double value, int solves) {
      table.add_row({name, TextTable::fmt(value, 2),
                     TextTable::fmt(bound.objective > 0 ? value / bound.objective : 0, 4),
                     std::to_string(solves)});
    };
    row("LP bound", bound.objective, 1);
    row("G", g.objective, 0);
    row("LPR", lpr.objective, lpr.lp_solves);
    row("LPRG", lprg.objective, lprg.lp_solves);
    row("LPRR", lprr.objective, lprr.lp_solves);
    table.print(std::cout);

    std::cout << "per-application throughput under LPRG:\n";
    for (int k = 0; k < plat.num_clusters(); ++k)
      std::cout << "  " << plat.cluster(k).name << ": "
                << TextTable::fmt(lprg.allocation.total_alpha(k), 2)
                << " units/s (payoff " << payoffs[k] << ")\n";

    const auto sched = core::build_periodic_schedule(problem, lprg.allocation);
    sim::SimOptions opt;
    opt.periods = 10;
    const auto report = sim::simulate_schedule(problem, sched, opt);
    std::cout << "simulated execution: period " << sched.period
              << ", worst overrun ratio "
              << TextTable::fmt(report.worst_overrun_ratio, 4) << "\n\n";
  }
  return 0;
}
