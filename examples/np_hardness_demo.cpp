// Theorem 1 (paper §4), constructively: scheduling throughput is NP-hard
// because it embeds MAXIMUM-INDEPENDENT-SET.
//
// The demo builds the paper's Figure 3/4 example — a 4-vertex graph and
// the platform gadget derived from it — and shows:
//   * Lemma 1: routes share a backbone link exactly when the
//     corresponding vertices are adjacent;
//   * the exact (integer-beta) optimum equals the maximum independent
//     set size, while the rational relaxation overshoots it (the
//     integrality gap the hardness lives in);
//   * LPRR lands on an integer solution matching the optimum here.
#include <iostream>

#include "core/heuristics.hpp"
#include "core/npc/reduction.hpp"
#include "support/rng.hpp"

int main() {
  using namespace dls;
  using core::npc::Graph;

  // Figure 3 of the paper: V1..V4, edges (V1,V2), (V2,V3), (V1,V3), (V3,V4).
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);

  const auto mis = core::npc::maximum_independent_set(g);
  std::cout << "graph: 4 vertices, " << g.num_edges() << " edges\n"
            << "maximum independent set: {";
  for (std::size_t i = 0; i < mis.size(); ++i)
    std::cout << (i ? ", " : "") << "V" << mis[i] + 1;
  std::cout << "} -> size " << mis.size() << "\n\n";

  const auto inst = core::npc::build_reduction(g);
  std::cout << "reduced platform: " << inst.platform.num_clusters() << " clusters, "
            << inst.platform.num_routers() << " routers, "
            << inst.platform.num_links() << " backbone links (all bw=1, max-connect=1)\n"
            << "Lemma 1 (routes share a link iff vertices adjacent): "
            << (core::npc::lemma1_holds(g, inst) ? "holds" : "VIOLATED") << "\n\n";

  const core::SteadyStateProblem problem(inst.platform, inst.payoffs,
                                         core::Objective::MaxMin);

  const auto bound = core::lp_upper_bound(problem);
  std::cout << "rational relaxation (fractional connections): " << bound.objective
            << "\n";

  const auto exact = core::solve_exact(problem);
  std::cout << "exact mixed program (integer connections):    " << exact.objective
            << "  [" << exact.nodes << " branch-and-bound nodes]\n"
            << "maximum independent set size:                 " << mis.size() << "\n\n";

  Rng coin(1);
  const auto lprr = core::run_lprr(problem, coin);
  std::cout << "LPRR randomized rounding finds:               " << lprr.objective
            << "\n\n";

  const bool match = exact.status == lp::SolveStatus::Optimal &&
                     std::abs(exact.objective - static_cast<double>(mis.size())) < 1e-6;
  std::cout << (match ? "throughput == MIS size: the reduction is faithful.\n"
                      : "MISMATCH: reduction broken!\n");
  return match ? 0 : 1;
}
