// Quickstart: build a two-site platform by hand, schedule two divisible
// load applications on it, and print the steady-state plan.
//
//   site A: 100 work units/s of compute behind a 50-unit gateway
//   site B: 100 work units/s behind a 60-unit gateway
//   one backbone link between them: each connection gets bandwidth 10,
//   at most 4 application connections may be opened.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/platform.hpp"

int main() {
  using namespace dls;

  // 1. Describe the platform (paper §2).
  platform::Platform plat;
  const auto router_a = plat.add_router("router-a");
  const auto router_b = plat.add_router("router-b");
  plat.add_cluster(/*speed=*/100, /*gateway_bw=*/50, router_a, "site-a");
  plat.add_cluster(/*speed=*/100, /*gateway_bw=*/60, router_b, "site-b");
  plat.add_backbone(router_a, router_b, /*bw=*/10, /*max_connections=*/4, "wan");
  plat.compute_shortest_path_routes();

  // 2. One application per site. Payoffs encode priority: site-a's
  //    application is twice as valuable per unit of work.
  const std::vector<double> payoffs{2.0, 1.0};
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);

  // 3. Upper bound (rational relaxation) and the LPRG heuristic.
  const auto bound = core::lp_upper_bound(problem);
  const auto plan = core::run_lprg(problem);
  std::cout << "LP upper bound (MAXMIN): " << bound.objective << "\n"
            << "LPRG achieves:           " << plan.objective << "\n\n";

  // 4. The steady-state allocation: who computes what, per time unit.
  for (int k = 0; k < plat.num_clusters(); ++k) {
    for (int l = 0; l < plat.num_clusters(); ++l) {
      const double a = plan.allocation.alpha(k, l);
      if (a <= 0) continue;
      std::cout << "app of " << plat.cluster(k).name << " runs " << a
                << " units/s on " << plat.cluster(l).name;
      if (k != l)
        std::cout << " over " << plan.allocation.beta(k, l) << " connection(s)";
      std::cout << "\n";
    }
  }

  // 5. Reconstruct the periodic schedule (paper §3.2).
  const auto sched = core::build_periodic_schedule(problem, plan.allocation);
  std::cout << "\nperiodic schedule, period = " << sched.period << " time unit(s):\n";
  for (const auto& t : sched.transfers)
    std::cout << "  ship " << t.units << " units " << plat.cluster(t.from).name
              << " -> " << plat.cluster(t.to).name << " on " << t.connections
              << " connection(s)\n";
  for (const auto& c : sched.compute)
    std::cout << "  compute " << c.units << " units of app "
              << plat.cluster(c.app).name << " on "
              << plat.cluster(c.on_cluster).name << "\n";

  const auto check = core::validate_schedule(problem, sched);
  std::cout << "\nschedule valid: " << (check.ok ? "yes" : "NO") << "\n";
  return check.ok ? 0 : 1;
}
