#include "cli/args.hpp"

#include <cstdlib>
#include <sstream>

namespace dls::cli {

Args::Args(std::vector<std::string> tokens) {
  std::size_t i = 0;
  if (!tokens.empty() && tokens[0].rfind("--", 0) != 0) {
    command_ = tokens[0];
    i = 1;
  }
  for (; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    require(tok.rfind("--", 0) == 0, "unexpected positional argument '" + tok + "'");
    const std::string key = tok.substr(2);
    require(!key.empty(), "empty option name");
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      options_.emplace_back(key, tokens[i + 1]);
      ++i;
    } else {
      flags_.insert(key);
    }
  }
}

std::optional<std::string> Args::raw(const std::string& key) {
  consumed_.insert(key);
  for (const auto& [k, v] : options_)
    if (k == key) return v;
  return std::nullopt;
}

std::string Args::get_string(const std::string& key, const std::string& fallback) {
  return raw(key).value_or(fallback);
}

double Args::get_double(const std::string& key, double fallback) {
  const auto v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  require(end != v->c_str() && *end == '\0', "option --" + key + ": not a number");
  return parsed;
}

int Args::get_int(const std::string& key, int fallback) {
  const double v = get_double(key, static_cast<double>(fallback));
  const int i = static_cast<int>(v);
  require(static_cast<double>(i) == v, "option --" + key + ": not an integer");
  return i;
}

std::uint64_t Args::get_u64(const std::string& key, std::uint64_t fallback) {
  const auto v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v->c_str(), &end, 10);
  require(end != v->c_str() && *end == '\0', "option --" + key + ": not an integer");
  return parsed;
}

bool Args::get_flag(const std::string& key) {
  consumed_.insert(key);
  return flags_.count(key) > 0;
}

std::vector<double> Args::get_double_list(const std::string& key) {
  const auto v = raw(key);
  std::vector<double> out;
  if (!v) return out;
  std::istringstream iss(*v);
  std::string item;
  while (std::getline(iss, item, ',')) {
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    require(end != item.c_str() && *end == '\0',
            "option --" + key + ": bad list element '" + item + "'");
    out.push_back(parsed);
  }
  return out;
}

void Args::reject_unknown() const {
  for (const auto& [k, v] : options_) {
    (void)v;
    require(consumed_.count(k) > 0, "unknown option --" + k);
  }
  for (const auto& k : flags_)
    require(consumed_.count(k) > 0, "unknown flag --" + k);
}

}  // namespace dls::cli
