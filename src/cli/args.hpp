// Minimal command-line argument parser for the dls tool.
//
// Grammar: one positional command followed by --key value options and
// --flag switches. Values never start with "--". Unknown keys are
// reported, and every accessor records its key so unused/misspelled
// options can be rejected after parsing.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dls::cli {

class Args {
public:
  /// Parses argv-style tokens (without the program name).
  explicit Args(std::vector<std::string> tokens);

  /// The positional command (first token); empty if none.
  [[nodiscard]] const std::string& command() const { return command_; }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback);
  [[nodiscard]] double get_double(const std::string& key, double fallback);
  [[nodiscard]] int get_int(const std::string& key, int fallback);
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t fallback);
  [[nodiscard]] bool get_flag(const std::string& key);

  /// Comma-separated doubles, e.g. --payoffs 1,2,0.5; empty if absent.
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key);

  /// Throws dls::Error naming any option that no accessor consumed.
  void reject_unknown() const;

private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& key);

  std::string command_;
  std::vector<std::pair<std::string, std::string>> options_;  // key -> value
  std::set<std::string> flags_;
  std::set<std::string> consumed_;
};

}  // namespace dls::cli
