#include "cli/cli.hpp"

#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "cli/args.hpp"
#include "core/heuristics.hpp"
#include "core/loads.hpp"
#include "dynamics/events.hpp"
#include "core/npc/reduction.hpp"
#include "core/schedule.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "exp/experiment.hpp"
#include "online/engine.hpp"
#include "platform/generator.hpp"
#include "platform/serialization.hpp"
#include "serve/daemon.hpp"
#include "sim/simulator.hpp"
#include "support/build_info.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace dls::cli {

namespace {

void print_usage(std::ostream& os) {
  os << "usage: dls <command> [options]\n"
        "commands:\n"
        "  generate   create a random platform (Table-1 style parameters)\n"
        "  solve      run a scheduling method on a platform file\n"
        "  simulate   solve, reconstruct the periodic schedule, execute it\n"
        "  campaign   run a declarative .campaign scenario matrix through\n"
        "             the sharded streaming runner; --serve <port> turns it\n"
        "             into a distributed coordinator (checkpoint/resume via\n"
        "             --checkpoint/--resume)\n"
        "  worker     execute case ranges for a campaign coordinator\n"
        "             (--connect host:port)\n"
        "  sweep      run heuristics over many random platforms in parallel\n"
        "             (--loads N solves joint N-load LPs instead;\n"
        "             --objective sum|maxmin|pf)\n"
        "  online     replay a stream of application arrivals with adaptive\n"
        "             warm-started rescheduling (--loads runs every arrival\n"
        "             concurrently in one shared multi-load LP)\n"
        "  dynamics   replay a workload against a platform-event trace\n"
        "             (failures, drift, churn) and report the degradation\n"
        "  serve      long-running scheduler daemon: HTTP /metrics, /health,\n"
        "             /stats plus a line protocol for arrive/depart/event;\n"
        "             --replay feeds a recorded .workload at --speed x\n"
        "  reduce     build the NP-hardness instance from a graph file\n"
        "  help       show this message\n"
        "  --version  print build type, compiler and git revision\n"
        "see src/cli/cli.hpp for the full option list\n";
}

platform::Platform load_platform(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in), "cannot open platform file '" + path + "'");
  return platform::read_platform(in);
}

std::vector<double> resolve_payoffs(Args& args, int num_clusters) {
  std::vector<double> payoffs = args.get_double_list("payoffs");
  if (payoffs.empty()) payoffs.assign(num_clusters, 1.0);
  require(static_cast<int>(payoffs.size()) == num_clusters,
          "--payoffs: expected one value per cluster");
  return payoffs;
}

core::Objective resolve_objective(Args& args) {
  const std::string name = args.get_string("objective", "maxmin");
  if (name == "maxmin") return core::Objective::MaxMin;
  if (name == "sum") return core::Objective::Sum;
  throw Error("--objective: expected 'maxmin' or 'sum'");
}

/// Shared by `simulate` and `online --rate-model sim`.
sim::SharingPolicy parse_policy(const std::string& policy) {
  if (policy == "paced") return sim::SharingPolicy::Paced;
  if (policy == "maxmin") return sim::SharingPolicy::MaxMin;
  if (policy == "tcp") return sim::SharingPolicy::TcpRttBias;
  if (policy == "window") return sim::SharingPolicy::BoundedWindow;
  throw Error("--policy: expected paced|maxmin|tcp|window");
}

struct Solved {
  core::Allocation allocation;
  double objective = 0.0;
  double bound = 0.0;
  std::string method;
};

Solved solve_with_method(const core::SteadyStateProblem& problem, Args& args) {
  const std::string method = args.get_string("method", "lprg");
  Rng rng(args.get_u64("seed", 1));
  Solved out{core::Allocation(problem.num_clusters()), 0.0, 0.0, method};

  const auto bound = core::lp_upper_bound(problem);
  require(bound.status == lp::SolveStatus::Optimal, "LP bound solve failed");
  out.bound = bound.objective;

  if (method == "lp") {
    out.allocation = bound.allocation;
    out.objective = bound.objective;
    return out;
  }
  core::HeuristicResult result{core::Allocation(problem.num_clusters()), 0.0, 0,
                               lp::SolveStatus::Optimal};
  if (method == "g") {
    result = core::run_greedy(problem);
  } else if (method == "lpr") {
    result = core::run_lpr(problem);
  } else if (method == "lprg") {
    result = core::run_lprg(problem);
  } else if (method == "lprr") {
    result = core::run_lprr(problem, rng);
  } else if (method == "exact") {
    const auto exact = core::solve_exact(problem);
    require(exact.status == lp::SolveStatus::Optimal,
            "exact solve did not finish (try a smaller platform)");
    out.allocation = exact.allocation;
    out.objective = exact.objective;
    return out;
  } else {
    throw Error("--method: expected g|lpr|lprg|lprr|lp|exact");
  }
  require(result.status == lp::SolveStatus::Optimal, "method '" + method + "' failed");
  out.allocation = std::move(result.allocation);
  out.objective = result.objective;
  return out;
}

void print_allocation(const platform::Platform& plat, const core::Allocation& alloc,
                      std::ostream& os) {
  TextTable table({"from", "on", "alpha", "beta"});
  for (int k = 0; k < plat.num_clusters(); ++k) {
    for (int l = 0; l < plat.num_clusters(); ++l) {
      if (alloc.alpha(k, l) <= 1e-12 && alloc.beta(k, l) <= 1e-12) continue;
      const auto name = [&](int c) {
        return plat.cluster(c).name.empty() ? "C" + std::to_string(c)
                                            : plat.cluster(c).name;
      };
      table.add_row({name(k), name(l), TextTable::fmt(alloc.alpha(k, l), 3),
                     TextTable::fmt(alloc.beta(k, l), 0)});
    }
  }
  table.print(os);
}

/// Generator options shared by `generate` and `online` (which generates a
/// platform in-memory when no --platform file is given).
platform::GeneratorParams generator_params_from_args(Args& args) {
  platform::GeneratorParams params;
  params.num_clusters = args.get_int("clusters", 10);
  params.connectivity = args.get_double("connectivity", 0.4);
  params.heterogeneity = args.get_double("heterogeneity", 0.5);
  params.mean_gateway_bw = args.get_double("gateway", 250);
  params.mean_backbone_bw = args.get_double("bw", 50);
  params.mean_max_connections = args.get_double("maxcon", 50);
  params.cluster_speed = args.get_double("speed", 100);
  params.mean_latency = args.get_double("latency", 0);
  params.ensure_connected = args.get_flag("connected");
  params.num_transit_routers = args.get_int("transit", 0);
  return params;
}

int cmd_generate(Args& args, std::ostream& out) {
  const platform::GeneratorParams params = generator_params_from_args(args);
  const std::string out_path = args.get_string("out", "");
  Rng rng(args.get_u64("seed", 1));
  args.reject_unknown();

  const platform::Platform plat = generate_platform(params, rng);
  if (out_path.empty()) {
    platform::write_platform(plat, out);
  } else {
    std::ofstream file(out_path);
    require(static_cast<bool>(file), "cannot write '" + out_path + "'");
    platform::write_platform(plat, file);
    out << "wrote " << plat.num_clusters() << " clusters, " << plat.num_links()
        << " links to " << out_path << "\n";
  }
  return 0;
}

int cmd_solve(Args& args, std::ostream& out) {
  const platform::Platform plat = load_platform(args.get_string("platform", ""));
  const std::vector<double> payoffs = resolve_payoffs(args, plat.num_clusters());
  const core::Objective objective = resolve_objective(args);
  const bool with_schedule = args.get_flag("schedule");
  const core::SteadyStateProblem problem(plat, payoffs, objective);
  Solved solved = solve_with_method(problem, args);
  args.reject_unknown();

  out << "method " << solved.method << ", objective " << to_string(objective)
      << ": " << solved.objective << "  (LP bound " << solved.bound << ")\n";
  print_allocation(plat, solved.allocation, out);

  if (with_schedule) {
    const auto sched = core::build_periodic_schedule(problem, solved.allocation);
    out << "period: " << sched.period << "\n";
    for (const auto& t : sched.transfers)
      out << "  transfer " << t.units << " units C" << t.from << " -> C" << t.to
          << " (" << t.connections << " connections)\n";
    for (const auto& c : sched.compute)
      out << "  compute " << c.units << " units of app " << c.app << " on C"
          << c.on_cluster << "\n";
  }
  return 0;
}

int cmd_simulate(Args& args, std::ostream& out) {
  const platform::Platform plat = load_platform(args.get_string("platform", ""));
  const std::vector<double> payoffs = resolve_payoffs(args, plat.num_clusters());
  const core::Objective objective = resolve_objective(args);
  const core::SteadyStateProblem problem(plat, payoffs, objective);
  Solved solved = solve_with_method(problem, args);

  sim::SimOptions options;
  options.periods = args.get_int("periods", 10);
  options.window_units = args.get_double("window", options.window_units);
  const std::string policy = args.get_string("policy", "paced");
  options.policy = parse_policy(policy);
  const std::string engine = args.get_string("sim-engine", "incremental");
  if (engine == "incremental") {
    options.engine = sim::EngineKind::Incremental;
  } else if (engine == "rescan") {
    options.engine = sim::EngineKind::Rescan;
  } else {
    throw Error("--sim-engine: expected incremental|rescan");
  }
  args.reject_unknown();

  const auto sched = core::build_periodic_schedule(problem, solved.allocation);
  const auto report = sim::simulate_schedule(problem, sched, options);
  out << "method " << solved.method << ", period " << sched.period << ", policy "
      << policy << "\n";
  TextTable table({"application", "scheduled", "achieved"});
  for (int k = 0; k < plat.num_clusters(); ++k)
    table.add_row({"app" + std::to_string(k), TextTable::fmt(sched.throughput(k), 3),
                   TextTable::fmt(report.throughput[k], 3)});
  table.print(out);
  out << "worst period overrun ratio: " << TextTable::fmt(report.worst_overrun_ratio, 4)
      << "\n";
  out << "engine " << engine << ": " << report.events << " events, "
      << report.rate_recomputations << " full + " << report.partial_recomputations
      << " partial rate solves\n";
  return 0;
}

/// `dls sweep --loads N`: the multi-load variant — one grid cell, one
/// `loads` scenario cell, replications = --cases, each case one joint
/// N-load LP (ISSUE 8).
int cmd_sweep_loads(Args& args, std::ostream& out, int clusters, int loads_n) {
  const std::string obj_name = args.get_string("objective", "sum");
  core::MultiObjective objective = core::MultiObjective::WeightedSum;
  require(core::parse_multi_objective(obj_name, objective),
          "--objective: expected sum|maxmin|pf");
  const std::string mix = args.get_string("load-mix", "uniform");
  require(mix == "uniform" || mix == "hotspot",
          "--load-mix: expected uniform|hotspot");
  const double weight_spread = args.get_double("weight-spread", 0.5);
  const int cases = args.get_int("cases", 20);
  const int jobs = args.get_int("jobs", 0);
  const std::uint64_t seed = args.get_u64("seed", 1);
  args.reject_unknown();
  require(cases >= 1, "--cases: need at least one replication");
  require(jobs >= 0, "--jobs: cannot be negative");

  campaign::ScenarioSpec spec;
  spec.name = "sweep-loads";
  spec.seed = seed;
  spec.replications = cases;
  campaign::PlatformSource cell;
  cell.kind = campaign::PlatformSource::Kind::Grid;
  cell.grid_clusters = clusters;
  cell.label = "grid:K=" + std::to_string(clusters);
  spec.platforms = {std::move(cell)};
  campaign::WorkloadSource lw;
  lw.kind = campaign::WorkloadSource::Kind::Loads;
  lw.load_count = loads_n;
  lw.load_mix = mix;
  lw.multi_objective = objective;
  lw.weight_spread = weight_spread;
  lw.label = "loads:N=" + std::to_string(loads_n);
  spec.scenarios = {std::move(lw)};

  campaign::RunnerOptions opt;
  opt.jobs = jobs;
  WallTimer timer;
  const campaign::CampaignReport report = campaign::run_campaign(spec, opt);
  const double wall = timer.seconds();

  const campaign::GroupAggregate& group = report.groups.front();
  const auto metric =
      [&](const std::string& name) -> const campaign::MetricAggregate& {
    for (const campaign::MetricAggregate& m : group.metrics)
      if (m.name == name) return m;
    throw Error("sweep: missing campaign metric '" + name + "'");
  };
  const int ok = static_cast<int>(metric("ok").acc.sum());
  out << "sweep: K=" << clusters << ", " << loads_n
      << " concurrent loads (mix " << mix << ", objective "
      << core::to_string(objective) << "), " << ok << "/" << cases
      << " cases ok, " << TextTable::fmt(wall, 2) << "s\n";
  TextTable table({"metric", "mean", "stddev", "cases"});
  for (const char* name : {"objective", "sum_throughput", "min_weighted",
                           "jain", "lp_solves", "lp_iterations"}) {
    const campaign::MetricAggregate& m = metric(name);
    table.add_row({name, table_cell(m.acc, m.acc.mean(), 4),
                   table_cell(m.acc, m.acc.stddev(), 4),
                   std::to_string(m.acc.count())});
  }
  table.print(out);
  return 0;
}

/// `sweep` is a thin adapter over the campaign runner: one grid cell,
/// one offline scenario, replications = --cases.
int cmd_sweep(Args& args, std::ostream& out) {
  const int clusters = args.get_int("clusters", 10);
  const int loads_n = args.get_int("loads", 0);
  require(loads_n >= 0, "--loads: cannot be negative");
  if (loads_n > 0) return cmd_sweep_loads(args, out, clusters, loads_n);
  const core::Objective objective = resolve_objective(args);
  const bool with_lprr = args.get_flag("lprr");
  const int cases = args.get_int("cases", 20);
  const int jobs = args.get_int("jobs", 0);
  const std::uint64_t seed = args.get_u64("seed", 1);
  args.reject_unknown();
  require(cases >= 1, "--cases: need at least one replication");
  require(jobs >= 0, "--jobs: cannot be negative");

  campaign::ScenarioSpec spec;
  spec.name = "sweep";
  spec.seed = seed;
  spec.replications = cases;
  campaign::PlatformSource cell;
  cell.kind = campaign::PlatformSource::Kind::Grid;
  cell.grid_clusters = clusters;
  cell.label = "grid:K=" + std::to_string(clusters);
  spec.platforms = {std::move(cell)};
  campaign::WorkloadSource none;
  none.label = "none";
  spec.scenarios = {std::move(none)};
  spec.methods = {campaign::Method::G, campaign::Method::Lpr,
                  campaign::Method::Lprg};
  if (with_lprr) spec.methods.push_back(campaign::Method::Lprr);
  spec.objectives = {objective};

  campaign::RunnerOptions opt;
  opt.jobs = jobs;
  WallTimer timer;
  const campaign::CampaignReport report = campaign::run_campaign(spec, opt);
  const double wall = timer.seconds();

  const campaign::GroupAggregate& group = report.groups.front();
  const auto metric = [&](const std::string& name) -> const campaign::MetricAggregate& {
    for (const campaign::MetricAggregate& m : group.metrics)
      if (m.name == name) return m;
    throw Error("sweep: missing campaign metric '" + name + "'");
  };
  const int ok = static_cast<int>(metric("ok").acc.sum());
  out << "sweep: K=" << clusters << ", " << ok << "/" << cases
      << " cases ok, " << TextTable::fmt(wall, 2) << "s\n";
  TextTable table({"method", "mean ratio to LP", "stddev", "cases"});
  const auto add_method = [&](const char* label, const std::string& name) {
    const campaign::MetricAggregate& m = metric(name);
    table.add_row({label, table_cell(m.acc, m.acc.mean(), 3),
                   table_cell(m.acc, m.acc.stddev(), 3),
                   std::to_string(m.acc.count())});
  };
  add_method("G", "ratio_g");
  add_method("LPR", "ratio_lpr");
  add_method("LPRG", "ratio_lprg");
  if (with_lprr) add_method("LPRR", "ratio_lprr");
  table.print(out);
  return 0;
}

int cmd_campaign(Args& args, std::ostream& out, std::ostream& err) {
  const std::string spec_path = args.get_string("spec", "");
  require(!spec_path.empty(), "--spec: a .campaign file is required");
  std::ifstream in(spec_path);
  require(static_cast<bool>(in), "cannot open campaign spec '" + spec_path + "'");
  const campaign::ScenarioSpec spec = campaign::read_campaign(in);

  // --serve <port>: distributed coordinator mode. Same report surface
  // (--json/--csv/--cases), bit-identical output to the in-process run.
  const int serve_port = args.get_int("serve", -1);
  if (serve_port >= 0) {
    require(serve_port <= 65535, "--serve: port out of range");
    require(args.get_string("shard", "").empty(),
            "--shard: a serving coordinator always covers the full matrix");
    dist::CoordinatorOptions copt;
    copt.port = static_cast<std::uint16_t>(serve_port);
    copt.port_file = args.get_string("port-file", "");
    const int range_size = args.get_int("range-size", 8);
    require(range_size >= 1, "--range-size: must be >= 1");
    copt.range_size = static_cast<std::size_t>(range_size);
    copt.heartbeat_timeout = args.get_double("heartbeat-timeout", 15.0);
    copt.checkpoint_path = args.get_string("checkpoint", "");
    const int snapshot_every = args.get_int("snapshot-every", 8);
    require(snapshot_every >= 1, "--snapshot-every: must be >= 1");
    copt.snapshot_every = static_cast<std::size_t>(snapshot_every);
    copt.resume = args.get_flag("resume");
    require(!copt.resume || !copt.checkpoint_path.empty(),
            "--resume: requires --checkpoint");
    const int exit_after = args.get_int("exit-after-snapshots", 0);
    require(exit_after >= 0, "--exit-after-snapshots: cannot be negative");
    copt.exit_after_snapshots = static_cast<std::size_t>(exit_after);
    copt.log = [&err](const std::string& line) { err << "dls: " << line << "\n"; };

    const bool json = args.get_flag("json");
    const bool csv = args.get_flag("csv");
    require(!(json && csv), "--json and --csv are mutually exclusive");
    const std::string cases_path = args.get_string("cases", "");
    std::ofstream cases_file;
    if (!cases_path.empty()) {
      cases_file.open(cases_path);
      require(static_cast<bool>(cases_file), "cannot write '" + cases_path + "'");
      copt.case_sink = [&cases_file](const campaign::CampaignReport& report,
                                     const campaign::CaseRecord& record) {
        campaign::write_case_json(report, record, cases_file);
      };
    }
    args.reject_unknown();

    WallTimer timer;
    const dist::CoordinatorResult result = dist::serve_campaign(spec, copt);
    if (!result.complete) {
      err << "dls: stopped before completion; resume with --resume "
             "--checkpoint '" << copt.checkpoint_path << "'\n";
      return 3;
    }
    if (json) {
      campaign::write_report_json(result.report, out);
    } else if (csv) {
      campaign::write_report_csv(result.report, out);
    } else {
      campaign::write_report_text(result.report, out, timer.seconds());
    }
    err << "dls: distributed: " << result.workers_seen << " worker(s), "
        << result.worker_deaths << " death(s), " << result.ranges_requeued
        << " requeue(s), " << result.snapshots_written << " snapshot(s), "
        << result.resumed_cases << " case(s) resumed\n";
    return 0;
  }

  campaign::RunnerOptions opt;
  opt.jobs = args.get_int("jobs", 0);
  require(opt.jobs >= 0, "--jobs: cannot be negative");
  const std::string shard = args.get_string("shard", "");
  if (!shard.empty()) {
    // Strict i/n: both components must be all-digits — "1x3/4" silently
    // running as shard 1/4 would corrupt a multi-machine union.
    const auto parse_component = [](const std::string& text) -> long {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos)
        return -1;
      try {
        return std::stol(text);
      } catch (const std::exception&) {
        return -1;
      }
    };
    const std::size_t slash = shard.find('/');
    const long parsed_i =
        slash == std::string::npos ? -1 : parse_component(shard.substr(0, slash));
    const long parsed_n =
        slash == std::string::npos ? -1 : parse_component(shard.substr(slash + 1));
    require(parsed_i >= 0 && parsed_n >= 1 && parsed_i < parsed_n,
            "--shard: expected i/n with 0 <= i < n, got '" + shard + "'" +
                (parsed_n == 0 ? " (a shard count of 0 partitions nothing)"
                               : ""));
    opt.shard_index = static_cast<int>(parsed_i);
    opt.shard_count = static_cast<int>(parsed_n);
  }
  const bool json = args.get_flag("json");
  const bool csv = args.get_flag("csv");
  require(!(json && csv), "--json and --csv are mutually exclusive");
  const std::string cases_path = args.get_string("cases", "");
  args.reject_unknown();

  std::ofstream cases_file;
  if (!cases_path.empty()) {
    cases_file.open(cases_path);
    require(static_cast<bool>(cases_file), "cannot write '" + cases_path + "'");
    opt.case_sink = [&cases_file](const campaign::CampaignReport& report,
                                  const campaign::CaseRecord& record) {
      campaign::write_case_json(report, record, cases_file);
    };
  }

  WallTimer timer;
  const campaign::CampaignReport report = campaign::run_campaign(spec, opt);
  if (report.executed_cases == 0) {
    // Still a valid (empty) report with exit 0 — a shard index past the
    // case count is legitimate in a fixed-width multi-machine launch —
    // but flag it so a typo'd spec does not silently produce nothing.
    err << "dls: warning: campaign expanded to zero cases for this run"
        << (opt.shard_count > 1 ? " (shard " + std::to_string(opt.shard_index) +
                                      "/" + std::to_string(opt.shard_count) + ")"
                                : "")
        << "\n";
  }
  if (json) {
    campaign::write_report_json(report, out);
  } else if (csv) {
    campaign::write_report_csv(report, out);
  } else {
    campaign::write_report_text(report, out, timer.seconds());
  }
  return 0;
}

int cmd_worker(Args& args, std::ostream& out, std::ostream& err) {
  const std::string connect = args.get_string("connect", "");
  require(!connect.empty(),
          "--connect: host:port of the coordinator is required");
  const std::size_t colon = connect.rfind(':');
  require(colon != std::string::npos && colon > 0 && colon + 1 < connect.size(),
          "--connect: expected host:port, got '" + connect + "'");
  const std::string port_text = connect.substr(colon + 1);
  require(port_text.find_first_not_of("0123456789") == std::string::npos,
          "--connect: malformed port in '" + connect + "'");
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  require(port >= 1 && port <= 65535,
          "--connect: port out of range in '" + connect + "'");

  dist::WorkerOptions opt;
  opt.host = connect.substr(0, colon);
  opt.port = static_cast<std::uint16_t>(port);
  opt.jobs = args.get_int("jobs", 0);
  require(opt.jobs >= 0, "--jobs: cannot be negative");
  opt.retry_seconds = args.get_double("retry-seconds", 10.0);
  require(opt.retry_seconds >= 0, "--retry-seconds: cannot be negative");
  opt.heartbeat_period = args.get_double("heartbeat-period", 2.0);
  require(opt.heartbeat_period > 0, "--heartbeat-period: must be positive");
  // Test hook for the fault-tolerance smoke: SIGKILL this process on
  // receipt of the n-th range lease (a real mid-range worker death).
  const int die = args.get_int("die-mid-range", 0);
  require(die >= 0, "--die-mid-range: cannot be negative");
  opt.die_on_range = static_cast<std::size_t>(die);
  opt.die_hard = die > 0;
  opt.log = [&err](const std::string& line) {
    err << "dls: worker: " << line << "\n";
  };
  args.reject_unknown();

  const dist::WorkerResult result = run_worker(opt);
  if (result.aborted) {
    err << "dls: worker: coordinator aborted: " << result.abort_message << "\n";
    return 1;
  }
  out << "worker done: " << result.ranges_done << " range(s), "
      << result.cases_run << " case(s)\n";
  return 0;
}

/// Platform for the online/dynamics replays: a file, or generated
/// in-memory from the `generate` options.
platform::Platform platform_from_args(Args& args, std::uint64_t seed) {
  const std::string platform_path = args.get_string("platform", "");
  if (!platform_path.empty()) return load_platform(platform_path);
  platform::GeneratorParams params = generator_params_from_args(args);
  Rng rng(seed);
  return generate_platform(params, rng);
}

/// Workload axis value from the online/dynamics flags: a .workload
/// trace, or an arrival-model description. Shared by the single-replay
/// path (realized below) and the --reps campaign path (handed to the
/// runner as-is).
campaign::WorkloadSource workload_source_from_args(Args& args) {
  campaign::WorkloadSource src;
  const std::string workload_path = args.get_string("workload", "");
  const std::string model = args.get_string("arrival-model", "poisson");
  if (!workload_path.empty()) {
    src.kind = campaign::WorkloadSource::Kind::Trace;
    src.path = workload_path;
    src.label = "trace";
    return src;
  }
  if (model == "poisson") {
    src.kind = campaign::WorkloadSource::Kind::Poisson;
    src.poisson.count = args.get_int("arrivals", 1000);
    src.poisson.rate = args.get_double("arrival-rate", 1.0);
    src.poisson.mean_load = args.get_double("mean-load", 500);
    src.poisson.load_spread = args.get_double("load-spread", 0.5);
    src.poisson.payoff_spread = args.get_double("payoff-spread", 0.5);
    src.label = "poisson";
    return src;
  }
  if (model == "onoff") {
    src.kind = campaign::WorkloadSource::Kind::OnOff;
    src.onoff.count = args.get_int("arrivals", 1000);
    src.onoff.burst_rate = args.get_double("arrival-rate", 4.0);
    src.onoff.mean_on = args.get_double("mean-on", 25);
    src.onoff.mean_off = args.get_double("mean-off", 75);
    src.onoff.mean_load = args.get_double("mean-load", 500);
    src.onoff.load_spread = args.get_double("load-spread", 0.5);
    src.onoff.payoff_spread = args.get_double("payoff-spread", 0.5);
    src.label = "onoff";
    return src;
  }
  throw Error("--arrival-model: expected 'poisson' or 'onoff'");
}

/// Workload for the single-replay path. The workload stream is split
/// off the platform seed so the same seed can replay one workload over
/// several platforms and vice versa.
online::Workload workload_from_args(Args& args, int num_clusters,
                                    std::uint64_t seed) {
  const campaign::WorkloadSource src = workload_source_from_args(args);
  online::Workload workload = [&] {
    switch (src.kind) {
      case campaign::WorkloadSource::Kind::Trace: {
        std::ifstream in(src.path);
        require(static_cast<bool>(in),
                "cannot open workload file '" + src.path + "'");
        return online::read_workload(in);
      }
      case campaign::WorkloadSource::Kind::Poisson: {
        Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
        return online::poisson_workload(src.poisson, num_clusters, rng);
      }
      default: {
        Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
        return online::onoff_workload(src.onoff, num_clusters, rng);
      }
    }
  }();
  const std::string save_workload = args.get_string("save-workload", "");
  if (!save_workload.empty()) {
    std::ofstream file(save_workload);
    require(static_cast<bool>(file), "cannot write '" + save_workload + "'");
    online::write_workload(workload, file);
  }
  return workload;
}

/// Scheduling options shared by `online` and `dynamics`. `warm_name`
/// receives the --warm spelling for reporting.
online::OnlineOptions online_options_from_args(Args& args, std::string* warm_name) {
  online::OnlineOptions options;
  const std::string warm = args.get_string("warm", "auto");
  online::WarmPolicy warm_policy = online::WarmPolicy::Auto;
  if (warm == "auto") {
    warm_policy = online::WarmPolicy::Auto;
  } else if (warm == "never") {
    warm_policy = online::WarmPolicy::Never;
  } else if (warm == "always") {
    warm_policy = online::WarmPolicy::Always;
  } else {
    throw Error("--warm: expected auto|never|always");
  }
  if (warm_name != nullptr) *warm_name = warm;

  // --loads: shared multi-load LP mode. Every active arrival is a column
  // block of one joint program, so the per-app heuristic axis (--method)
  // does not apply and rates always come from the LP itself.
  options.multi_load = args.get_flag("loads");
  if (options.multi_load) {
    const std::string obj = args.get_string("objective", "sum");
    require(core::parse_multi_objective(obj, options.multi.solve.objective),
            "--objective: expected sum|maxmin|pf");
    options.multi.warm = warm_policy;
    require(args.get_string("rate-model", "fluid") == "fluid",
            "--loads: requires --rate-model fluid "
            "(rates come from the shared LP, not the packet simulator)");
    return options;
  }

  const std::string method = args.get_string("method", "g");
  if (method == "g") {
    options.sched.method = online::Method::Greedy;
  } else if (method == "lpr") {
    options.sched.method = online::Method::Lpr;
  } else if (method == "lprg") {
    options.sched.method = online::Method::Lprg;
  } else if (method == "lp") {
    options.sched.method = online::Method::LpBound;
  } else {
    throw Error("--method: expected g|lpr|lprg|lp");
  }
  options.sched.objective = resolve_objective(args);
  options.sched.warm = warm_policy;
  options.sched.max_support_change =
      args.get_int("max-support-change", options.sched.max_support_change);
  const std::string rate_model = args.get_string("rate-model", "fluid");
  if (rate_model == "fluid") {
    options.rate_model = online::RateModel::Fluid;
  } else if (rate_model == "sim") {
    options.rate_model = online::RateModel::Simulated;
    options.sim_policy = parse_policy(args.get_string("policy", "maxmin"));
    options.sim_window_units =
        args.get_double("window", options.sim_window_units);
  } else {
    throw Error("--rate-model: expected fluid|sim");
  }
  return options;
}

/// Platform axis value for the --reps campaign path (not realized here).
campaign::PlatformSource platform_source_from_args(Args& args) {
  campaign::PlatformSource p;
  const std::string platform_path = args.get_string("platform", "");
  if (!platform_path.empty()) {
    p.kind = campaign::PlatformSource::Kind::File;
    p.path = platform_path;
    p.label = "platform";
  } else {
    p.kind = campaign::PlatformSource::Kind::Generate;
    p.params = generator_params_from_args(args);
    p.label = "gen:K=" + std::to_string(p.params.num_clusters);
  }
  return p;
}

campaign::Method to_campaign(online::Method m) {
  switch (m) {
    case online::Method::Greedy: return campaign::Method::G;
    case online::Method::Lpr: return campaign::Method::Lpr;
    case online::Method::Lprg: return campaign::Method::Lprg;
    case online::Method::LpBound: return campaign::Method::Lp;
  }
  return campaign::Method::G;
}

/// `dls online --reps N` / `dls dynamics --reps N`: seed-list
/// replication across the thread pool, reusing the campaign runner (one
/// platform cell, one method/objective/warm value, N replications; the
/// dynamics variant adds a static-baseline scenario next to the dynamic
/// one so the degradation report survives aggregation).
int run_replicated(Args& args, std::ostream& out, std::uint64_t seed, int reps,
                   bool with_dynamics) {
  const int jobs = args.get_int("jobs", 0);
  require(jobs >= 0, "--jobs: cannot be negative");
  // Each replication derives its own workload/event stream from the
  // campaign seed; there is no single trace to save.
  require(args.get_string("save-workload", "").empty(),
          "--save-workload is not supported with --reps (each replication "
          "derives its own stream; replay one seed without --reps to save it)");
  require(args.get_string("save-events", "").empty(),
          "--save-events is not supported with --reps (each replication "
          "derives its own trace; replay one seed without --reps to save it)");

  campaign::ScenarioSpec spec;
  spec.name = with_dynamics ? "dynamics" : "online";
  spec.seed = seed;
  spec.replications = reps;
  spec.platforms = {platform_source_from_args(args)};
  campaign::WorkloadSource wl = workload_source_from_args(args);
  std::string warm;
  const online::OnlineOptions options = online_options_from_args(args, &warm);
  require(!options.multi_load,
          "--loads is not supported with --reps (the campaign runner drives "
          "the single-load stream kernel; use the `loads` axis of a .campaign "
          "spec for replicated multi-load runs)");
  spec.methods = {to_campaign(options.sched.method)};
  spec.objectives = {options.sched.objective};
  spec.warm = {options.sched.warm};
  spec.max_support_change = options.sched.max_support_change;
  spec.rate_model = options.rate_model;
  spec.sim_policy = options.sim_policy;
  spec.sim_window_units = options.sim_window_units;
  if (with_dynamics) {
    campaign::WorkloadSource stat = wl;
    stat.label = "static";
    campaign::WorkloadSource dyn = std::move(wl);
    dyn.label = "dynamic";
    const std::string events_path = args.get_string("events", "");
    if (!events_path.empty()) {
      dyn.dyn = campaign::WorkloadSource::DynKind::Trace;
      dyn.events_path = events_path;
    } else {
      dyn.dyn = campaign::WorkloadSource::DynKind::Scenario;
      dyn.event_rate = args.get_double("event-rate", 0.02);
      dyn.severity = args.get_double("severity", 0.5);
      dyn.horizon = args.get_double("horizon", 0.0);
    }
    spec.scenarios = {std::move(stat), std::move(dyn)};
  } else {
    wl.label = "stream";
    spec.scenarios = {std::move(wl)};
  }
  const bool json = args.get_flag("json");
  args.reject_unknown();

  campaign::RunnerOptions opt;
  opt.jobs = jobs;
  WallTimer timer;
  const campaign::CampaignReport report = campaign::run_campaign(spec, opt);
  if (json) {
    campaign::write_report_json(report, out);
    return 0;
  }
  campaign::write_report_text(report, out, timer.seconds());
  if (with_dynamics) {
    const auto degradation = [&](const std::string& metric) {
      const double base = campaign::group_metric_mean(report, "static", metric);
      const double dyn = campaign::group_metric_mean(report, "dynamic", metric);
      return base > 0.0 ? dyn / base : 0.0;
    };
    out << "degradation over " << reps << " replications: response x"
        << TextTable::fmt(degradation("mean_response"), 3) << ", slowdown x"
        << TextTable::fmt(degradation("mean_slowdown"), 3) << "\n";
  }
  return 0;
}

int cmd_online(Args& args, std::ostream& out) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int reps = args.get_int("reps", 1);
  require(reps >= 1, "--reps: need at least one replication");
  if (reps > 1) return run_replicated(args, out, seed, reps, false);
  // A single replay has nothing to parallelize, but scripts sweeping
  // --reps down to 1 may still pass the pool size.
  (void)args.get_int("jobs", 0);
  const platform::Platform plat = platform_from_args(args, seed);
  const online::Workload workload =
      workload_from_args(args, plat.num_clusters(), seed);
  std::string warm;
  const online::OnlineOptions options = online_options_from_args(args, &warm);
  const bool json = args.get_flag("json");
  args.reject_unknown();

  const online::OnlineEngine engine(plat, options);
  WallTimer timer;
  const online::OnlineReport report = engine.run(workload);
  const double wall = timer.seconds();

  // In --loads mode there is no per-app heuristic; the "method" is the
  // shared LP and the objective is the multi-load one.
  const std::string method_label =
      options.multi_load ? "shared-lp"
                         : std::string(to_string(options.sched.method));
  const std::string objective_label =
      options.multi_load ? core::to_string(options.multi.solve.objective)
                         : std::string(to_string(options.sched.objective));

  std::vector<double> responses;
  responses.reserve(report.apps.size());
  for (const auto& app : report.apps) responses.push_back(app.response());
  const bool have_completions = !responses.empty();
  const double p95 = have_completions ? percentile(responses, 95.0) : 0.0;

  if (json) {
    out.precision(10);
    out << "{\"command\":\"online\",\"clusters\":" << plat.num_clusters()
        << ",\"method\":\"" << method_label << "\""
        << ",\"objective\":\"" << objective_label << "\""
        << ",\"warm_policy\":\"" << warm << "\""
        << ",\"arrivals\":" << report.arrivals
        << ",\"completed\":" << report.completed
        << ",\"queued_arrivals\":" << report.queued_arrivals
        << ",\"reschedules\":" << report.reschedules
        << ",\"warm_solves\":" << report.warm_solves
        << ",\"cold_solves\":" << report.cold_solves
        << ",\"warm_seconds\":" << report.warm_seconds
        << ",\"cold_seconds\":" << report.cold_seconds
        << ",\"makespan\":" << report.makespan
        << ",\"total_work\":" << report.total_work
        << ",\"mean_response\":"
        << json_value(report.metrics.response, report.metrics.response.mean(), 10);
    out << ",\"p95_response\":";
    if (have_completions)
      out << p95;
    else
      out << "null";
    out << ",\"mean_wait\":"
        << json_value(report.metrics.wait, report.metrics.wait.mean(), 10)
        << ",\"mean_slowdown\":"
        << json_value(report.metrics.slowdown, report.metrics.slowdown.mean(), 10)
        << ",\"mean_utilization\":" << report.metrics.utilization.mean()
        << ",\"mean_fairness\":" << report.metrics.fairness.mean()
        << ",\"mean_active\":" << report.metrics.active_apps.mean()
        << ",\"peak_active\":" << report.peak_active
        << ",\"peak_queued\":" << report.peak_queued
        << ",\"wall_seconds\":" << wall << "}\n";
    return 0;
  }

  out << "online: " << report.arrivals << " arrivals on " << plat.num_clusters()
      << " clusters, method " << method_label << ", objective "
      << objective_label << ", warm " << warm << "\n";
  TextTable table({"metric", "value"});
  table.add_row({"completed", std::to_string(report.completed)});
  table.add_row({"makespan", TextTable::fmt(report.makespan, 2)});
  table.add_row({"mean response",
                 table_cell(report.metrics.response, report.metrics.response.mean(), 3)});
  table.add_row({"p95 response",
                 have_completions ? TextTable::fmt(p95, 3) : std::string("-")});
  table.add_row({"mean wait",
                 table_cell(report.metrics.wait, report.metrics.wait.mean(), 3)});
  table.add_row({"mean slowdown",
                 table_cell(report.metrics.slowdown, report.metrics.slowdown.mean(), 3)});
  table.add_row({"mean utilization", TextTable::fmt(report.metrics.utilization.mean(), 4)});
  table.add_row({"mean fairness (Jain)", TextTable::fmt(report.metrics.fairness.mean(), 4)});
  table.add_row({"mean active apps", TextTable::fmt(report.metrics.active_apps.mean(), 2)});
  table.add_row({"peak active / queued", std::to_string(report.peak_active) + " / " +
                                             std::to_string(report.peak_queued)});
  table.print(out);
  out << "reschedules: " << report.reschedules << " (" << report.warm_solves
      << " warm, " << report.cold_solves << " cold); solve time "
      << TextTable::fmt(report.warm_seconds, 3) << "s warm + "
      << TextTable::fmt(report.cold_seconds, 3) << "s cold; wall "
      << TextTable::fmt(wall, 2) << "s\n";
  return 0;
}

int cmd_dynamics(Args& args, std::ostream& out) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  const int reps = args.get_int("reps", 1);
  require(reps >= 1, "--reps: need at least one replication");
  if (reps > 1) return run_replicated(args, out, seed, reps, true);
  (void)args.get_int("jobs", 0);  // see cmd_online
  const platform::Platform plat = platform_from_args(args, seed);
  const online::Workload workload =
      workload_from_args(args, plat.num_clusters(), seed);
  std::string warm;
  const online::OnlineOptions options = online_options_from_args(args, &warm);
  require(!options.multi_load,
          "--loads applies to `dls online`; the dynamics report compares the "
          "per-app scheduler against its static baseline");

  // Event trace: a .events file, or a generated failure/drift/churn
  // scenario (one ChurnScenarioGrid cell). The horizon defaults to
  // stretching past the arrival stream so late drains still see events;
  // the trace stream is split off both the platform and workload seeds.
  const std::string events_path = args.get_string("events", "");
  const dynamics::EventTrace trace = [&] {
    if (!events_path.empty()) {
      std::ifstream in(events_path);
      require(static_cast<bool>(in),
              "cannot open events file '" + events_path + "'");
      return dynamics::read_events(in);
    }
    const double last_arrival =
        workload.arrivals.empty() ? 0.0 : workload.arrivals.back().time;
    const double event_rate = args.get_double("event-rate", 0.02);
    const double severity = args.get_double("severity", 0.5);
    const double horizon = args.get_double("horizon", 2.0 * last_arrival + 100.0);
    Rng rng(seed ^ 0x5bf03635d2d741efULL);
    return dynamics::scenario_trace(event_rate, severity, horizon, plat, rng);
  }();
  const std::string save_events = args.get_string("save-events", "");
  if (!save_events.empty()) {
    std::ofstream file(save_events);
    require(static_cast<bool>(file), "cannot write '" + save_events + "'");
    dynamics::write_events(trace, file);
  }
  const bool json = args.get_flag("json");
  args.reject_unknown();

  // Replay twice: the static platform is the degradation baseline.
  const online::OnlineEngine engine(plat, options);
  WallTimer timer;
  const online::OnlineReport base = engine.run(workload);
  const double base_wall = timer.seconds();
  WallTimer dyn_timer;
  const online::OnlineReport dyn = engine.run(workload, trace);
  const double dyn_wall = dyn_timer.seconds();

  const auto ratio = [](double dynamic, double baseline) {
    return baseline > 0.0 ? dynamic / baseline : 0.0;
  };
  const double response_degradation =
      ratio(dyn.metrics.response.mean(), base.metrics.response.mean());
  const double slowdown_degradation =
      ratio(dyn.metrics.slowdown.mean(), base.metrics.slowdown.mean());
  const double warm_ms =
      dyn.warm_solves > 0 ? 1e3 * dyn.warm_seconds / dyn.warm_solves : 0.0;
  const double cold_ms =
      dyn.cold_solves > 0 ? 1e3 * dyn.cold_seconds / dyn.cold_solves : 0.0;

  if (json) {
    // Deterministic by construction: counts and metrics only, no wall
    // times — the same seed reproduces this line bit for bit.
    out.precision(10);
    out << "{\"command\":\"dynamics\",\"clusters\":" << plat.num_clusters()
        << ",\"method\":\"" << to_string(options.sched.method) << "\""
        << ",\"objective\":\"" << to_string(options.sched.objective) << "\""
        << ",\"warm_policy\":\"" << warm << "\""
        << ",\"arrivals\":" << dyn.arrivals
        << ",\"trace_events\":" << trace.size()
        << ",\"platform_events\":" << dyn.platform_events
        << ",\"completed\":" << dyn.completed
        << ",\"aborted\":" << dyn.aborted
        << ",\"rejected\":" << dyn.rejected
        << ",\"reschedules\":" << dyn.reschedules
        << ",\"warm_solves\":" << dyn.warm_solves
        << ",\"repaired_solves\":" << dyn.repaired_solves
        << ",\"cold_solves\":" << dyn.cold_solves
        << ",\"makespan\":" << dyn.makespan
        << ",\"total_work\":" << dyn.total_work
        << ",\"mean_response\":"
        << json_value(dyn.metrics.response, dyn.metrics.response.mean(), 10)
        << ",\"mean_slowdown\":"
        << json_value(dyn.metrics.slowdown, dyn.metrics.slowdown.mean(), 10)
        << ",\"mean_utilization\":" << dyn.metrics.utilization.mean()
        << ",\"baseline_completed\":" << base.completed
        << ",\"baseline_makespan\":" << base.makespan
        << ",\"baseline_mean_response\":"
        << json_value(base.metrics.response, base.metrics.response.mean(), 10)
        << ",\"baseline_mean_slowdown\":"
        << json_value(base.metrics.slowdown, base.metrics.slowdown.mean(), 10)
        << ",\"response_degradation\":" << response_degradation
        << ",\"slowdown_degradation\":" << slowdown_degradation << "}\n";
    return 0;
  }

  out << "dynamics: " << dyn.arrivals << " arrivals vs " << trace.size()
      << " platform events on " << plat.num_clusters() << " clusters, method "
      << to_string(options.sched.method) << ", objective "
      << to_string(options.sched.objective) << ", warm " << warm << "\n";
  TextTable table({"metric", "static", "dynamic"});
  table.add_row({"completed", std::to_string(base.completed),
                 std::to_string(dyn.completed)});
  table.add_row({"aborted / rejected", "0 / 0",
                 std::to_string(dyn.aborted) + " / " + std::to_string(dyn.rejected)});
  table.add_row({"makespan", TextTable::fmt(base.makespan, 2),
                 TextTable::fmt(dyn.makespan, 2)});
  table.add_row({"mean response",
                 table_cell(base.metrics.response, base.metrics.response.mean(), 3),
                 table_cell(dyn.metrics.response, dyn.metrics.response.mean(), 3)});
  table.add_row({"mean slowdown",
                 table_cell(base.metrics.slowdown, base.metrics.slowdown.mean(), 3),
                 table_cell(dyn.metrics.slowdown, dyn.metrics.slowdown.mean(), 3)});
  table.add_row({"mean utilization",
                 TextTable::fmt(base.metrics.utilization.mean(), 4),
                 TextTable::fmt(dyn.metrics.utilization.mean(), 4)});
  table.print(out);
  out << "degradation: response x" << TextTable::fmt(response_degradation, 3)
      << ", slowdown x" << TextTable::fmt(slowdown_degradation, 3) << "\n";
  out << "dynamic reschedules: " << dyn.reschedules << " (" << dyn.warm_solves
      << " warm, of which " << dyn.repaired_solves << " basis-repaired; "
      << dyn.cold_solves << " cold); " << TextTable::fmt(warm_ms, 3)
      << " ms/warm vs " << TextTable::fmt(cold_ms, 3) << " ms/cold; wall "
      << TextTable::fmt(base_wall, 2) << "s static + "
      << TextTable::fmt(dyn_wall, 2) << "s dynamic\n";
  return 0;
}

// `dls serve` stop flag. Signal handlers can only touch a
// sig_atomic_t; the daemon polls it once per loop iteration and turns
// it into a drain.
volatile std::sig_atomic_t g_serve_stop = 0;

void serve_signal_handler(int) { g_serve_stop = 1; }

int cmd_serve(Args& args, std::ostream& out) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  platform::Platform plat = platform_from_args(args, seed);

  serve::DaemonOptions options;
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.port_file = args.get_string("port-file", "");
  options.engine.max_loads = args.get_int("max-loads", 0);
  options.engine.load_eps = args.get_double("load-eps", 1e-6);
  const std::string obj = args.get_string("objective", "sum");
  require(core::parse_multi_objective(obj, options.engine.sched.solve.objective),
          "--objective: expected sum|maxmin|pf");
  const std::string warm = args.get_string("warm", "auto");
  if (warm == "auto") {
    options.engine.sched.warm = online::WarmPolicy::Auto;
  } else if (warm == "never") {
    options.engine.sched.warm = online::WarmPolicy::Never;
  } else if (warm == "always") {
    options.engine.sched.warm = online::WarmPolicy::Always;
  } else {
    throw Error("--warm: expected auto|never|always");
  }

  const std::string replay_path = args.get_string("replay", "");
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    require(static_cast<bool>(in),
            "cannot open workload file '" + replay_path + "'");
    options.replay = online::read_workload(in);
  }
  const std::string events_path = args.get_string("events", "");
  if (!events_path.empty()) {
    std::ifstream in(events_path);
    require(static_cast<bool>(in),
            "cannot open events file '" + events_path + "'");
    options.events = dynamics::read_events(in);
  }
  options.speed = args.get_double("speed", 1.0);
  options.exit_after_replay = args.get_flag("exit-after-replay");
  options.drain_grace = args.get_double("drain-grace", 0.0);
  options.trace_file = args.get_string("trace-file", "");
  options.trace_capacity =
      static_cast<std::size_t>(args.get_int("trace-capacity", 1024));
  args.reject_unknown();

  g_serve_stop = 0;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  options.stop_requested = [] { return g_serve_stop != 0; };
  options.log = [&out](const std::string& line) {
    out << line << "\n" << std::flush;
  };

  const serve::DaemonReport report = serve::run_daemon(std::move(plat), options);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  const serve::EngineCounters& c = report.counters;
  out << "serve: " << report.exit_reason << "; served " << report.requests
      << " request(s), " << report.bad_requests << " bad\n";
  out << "serve: " << c.arrivals << " arrival(s): " << c.admitted
      << " admitted, " << c.rejected_overload << " overload, "
      << c.rejected_absent << " absent, " << c.rejected_draining
      << " draining; peak " << c.peak_active << " active\n";
  out << "serve: " << c.completed << " completed, " << c.cancelled
      << " cancelled, " << c.aborted_churn << " aborted; " << c.reschedules
      << " reschedule(s) (" << c.warm_solves << " warm, of which "
      << c.repaired_solves << " repaired; " << c.cold_solves << " cold); "
      << c.platform_events << " platform event(s)\n";
  return 0;
}

int cmd_reduce(Args& args, std::ostream& out) {
  const std::string path = args.get_string("graph", "");
  args.reject_unknown();
  std::ifstream in(path);
  require(static_cast<bool>(in), "cannot open graph file '" + path + "'");
  int n = 0, m = 0;
  in >> n >> m;
  require(in && n >= 1 && m >= 0, "graph file: expected 'n m' header");
  core::npc::Graph g(n);
  for (int i = 0; i < m; ++i) {
    int u = 0, v = 0;
    in >> u >> v;
    require(static_cast<bool>(in), "graph file: truncated edge list");
    g.add_edge(u, v);
  }

  const auto mis = core::npc::maximum_independent_set(g);
  const auto inst = core::npc::build_reduction(g);
  out << "# reduction of " << n << "-vertex, " << m << "-edge graph\n"
      << "# maximum independent set size: " << mis.size() << "\n"
      << "# Lemma 1 holds: " << (core::npc::lemma1_holds(g, inst) ? "yes" : "NO")
      << "\n";
  platform::write_platform(inst.platform, out);
  return 0;
}

}  // namespace

int run_cli(std::vector<std::string> args, std::ostream& out, std::ostream& err) {
  try {
    Args parsed(std::move(args));
    const std::string& cmd = parsed.command();
    // `--version` has no positional command, so the token parses as a
    // bare flag; `dls version` also works.
    if (cmd == "version" || (cmd.empty() && parsed.get_flag("version"))) {
      out << support::build_summary() << "\n";
      return 0;
    }
    if (cmd.empty() || cmd == "help") {
      print_usage(cmd.empty() ? err : out);
      return cmd.empty() ? 2 : 0;
    }
    if (cmd == "generate") return cmd_generate(parsed, out);
    if (cmd == "solve") return cmd_solve(parsed, out);
    if (cmd == "simulate") return cmd_simulate(parsed, out);
    if (cmd == "campaign") return cmd_campaign(parsed, out, err);
    if (cmd == "worker") return cmd_worker(parsed, out, err);
    if (cmd == "sweep") return cmd_sweep(parsed, out);
    if (cmd == "online") return cmd_online(parsed, out);
    if (cmd == "dynamics") return cmd_dynamics(parsed, out);
    if (cmd == "serve") return cmd_serve(parsed, out);
    if (cmd == "reduce") return cmd_reduce(parsed, out);
    err << "dls: unknown command '" << cmd << "'\n";
    print_usage(err);
    return 2;
  } catch (const Error& e) {
    err << "dls: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dls::cli
