#include "cli/cli.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/args.hpp"
#include "core/heuristics.hpp"
#include "dynamics/events.hpp"
#include "core/npc/reduction.hpp"
#include "core/schedule.hpp"
#include "exp/experiment.hpp"
#include "online/engine.hpp"
#include "platform/generator.hpp"
#include "platform/serialization.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace dls::cli {

namespace {

void print_usage(std::ostream& os) {
  os << "usage: dls <command> [options]\n"
        "commands:\n"
        "  generate   create a random platform (Table-1 style parameters)\n"
        "  solve      run a scheduling method on a platform file\n"
        "  simulate   solve, reconstruct the periodic schedule, execute it\n"
        "  sweep      run heuristics over many random platforms in parallel\n"
        "  online     replay a stream of application arrivals with adaptive\n"
        "             warm-started rescheduling\n"
        "  dynamics   replay a workload against a platform-event trace\n"
        "             (failures, drift, churn) and report the degradation\n"
        "  reduce     build the NP-hardness instance from a graph file\n"
        "  help       show this message\n"
        "see src/cli/cli.hpp for the full option list\n";
}

platform::Platform load_platform(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in), "cannot open platform file '" + path + "'");
  return platform::read_platform(in);
}

std::vector<double> resolve_payoffs(Args& args, int num_clusters) {
  std::vector<double> payoffs = args.get_double_list("payoffs");
  if (payoffs.empty()) payoffs.assign(num_clusters, 1.0);
  require(static_cast<int>(payoffs.size()) == num_clusters,
          "--payoffs: expected one value per cluster");
  return payoffs;
}

core::Objective resolve_objective(Args& args) {
  const std::string name = args.get_string("objective", "maxmin");
  if (name == "maxmin") return core::Objective::MaxMin;
  if (name == "sum") return core::Objective::Sum;
  throw Error("--objective: expected 'maxmin' or 'sum'");
}

/// Shared by `simulate` and `online --rate-model sim`.
sim::SharingPolicy parse_policy(const std::string& policy) {
  if (policy == "paced") return sim::SharingPolicy::Paced;
  if (policy == "maxmin") return sim::SharingPolicy::MaxMin;
  if (policy == "tcp") return sim::SharingPolicy::TcpRttBias;
  if (policy == "window") return sim::SharingPolicy::BoundedWindow;
  throw Error("--policy: expected paced|maxmin|tcp|window");
}

struct Solved {
  core::Allocation allocation;
  double objective = 0.0;
  double bound = 0.0;
  std::string method;
};

Solved solve_with_method(const core::SteadyStateProblem& problem, Args& args) {
  const std::string method = args.get_string("method", "lprg");
  Rng rng(args.get_u64("seed", 1));
  Solved out{core::Allocation(problem.num_clusters()), 0.0, 0.0, method};

  const auto bound = core::lp_upper_bound(problem);
  require(bound.status == lp::SolveStatus::Optimal, "LP bound solve failed");
  out.bound = bound.objective;

  if (method == "lp") {
    out.allocation = bound.allocation;
    out.objective = bound.objective;
    return out;
  }
  core::HeuristicResult result{core::Allocation(problem.num_clusters()), 0.0, 0,
                               lp::SolveStatus::Optimal};
  if (method == "g") {
    result = core::run_greedy(problem);
  } else if (method == "lpr") {
    result = core::run_lpr(problem);
  } else if (method == "lprg") {
    result = core::run_lprg(problem);
  } else if (method == "lprr") {
    result = core::run_lprr(problem, rng);
  } else if (method == "exact") {
    const auto exact = core::solve_exact(problem);
    require(exact.status == lp::SolveStatus::Optimal,
            "exact solve did not finish (try a smaller platform)");
    out.allocation = exact.allocation;
    out.objective = exact.objective;
    return out;
  } else {
    throw Error("--method: expected g|lpr|lprg|lprr|lp|exact");
  }
  require(result.status == lp::SolveStatus::Optimal, "method '" + method + "' failed");
  out.allocation = std::move(result.allocation);
  out.objective = result.objective;
  return out;
}

void print_allocation(const platform::Platform& plat, const core::Allocation& alloc,
                      std::ostream& os) {
  TextTable table({"from", "on", "alpha", "beta"});
  for (int k = 0; k < plat.num_clusters(); ++k) {
    for (int l = 0; l < plat.num_clusters(); ++l) {
      if (alloc.alpha(k, l) <= 1e-12 && alloc.beta(k, l) <= 1e-12) continue;
      const auto name = [&](int c) {
        return plat.cluster(c).name.empty() ? "C" + std::to_string(c)
                                            : plat.cluster(c).name;
      };
      table.add_row({name(k), name(l), TextTable::fmt(alloc.alpha(k, l), 3),
                     TextTable::fmt(alloc.beta(k, l), 0)});
    }
  }
  table.print(os);
}

/// Generator options shared by `generate` and `online` (which generates a
/// platform in-memory when no --platform file is given).
platform::GeneratorParams generator_params_from_args(Args& args) {
  platform::GeneratorParams params;
  params.num_clusters = args.get_int("clusters", 10);
  params.connectivity = args.get_double("connectivity", 0.4);
  params.heterogeneity = args.get_double("heterogeneity", 0.5);
  params.mean_gateway_bw = args.get_double("gateway", 250);
  params.mean_backbone_bw = args.get_double("bw", 50);
  params.mean_max_connections = args.get_double("maxcon", 50);
  params.cluster_speed = args.get_double("speed", 100);
  params.mean_latency = args.get_double("latency", 0);
  params.ensure_connected = args.get_flag("connected");
  params.num_transit_routers = args.get_int("transit", 0);
  return params;
}

int cmd_generate(Args& args, std::ostream& out) {
  const platform::GeneratorParams params = generator_params_from_args(args);
  const std::string out_path = args.get_string("out", "");
  Rng rng(args.get_u64("seed", 1));
  args.reject_unknown();

  const platform::Platform plat = generate_platform(params, rng);
  if (out_path.empty()) {
    platform::write_platform(plat, out);
  } else {
    std::ofstream file(out_path);
    require(static_cast<bool>(file), "cannot write '" + out_path + "'");
    platform::write_platform(plat, file);
    out << "wrote " << plat.num_clusters() << " clusters, " << plat.num_links()
        << " links to " << out_path << "\n";
  }
  return 0;
}

int cmd_solve(Args& args, std::ostream& out) {
  const platform::Platform plat = load_platform(args.get_string("platform", ""));
  const std::vector<double> payoffs = resolve_payoffs(args, plat.num_clusters());
  const core::Objective objective = resolve_objective(args);
  const bool with_schedule = args.get_flag("schedule");
  const core::SteadyStateProblem problem(plat, payoffs, objective);
  Solved solved = solve_with_method(problem, args);
  args.reject_unknown();

  out << "method " << solved.method << ", objective " << to_string(objective)
      << ": " << solved.objective << "  (LP bound " << solved.bound << ")\n";
  print_allocation(plat, solved.allocation, out);

  if (with_schedule) {
    const auto sched = core::build_periodic_schedule(problem, solved.allocation);
    out << "period: " << sched.period << "\n";
    for (const auto& t : sched.transfers)
      out << "  transfer " << t.units << " units C" << t.from << " -> C" << t.to
          << " (" << t.connections << " connections)\n";
    for (const auto& c : sched.compute)
      out << "  compute " << c.units << " units of app " << c.app << " on C"
          << c.on_cluster << "\n";
  }
  return 0;
}

int cmd_simulate(Args& args, std::ostream& out) {
  const platform::Platform plat = load_platform(args.get_string("platform", ""));
  const std::vector<double> payoffs = resolve_payoffs(args, plat.num_clusters());
  const core::Objective objective = resolve_objective(args);
  const core::SteadyStateProblem problem(plat, payoffs, objective);
  Solved solved = solve_with_method(problem, args);

  sim::SimOptions options;
  options.periods = args.get_int("periods", 10);
  options.window_units = args.get_double("window", options.window_units);
  const std::string policy = args.get_string("policy", "paced");
  options.policy = parse_policy(policy);
  const std::string engine = args.get_string("sim-engine", "incremental");
  if (engine == "incremental") {
    options.engine = sim::EngineKind::Incremental;
  } else if (engine == "rescan") {
    options.engine = sim::EngineKind::Rescan;
  } else {
    throw Error("--sim-engine: expected incremental|rescan");
  }
  args.reject_unknown();

  const auto sched = core::build_periodic_schedule(problem, solved.allocation);
  const auto report = sim::simulate_schedule(problem, sched, options);
  out << "method " << solved.method << ", period " << sched.period << ", policy "
      << policy << "\n";
  TextTable table({"application", "scheduled", "achieved"});
  for (int k = 0; k < plat.num_clusters(); ++k)
    table.add_row({"app" + std::to_string(k), TextTable::fmt(sched.throughput(k), 3),
                   TextTable::fmt(report.throughput[k], 3)});
  table.print(out);
  out << "worst period overrun ratio: " << TextTable::fmt(report.worst_overrun_ratio, 4)
      << "\n";
  out << "engine " << engine << ": " << report.events << " events, "
      << report.rate_recomputations << " full + " << report.partial_recomputations
      << " partial rate solves\n";
  return 0;
}

int cmd_sweep(Args& args, std::ostream& out) {
  exp::CaseConfig base;
  base.params.num_clusters = args.get_int("clusters", 10);
  base.objective = resolve_objective(args);
  base.with_lprr = args.get_flag("lprr");
  const int cases = args.get_int("cases", 20);
  const int jobs = args.get_int("jobs", 0);
  const std::uint64_t seed = args.get_u64("seed", 1);
  args.reject_unknown();
  require(cases >= 1, "--cases: need at least one replication");
  require(jobs >= 0, "--jobs: cannot be negative");

  const platform::Table1Grid grid;
  std::vector<exp::CaseConfig> configs(cases, base);
  for (int i = 0; i < cases; ++i) {
    Rng rng(seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i));
    configs[i].params =
        exp::sample_grid_params(grid, base.params.num_clusters, rng);
    configs[i].seed = rng.next_u64();
  }

  WallTimer timer;
  const std::vector<exp::CaseResult> results = exp::run_cases(configs, jobs);
  const double wall = timer.seconds();

  exp::RatioStats g, lpr, lprg, lprr;
  int ok = 0;
  for (const exp::CaseResult& r : results) {
    if (!r.ok) continue;
    ++ok;
    g.add(r.g, r.lp);
    lpr.add(r.lpr, r.lp);
    lprg.add(r.lprg, r.lp);
    if (base.with_lprr) lprr.add(r.lprr, r.lp);
  }
  out << "sweep: K=" << base.params.num_clusters << ", " << ok << "/" << cases
      << " cases ok, " << TextTable::fmt(wall, 2) << "s\n";
  TextTable table({"method", "mean ratio to LP", "cases"});
  table.add_row({"G", TextTable::fmt(g.mean(), 3), std::to_string(g.count())});
  table.add_row({"LPR", TextTable::fmt(lpr.mean(), 3), std::to_string(lpr.count())});
  table.add_row({"LPRG", TextTable::fmt(lprg.mean(), 3), std::to_string(lprg.count())});
  if (base.with_lprr)
    table.add_row(
        {"LPRR", TextTable::fmt(lprr.mean(), 3), std::to_string(lprr.count())});
  table.print(out);
  return 0;
}

/// Platform for the online/dynamics replays: a file, or generated
/// in-memory from the `generate` options.
platform::Platform platform_from_args(Args& args, std::uint64_t seed) {
  const std::string platform_path = args.get_string("platform", "");
  if (!platform_path.empty()) return load_platform(platform_path);
  platform::GeneratorParams params = generator_params_from_args(args);
  Rng rng(seed);
  return generate_platform(params, rng);
}

/// Workload: a .workload trace, or sampled from an arrival model. The
/// workload stream is split off the platform seed so the same seed can
/// replay one workload over several platforms and vice versa.
online::Workload workload_from_args(Args& args, int num_clusters,
                                    std::uint64_t seed) {
  const std::string workload_path = args.get_string("workload", "");
  const std::string model = args.get_string("arrival-model", "poisson");
  online::Workload workload = [&] {
    if (!workload_path.empty()) {
      std::ifstream in(workload_path);
      require(static_cast<bool>(in),
              "cannot open workload file '" + workload_path + "'");
      return online::read_workload(in);
    }
    Rng rng(seed ^ 0xda3e39cb94b95bdbULL);
    if (model == "poisson") {
      online::PoissonParams p;
      p.count = args.get_int("arrivals", 1000);
      p.rate = args.get_double("arrival-rate", 1.0);
      p.mean_load = args.get_double("mean-load", 500);
      p.load_spread = args.get_double("load-spread", 0.5);
      p.payoff_spread = args.get_double("payoff-spread", 0.5);
      return online::poisson_workload(p, num_clusters, rng);
    }
    if (model == "onoff") {
      online::OnOffParams p;
      p.count = args.get_int("arrivals", 1000);
      p.burst_rate = args.get_double("arrival-rate", 4.0);
      p.mean_on = args.get_double("mean-on", 25);
      p.mean_off = args.get_double("mean-off", 75);
      p.mean_load = args.get_double("mean-load", 500);
      p.load_spread = args.get_double("load-spread", 0.5);
      p.payoff_spread = args.get_double("payoff-spread", 0.5);
      return online::onoff_workload(p, num_clusters, rng);
    }
    throw Error("--arrival-model: expected 'poisson' or 'onoff'");
  }();
  const std::string save_workload = args.get_string("save-workload", "");
  if (!save_workload.empty()) {
    std::ofstream file(save_workload);
    require(static_cast<bool>(file), "cannot write '" + save_workload + "'");
    online::write_workload(workload, file);
  }
  return workload;
}

/// Scheduling options shared by `online` and `dynamics`. `warm_name`
/// receives the --warm spelling for reporting.
online::OnlineOptions online_options_from_args(Args& args, std::string* warm_name) {
  online::OnlineOptions options;
  const std::string method = args.get_string("method", "g");
  if (method == "g") {
    options.sched.method = online::Method::Greedy;
  } else if (method == "lpr") {
    options.sched.method = online::Method::Lpr;
  } else if (method == "lprg") {
    options.sched.method = online::Method::Lprg;
  } else if (method == "lp") {
    options.sched.method = online::Method::LpBound;
  } else {
    throw Error("--method: expected g|lpr|lprg|lp");
  }
  options.sched.objective = resolve_objective(args);
  const std::string warm = args.get_string("warm", "auto");
  if (warm == "auto") {
    options.sched.warm = online::WarmPolicy::Auto;
  } else if (warm == "never") {
    options.sched.warm = online::WarmPolicy::Never;
  } else if (warm == "always") {
    options.sched.warm = online::WarmPolicy::Always;
  } else {
    throw Error("--warm: expected auto|never|always");
  }
  if (warm_name != nullptr) *warm_name = warm;
  options.sched.max_support_change =
      args.get_int("max-support-change", options.sched.max_support_change);
  const std::string rate_model = args.get_string("rate-model", "fluid");
  if (rate_model == "fluid") {
    options.rate_model = online::RateModel::Fluid;
  } else if (rate_model == "sim") {
    options.rate_model = online::RateModel::Simulated;
    options.sim_policy = parse_policy(args.get_string("policy", "maxmin"));
    options.sim_window_units =
        args.get_double("window", options.sim_window_units);
  } else {
    throw Error("--rate-model: expected fluid|sim");
  }
  return options;
}

int cmd_online(Args& args, std::ostream& out) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  const platform::Platform plat = platform_from_args(args, seed);
  const online::Workload workload =
      workload_from_args(args, plat.num_clusters(), seed);
  std::string warm;
  const online::OnlineOptions options = online_options_from_args(args, &warm);
  const bool json = args.get_flag("json");
  args.reject_unknown();

  const online::OnlineEngine engine(plat, options);
  WallTimer timer;
  const online::OnlineReport report = engine.run(workload);
  const double wall = timer.seconds();

  std::vector<double> responses;
  responses.reserve(report.apps.size());
  for (const auto& app : report.apps) responses.push_back(app.response());
  const bool have_completions = !responses.empty();
  const double p95 = have_completions ? percentile(responses, 95.0) : 0.0;

  if (json) {
    out.precision(10);
    out << "{\"command\":\"online\",\"clusters\":" << plat.num_clusters()
        << ",\"method\":\"" << to_string(options.sched.method) << "\""
        << ",\"objective\":\"" << to_string(options.sched.objective) << "\""
        << ",\"warm_policy\":\"" << warm << "\""
        << ",\"arrivals\":" << report.arrivals
        << ",\"completed\":" << report.completed
        << ",\"queued_arrivals\":" << report.queued_arrivals
        << ",\"reschedules\":" << report.reschedules
        << ",\"warm_solves\":" << report.warm_solves
        << ",\"cold_solves\":" << report.cold_solves
        << ",\"warm_seconds\":" << report.warm_seconds
        << ",\"cold_seconds\":" << report.cold_seconds
        << ",\"makespan\":" << report.makespan
        << ",\"total_work\":" << report.total_work
        << ",\"mean_response\":"
        << json_value(report.metrics.response, report.metrics.response.mean(), 10);
    out << ",\"p95_response\":";
    if (have_completions)
      out << p95;
    else
      out << "null";
    out << ",\"mean_wait\":"
        << json_value(report.metrics.wait, report.metrics.wait.mean(), 10)
        << ",\"mean_slowdown\":"
        << json_value(report.metrics.slowdown, report.metrics.slowdown.mean(), 10)
        << ",\"mean_utilization\":" << report.metrics.utilization.mean()
        << ",\"mean_fairness\":" << report.metrics.fairness.mean()
        << ",\"mean_active\":" << report.metrics.active_apps.mean()
        << ",\"peak_active\":" << report.peak_active
        << ",\"peak_queued\":" << report.peak_queued
        << ",\"wall_seconds\":" << wall << "}\n";
    return 0;
  }

  out << "online: " << report.arrivals << " arrivals on " << plat.num_clusters()
      << " clusters, method " << to_string(options.sched.method) << ", objective "
      << to_string(options.sched.objective) << ", warm " << warm << "\n";
  TextTable table({"metric", "value"});
  table.add_row({"completed", std::to_string(report.completed)});
  table.add_row({"makespan", TextTable::fmt(report.makespan, 2)});
  table.add_row({"mean response",
                 table_cell(report.metrics.response, report.metrics.response.mean(), 3)});
  table.add_row({"p95 response",
                 have_completions ? TextTable::fmt(p95, 3) : std::string("-")});
  table.add_row({"mean wait",
                 table_cell(report.metrics.wait, report.metrics.wait.mean(), 3)});
  table.add_row({"mean slowdown",
                 table_cell(report.metrics.slowdown, report.metrics.slowdown.mean(), 3)});
  table.add_row({"mean utilization", TextTable::fmt(report.metrics.utilization.mean(), 4)});
  table.add_row({"mean fairness (Jain)", TextTable::fmt(report.metrics.fairness.mean(), 4)});
  table.add_row({"mean active apps", TextTable::fmt(report.metrics.active_apps.mean(), 2)});
  table.add_row({"peak active / queued", std::to_string(report.peak_active) + " / " +
                                             std::to_string(report.peak_queued)});
  table.print(out);
  out << "reschedules: " << report.reschedules << " (" << report.warm_solves
      << " warm, " << report.cold_solves << " cold); solve time "
      << TextTable::fmt(report.warm_seconds, 3) << "s warm + "
      << TextTable::fmt(report.cold_seconds, 3) << "s cold; wall "
      << TextTable::fmt(wall, 2) << "s\n";
  return 0;
}

int cmd_dynamics(Args& args, std::ostream& out) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  const platform::Platform plat = platform_from_args(args, seed);
  const online::Workload workload =
      workload_from_args(args, plat.num_clusters(), seed);
  std::string warm;
  const online::OnlineOptions options = online_options_from_args(args, &warm);

  // Event trace: a .events file, or a generated failure/drift/churn
  // scenario (one ChurnScenarioGrid cell). The horizon defaults to
  // stretching past the arrival stream so late drains still see events;
  // the trace stream is split off both the platform and workload seeds.
  const std::string events_path = args.get_string("events", "");
  const dynamics::EventTrace trace = [&] {
    if (!events_path.empty()) {
      std::ifstream in(events_path);
      require(static_cast<bool>(in),
              "cannot open events file '" + events_path + "'");
      return dynamics::read_events(in);
    }
    const double last_arrival =
        workload.arrivals.empty() ? 0.0 : workload.arrivals.back().time;
    const double event_rate = args.get_double("event-rate", 0.02);
    const double severity = args.get_double("severity", 0.5);
    const double horizon = args.get_double("horizon", 2.0 * last_arrival + 100.0);
    Rng rng(seed ^ 0x5bf03635d2d741efULL);
    return dynamics::scenario_trace(event_rate, severity, horizon, plat, rng);
  }();
  const std::string save_events = args.get_string("save-events", "");
  if (!save_events.empty()) {
    std::ofstream file(save_events);
    require(static_cast<bool>(file), "cannot write '" + save_events + "'");
    dynamics::write_events(trace, file);
  }
  const bool json = args.get_flag("json");
  args.reject_unknown();

  // Replay twice: the static platform is the degradation baseline.
  const online::OnlineEngine engine(plat, options);
  WallTimer timer;
  const online::OnlineReport base = engine.run(workload);
  const double base_wall = timer.seconds();
  WallTimer dyn_timer;
  const online::OnlineReport dyn = engine.run(workload, trace);
  const double dyn_wall = dyn_timer.seconds();

  const auto ratio = [](double dynamic, double baseline) {
    return baseline > 0.0 ? dynamic / baseline : 0.0;
  };
  const double response_degradation =
      ratio(dyn.metrics.response.mean(), base.metrics.response.mean());
  const double slowdown_degradation =
      ratio(dyn.metrics.slowdown.mean(), base.metrics.slowdown.mean());
  const double warm_ms =
      dyn.warm_solves > 0 ? 1e3 * dyn.warm_seconds / dyn.warm_solves : 0.0;
  const double cold_ms =
      dyn.cold_solves > 0 ? 1e3 * dyn.cold_seconds / dyn.cold_solves : 0.0;

  if (json) {
    // Deterministic by construction: counts and metrics only, no wall
    // times — the same seed reproduces this line bit for bit.
    out.precision(10);
    out << "{\"command\":\"dynamics\",\"clusters\":" << plat.num_clusters()
        << ",\"method\":\"" << to_string(options.sched.method) << "\""
        << ",\"objective\":\"" << to_string(options.sched.objective) << "\""
        << ",\"warm_policy\":\"" << warm << "\""
        << ",\"arrivals\":" << dyn.arrivals
        << ",\"trace_events\":" << trace.size()
        << ",\"platform_events\":" << dyn.platform_events
        << ",\"completed\":" << dyn.completed
        << ",\"aborted\":" << dyn.aborted
        << ",\"rejected\":" << dyn.rejected
        << ",\"reschedules\":" << dyn.reschedules
        << ",\"warm_solves\":" << dyn.warm_solves
        << ",\"repaired_solves\":" << dyn.repaired_solves
        << ",\"cold_solves\":" << dyn.cold_solves
        << ",\"makespan\":" << dyn.makespan
        << ",\"total_work\":" << dyn.total_work
        << ",\"mean_response\":"
        << json_value(dyn.metrics.response, dyn.metrics.response.mean(), 10)
        << ",\"mean_slowdown\":"
        << json_value(dyn.metrics.slowdown, dyn.metrics.slowdown.mean(), 10)
        << ",\"mean_utilization\":" << dyn.metrics.utilization.mean()
        << ",\"baseline_completed\":" << base.completed
        << ",\"baseline_makespan\":" << base.makespan
        << ",\"baseline_mean_response\":"
        << json_value(base.metrics.response, base.metrics.response.mean(), 10)
        << ",\"baseline_mean_slowdown\":"
        << json_value(base.metrics.slowdown, base.metrics.slowdown.mean(), 10)
        << ",\"response_degradation\":" << response_degradation
        << ",\"slowdown_degradation\":" << slowdown_degradation << "}\n";
    return 0;
  }

  out << "dynamics: " << dyn.arrivals << " arrivals vs " << trace.size()
      << " platform events on " << plat.num_clusters() << " clusters, method "
      << to_string(options.sched.method) << ", objective "
      << to_string(options.sched.objective) << ", warm " << warm << "\n";
  TextTable table({"metric", "static", "dynamic"});
  table.add_row({"completed", std::to_string(base.completed),
                 std::to_string(dyn.completed)});
  table.add_row({"aborted / rejected", "0 / 0",
                 std::to_string(dyn.aborted) + " / " + std::to_string(dyn.rejected)});
  table.add_row({"makespan", TextTable::fmt(base.makespan, 2),
                 TextTable::fmt(dyn.makespan, 2)});
  table.add_row({"mean response",
                 table_cell(base.metrics.response, base.metrics.response.mean(), 3),
                 table_cell(dyn.metrics.response, dyn.metrics.response.mean(), 3)});
  table.add_row({"mean slowdown",
                 table_cell(base.metrics.slowdown, base.metrics.slowdown.mean(), 3),
                 table_cell(dyn.metrics.slowdown, dyn.metrics.slowdown.mean(), 3)});
  table.add_row({"mean utilization",
                 TextTable::fmt(base.metrics.utilization.mean(), 4),
                 TextTable::fmt(dyn.metrics.utilization.mean(), 4)});
  table.print(out);
  out << "degradation: response x" << TextTable::fmt(response_degradation, 3)
      << ", slowdown x" << TextTable::fmt(slowdown_degradation, 3) << "\n";
  out << "dynamic reschedules: " << dyn.reschedules << " (" << dyn.warm_solves
      << " warm, of which " << dyn.repaired_solves << " basis-repaired; "
      << dyn.cold_solves << " cold); " << TextTable::fmt(warm_ms, 3)
      << " ms/warm vs " << TextTable::fmt(cold_ms, 3) << " ms/cold; wall "
      << TextTable::fmt(base_wall, 2) << "s static + "
      << TextTable::fmt(dyn_wall, 2) << "s dynamic\n";
  return 0;
}

int cmd_reduce(Args& args, std::ostream& out) {
  const std::string path = args.get_string("graph", "");
  args.reject_unknown();
  std::ifstream in(path);
  require(static_cast<bool>(in), "cannot open graph file '" + path + "'");
  int n = 0, m = 0;
  in >> n >> m;
  require(in && n >= 1 && m >= 0, "graph file: expected 'n m' header");
  core::npc::Graph g(n);
  for (int i = 0; i < m; ++i) {
    int u = 0, v = 0;
    in >> u >> v;
    require(static_cast<bool>(in), "graph file: truncated edge list");
    g.add_edge(u, v);
  }

  const auto mis = core::npc::maximum_independent_set(g);
  const auto inst = core::npc::build_reduction(g);
  out << "# reduction of " << n << "-vertex, " << m << "-edge graph\n"
      << "# maximum independent set size: " << mis.size() << "\n"
      << "# Lemma 1 holds: " << (core::npc::lemma1_holds(g, inst) ? "yes" : "NO")
      << "\n";
  platform::write_platform(inst.platform, out);
  return 0;
}

}  // namespace

int run_cli(std::vector<std::string> args, std::ostream& out, std::ostream& err) {
  try {
    Args parsed(std::move(args));
    const std::string& cmd = parsed.command();
    if (cmd.empty() || cmd == "help") {
      print_usage(cmd.empty() ? err : out);
      return cmd.empty() ? 2 : 0;
    }
    if (cmd == "generate") return cmd_generate(parsed, out);
    if (cmd == "solve") return cmd_solve(parsed, out);
    if (cmd == "simulate") return cmd_simulate(parsed, out);
    if (cmd == "sweep") return cmd_sweep(parsed, out);
    if (cmd == "online") return cmd_online(parsed, out);
    if (cmd == "dynamics") return cmd_dynamics(parsed, out);
    if (cmd == "reduce") return cmd_reduce(parsed, out);
    err << "dls: unknown command '" << cmd << "'\n";
    print_usage(err);
    return 2;
  } catch (const Error& e) {
    err << "dls: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dls::cli
