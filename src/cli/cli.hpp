// The `dls` command-line tool: generate platforms, solve steady-state
// scheduling problems with any heuristic, reconstruct and simulate
// periodic schedules, and build NP-hardness reduction instances.
//
//   dls generate  --clusters K [--connectivity p] [--heterogeneity h]
//                 [--gateway g] [--bw b] [--maxcon m] [--latency ms]
//                 [--speed s] [--transit T] [--seed n] [--connected]
//                 [--out FILE]
//   dls solve     --platform FILE [--method g|lpr|lprg|lprr|lp|exact]
//                 [--objective maxmin|sum] [--payoffs 1,2,...]
//                 [--seed n] [--schedule]
//   dls simulate  --platform FILE [--method ...] [--objective ...]
//                 [--payoffs ...] [--policy paced|maxmin|tcp|window]
//                 [--window units] [--periods n] [--seed n]
//                 [--sim-engine incremental|rescan]
//   dls campaign  --spec FILE [--jobs J] [--shard i/n] [--json|--csv]
//                 [--cases FILE]
//                 (run a declarative .campaign scenario matrix through
//                  the sharded streaming runner; see src/campaign/.
//                  --shard partitions the case matrix deterministically
//                  for multi-machine splits; --cases streams one JSON
//                  line per finished case, in case order)
//   dls sweep     --clusters K --cases N [--jobs J] [--objective ...]
//                 [--seed n] [--lprr]
//                 (parallel replication sweep; a thin adapter that
//                  builds a one-cell campaign spec and runs it)
//   dls online    --platform FILE | <generate options>
//                 [--workload FILE | --arrivals N --arrival-rate R
//                  --arrival-model poisson|onoff --mean-load L
//                  --load-spread s --payoff-spread s]
//                 [--method g|lpr|lprg|lp] [--objective maxmin|sum]
//                 [--warm auto|never|always] [--max-support-change N]
//                 [--rate-model fluid|sim] [--policy ...] [--seed n]
//                 [--save-workload FILE] [--json]
//                 [--reps N --jobs J]
//                 (replay an online arrival stream with adaptive
//                  warm-started rescheduling; see src/online/.
//                  --reps > 1 replays N seed-derived replications
//                  across the thread pool via the campaign runner and
//                  reports aggregate statistics)
//   dls dynamics  --platform FILE | <generate options>
//                 [--workload FILE | <online workload options>]
//                 [--events FILE | --event-rate R --severity S --horizon H]
//                 [--method ...] [--objective ...] [--warm ...] [--seed n]
//                 [--save-events FILE] [--save-workload FILE] [--json]
//                 [--reps N --jobs J]   (aggregated replications, as above)
//                 (replay a workload against a platform-event trace —
//                  link failures, bandwidth drift, cluster churn — and
//                  report the degradation vs the static platform plus the
//                  warm/repaired/cold re-solve split; see src/dynamics/)
//   dls serve     --platform FILE | <generate options>
//                 [--port P] [--port-file FILE] [--max-loads N]
//                 [--objective sum|maxmin|pf] [--warm auto|never|always]
//                 [--replay FILE] [--events FILE] [--speed X]
//                 [--exit-after-replay] [--drain-grace S]
//                 [--trace-file FILE] [--trace-capacity N]
//                 [--load-eps e] [--seed n]
//                 (long-running scheduler daemon around the shared
//                  multi-load LP: HTTP GET /metrics (Prometheus text),
//                  /health, /stats; POST /arrive, /depart, /event; plus
//                  a newline line protocol on the same port. --replay
//                  feeds a recorded .workload at --speed virtual seconds
//                  per wall second (0 = as fast as possible); SIGTERM
//                  drains. See src/serve/)
//   dls reduce    --graph FILE   (edge list: "n m" then m lines "u v")
//   dls help
//
// run_cli is stream-parameterized so tests can drive it end to end.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dls::cli {

/// Executes one command; returns a process exit code. Errors are written
/// to `err`, results to `out`.
int run_cli(std::vector<std::string> args, std::ostream& out, std::ostream& err);

}  // namespace dls::cli
