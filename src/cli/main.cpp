#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return dls::cli::run_cli(std::move(args), std::cout, std::cerr);
}
