#include "campaign/plan.hpp"

#include <algorithm>
#include <utility>

#include "campaign/runner.hpp"

namespace dls::campaign {

namespace {

constexpr std::uint64_t kPlatformSalt = 0x706c6174ULL;  // "plat"
constexpr std::uint64_t kPayoffSalt = 0x7061796fULL;    // "payo"
constexpr std::uint64_t kWorkloadSalt = 0x776f726bULL;  // "work"
constexpr std::uint64_t kEventsSalt = 0x6576656eULL;    // "even"
constexpr std::uint64_t kLoadsSalt = 0x6c6f6164ULL;     // "load"

std::vector<std::string> offline_metric_names(const ScenarioSpec& spec) {
  std::vector<std::string> names{"ok"};
  for (const Method m : {Method::G, Method::Lpr, Method::Lprg, Method::Lprr}) {
    if (has_method(spec, m))
      names.push_back(std::string("ratio_") + to_string(m));
  }
  if (has_method(spec, Method::G) && has_method(spec, Method::Lprg))
    names.push_back("lprg_over_g");
  names.push_back("lp_bound");
  return names;
}

/// Deterministic only (no wall times): loads reports must stay
/// bit-identical across --jobs and --shard splits.
std::vector<std::string> loads_metric_names() {
  return {"ok",   "objective", "sum_throughput", "min_weighted",
          "jain", "lp_solves", "lp_iterations"};
}

std::vector<std::string> stream_metric_names() {
  return {"ok",           "completed",      "aborted",
          "rejected",     "queued_arrivals", "reschedules",
          "warm_solves",  "repaired_solves", "cold_solves",
          "platform_events", "makespan",     "total_work",
          "mean_response", "mean_wait",      "mean_slowdown",
          "mean_utilization", "mean_fairness", "peak_active",
          "peak_queued"};
}

}  // namespace

bool has_method(const ScenarioSpec& spec, Method m) {
  return std::find(spec.methods.begin(), spec.methods.end(), m) !=
         spec.methods.end();
}

std::uint64_t mix_seed(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t platform_stream_seed(const ScenarioSpec& spec, int cell, int rep) {
  return mix_seed(mix_seed(mix_seed(spec.seed, kPlatformSalt), cell), rep);
}

std::uint64_t payoff_stream_seed(const ScenarioSpec& spec, int cell, int rep) {
  return mix_seed(platform_stream_seed(spec, cell, rep), kPayoffSalt);
}

std::uint64_t workload_stream_seed(const ScenarioSpec& spec, int rep) {
  return mix_seed(mix_seed(spec.seed, kWorkloadSalt), rep);
}

std::uint64_t events_stream_seed(const ScenarioSpec& spec, int cell, int scen,
                                 int rep) {
  return mix_seed(
      mix_seed(mix_seed(mix_seed(spec.seed, kEventsSalt), cell), scen), rep);
}

std::uint64_t loads_stream_seed(const ScenarioSpec& spec, int cell, int rep) {
  return mix_seed(mix_seed(mix_seed(spec.seed, kLoadsSalt), cell), rep);
}

std::uint64_t spec_fingerprint(const ScenarioSpec& spec) {
  const std::string text = to_text(spec);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<CaseDef> expand_cases(const ScenarioSpec& spec,
                                  CampaignReport& report) {
  const std::vector<std::string> offline_names = offline_metric_names(spec);
  const std::vector<std::string> stream_names = stream_metric_names();
  std::vector<CaseDef> defs;

  const auto add_group = [&](const CaseDef& proto, bool offline,
                             const std::vector<std::string>& names) {
    GroupAggregate g;
    g.platform = spec.platforms[proto.cell].label;
    g.scenario = spec.scenarios[proto.scen].label;
    g.objective = axis_name(spec.objectives[proto.objective]);
    g.offline = offline;
    g.method = offline ? "*" : to_string(spec.methods[proto.method]);
    g.warm = offline ? "*" : to_string(spec.warm[proto.warm]);
    g.exhaust = offline ? to_string(spec.exhaust[proto.exhaust]) : "*";
    for (const std::string& name : names)
      g.metrics.push_back({name, {}, P2Quantile(0.5), P2Quantile(0.95)});
    report.groups.push_back(std::move(g));
    return report.groups.size() - 1;
  };

  for (int cell = 0; cell < static_cast<int>(spec.platforms.size()); ++cell) {
    for (int scen = 0; scen < static_cast<int>(spec.scenarios.size()); ++scen) {
      // A loads cell carries its own multi-load objective and ignores
      // the method/objective/warm/exhaust axes: one group per (cell,
      // scenario), one joint solve per replication.
      if (spec.scenarios[scen].kind == WorkloadSource::Kind::Loads) {
        CaseDef proto;
        proto.cell = cell;
        proto.scen = scen;
        proto.loads = true;
        GroupAggregate g;
        g.platform = spec.platforms[cell].label;
        g.scenario = spec.scenarios[scen].label;
        g.objective = core::to_string(spec.scenarios[scen].multi_objective);
        g.method = "*";
        g.warm = "*";
        g.exhaust = "*";
        g.loads = true;
        for (const std::string& name : loads_metric_names())
          g.metrics.push_back({name, {}, P2Quantile(0.5), P2Quantile(0.95)});
        report.groups.push_back(std::move(g));
        proto.group = report.groups.size() - 1;
        for (int rep = 0; rep < spec.replications; ++rep) {
          proto.rep = rep;
          defs.push_back(proto);
        }
        continue;
      }
      const bool offline = spec.scenarios[scen].offline();
      for (int obj = 0; obj < static_cast<int>(spec.objectives.size()); ++obj) {
        CaseDef proto;
        proto.cell = cell;
        proto.scen = scen;
        proto.objective = obj;
        proto.offline = offline;
        if (offline) {
          for (int ex = 0; ex < static_cast<int>(spec.exhaust.size()); ++ex) {
            proto.exhaust = ex;
            proto.group = add_group(proto, true, offline_names);
            for (int rep = 0; rep < spec.replications; ++rep) {
              proto.rep = rep;
              defs.push_back(proto);
            }
          }
        } else {
          for (int w = 0; w < static_cast<int>(spec.warm.size()); ++w) {
            for (int m = 0; m < static_cast<int>(spec.methods.size()); ++m) {
              proto.warm = w;
              proto.method = m;
              proto.group = add_group(proto, false, stream_names);
              for (int rep = 0; rep < spec.replications; ++rep) {
                proto.rep = rep;
                defs.push_back(proto);
              }
            }
          }
        }
      }
    }
  }
  return defs;
}

}  // namespace dls::campaign
