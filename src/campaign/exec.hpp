// Case execution, split out of the runner so that any process holding
// the spec can execute an arbitrary subset of the case matrix: the
// in-process runner drains its shard, a distributed worker drains the
// case-index ranges its coordinator leases to it (`src/dist/worker`).
//
// The executor is thread-safe: generated platforms are cached per
// (cell, replication) and shared by every case that differs only in
// scenario/method/objective; `.platform`, `.workload` and `.events`
// files are loaded once; offline cases share one lp::BatchSolver
// (per-thread arenas, one shared column analysis). Per-case values are
// a pure function of (spec, case index) — the bit-identity contract
// every execution surface builds on.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/spec.hpp"
#include "lp/batch.hpp"

namespace dls::platform {
class Platform;
}
namespace dls::online {
struct Workload;
}
namespace dls::dynamics {
class EventTrace;
}

namespace dls::campaign {

/// Caches generated platforms per (cell, replication) and referenced
/// files once per campaign. Lookups race benignly: a missed entry is
/// rebuilt deterministically from its seed, so duplicated work never
/// changes a result.
class ArtifactCache {
public:
  explicit ArtifactCache(const ScenarioSpec& spec) : spec_(&spec) {}

  std::shared_ptr<const platform::Platform> platform_for(int cell, int rep);
  std::shared_ptr<const online::Workload> workload_file(const std::string& path);
  std::shared_ptr<const dynamics::EventTrace> events_file(const std::string& path);

  [[nodiscard]] std::size_t builds() const { return builds_; }
  [[nodiscard]] std::size_t hits() const { return hits_; }

private:
  platform::Platform build(const PlatformSource& src, int cell, int rep) const;

  static constexpr std::size_t kMaxEntries = 1024;

  const ScenarioSpec* spec_;
  std::mutex mutex_;
  std::map<std::pair<int, int>, std::shared_ptr<const platform::Platform>>
      platforms_;
  std::map<std::string, std::shared_ptr<const online::Workload>> workloads_;
  std::map<std::string, std::shared_ptr<const dynamics::EventTrace>> events_;
  std::size_t builds_ = 0;
  std::size_t hits_ = 0;
};

/// Executes cases of one campaign, owning the shared artifacts. `run`
/// may be called concurrently from any number of threads; the returned
/// values align with the case's group metric list (NaN = no honest
/// value, skipped by the aggregates). Throws dls::Error on unreadable
/// referenced files or solver failure — callers decide whether that
/// poisons the run (in-process runner) or just fails one leased range
/// (distributed worker).
class CaseExecutor {
public:
  explicit CaseExecutor(const ScenarioSpec& spec)
      : spec_(&spec), cache_(spec) {}

  [[nodiscard]] std::vector<double> run(const CaseDef& def);

  [[nodiscard]] ArtifactCache& cache() { return cache_; }

private:
  const ScenarioSpec* spec_;
  ArtifactCache cache_;
  lp::BatchSolver lps_;
};

}  // namespace dls::campaign
