// The campaign plan: the deterministic expansion of a ScenarioSpec into
// its flat case matrix, split out of the runner so that every execution
// surface — the in-process runner, the distributed coordinator and the
// worker processes — agrees on case numbering from the spec alone.
//
// Expansion order (load-bearing for sharding and for the distributed
// range protocol): for each platform cell -> scenario -> objective, an
// *offline* scenario (workload none) contributes one aggregation group
// per greedy-exhaust axis value and one case per replication, while a
// *stream* scenario contributes one group per (warm policy, method)
// pair and one case per replication. Case indices number that flat
// order; any contiguous index range therefore means the same cases on
// every machine that parsed the same spec.
//
// Seed streams are derived, not shared: the platform stream is a pure
// function of (spec seed, cell, replication), the workload stream of
// (spec seed, replication) — deliberately scenario-independent, so the
// static/dynamic scenario pairing of the degradation reports replays
// literally the same arrivals — and the event stream of (spec seed,
// cell, scenario, replication).
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/spec.hpp"

namespace dls::campaign {

struct CampaignReport;  // runner.hpp

/// One case of the expanded matrix.
struct CaseDef {
  std::size_t group = 0;  ///< index into CampaignReport::groups
  int cell = 0;
  int scen = 0;
  int objective = 0;
  int warm = 0;     ///< stream cases only
  int method = 0;   ///< stream cases only (index into spec.methods)
  int exhaust = 0;  ///< offline cases only
  int rep = 0;
  bool offline = false;
  bool loads = false;  ///< multi-load cell (`loads` axis); one joint solve
};

/// Expands the spec: fills `report.groups` (empty aggregates, labels and
/// metric names set) and returns the flat case list in expansion order.
/// Pure function of the spec — every process that expands the same spec
/// sees the same groups and the same case numbering.
[[nodiscard]] std::vector<CaseDef> expand_cases(const ScenarioSpec& spec,
                                                CampaignReport& report);

[[nodiscard]] bool has_method(const ScenarioSpec& spec, Method m);

/// Hash-combine with a SplitMix64 finalizer: every derived stream is a
/// pure function of (spec seed, axis indices), independent of sharding,
/// worker count and machine.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t h, std::uint64_t v);

// The derived seed streams (see the header comment for the contract).
[[nodiscard]] std::uint64_t platform_stream_seed(const ScenarioSpec& spec,
                                                 int cell, int rep);
[[nodiscard]] std::uint64_t payoff_stream_seed(const ScenarioSpec& spec,
                                               int cell, int rep);
[[nodiscard]] std::uint64_t workload_stream_seed(const ScenarioSpec& spec,
                                                 int rep);
[[nodiscard]] std::uint64_t events_stream_seed(const ScenarioSpec& spec,
                                               int cell, int scen, int rep);
/// Load-set sampling for `loads` cells: a function of (spec seed, cell,
/// replication) only — deliberately scenario-independent, like the
/// workload stream, so loads cells that differ only in objective sample
/// literally the same load set and the fairness comparison runs on
/// common random numbers.
[[nodiscard]] std::uint64_t loads_stream_seed(const ScenarioSpec& spec,
                                              int cell, int rep);

/// FNV-1a over the canonical spec text: the distributed protocol and the
/// checkpoint format use it to refuse mixing plans from different specs
/// (a worker on spec A must never execute ranges of spec B, and a
/// checkpoint must never seed a resumed run of an edited spec).
[[nodiscard]] std::uint64_t spec_fingerprint(const ScenarioSpec& spec);

}  // namespace dls::campaign
