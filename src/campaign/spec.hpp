// Declarative scenario campaigns: one spec format for every experiment
// surface in the repo.
//
// The paper's §6 evaluation is a grid campaign (Table 1 x heuristics x
// replications), and the extensions multiplied the scenario space: sweep,
// online arrivals and platform-dynamics replays each grew their own
// config structs, flag parsing and replication loops. A ScenarioSpec
// makes the whole matrix a first-class object:
//
//   * platform axis — explicit generator cells, Table-1 grid sampling
//     cells, or `.platform` files;
//   * scenario axis — workloads (none = offline heuristic sweep, batch,
//     Poisson, ON/OFF, or a `.workload` trace), each optionally paired
//     with platform dynamics (a generated churn scenario or an `.events`
//     trace);
//   * method / objective / warm-policy / greedy-exhaust axes;
//   * replications x seed streams (see runner.hpp for the derivation).
//
// Specs are parsed from a line-oriented `.campaign` text format in the
// same style (and with the same line-numbered diagnostics) as `.events`
// and `.workload`:
//
//   dls-campaign 1
//   name example
//   seed 42
//   replications 3
//   objective maxmin sum
//   method g lprg
//   platform generate clusters=6 connectivity=0.5 connected=1
//   platform grid clusters=15
//   workload none
//   workload poisson arrivals=40 rate=1 mean-load=500
//   dynamics scenario event-rate=0.05 severity=0.5 horizon=300
//   loads count=2,8 mix=uniform objective=sum,maxmin weight-spread=0.5
//
// A `loads` line is the multi-load axis (ISSUE 8): its count, mix and
// objective comma lists expand into one scenario cell per combination,
// each solving one joint N-load LP per (platform, replication).
//
// A `dynamics` line attaches to the workload line directly above it; a
// `dynamics` line with no stream workload to attach to is a contradiction
// and is rejected with its line number. write_campaign emits a canonical
// expanded form (one line per platform cell, explicit labels, 17
// significant digits) whose save/load round trip is bit-exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/loads.hpp"
#include "core/problem.hpp"
#include "online/engine.hpp"
#include "online/workload.hpp"
#include "platform/generator.hpp"
#include "sim/simulator.hpp"

namespace dls::campaign {

/// Scheduling methods a campaign can put on its method axis. Lprr is
/// offline-only (it has no online rescheduler); a spec listing lprr
/// together with a stream workload is rejected at parse time.
enum class Method : unsigned char { G, Lpr, Lprg, Lprr, Lp };

[[nodiscard]] const char* to_string(Method method);

/// The lowercase `.campaign` spelling of an objective ("maxmin"/"sum");
/// core::to_string prints the paper's uppercase names.
[[nodiscard]] const char* axis_name(core::Objective objective);

// The `.campaign` spellings of the remaining axis/option enums — the
// single string table shared by the writer, the runner's group labels
// and the CLI adapters.
[[nodiscard]] const char* to_string(online::WarmPolicy warm);
[[nodiscard]] const char* to_string(core::LocalExhaustPolicy exhaust);
[[nodiscard]] const char* to_string(online::RateModel model);
[[nodiscard]] const char* to_string(sim::SharingPolicy policy);

/// One cell of the platform axis.
struct PlatformSource {
  enum class Kind : unsigned char {
    File,      ///< a `.platform` file, loaded once and shared
    Generate,  ///< explicit GeneratorParams (comma lists in the spec
               ///< expand into one cell per combination)
    Grid,      ///< Table-1 grid: the non-K parameters are re-sampled per
               ///< (cell, replication) from the platform seed stream
  };
  Kind kind = Kind::Generate;
  std::string label;                 ///< group label in reports; stable
  std::string path;                  ///< Kind::File
  platform::GeneratorParams params;  ///< Kind::Generate
  int grid_clusters = 10;            ///< Kind::Grid: K
};

/// One value of the scenario axis: a workload and its (optional)
/// platform-dynamics stream.
struct WorkloadSource {
  enum class Kind : unsigned char {
    None,     ///< offline steady-state case (the §6 sweep)
    Batch,    ///< `count` applications all arriving at t = 0
    Poisson,  ///< open-system Poisson arrivals
    OnOff,    ///< bursty ON/OFF arrivals
    Trace,    ///< a `.workload` file
    Loads,    ///< N concurrent loads solved jointly (`loads` axis, ISSUE 8)
  };
  enum class DynKind : unsigned char {
    None,      ///< static platform
    Scenario,  ///< generated failure/drift/churn mix (dynamics::scenario_trace)
    Trace,     ///< an `.events` file
  };

  Kind kind = Kind::None;
  std::string label;
  online::PoissonParams poisson;  ///< Kind::Poisson; .count doubles as the
                                  ///< Kind::Batch application count
  online::OnOffParams onoff;      ///< Kind::OnOff
  std::string path;               ///< Kind::Trace

  DynKind dyn = DynKind::None;
  double event_rate = 0.02;   ///< DynKind::Scenario
  double severity = 0.5;      ///< DynKind::Scenario
  double horizon = 0.0;       ///< DynKind::Scenario; 0 = auto (2 * last
                              ///< arrival + 100, like `dls dynamics`)
  std::string events_path;    ///< DynKind::Trace

  // Kind::Loads: one cell of the `loads` axis. A `loads` spec line is a
  // cross product (count x mix x objective comma lists expand into one
  // scenario per combination). Loads cells ignore the spec's
  // method/objective/warm/exhaust axes — each cell carries its own
  // multi-load objective — and sample the load set per replication from
  // the loads seed stream (plan.hpp).
  int load_count = 4;
  std::string load_mix = "uniform";  ///< uniform | hotspot source placement
  core::MultiObjective multi_objective = core::MultiObjective::WeightedSum;
  double weight_spread = 0.5;  ///< load weights ~ uniform 1 +- spread
  double ratio_spread = 0.0;   ///< data ratios ~ uniform 1 +- spread
  double cap_factor = 0.0;     ///< cap = factor * source speed; 0 = uncapped

  [[nodiscard]] bool offline() const { return kind == Kind::None; }
  /// True for workloads that stream arrivals through the online engine;
  /// platform dynamics can only attach to these (loads cells, like
  /// offline cells, replay no timeline).
  [[nodiscard]] bool stream() const {
    return kind != Kind::None && kind != Kind::Loads;
  }
};

/// The declarative campaign: axes x replications, one seed.
struct ScenarioSpec {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  int replications = 1;

  std::vector<PlatformSource> platforms;       ///< >= 1 after parsing
  std::vector<WorkloadSource> scenarios;       ///< >= 1 after parsing
  std::vector<Method> methods{Method::G, Method::Lpr, Method::Lprg};
  std::vector<core::Objective> objectives{core::Objective::MaxMin};
  std::vector<online::WarmPolicy> warm{online::WarmPolicy::Auto};
  /// Greedy local-exhaust axis; applies to offline cases (stream cases
  /// use the first entry).
  std::vector<core::LocalExhaustPolicy> exhaust{
      core::LocalExhaustPolicy::TakeRemaining};

  double payoff_spread = 0.5;         ///< offline cases (exp::CaseConfig)
  int max_support_change = 4;         ///< online rescheduler invalidation
  online::RateModel rate_model = online::RateModel::Fluid;
  sim::SharingPolicy sim_policy = sim::SharingPolicy::MaxMin;
  /// Per-connection window units for SharingPolicy::BoundedWindow under
  /// rate-model sim (`window` in the spec, `--window` on the CLI).
  double sim_window_units = 50.0;

  /// Throws dls::Error on structurally impossible specs (no platforms,
  /// no scenarios, replications < 1, lprr with a stream workload, empty
  /// axes). The parser runs this too, with line-number context.
  void validate() const;
};

/// Writes the canonical `.campaign` form (labels explicit, platform
/// cells expanded, doubles at 17 significant digits). write -> read ->
/// write is byte-identical.
void write_campaign(const ScenarioSpec& spec, std::ostream& os);

/// Reads a `.campaign` stream; throws dls::Error naming the line and the
/// defect (bad header, unknown keyword or key, malformed number,
/// dynamics without a stream workload, lprr with a stream workload, ...).
[[nodiscard]] ScenarioSpec read_campaign(std::istream& is);

[[nodiscard]] std::string to_text(const ScenarioSpec& spec);
[[nodiscard]] ScenarioSpec from_text(const std::string& text);

/// Reads the first readable candidate path (bench drivers run from the
/// repo root or from build/, so they pass both spellings); throws
/// dls::Error naming every candidate when none opens.
[[nodiscard]] ScenarioSpec read_campaign_file(
    const std::vector<std::string>& candidates);

}  // namespace dls::campaign
