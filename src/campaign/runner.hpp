// The campaign runner: expands a ScenarioSpec into its deterministic
// case matrix and streams the cases through the thread pool.
//
// Expansion order (documented, load-bearing for sharding): for each
// platform cell -> scenario -> objective, an *offline* scenario
// (workload none) contributes one aggregation group per greedy-exhaust
// axis value and one case per replication (a single exp::run_case
// covers every method, sharing the platform and the LP bound), while a
// *stream* scenario contributes one group per (warm policy, method)
// pair and one case per replication (one OnlineEngine replay each).
// Case indices number that flat order, so `--shard i/n` (case index
// mod n == i) partitions any campaign identically on every machine.
//
// Seed streams are derived, not shared: the platform stream is a pure
// function of (spec seed, cell, replication), the workload stream of
// (spec seed, replication) — deliberately scenario-independent, so the
// static/dynamic scenario pairing of the degradation reports replays
// literally the same arrivals — and the event stream of (spec seed,
// cell, scenario, replication). Cases that differ only in
// method/objective/warm replay the same platform, arrivals and
// failures, and a re-sharded campaign reproduces every case bit for
// bit.
//
// Execution is dynamically chunked (support::parallel_for's atomic
// cursor): a worker that lands on an expensive LPRR case only costs
// itself while the pool keeps draining the matrix. Generated platforms
// are cached per (cell, replication) and shared by every case that
// differs only in scenario/method/objective; `.platform`, `.workload`
// and `.events` files are loaded once per campaign.
//
// Aggregation is streaming and order-restoring: per-case records enter
// a bounded reorder buffer and are folded into Welford accumulators and
// P-squared percentile markers *in case order*, so a million-case
// campaign never materializes a result vector and the report is
// bit-identical for any worker count and any shard partition union.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "support/stats.hpp"

namespace dls::campaign {

/// One aggregated statistic of one group.
struct MetricAggregate {
  std::string name;
  Accumulator acc;
  P2Quantile p50{0.5};
  P2Quantile p95{0.95};
};

/// One aggregation group: every axis except the replication. Collapsed
/// axes ("*") mark dimensions the group does not split on — offline
/// groups run every method inside one case, stream groups take the
/// first exhaust value.
struct GroupAggregate {
  std::string platform;   ///< platform cell label
  std::string scenario;   ///< workload/dynamics label
  std::string objective;
  std::string method;     ///< "*" for offline groups
  std::string warm;       ///< "*" for offline groups
  std::string exhaust;    ///< "*" for stream groups
  bool offline = false;
  /// Multi-load (`loads` axis) group: method/warm/exhaust are all "*"
  /// and `objective` is the cell's multi-load objective (sum|maxmin|pf).
  bool loads = false;
  std::vector<MetricAggregate> metrics;
};

/// One finished case, delivered to RunnerOptions::case_sink in case
/// order. `values` aligns with the group's metric list; NaN marks a
/// metric with no honest value for this case (method not run, no
/// completions) and is skipped by the aggregates.
struct CaseRecord {
  std::size_t index = 0;  ///< global case index (pre-shard)
  std::size_t group = 0;  ///< index into CampaignReport::groups
  int rep = 0;
  std::vector<double> values;
};

struct CampaignReport {
  std::string name;
  std::size_t total_cases = 0;     ///< full matrix size
  std::size_t executed_cases = 0;  ///< cases in this shard
  int shard_index = 0;
  int shard_count = 1;
  int replications = 1;
  /// Artifact-cache counters (text report only: cache races under
  /// parallel execution make the split jobs-dependent).
  std::size_t platform_builds = 0;
  std::size_t platform_cache_hits = 0;
  std::vector<GroupAggregate> groups;  ///< expansion order
};

struct RunnerOptions {
  int jobs = 0;       ///< worker threads; 0 = hardware, 1 = inline
  int shard_index = 0;
  int shard_count = 1;
  std::size_t chunk = 1;  ///< dynamic-scheduling chunk (cases per pull)
  /// Streaming per-case sink, called in case order from the reduction
  /// path (one caller at a time). Leave empty to skip.
  std::function<void(const CampaignReport&, const CaseRecord&)> case_sink;
};

/// Expands and runs the campaign. Deterministic: the report (and the
/// case_sink stream) is a pure function of (spec, shard); jobs and
/// chunk only change wall time. Throws dls::Error on invalid specs,
/// unreadable referenced files, or solver failure.
[[nodiscard]] CampaignReport run_campaign(const ScenarioSpec& spec,
                                          const RunnerOptions& options = {});

/// Folds one finished case into its group's aggregates (NaN values are
/// skipped — they mark metrics with no honest value for the case). The
/// single fold path shared by the in-process runner and the distributed
/// coordinator: both apply records in ascending case order, which is
/// what makes reports bit-identical across execution modes, worker
/// counts and resume points.
void fold_case(CampaignReport& report, const CaseRecord& record);

/// Deterministic machine-readable report (no wall times, no cache
/// counters; 17 significant digits) — bit-identical for any jobs count.
void write_report_json(const CampaignReport& report, std::ostream& os);

/// CSV: one row per (group, metric).
void write_report_csv(const CampaignReport& report, std::ostream& os);

/// Human-readable report (includes cache counters and wall time).
void write_report_text(const CampaignReport& report, std::ostream& os,
                       double wall_seconds);

/// One JSONL line for a finished case (the `--cases` stream).
void write_case_json(const CampaignReport& report, const CaseRecord& record,
                     std::ostream& os);

/// Mean of `metric` in the first group whose scenario label matches;
/// 0.0 when absent or empty. The lookup behind the static-vs-dynamic
/// degradation reports (`dls dynamics --reps`, bench_dynamics_churn).
[[nodiscard]] double group_metric_mean(const CampaignReport& report,
                                       const std::string& scenario,
                                       const std::string& metric);

}  // namespace dls::campaign
