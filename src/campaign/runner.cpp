#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "dynamics/events.hpp"
#include "exp/experiment.hpp"
#include "online/engine.hpp"
#include "platform/serialization.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dls::campaign {

namespace {

// ---- seed streams -----------------------------------------------------------

/// Hash-combine with a SplitMix64 finalizer: every derived stream is a
/// pure function of (spec seed, axis indices), independent of sharding
/// and worker count.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

constexpr std::uint64_t kPlatformSalt = 0x706c6174ULL;  // "plat"
constexpr std::uint64_t kPayoffSalt = 0x7061796fULL;    // "payo"
constexpr std::uint64_t kWorkloadSalt = 0x776f726bULL;  // "work"
constexpr std::uint64_t kEventsSalt = 0x6576656eULL;    // "even"

std::uint64_t platform_seed(const ScenarioSpec& spec, int cell, int rep) {
  return mix(mix(mix(spec.seed, kPlatformSalt), cell), rep);
}

// ---- case matrix ------------------------------------------------------------

struct CaseDef {
  std::size_t group = 0;
  int cell = 0;
  int scen = 0;
  int objective = 0;
  int warm = 0;     ///< stream cases only
  int method = 0;   ///< stream cases only (index into spec.methods)
  int exhaust = 0;  ///< offline cases only
  int rep = 0;
  bool offline = false;
};

bool has_method(const ScenarioSpec& spec, Method m) {
  return std::find(spec.methods.begin(), spec.methods.end(), m) !=
         spec.methods.end();
}

std::vector<std::string> offline_metric_names(const ScenarioSpec& spec) {
  std::vector<std::string> names{"ok"};
  for (const Method m : {Method::G, Method::Lpr, Method::Lprg, Method::Lprr}) {
    if (has_method(spec, m))
      names.push_back(std::string("ratio_") + to_string(m));
  }
  if (has_method(spec, Method::G) && has_method(spec, Method::Lprg))
    names.push_back("lprg_over_g");
  names.push_back("lp_bound");
  return names;
}

std::vector<std::string> stream_metric_names() {
  return {"ok",           "completed",      "aborted",
          "rejected",     "queued_arrivals", "reschedules",
          "warm_solves",  "repaired_solves", "cold_solves",
          "platform_events", "makespan",     "total_work",
          "mean_response", "mean_wait",      "mean_slowdown",
          "mean_utilization", "mean_fairness", "peak_active",
          "peak_queued"};
}

online::Method to_online(Method m) {
  switch (m) {
    case Method::G: return online::Method::Greedy;
    case Method::Lpr: return online::Method::Lpr;
    case Method::Lprg: return online::Method::Lprg;
    case Method::Lp: return online::Method::LpBound;
    case Method::Lprr: break;
  }
  throw Error("campaign: method lprr has no online rescheduler");
}

/// Expands the spec into groups (into `report`) and the flat case list.
std::vector<CaseDef> expand(const ScenarioSpec& spec, CampaignReport& report) {
  const std::vector<std::string> offline_names = offline_metric_names(spec);
  const std::vector<std::string> stream_names = stream_metric_names();
  std::vector<CaseDef> defs;

  const auto add_group = [&](const CaseDef& proto, bool offline,
                             const std::vector<std::string>& names) {
    GroupAggregate g;
    g.platform = spec.platforms[proto.cell].label;
    g.scenario = spec.scenarios[proto.scen].label;
    g.objective = axis_name(spec.objectives[proto.objective]);
    g.offline = offline;
    g.method = offline ? "*" : to_string(spec.methods[proto.method]);
    g.warm = offline ? "*" : to_string(spec.warm[proto.warm]);
    g.exhaust = offline ? to_string(spec.exhaust[proto.exhaust]) : "*";
    for (const std::string& name : names) g.metrics.push_back({name, {}, P2Quantile(0.5), P2Quantile(0.95)});
    report.groups.push_back(std::move(g));
    return report.groups.size() - 1;
  };

  for (int cell = 0; cell < static_cast<int>(spec.platforms.size()); ++cell) {
    for (int scen = 0; scen < static_cast<int>(spec.scenarios.size()); ++scen) {
      const bool offline = spec.scenarios[scen].offline();
      for (int obj = 0; obj < static_cast<int>(spec.objectives.size()); ++obj) {
        CaseDef proto;
        proto.cell = cell;
        proto.scen = scen;
        proto.objective = obj;
        proto.offline = offline;
        if (offline) {
          for (int ex = 0; ex < static_cast<int>(spec.exhaust.size()); ++ex) {
            proto.exhaust = ex;
            proto.group = add_group(proto, true, offline_names);
            for (int rep = 0; rep < spec.replications; ++rep) {
              proto.rep = rep;
              defs.push_back(proto);
            }
          }
        } else {
          for (int w = 0; w < static_cast<int>(spec.warm.size()); ++w) {
            for (int m = 0; m < static_cast<int>(spec.methods.size()); ++m) {
              proto.warm = w;
              proto.method = m;
              proto.group = add_group(proto, false, stream_names);
              for (int rep = 0; rep < spec.replications; ++rep) {
                proto.rep = rep;
                defs.push_back(proto);
              }
            }
          }
        }
      }
    }
  }
  return defs;
}

// ---- shared artifacts -------------------------------------------------------

/// Caches generated platforms per (cell, replication) and referenced
/// files once per campaign. Lookups race benignly: a missed entry is
/// rebuilt deterministically from its seed, so duplicated work never
/// changes a result.
class ArtifactCache {
public:
  explicit ArtifactCache(const ScenarioSpec& spec) : spec_(&spec) {}

  std::shared_ptr<const platform::Platform> platform_for(int cell, int rep) {
    const PlatformSource& src = spec_->platforms[cell];
    // A file platform is replication-independent: one entry.
    const int key_rep = src.kind == PlatformSource::Kind::File ? 0 : rep;
    const std::pair<int, int> key{cell, key_rep};
    {
      std::scoped_lock lock(mutex_);
      const auto it = platforms_.find(key);
      if (it != platforms_.end()) {
        ++hits_;
        return it->second;
      }
    }
    auto built = std::make_shared<const platform::Platform>(build(src, cell, key_rep));
    std::scoped_lock lock(mutex_);
    ++builds_;
    // Bounded insert, no eviction: evicting early keys would throw away
    // exactly the platforms the next scenario/objective group revisits
    // first. Campaigns larger than the cap rebuild the overflow
    // deterministically per use instead.
    if (platforms_.size() >= kMaxEntries) return built;
    const auto [it, inserted] = platforms_.emplace(key, std::move(built));
    return it->second;
  }

  std::shared_ptr<const online::Workload> workload_file(const std::string& path) {
    std::scoped_lock lock(mutex_);
    auto& slot = workloads_[path];
    if (!slot) {
      std::ifstream in(path);
      require(static_cast<bool>(in),
              "campaign: cannot open workload file '" + path + "'");
      slot = std::make_shared<const online::Workload>(online::read_workload(in));
    }
    return slot;
  }

  std::shared_ptr<const dynamics::EventTrace> events_file(const std::string& path) {
    std::scoped_lock lock(mutex_);
    auto& slot = events_[path];
    if (!slot) {
      std::ifstream in(path);
      require(static_cast<bool>(in),
              "campaign: cannot open events file '" + path + "'");
      slot = std::make_shared<const dynamics::EventTrace>(dynamics::read_events(in));
    }
    return slot;
  }

  [[nodiscard]] std::size_t builds() const { return builds_; }
  [[nodiscard]] std::size_t hits() const { return hits_; }

private:
  platform::Platform build(const PlatformSource& src, int cell, int rep) const {
    switch (src.kind) {
      case PlatformSource::Kind::File: {
        std::ifstream in(src.path);
        require(static_cast<bool>(in),
                "campaign: cannot open platform file '" + src.path + "'");
        return platform::read_platform(in);
      }
      case PlatformSource::Kind::Generate: {
        Rng rng(platform_seed(*spec_, cell, rep));
        return generate_platform(src.params, rng);
      }
      case PlatformSource::Kind::Grid: {
        Rng rng(platform_seed(*spec_, cell, rep));
        const platform::Table1Grid grid;
        const platform::GeneratorParams params =
            exp::sample_grid_params(grid, src.grid_clusters, rng);
        return generate_platform(params, rng);
      }
    }
    throw Error("campaign: unknown platform kind");
  }

  static constexpr std::size_t kMaxEntries = 1024;

  const ScenarioSpec* spec_;
  std::mutex mutex_;
  std::map<std::pair<int, int>, std::shared_ptr<const platform::Platform>> platforms_;
  std::map<std::string, std::shared_ptr<const online::Workload>> workloads_;
  std::map<std::string, std::shared_ptr<const dynamics::EventTrace>> events_;
  std::size_t builds_ = 0;
  std::size_t hits_ = 0;
};

// ---- case kernels -----------------------------------------------------------

double qnan() { return std::numeric_limits<double>::quiet_NaN(); }

double ratio_or_nan(double method_value, double lp_value) {
  if (!(lp_value > 1e-12) || std::isnan(method_value)) return qnan();
  return method_value / lp_value;
}

std::vector<double> run_offline_case(const ScenarioSpec& spec, const CaseDef& def,
                                     ArtifactCache& cache, lp::BatchSolver& lps) {
  const auto plat = cache.platform_for(def.cell, def.rep);
  exp::CaseConfig config;
  config.objective = spec.objectives[def.objective];
  config.payoff_spread = spec.payoff_spread;
  config.greedy.local_exhaust = spec.exhaust[def.exhaust];
  config.with_lpr = has_method(spec, Method::Lpr);
  config.with_lprg = has_method(spec, Method::Lprg);
  config.with_lprr = has_method(spec, Method::Lprr);
  config.seed = mix(platform_seed(spec, def.cell, def.rep), kPayoffSalt);
  const exp::CaseResult r = exp::run_case(config, *plat, lps);

  // A failed case (any solve non-optimal) contributes only ok=0: its
  // partially-filled method values are unusable per the CaseResult
  // contract and must not leak into the aggregates.
  std::vector<double> values;
  values.push_back(r.ok ? 1.0 : 0.0);
  const auto guarded = [&](double v) { return r.ok ? v : qnan(); };
  if (has_method(spec, Method::G)) values.push_back(guarded(ratio_or_nan(r.g, r.lp)));
  if (has_method(spec, Method::Lpr))
    values.push_back(guarded(ratio_or_nan(r.lpr, r.lp)));
  if (has_method(spec, Method::Lprg))
    values.push_back(guarded(ratio_or_nan(r.lprg, r.lp)));
  if (has_method(spec, Method::Lprr))
    values.push_back(guarded(ratio_or_nan(r.lprr, r.lp)));
  if (has_method(spec, Method::G) && has_method(spec, Method::Lprg))
    values.push_back(
        guarded(r.g > 1e-9 && !std::isnan(r.lprg) ? r.lprg / r.g : qnan()));
  values.push_back(guarded(std::isnan(r.lp) ? qnan() : r.lp));
  return values;
}

std::vector<double> run_stream_case(const ScenarioSpec& spec, const CaseDef& def,
                                    ArtifactCache& cache) {
  const WorkloadSource& scen = spec.scenarios[def.scen];
  const auto plat = cache.platform_for(def.cell, def.rep);
  const int k = plat->num_clusters();

  // Trace workloads stay shared (no per-case copy of the arrivals
  // vector); generated kinds materialize into the local buffer.
  std::shared_ptr<const online::Workload> shared_workload;
  online::Workload generated;
  switch (scen.kind) {
    case WorkloadSource::Kind::Trace:
      shared_workload = cache.workload_file(scen.path);
      break;
    // The workload stream deliberately does NOT depend on the scenario
    // index: scenarios that share workload parameters (the static vs
    // dynamic pairing of the degradation reports) replay literally the
    // same arrivals, and scenarios with different parameters share
    // common random numbers.
    case WorkloadSource::Kind::Batch: {
      Rng rng(mix(mix(spec.seed, kWorkloadSalt), def.rep));
      generated = online::batch_workload(scen.poisson, k, rng);
      break;
    }
    case WorkloadSource::Kind::Poisson: {
      Rng rng(mix(mix(spec.seed, kWorkloadSalt), def.rep));
      generated = online::poisson_workload(scen.poisson, k, rng);
      break;
    }
    case WorkloadSource::Kind::OnOff: {
      Rng rng(mix(mix(spec.seed, kWorkloadSalt), def.rep));
      generated = online::onoff_workload(scen.onoff, k, rng);
      break;
    }
    case WorkloadSource::Kind::None:
      throw Error("campaign: offline scenario reached the stream kernel");
  }
  const online::Workload& workload = shared_workload ? *shared_workload : generated;

  online::OnlineOptions options;
  options.sched.method = to_online(spec.methods[def.method]);
  options.sched.objective = spec.objectives[def.objective];
  options.sched.warm = spec.warm[def.warm];
  options.sched.max_support_change = spec.max_support_change;
  options.sched.greedy.local_exhaust = spec.exhaust.front();
  options.rate_model = spec.rate_model;
  options.sim_policy = spec.sim_policy;
  options.sim_window_units = spec.sim_window_units;

  const online::OnlineEngine engine(*plat, options);
  online::OnlineReport report;
  switch (scen.dyn) {
    case WorkloadSource::DynKind::None:
      report = engine.run(workload);
      break;
    case WorkloadSource::DynKind::Trace:
      report = engine.run(workload, *cache.events_file(scen.events_path));
      break;
    case WorkloadSource::DynKind::Scenario: {
      const double last_arrival =
          workload.arrivals.empty() ? 0.0 : workload.arrivals.back().time;
      const double horizon =
          scen.horizon > 0.0 ? scen.horizon : 2.0 * last_arrival + 100.0;
      Rng rng(mix(mix(mix(mix(spec.seed, kEventsSalt), def.cell), def.scen),
                  def.rep));
      const dynamics::EventTrace trace =
          dynamics::scenario_trace(scen.event_rate, scen.severity, horizon,
                                   *plat, rng);
      report = engine.run(workload, trace);
      break;
    }
  }

  const auto acc_mean = [](const Accumulator& acc) {
    return acc.count() == 0 ? qnan() : acc.mean();
  };
  // Same empty-aggregate honesty for the time-weighted series: a replay
  // that accumulated no weight has no utilization/fairness to report.
  const auto tw_mean = [](const online::TimeWeighted& tw) {
    return tw.total_weight() > 0.0 ? tw.mean() : qnan();
  };
  return {1.0,
          static_cast<double>(report.completed),
          static_cast<double>(report.aborted),
          static_cast<double>(report.rejected),
          static_cast<double>(report.queued_arrivals),
          static_cast<double>(report.reschedules),
          static_cast<double>(report.warm_solves),
          static_cast<double>(report.repaired_solves),
          static_cast<double>(report.cold_solves),
          static_cast<double>(report.platform_events),
          report.makespan,
          report.total_work,
          acc_mean(report.metrics.response),
          acc_mean(report.metrics.wait),
          acc_mean(report.metrics.slowdown),
          tw_mean(report.metrics.utilization),
          tw_mean(report.metrics.fairness),
          static_cast<double>(report.peak_active),
          static_cast<double>(report.peak_queued)};
}

// ---- streaming ordered reduction --------------------------------------------

/// Restores case order between the dynamically-scheduled workers and
/// the aggregates: records wait in a bounded buffer until every earlier
/// case has been folded. The worker owning the next expected position is
/// never blocked, so the buffer cannot deadlock; everyone else blocks
/// once `capacity` records are pending, which bounds memory at
/// O(workers * chunk) instead of O(cases).
class OrderedReducer {
public:
  OrderedReducer(CampaignReport& report, const RunnerOptions& options,
                 std::size_t capacity)
      : report_(&report), options_(&options),
        capacity_(std::max<std::size_t>(capacity, 1)) {}

  void push(std::size_t pos, CaseRecord record) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return pos == next_ || pending_.size() < capacity_; });
    if (pos != next_) {
      pending_.emplace(pos, std::move(record));
      return;
    }
    apply(record);
    ++next_;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first == next_) {
      apply(it->second);
      ++next_;
      it = pending_.erase(it);
    }
    cv_.notify_all();
  }

  /// First exception a case_sink threw; rethrown by run_campaign. The
  /// reduction itself keeps draining so no worker deadlocks on a
  /// next-position that would otherwise never arrive.
  [[nodiscard]] std::exception_ptr sink_error() const { return sink_error_; }

private:
  void apply(const CaseRecord& record) {
    GroupAggregate& group = report_->groups[record.group];
    for (std::size_t i = 0; i < record.values.size(); ++i) {
      const double v = record.values[i];
      if (std::isnan(v)) continue;
      MetricAggregate& metric = group.metrics[i];
      metric.acc.add(v);
      metric.p50.add(v);
      metric.p95.add(v);
    }
    if (options_->case_sink && !sink_error_ && !record.values.empty()) {
      try {
        options_->case_sink(*report_, record);
      } catch (...) {
        sink_error_ = std::current_exception();
      }
    }
  }

  CampaignReport* report_;
  const RunnerOptions* options_;
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t next_ = 0;
  std::map<std::size_t, CaseRecord> pending_;
  std::exception_ptr sink_error_;
};

}  // namespace

CampaignReport run_campaign(const ScenarioSpec& spec, const RunnerOptions& options) {
  spec.validate();
  require(options.jobs >= 0, "run_campaign: negative job count");
  require(options.shard_count >= 1 && options.shard_index >= 0 &&
              options.shard_index < options.shard_count,
          "run_campaign: shard index out of range");
  require(options.chunk >= 1, "run_campaign: chunk must be >= 1");

  CampaignReport report;
  report.name = spec.name;
  report.shard_index = options.shard_index;
  report.shard_count = options.shard_count;
  report.replications = spec.replications;
  const std::vector<CaseDef> defs = expand(spec, report);
  report.total_cases = defs.size();

  // Shard partition: case index mod shard_count.
  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (i % static_cast<std::size_t>(options.shard_count) ==
        static_cast<std::size_t>(options.shard_index))
      mine.push_back(i);
  }
  report.executed_cases = mine.size();

  ArtifactCache cache(spec);
  // One batch for the whole campaign: offline cases on any worker share
  // the column-structure cache; each worker keeps its own solve arena.
  lp::BatchSolver lps;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const std::size_t workers =
      options.jobs == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                        : static_cast<std::size_t>(options.jobs);
  OrderedReducer reducer(report, options,
                         std::max<std::size_t>(64, 4 * workers * options.chunk));

  const auto body = [&](std::size_t pos) {
    const CaseDef& def = defs[mine[pos]];
    CaseRecord record;
    record.index = mine[pos];
    record.group = def.group;
    record.rep = def.rep;
    try {
      record.values = def.offline ? run_offline_case(spec, def, cache, lps)
                                  : run_stream_case(spec, def, cache);
    } catch (...) {
      {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Tombstone: keeps the ordered reduction flowing so no worker
      // blocks forever waiting on this position. Empty values are
      // skipped by apply().
      record.values.clear();
    }
    reducer.push(pos, std::move(record));
  };

  if (options.jobs == 1 || mine.size() <= 1) {
    for (std::size_t pos = 0; pos < mine.size(); ++pos) body(pos);
  } else {
    ThreadPool pool(workers);
    parallel_for(pool, 0, mine.size(), body, options.chunk);
  }
  if (first_error) std::rethrow_exception(first_error);
  if (reducer.sink_error()) std::rethrow_exception(reducer.sink_error());

  report.platform_builds = cache.builds();
  report.platform_cache_hits = cache.hits();
  return report;
}

// ---- report emission --------------------------------------------------------

namespace {

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// A metric statistic, or `null` for the aggregate of nothing.
std::string json_stat(const MetricAggregate& m, double value) {
  if (m.acc.count() == 0) return "null";
  return fmt17(value);
}

/// RFC-4180-style quoting: generated platform labels legitimately
/// contain commas ("gen:clusters=4,connectivity=0.4").
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_report_json(const CampaignReport& report, std::ostream& os) {
  os << "{\"command\":\"campaign\",\"name\":\"" << json_escape(report.name)
     << "\",\"shard\":\"" << report.shard_index << "/" << report.shard_count
     << "\",\"cases\":" << report.total_cases
     << ",\"executed\":" << report.executed_cases
     << ",\"replications\":" << report.replications << ",\"groups\":[";
  for (std::size_t g = 0; g < report.groups.size(); ++g) {
    const GroupAggregate& group = report.groups[g];
    if (g > 0) os << ',';
    os << "{\"platform\":\"" << json_escape(group.platform)
       << "\",\"scenario\":\"" << json_escape(group.scenario)
       << "\",\"objective\":\"" << group.objective
       << "\",\"method\":\"" << group.method
       << "\",\"warm\":\"" << group.warm
       << "\",\"exhaust\":\"" << group.exhaust
       << "\",\"kind\":\"" << (group.offline ? "offline" : "stream")
       << "\",\"metrics\":[";
    for (std::size_t i = 0; i < group.metrics.size(); ++i) {
      const MetricAggregate& m = group.metrics[i];
      if (i > 0) os << ',';
      os << "{\"name\":\"" << m.name << "\",\"count\":" << m.acc.count()
         << ",\"mean\":" << json_stat(m, m.acc.mean())
         << ",\"stddev\":" << json_stat(m, m.acc.stddev())
         << ",\"min\":" << json_stat(m, m.acc.min())
         << ",\"max\":" << json_stat(m, m.acc.max())
         << ",\"p50\":" << json_stat(m, m.p50.value())
         << ",\"p95\":" << json_stat(m, m.p95.value()) << "}";
    }
    os << "]}";
  }
  os << "]}\n";
}

void write_report_csv(const CampaignReport& report, std::ostream& os) {
  os << "platform,scenario,objective,method,warm,exhaust,metric,count,mean,"
        "stddev,min,max,p50,p95\n";
  for (const GroupAggregate& group : report.groups) {
    for (const MetricAggregate& m : group.metrics) {
      os << csv_field(group.platform) << ',' << csv_field(group.scenario) << ','
         << group.objective << ',' << group.method << ',' << group.warm << ','
         << group.exhaust << ',' << csv_field(m.name) << ',' << m.acc.count();
      const auto cell = [&](double v) {
        os << ',';
        if (m.acc.count() > 0) os << fmt17(v);
      };
      cell(m.acc.mean());
      cell(m.acc.stddev());
      cell(m.acc.min());
      cell(m.acc.max());
      cell(m.p50.value());
      cell(m.p95.value());
      os << '\n';
    }
  }
}

void write_report_text(const CampaignReport& report, std::ostream& os,
                       double wall_seconds) {
  os << "campaign '" << report.name << "': " << report.executed_cases << "/"
     << report.total_cases << " cases (shard " << report.shard_index << "/"
     << report.shard_count << ", " << report.replications
     << " replications), " << report.groups.size() << " groups, "
     << report.platform_builds << " platform builds + "
     << report.platform_cache_hits << " cache hits, "
     << TextTable::fmt(wall_seconds, 2) << "s\n";
  for (const GroupAggregate& group : report.groups) {
    os << "[platform=" << group.platform << " scenario=" << group.scenario
       << " objective=" << group.objective << " method=" << group.method
       << " warm=" << group.warm << " exhaust=" << group.exhaust << "]\n";
    TextTable table({"metric", "count", "mean", "stddev", "min", "max", "p50",
                     "p95"});
    for (const MetricAggregate& m : group.metrics) {
      table.add_row({m.name, std::to_string(m.acc.count()),
                     table_cell(m.acc, m.acc.mean(), 4),
                     table_cell(m.acc, m.acc.stddev(), 4),
                     table_cell(m.acc, m.acc.min(), 4),
                     table_cell(m.acc, m.acc.max(), 4),
                     table_cell(m.acc, m.p50.value(), 4),
                     table_cell(m.acc, m.p95.value(), 4)});
    }
    table.print(os);
  }
}

double group_metric_mean(const CampaignReport& report,
                         const std::string& scenario,
                         const std::string& metric) {
  for (const GroupAggregate& group : report.groups) {
    if (group.scenario != scenario) continue;
    for (const MetricAggregate& m : group.metrics)
      if (m.name == metric) return m.acc.mean();
  }
  return 0.0;
}

void write_case_json(const CampaignReport& report, const CaseRecord& record,
                     std::ostream& os) {
  const GroupAggregate& group = report.groups[record.group];
  os << "{\"case\":" << record.index << ",\"platform\":\""
     << json_escape(group.platform) << "\",\"scenario\":\""
     << json_escape(group.scenario) << "\",\"objective\":\"" << group.objective
     << "\",\"method\":\"" << group.method << "\",\"warm\":\"" << group.warm
     << "\",\"exhaust\":\"" << group.exhaust << "\",\"rep\":" << record.rep
     << ",\"metrics\":{";
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << group.metrics[i].name << "\":";
    if (std::isnan(record.values[i]))
      os << "null";
    else
      os << fmt17(record.values[i]);
  }
  os << "}}\n";
}

}  // namespace dls::campaign
