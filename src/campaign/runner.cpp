#include "campaign/runner.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "campaign/exec.hpp"
#include "campaign/plan.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dls::campaign {

namespace {

// ---- streaming ordered reduction --------------------------------------------

/// Restores case order between the dynamically-scheduled workers and
/// the aggregates: records wait in a bounded buffer until every earlier
/// case has been folded. The worker owning the next expected position is
/// never blocked, so the buffer cannot deadlock; everyone else blocks
/// once `capacity` records are pending, which bounds memory at
/// O(workers * chunk) instead of O(cases).
class OrderedReducer {
public:
  OrderedReducer(CampaignReport& report, const RunnerOptions& options,
                 std::size_t capacity)
      : report_(&report), options_(&options),
        capacity_(std::max<std::size_t>(capacity, 1)) {}

  void push(std::size_t pos, CaseRecord record) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return pos == next_ || pending_.size() < capacity_; });
    if (pos != next_) {
      pending_.emplace(pos, std::move(record));
      return;
    }
    apply(record);
    ++next_;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first == next_) {
      apply(it->second);
      ++next_;
      it = pending_.erase(it);
    }
    cv_.notify_all();
  }

  /// First exception a case_sink threw; rethrown by run_campaign. The
  /// reduction itself keeps draining so no worker deadlocks on a
  /// next-position that would otherwise never arrive.
  [[nodiscard]] std::exception_ptr sink_error() const { return sink_error_; }

private:
  void apply(const CaseRecord& record) {
    fold_case(*report_, record);
    if (options_->case_sink && !sink_error_ && !record.values.empty()) {
      try {
        options_->case_sink(*report_, record);
      } catch (...) {
        sink_error_ = std::current_exception();
      }
    }
  }

  CampaignReport* report_;
  const RunnerOptions* options_;
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t next_ = 0;
  std::map<std::size_t, CaseRecord> pending_;
  std::exception_ptr sink_error_;
};

}  // namespace

void fold_case(CampaignReport& report, const CaseRecord& record) {
  GroupAggregate& group = report.groups[record.group];
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    const double v = record.values[i];
    if (std::isnan(v)) continue;
    MetricAggregate& metric = group.metrics[i];
    metric.acc.add(v);
    metric.p50.add(v);
    metric.p95.add(v);
  }
}

CampaignReport run_campaign(const ScenarioSpec& spec, const RunnerOptions& options) {
  spec.validate();
  require(options.jobs >= 0, "run_campaign: negative job count");
  require(options.shard_count >= 1 && options.shard_index >= 0 &&
              options.shard_index < options.shard_count,
          "run_campaign: shard index out of range");
  require(options.chunk >= 1, "run_campaign: chunk must be >= 1");

  CampaignReport report;
  report.name = spec.name;
  report.shard_index = options.shard_index;
  report.shard_count = options.shard_count;
  report.replications = spec.replications;
  const std::vector<CaseDef> defs = expand_cases(spec, report);
  report.total_cases = defs.size();

  // Shard partition: case index mod shard_count.
  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (i % static_cast<std::size_t>(options.shard_count) ==
        static_cast<std::size_t>(options.shard_index))
      mine.push_back(i);
  }
  report.executed_cases = mine.size();

  // One executor for the whole campaign: offline cases on any worker
  // share the artifact cache and the batch solver's column-structure
  // cache; each worker keeps its own solve arena.
  CaseExecutor exec(spec);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const std::size_t workers =
      options.jobs == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                        : static_cast<std::size_t>(options.jobs);
  OrderedReducer reducer(report, options,
                         std::max<std::size_t>(64, 4 * workers * options.chunk));

  const auto body = [&](std::size_t pos) {
    const CaseDef& def = defs[mine[pos]];
    CaseRecord record;
    record.index = mine[pos];
    record.group = def.group;
    record.rep = def.rep;
    try {
      record.values = exec.run(def);
    } catch (...) {
      {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Tombstone: keeps the ordered reduction flowing so no worker
      // blocks forever waiting on this position. Empty values are
      // skipped by apply().
      record.values.clear();
    }
    reducer.push(pos, std::move(record));
  };

  if (options.jobs == 1 || mine.size() <= 1) {
    for (std::size_t pos = 0; pos < mine.size(); ++pos) body(pos);
  } else {
    ThreadPool pool(workers);
    parallel_for(pool, 0, mine.size(), body, options.chunk);
  }
  if (first_error) std::rethrow_exception(first_error);
  if (reducer.sink_error()) std::rethrow_exception(reducer.sink_error());

  report.platform_builds = exec.cache().builds();
  report.platform_cache_hits = exec.cache().hits();
  return report;
}

// ---- report emission --------------------------------------------------------

namespace {

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// A metric statistic, or `null` for the aggregate of nothing.
std::string json_stat(const MetricAggregate& m, double value) {
  if (m.acc.count() == 0) return "null";
  return fmt17(value);
}

/// RFC-4180-style quoting: generated platform labels legitimately
/// contain commas ("gen:clusters=4,connectivity=0.4").
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_report_json(const CampaignReport& report, std::ostream& os) {
  os << "{\"command\":\"campaign\",\"name\":\"" << json_escape(report.name)
     << "\",\"shard\":\"" << report.shard_index << "/" << report.shard_count
     << "\",\"cases\":" << report.total_cases
     << ",\"executed\":" << report.executed_cases
     << ",\"replications\":" << report.replications << ",\"groups\":[";
  for (std::size_t g = 0; g < report.groups.size(); ++g) {
    const GroupAggregate& group = report.groups[g];
    if (g > 0) os << ',';
    os << "{\"platform\":\"" << json_escape(group.platform)
       << "\",\"scenario\":\"" << json_escape(group.scenario)
       << "\",\"objective\":\"" << group.objective
       << "\",\"method\":\"" << group.method
       << "\",\"warm\":\"" << group.warm
       << "\",\"exhaust\":\"" << group.exhaust
       << "\",\"kind\":\""
       << (group.loads ? "loads" : group.offline ? "offline" : "stream")
       << "\",\"metrics\":[";
    for (std::size_t i = 0; i < group.metrics.size(); ++i) {
      const MetricAggregate& m = group.metrics[i];
      if (i > 0) os << ',';
      os << "{\"name\":\"" << m.name << "\",\"count\":" << m.acc.count()
         << ",\"mean\":" << json_stat(m, m.acc.mean())
         << ",\"stddev\":" << json_stat(m, m.acc.stddev())
         << ",\"min\":" << json_stat(m, m.acc.min())
         << ",\"max\":" << json_stat(m, m.acc.max())
         << ",\"p50\":" << json_stat(m, m.p50.value())
         << ",\"p95\":" << json_stat(m, m.p95.value()) << "}";
    }
    os << "]}";
  }
  os << "]}\n";
}

void write_report_csv(const CampaignReport& report, std::ostream& os) {
  os << "platform,scenario,objective,method,warm,exhaust,metric,count,mean,"
        "stddev,min,max,p50,p95\n";
  for (const GroupAggregate& group : report.groups) {
    for (const MetricAggregate& m : group.metrics) {
      os << csv_field(group.platform) << ',' << csv_field(group.scenario) << ','
         << group.objective << ',' << group.method << ',' << group.warm << ','
         << group.exhaust << ',' << csv_field(m.name) << ',' << m.acc.count();
      const auto cell = [&](double v) {
        os << ',';
        if (m.acc.count() > 0) os << fmt17(v);
      };
      cell(m.acc.mean());
      cell(m.acc.stddev());
      cell(m.acc.min());
      cell(m.acc.max());
      cell(m.p50.value());
      cell(m.p95.value());
      os << '\n';
    }
  }
}

void write_report_text(const CampaignReport& report, std::ostream& os,
                       double wall_seconds) {
  os << "campaign '" << report.name << "': " << report.executed_cases << "/"
     << report.total_cases << " cases (shard " << report.shard_index << "/"
     << report.shard_count << ", " << report.replications
     << " replications), " << report.groups.size() << " groups, "
     << report.platform_builds << " platform builds + "
     << report.platform_cache_hits << " cache hits, "
     << TextTable::fmt(wall_seconds, 2) << "s\n";
  for (const GroupAggregate& group : report.groups) {
    os << "[platform=" << group.platform << " scenario=" << group.scenario
       << " objective=" << group.objective << " method=" << group.method
       << " warm=" << group.warm << " exhaust=" << group.exhaust << "]\n";
    TextTable table({"metric", "count", "mean", "stddev", "min", "max", "p50",
                     "p95"});
    for (const MetricAggregate& m : group.metrics) {
      table.add_row({m.name, std::to_string(m.acc.count()),
                     table_cell(m.acc, m.acc.mean(), 4),
                     table_cell(m.acc, m.acc.stddev(), 4),
                     table_cell(m.acc, m.acc.min(), 4),
                     table_cell(m.acc, m.acc.max(), 4),
                     table_cell(m.acc, m.p50.value(), 4),
                     table_cell(m.acc, m.p95.value(), 4)});
    }
    table.print(os);
  }
}

double group_metric_mean(const CampaignReport& report,
                         const std::string& scenario,
                         const std::string& metric) {
  for (const GroupAggregate& group : report.groups) {
    if (group.scenario != scenario) continue;
    for (const MetricAggregate& m : group.metrics)
      if (m.name == metric) return m.acc.mean();
  }
  return 0.0;
}

void write_case_json(const CampaignReport& report, const CaseRecord& record,
                     std::ostream& os) {
  const GroupAggregate& group = report.groups[record.group];
  os << "{\"case\":" << record.index << ",\"platform\":\""
     << json_escape(group.platform) << "\",\"scenario\":\""
     << json_escape(group.scenario) << "\",\"objective\":\"" << group.objective
     << "\",\"method\":\"" << group.method << "\",\"warm\":\"" << group.warm
     << "\",\"exhaust\":\"" << group.exhaust << "\",\"rep\":" << record.rep
     << ",\"metrics\":{";
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << group.metrics[i].name << "\":";
    if (std::isnan(record.values[i]))
      os << "null";
    else
      os << fmt17(record.values[i]);
  }
  os << "}}\n";
}

}  // namespace dls::campaign
