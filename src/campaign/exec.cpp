#include "campaign/exec.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "core/multi_solve.hpp"
#include "dynamics/events.hpp"
#include "exp/experiment.hpp"
#include "online/engine.hpp"
#include "platform/serialization.hpp"
#include "support/error.hpp"

namespace dls::campaign {

// ---- shared artifacts -------------------------------------------------------

std::shared_ptr<const platform::Platform> ArtifactCache::platform_for(int cell,
                                                                      int rep) {
  const PlatformSource& src = spec_->platforms[cell];
  // A file platform is replication-independent: one entry.
  const int key_rep = src.kind == PlatformSource::Kind::File ? 0 : rep;
  const std::pair<int, int> key{cell, key_rep};
  {
    std::scoped_lock lock(mutex_);
    const auto it = platforms_.find(key);
    if (it != platforms_.end()) {
      ++hits_;
      return it->second;
    }
  }
  auto built =
      std::make_shared<const platform::Platform>(build(src, cell, key_rep));
  std::scoped_lock lock(mutex_);
  ++builds_;
  // Bounded insert, no eviction: evicting early keys would throw away
  // exactly the platforms the next scenario/objective group revisits
  // first. Campaigns larger than the cap rebuild the overflow
  // deterministically per use instead.
  if (platforms_.size() >= kMaxEntries) return built;
  const auto [it, inserted] = platforms_.emplace(key, std::move(built));
  return it->second;
}

std::shared_ptr<const online::Workload> ArtifactCache::workload_file(
    const std::string& path) {
  std::scoped_lock lock(mutex_);
  auto& slot = workloads_[path];
  if (!slot) {
    std::ifstream in(path);
    require(static_cast<bool>(in),
            "campaign: cannot open workload file '" + path + "'");
    slot = std::make_shared<const online::Workload>(online::read_workload(in));
  }
  return slot;
}

std::shared_ptr<const dynamics::EventTrace> ArtifactCache::events_file(
    const std::string& path) {
  std::scoped_lock lock(mutex_);
  auto& slot = events_[path];
  if (!slot) {
    std::ifstream in(path);
    require(static_cast<bool>(in),
            "campaign: cannot open events file '" + path + "'");
    slot = std::make_shared<const dynamics::EventTrace>(dynamics::read_events(in));
  }
  return slot;
}

platform::Platform ArtifactCache::build(const PlatformSource& src, int cell,
                                        int rep) const {
  switch (src.kind) {
    case PlatformSource::Kind::File: {
      std::ifstream in(src.path);
      require(static_cast<bool>(in),
              "campaign: cannot open platform file '" + src.path + "'");
      return platform::read_platform(in);
    }
    case PlatformSource::Kind::Generate: {
      Rng rng(platform_stream_seed(*spec_, cell, rep));
      return generate_platform(src.params, rng);
    }
    case PlatformSource::Kind::Grid: {
      Rng rng(platform_stream_seed(*spec_, cell, rep));
      const platform::Table1Grid grid;
      const platform::GeneratorParams params =
          exp::sample_grid_params(grid, src.grid_clusters, rng);
      return generate_platform(params, rng);
    }
  }
  throw Error("campaign: unknown platform kind");
}

// ---- case kernels -----------------------------------------------------------

namespace {

double qnan() { return std::numeric_limits<double>::quiet_NaN(); }

double ratio_or_nan(double method_value, double lp_value) {
  if (!(lp_value > 1e-12) || std::isnan(method_value)) return qnan();
  return method_value / lp_value;
}

online::Method to_online(Method m) {
  switch (m) {
    case Method::G: return online::Method::Greedy;
    case Method::Lpr: return online::Method::Lpr;
    case Method::Lprg: return online::Method::Lprg;
    case Method::Lp: return online::Method::LpBound;
    case Method::Lprr: break;
  }
  throw Error("campaign: method lprr has no online rescheduler");
}

std::vector<double> run_offline_case(const ScenarioSpec& spec, const CaseDef& def,
                                     ArtifactCache& cache, lp::BatchSolver& lps) {
  const auto plat = cache.platform_for(def.cell, def.rep);
  exp::CaseConfig config;
  config.objective = spec.objectives[def.objective];
  config.payoff_spread = spec.payoff_spread;
  config.greedy.local_exhaust = spec.exhaust[def.exhaust];
  config.with_lpr = has_method(spec, Method::Lpr);
  config.with_lprg = has_method(spec, Method::Lprg);
  config.with_lprr = has_method(spec, Method::Lprr);
  config.seed = payoff_stream_seed(spec, def.cell, def.rep);
  const exp::CaseResult r = exp::run_case(config, *plat, lps);

  // A failed case (any solve non-optimal) contributes only ok=0: its
  // partially-filled method values are unusable per the CaseResult
  // contract and must not leak into the aggregates.
  std::vector<double> values;
  values.push_back(r.ok ? 1.0 : 0.0);
  const auto guarded = [&](double v) { return r.ok ? v : qnan(); };
  if (has_method(spec, Method::G)) values.push_back(guarded(ratio_or_nan(r.g, r.lp)));
  if (has_method(spec, Method::Lpr))
    values.push_back(guarded(ratio_or_nan(r.lpr, r.lp)));
  if (has_method(spec, Method::Lprg))
    values.push_back(guarded(ratio_or_nan(r.lprg, r.lp)));
  if (has_method(spec, Method::Lprr))
    values.push_back(guarded(ratio_or_nan(r.lprr, r.lp)));
  if (has_method(spec, Method::G) && has_method(spec, Method::Lprg))
    values.push_back(
        guarded(r.g > 1e-9 && !std::isnan(r.lprg) ? r.lprg / r.g : qnan()));
  values.push_back(guarded(std::isnan(r.lp) ? qnan() : r.lp));
  return values;
}

/// One `loads` cell case: sample N loads from the loads seed stream and
/// solve the joint LP. Every metric is deterministic (no wall times) so
/// loads reports stay bit-identical for any --jobs/--shard split.
std::vector<double> run_loads_case(const ScenarioSpec& spec, const CaseDef& def,
                                   ArtifactCache& cache) {
  const WorkloadSource& scen = spec.scenarios[def.scen];
  const auto plat = cache.platform_for(def.cell, def.rep);
  const int k = plat->num_clusters();

  // Scenario-independent stream (common random numbers): loads cells
  // that differ only in objective solve literally the same load set.
  Rng rng(loads_stream_seed(spec, def.cell, def.rep));
  core::LoadSet set;
  set.loads.reserve(scen.load_count);
  const int hot = std::max(1, k / 4);  // hotspot: sources in the first K/4
  for (int j = 0; j < scen.load_count; ++j) {
    core::LoadSpec load;
    load.source = static_cast<int>(
        scen.load_mix == "hotspot" ? rng.uniform_int(0, hot - 1)
                                   : rng.uniform_int(0, k - 1));
    load.weight = 1.0 + scen.weight_spread * rng.uniform(-1.0, 1.0);
    load.data_ratio = 1.0 + scen.ratio_spread * rng.uniform(-1.0, 1.0);
    if (scen.cap_factor > 0.0)
      load.cap = scen.cap_factor * plat->cluster(load.source).speed;
    set.loads.push_back(std::move(load));
  }

  core::MultiLoadSolveOptions options;
  options.objective = scen.multi_objective;
  const core::MultiLoadSolution sol = core::solve_loads(*plat, set, options);
  if (sol.status != lp::SolveStatus::Optimal)
    return {0.0, qnan(), qnan(), qnan(), qnan(), qnan(), qnan()};

  double sum_throughput = 0.0;
  double min_weighted = std::numeric_limits<double>::infinity();
  for (int j = 0; j < set.size(); ++j) {
    sum_throughput += sol.throughput[j];
    min_weighted =
        std::min(min_weighted, set.loads[j].weight * sol.throughput[j]);
  }
  return {1.0,
          sol.objective,
          sum_throughput,
          min_weighted,
          online::jain_index(sol.throughput),
          static_cast<double>(sol.lp_solves),
          static_cast<double>(sol.lp_iterations)};
}

std::vector<double> run_stream_case(const ScenarioSpec& spec, const CaseDef& def,
                                    ArtifactCache& cache) {
  const WorkloadSource& scen = spec.scenarios[def.scen];
  const auto plat = cache.platform_for(def.cell, def.rep);
  const int k = plat->num_clusters();

  // Trace workloads stay shared (no per-case copy of the arrivals
  // vector); generated kinds materialize into the local buffer.
  std::shared_ptr<const online::Workload> shared_workload;
  online::Workload generated;
  switch (scen.kind) {
    case WorkloadSource::Kind::Trace:
      shared_workload = cache.workload_file(scen.path);
      break;
    // The workload stream deliberately does NOT depend on the scenario
    // index: scenarios that share workload parameters (the static vs
    // dynamic pairing of the degradation reports) replay literally the
    // same arrivals, and scenarios with different parameters share
    // common random numbers.
    case WorkloadSource::Kind::Batch: {
      Rng rng(workload_stream_seed(spec, def.rep));
      generated = online::batch_workload(scen.poisson, k, rng);
      break;
    }
    case WorkloadSource::Kind::Poisson: {
      Rng rng(workload_stream_seed(spec, def.rep));
      generated = online::poisson_workload(scen.poisson, k, rng);
      break;
    }
    case WorkloadSource::Kind::OnOff: {
      Rng rng(workload_stream_seed(spec, def.rep));
      generated = online::onoff_workload(scen.onoff, k, rng);
      break;
    }
    case WorkloadSource::Kind::None:
    case WorkloadSource::Kind::Loads:
      throw Error("campaign: non-stream scenario reached the stream kernel");
  }
  const online::Workload& workload = shared_workload ? *shared_workload : generated;

  online::OnlineOptions options;
  options.sched.method = to_online(spec.methods[def.method]);
  options.sched.objective = spec.objectives[def.objective];
  options.sched.warm = spec.warm[def.warm];
  options.sched.max_support_change = spec.max_support_change;
  options.sched.greedy.local_exhaust = spec.exhaust.front();
  options.rate_model = spec.rate_model;
  options.sim_policy = spec.sim_policy;
  options.sim_window_units = spec.sim_window_units;

  const online::OnlineEngine engine(*plat, options);
  online::OnlineReport report;
  switch (scen.dyn) {
    case WorkloadSource::DynKind::None:
      report = engine.run(workload);
      break;
    case WorkloadSource::DynKind::Trace:
      report = engine.run(workload, *cache.events_file(scen.events_path));
      break;
    case WorkloadSource::DynKind::Scenario: {
      const double last_arrival =
          workload.arrivals.empty() ? 0.0 : workload.arrivals.back().time;
      const double horizon =
          scen.horizon > 0.0 ? scen.horizon : 2.0 * last_arrival + 100.0;
      Rng rng(events_stream_seed(spec, def.cell, def.scen, def.rep));
      const dynamics::EventTrace trace =
          dynamics::scenario_trace(scen.event_rate, scen.severity, horizon,
                                   *plat, rng);
      report = engine.run(workload, trace);
      break;
    }
  }

  const auto acc_mean = [](const Accumulator& acc) {
    return acc.count() == 0 ? qnan() : acc.mean();
  };
  // Same empty-aggregate honesty for the time-weighted series: a replay
  // that accumulated no weight has no utilization/fairness to report.
  const auto tw_mean = [](const online::TimeWeighted& tw) {
    return tw.total_weight() > 0.0 ? tw.mean() : qnan();
  };
  return {1.0,
          static_cast<double>(report.completed),
          static_cast<double>(report.aborted),
          static_cast<double>(report.rejected),
          static_cast<double>(report.queued_arrivals),
          static_cast<double>(report.reschedules),
          static_cast<double>(report.warm_solves),
          static_cast<double>(report.repaired_solves),
          static_cast<double>(report.cold_solves),
          static_cast<double>(report.platform_events),
          report.makespan,
          report.total_work,
          acc_mean(report.metrics.response),
          acc_mean(report.metrics.wait),
          acc_mean(report.metrics.slowdown),
          tw_mean(report.metrics.utilization),
          tw_mean(report.metrics.fairness),
          static_cast<double>(report.peak_active),
          static_cast<double>(report.peak_queued)};
}

}  // namespace

std::vector<double> CaseExecutor::run(const CaseDef& def) {
  if (def.loads) return run_loads_case(*spec_, def, cache_);
  return def.offline ? run_offline_case(*spec_, def, cache_, lps_)
                     : run_stream_case(*spec_, def, cache_);
}

}  // namespace dls::campaign
