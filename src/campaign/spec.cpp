#include "campaign/spec.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace dls::campaign {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error("read_campaign: line " + std::to_string(line) + ": " + what);
}

/// key=value options on a spec line. Values may not contain whitespace
/// (paths with spaces are rejected, keeping the format line-splittable).
class LineOptions {
public:
  LineOptions(std::istringstream& iss, int line) : line_(line) {
    std::string token;
    while (iss >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(line, "expected key=value, got '" + token + "'");
      }
      std::string key = token.substr(0, eq);
      if (std::find(keys_.begin(), keys_.end(), key) != keys_.end()) {
        fail(line, "duplicate key '" + key + "'");
      }
      keys_.push_back(std::move(key));
      values_.push_back(token.substr(eq + 1));
      used_.push_back(false);
    }
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) {
    const int at = find(key);
    return at < 0 ? fallback : values_[at];
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) {
    const int at = find(key);
    if (at < 0) return fallback;
    return parse_double(values_[at], key);
  }

  [[nodiscard]] int get_int(const std::string& key, int fallback) {
    const int at = find(key);
    if (at < 0) return fallback;
    const double v = parse_double(values_[at], key);
    if (v != std::floor(v) || std::fabs(v) > 1e9) {
      fail(line_, "key '" + key + "': expected an integer, got '" + values_[at] +
                      "'");
    }
    return static_cast<int>(v);
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) {
    const int at = find(key);
    if (at < 0) return fallback;
    if (values_[at] == "1" || values_[at] == "true") return true;
    if (values_[at] == "0" || values_[at] == "false") return false;
    fail(line_, "key '" + key + "': expected 0/1/true/false, got '" +
                    values_[at] + "'");
  }

  /// Comma-separated doubles for axis keys (clusters=6,10).
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key,
                                                    double fallback) {
    const int at = find(key);
    if (at < 0) return {fallback};
    std::vector<double> out;
    std::istringstream iss(values_[at]);
    std::string item;
    while (std::getline(iss, item, ',')) {
      if (item.empty()) fail(line_, "key '" + key + "': empty list element");
      out.push_back(parse_double(item, key));
    }
    if (out.empty()) fail(line_, "key '" + key + "': empty value");
    return out;
  }

  /// Comma-separated strings for axis keys (mix=uniform,hotspot).
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& key, const std::string& fallback) {
    const int at = find(key);
    if (at < 0) return {fallback};
    std::vector<std::string> out;
    std::istringstream iss(values_[at]);
    std::string item;
    while (std::getline(iss, item, ',')) {
      if (item.empty()) fail(line_, "key '" + key + "': empty list element");
      out.push_back(std::move(item));
    }
    if (out.empty()) fail(line_, "key '" + key + "': empty value");
    return out;
  }

  void reject_unknown() const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (!used_[i]) fail(line_, "unknown key '" + keys_[i] + "'");
    }
  }

private:
  [[nodiscard]] int find(const std::string& key) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) {
        used_[i] = true;
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  [[nodiscard]] double parse_double(const std::string& text,
                                    const std::string& key) const {
    std::istringstream iss(text);
    double v = 0.0;
    char trailing = 0;
    if (!(iss >> v) || iss >> trailing || !std::isfinite(v)) {
      fail(line_, "key '" + key + "': malformed number '" + text + "'");
    }
    return v;
  }

  int line_;
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
  std::vector<char> used_;
};

/// File-name tail for derived labels ("data/x.platform" -> "x.platform").
std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string format_double(double v) {
  std::ostringstream oss;
  oss.precision(17);
  oss << v;
  return oss.str();
}

/// Compact spelling for derived labels (labels are identifiers, not
/// round-trip carriers — "0.4", not "0.40000000000000002"; near-ties
/// are disambiguated by dedupe()).
std::string label_double(double v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

/// Keeps derived labels unique so report groups stay distinguishable
/// when two axis lines expand to the same description. The suffix
/// separator must survive a canonical round trip, so it cannot be '#'
/// (the comment character) or contain whitespace.
std::string dedupe(std::vector<std::string>& seen, std::string label) {
  if (std::find(seen.begin(), seen.end(), label) != seen.end()) {
    label += "~" + std::to_string(seen.size());
  }
  seen.push_back(label);
  return label;
}

/// Explicit labels are the user's group keys: a duplicate would make
/// two report groups indistinguishable (and label-keyed lookups like
/// the degradation pairing silently read the wrong one), so it is a
/// contradiction, not a dedupe case.
void claim_label(std::vector<std::string>& seen, const std::string& label,
                 int line) {
  if (std::find(seen.begin(), seen.end(), label) != seen.end()) {
    fail(line, "duplicate label '" + label + "'");
  }
  seen.push_back(label);
}

Method parse_method(const std::string& token, int line) {
  if (token == "g") return Method::G;
  if (token == "lpr") return Method::Lpr;
  if (token == "lprg") return Method::Lprg;
  if (token == "lprr") return Method::Lprr;
  if (token == "lp") return Method::Lp;
  fail(line, "unknown method '" + token + "' (expected g|lpr|lprg|lprr|lp)");
}

core::Objective parse_objective(const std::string& token, int line) {
  if (token == "maxmin") return core::Objective::MaxMin;
  if (token == "sum") return core::Objective::Sum;
  fail(line, "unknown objective '" + token + "' (expected maxmin|sum)");
}

online::WarmPolicy parse_warm(const std::string& token, int line) {
  if (token == "auto") return online::WarmPolicy::Auto;
  if (token == "never") return online::WarmPolicy::Never;
  if (token == "always") return online::WarmPolicy::Always;
  fail(line, "unknown warm policy '" + token + "' (expected auto|never|always)");
}

core::LocalExhaustPolicy parse_exhaust(const std::string& token, int line) {
  if (token == "take") return core::LocalExhaustPolicy::TakeRemaining;
  if (token == "drop") return core::LocalExhaustPolicy::DropApplication;
  fail(line, "unknown exhaust policy '" + token + "' (expected take|drop)");
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::G: return "g";
    case Method::Lpr: return "lpr";
    case Method::Lprg: return "lprg";
    case Method::Lprr: return "lprr";
    case Method::Lp: return "lp";
  }
  return "?";
}

const char* axis_name(core::Objective objective) {
  return objective == core::Objective::MaxMin ? "maxmin" : "sum";
}

const char* to_string(core::LocalExhaustPolicy exhaust) {
  return exhaust == core::LocalExhaustPolicy::TakeRemaining ? "take" : "drop";
}

const char* to_string(online::WarmPolicy warm) {
  switch (warm) {
    case online::WarmPolicy::Auto: return "auto";
    case online::WarmPolicy::Never: return "never";
    case online::WarmPolicy::Always: return "always";
  }
  return "?";
}

const char* to_string(online::RateModel model) {
  return model == online::RateModel::Fluid ? "fluid" : "sim";
}

const char* to_string(sim::SharingPolicy policy) {
  switch (policy) {
    case sim::SharingPolicy::Paced: return "paced";
    case sim::SharingPolicy::MaxMin: return "maxmin";
    case sim::SharingPolicy::TcpRttBias: return "tcp";
    case sim::SharingPolicy::BoundedWindow: return "window";
  }
  return "?";
}

void ScenarioSpec::validate() const {
  require(!name.empty(), "campaign spec: empty name");
  require(replications >= 1, "campaign spec: replications must be >= 1");
  require(!platforms.empty(), "campaign spec: no platform axis values");
  require(!scenarios.empty(), "campaign spec: no workload axis values");
  require(!methods.empty(), "campaign spec: empty method axis");
  require(!objectives.empty(), "campaign spec: empty objective axis");
  require(!warm.empty(), "campaign spec: empty warm axis");
  require(!exhaust.empty(), "campaign spec: empty exhaust axis");
  require(payoff_spread >= 0.0 && payoff_spread < 1.0,
          "campaign spec: payoff-spread out of [0, 1)");
  require(max_support_change >= 0,
          "campaign spec: max-support-change must be >= 0");
  require(sim_window_units > 0.0 && std::isfinite(sim_window_units),
          "campaign spec: window must be positive");
  const bool has_stream =
      std::any_of(scenarios.begin(), scenarios.end(),
                  [](const WorkloadSource& s) { return s.stream(); });
  if (has_stream) {
    require(std::find(methods.begin(), methods.end(), Method::Lprr) ==
                methods.end(),
            "campaign spec: method lprr is offline-only and cannot run a "
            "stream workload");
  }
  for (const PlatformSource& p : platforms) {
    require(!p.label.empty(), "campaign spec: platform cell without a label");
    switch (p.kind) {
      case PlatformSource::Kind::File:
        require(!p.path.empty(), "campaign spec: platform file without a path");
        break;
      case PlatformSource::Kind::Generate:
        require(p.params.num_clusters >= 1,
                "campaign spec: generate cell needs clusters >= 1");
        break;
      case PlatformSource::Kind::Grid:
        require(p.grid_clusters >= 1,
                "campaign spec: grid cell needs clusters >= 1");
        break;
    }
  }
  for (const WorkloadSource& s : scenarios) {
    require(!s.label.empty(), "campaign spec: scenario without a label");
    require(s.kind != WorkloadSource::Kind::Trace || !s.path.empty(),
            "campaign spec: workload trace without a path");
    require(s.dyn != WorkloadSource::DynKind::Trace || !s.events_path.empty(),
            "campaign spec: dynamics trace without a path");
    require(s.dyn == WorkloadSource::DynKind::None || s.stream(),
            "campaign spec: dynamics requires a stream workload");
    if (s.kind == WorkloadSource::Kind::Loads) {
      require(s.load_count >= 1, "campaign spec: loads count must be >= 1");
      require(s.load_mix == "uniform" || s.load_mix == "hotspot",
              "campaign spec: loads mix must be uniform or hotspot");
      require(s.weight_spread >= 0.0 && s.weight_spread < 1.0,
              "campaign spec: loads weight-spread out of [0, 1)");
      require(s.ratio_spread >= 0.0 && s.ratio_spread < 1.0,
              "campaign spec: loads ratio-spread out of [0, 1)");
      require(s.cap_factor >= 0.0 && std::isfinite(s.cap_factor),
              "campaign spec: loads cap must be >= 0 (0 = uncapped)");
    }
    if (s.dyn == WorkloadSource::DynKind::Scenario) {
      require(s.event_rate > 0.0 && std::isfinite(s.event_rate),
              "campaign spec: dynamics event-rate must be positive");
      require(s.severity >= 0.0 && s.severity <= 1.0,
              "campaign spec: dynamics severity out of [0, 1]");
      require(s.horizon >= 0.0 && std::isfinite(s.horizon),
              "campaign spec: dynamics horizon must be >= 0 (0 = auto)");
    }
  }
}

// ---- writer -----------------------------------------------------------------

void write_campaign(const ScenarioSpec& spec, std::ostream& os) {
  os << "dls-campaign 1\n";
  os << "name " << spec.name << '\n';
  os << "seed " << spec.seed << '\n';
  os << "replications " << spec.replications << '\n';
  os << "payoff-spread " << format_double(spec.payoff_spread) << '\n';
  os << "max-support-change " << spec.max_support_change << '\n';
  os << "rate-model " << to_string(spec.rate_model) << '\n';
  os << "policy " << to_string(spec.sim_policy) << '\n';
  os << "window " << format_double(spec.sim_window_units) << '\n';
  os << "objective";
  for (const core::Objective o : spec.objectives) os << ' ' << axis_name(o);
  os << '\n';
  os << "method";
  for (const Method m : spec.methods) os << ' ' << to_string(m);
  os << '\n';
  os << "warm";
  for (const online::WarmPolicy w : spec.warm) os << ' ' << to_string(w);
  os << '\n';
  os << "exhaust";
  for (const core::LocalExhaustPolicy e : spec.exhaust) os << ' ' << to_string(e);
  os << '\n';

  for (const PlatformSource& p : spec.platforms) {
    os << "platform ";
    switch (p.kind) {
      case PlatformSource::Kind::File:
        os << "file label=" << p.label << " path=" << p.path;
        break;
      case PlatformSource::Kind::Generate: {
        const platform::GeneratorParams& g = p.params;
        os << "generate label=" << p.label << " clusters=" << g.num_clusters
           << " connectivity=" << format_double(g.connectivity)
           << " heterogeneity=" << format_double(g.heterogeneity)
           << " gateway=" << format_double(g.mean_gateway_bw)
           << " bw=" << format_double(g.mean_backbone_bw)
           << " maxcon=" << format_double(g.mean_max_connections)
           << " speed=" << format_double(g.cluster_speed)
           << " latency=" << format_double(g.mean_latency)
           << " transit=" << g.num_transit_routers
           << " connected=" << (g.ensure_connected ? 1 : 0);
        break;
      }
      case PlatformSource::Kind::Grid:
        os << "grid label=" << p.label << " clusters=" << p.grid_clusters;
        break;
    }
    os << '\n';
  }

  for (const WorkloadSource& s : spec.scenarios) {
    if (s.kind == WorkloadSource::Kind::Loads) {
      os << "loads label=" << s.label << " count=" << s.load_count
         << " mix=" << s.load_mix
         << " objective=" << core::to_string(s.multi_objective)
         << " weight-spread=" << format_double(s.weight_spread)
         << " ratio-spread=" << format_double(s.ratio_spread)
         << " cap=" << format_double(s.cap_factor) << '\n';
      continue;
    }
    os << "workload ";
    switch (s.kind) {
      case WorkloadSource::Kind::None:
        os << "none label=" << s.label;
        break;
      case WorkloadSource::Kind::Batch:
        os << "batch label=" << s.label << " count=" << s.poisson.count
           << " mean-load=" << format_double(s.poisson.mean_load)
           << " load-spread=" << format_double(s.poisson.load_spread)
           << " payoff-spread=" << format_double(s.poisson.payoff_spread);
        break;
      case WorkloadSource::Kind::Poisson:
        os << "poisson label=" << s.label << " arrivals=" << s.poisson.count
           << " rate=" << format_double(s.poisson.rate)
           << " mean-load=" << format_double(s.poisson.mean_load)
           << " load-spread=" << format_double(s.poisson.load_spread)
           << " payoff-spread=" << format_double(s.poisson.payoff_spread);
        break;
      case WorkloadSource::Kind::OnOff:
        os << "onoff label=" << s.label << " arrivals=" << s.onoff.count
           << " burst-rate=" << format_double(s.onoff.burst_rate)
           << " mean-on=" << format_double(s.onoff.mean_on)
           << " mean-off=" << format_double(s.onoff.mean_off)
           << " mean-load=" << format_double(s.onoff.mean_load)
           << " load-spread=" << format_double(s.onoff.load_spread)
           << " payoff-spread=" << format_double(s.onoff.payoff_spread);
        break;
      case WorkloadSource::Kind::Trace:
        os << "trace label=" << s.label << " path=" << s.path;
        break;
      case WorkloadSource::Kind::Loads:
        break;  // handled above
    }
    os << '\n';
    switch (s.dyn) {
      case WorkloadSource::DynKind::None:
        break;
      case WorkloadSource::DynKind::Scenario:
        os << "dynamics scenario event-rate=" << format_double(s.event_rate)
           << " severity=" << format_double(s.severity)
           << " horizon=" << format_double(s.horizon) << '\n';
        break;
      case WorkloadSource::DynKind::Trace:
        os << "dynamics trace path=" << s.events_path << '\n';
        break;
    }
  }
}

// ---- parser -----------------------------------------------------------------

ScenarioSpec read_campaign(std::istream& is) {
  ScenarioSpec spec;
  spec.methods.clear();
  spec.objectives.clear();
  spec.warm.clear();
  spec.exhaust.clear();

  std::string line;
  int line_no = 0;
  bool have_header = false;
  std::vector<std::string> platform_labels;
  std::vector<std::string> scenario_labels;
  int method_line = 0;
  std::vector<std::string> seen_singletons;
  // Every singleton keyword is last-wins-free and every singleton line
  // is fully consumed: duplicates and trailing tokens both diagnose.
  const auto singleton = [&](const std::string& keyword, int line) {
    if (std::find(seen_singletons.begin(), seen_singletons.end(), keyword) !=
        seen_singletons.end()) {
      fail(line, "duplicate '" + keyword + "'");
    }
    seen_singletons.push_back(keyword);
  };
  const auto expect_line_end = [](std::istringstream& iss, int line) {
    std::string extra;
    if (iss >> extra) fail(line, "unexpected trailing token '" + extra + "'");
  };

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments; blank lines are skipped.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream iss(line);
    std::string keyword;
    iss >> keyword;

    if (!have_header) {
      int version = 0;
      if (keyword != "dls-campaign" || !(iss >> version) || version != 1) {
        throw Error("read_campaign: bad header (expected 'dls-campaign 1')");
      }
      std::string extra;
      if (iss >> extra) fail(line_no, "unexpected trailing token '" + extra + "'");
      have_header = true;
      continue;
    }

    if (keyword == "name") {
      singleton(keyword, line_no);
      if (!(iss >> spec.name)) fail(line_no, "expected a campaign name");
      expect_line_end(iss, line_no);
    } else if (keyword == "seed") {
      singleton(keyword, line_no);
      if (!(iss >> spec.seed)) fail(line_no, "expected an unsigned seed");
      expect_line_end(iss, line_no);
    } else if (keyword == "replications") {
      singleton(keyword, line_no);
      if (!(iss >> spec.replications) || spec.replications < 1) {
        fail(line_no, "expected a replication count >= 1");
      }
      expect_line_end(iss, line_no);
    } else if (keyword == "payoff-spread") {
      singleton(keyword, line_no);
      if (!(iss >> spec.payoff_spread) || spec.payoff_spread < 0.0 ||
          spec.payoff_spread >= 1.0) {
        fail(line_no, "expected a payoff spread in [0, 1)");
      }
      expect_line_end(iss, line_no);
    } else if (keyword == "max-support-change") {
      singleton(keyword, line_no);
      if (!(iss >> spec.max_support_change) || spec.max_support_change < 0) {
        fail(line_no, "expected a max-support-change >= 0");
      }
      expect_line_end(iss, line_no);
    } else if (keyword == "rate-model") {
      singleton(keyword, line_no);
      std::string token;
      if (!(iss >> token)) fail(line_no, "expected fluid|sim");
      if (token == "fluid") {
        spec.rate_model = online::RateModel::Fluid;
      } else if (token == "sim") {
        spec.rate_model = online::RateModel::Simulated;
      } else {
        fail(line_no, "unknown rate model '" + token + "' (expected fluid|sim)");
      }
      expect_line_end(iss, line_no);
    } else if (keyword == "policy") {
      singleton(keyword, line_no);
      std::string token;
      if (!(iss >> token)) fail(line_no, "expected paced|maxmin|tcp|window");
      if (token == "paced") {
        spec.sim_policy = sim::SharingPolicy::Paced;
      } else if (token == "maxmin") {
        spec.sim_policy = sim::SharingPolicy::MaxMin;
      } else if (token == "tcp") {
        spec.sim_policy = sim::SharingPolicy::TcpRttBias;
      } else if (token == "window") {
        spec.sim_policy = sim::SharingPolicy::BoundedWindow;
      } else {
        fail(line_no, "unknown sharing policy '" + token + "'");
      }
      expect_line_end(iss, line_no);
    } else if (keyword == "window") {
      singleton(keyword, line_no);
      if (!(iss >> spec.sim_window_units) || spec.sim_window_units <= 0.0) {
        fail(line_no, "expected a positive window size (units)");
      }
      expect_line_end(iss, line_no);
    } else if (keyword == "objective") {
      if (!spec.objectives.empty()) fail(line_no, "duplicate 'objective'");
      std::string token;
      while (iss >> token) {
        const core::Objective o = parse_objective(token, line_no);
        if (std::find(spec.objectives.begin(), spec.objectives.end(), o) !=
            spec.objectives.end()) {
          fail(line_no, "repeated objective '" + token + "'");
        }
        spec.objectives.push_back(o);
      }
      if (spec.objectives.empty()) fail(line_no, "expected at least one objective");
    } else if (keyword == "method") {
      if (!spec.methods.empty()) fail(line_no, "duplicate 'method'");
      method_line = line_no;
      std::string token;
      while (iss >> token) {
        const Method m = parse_method(token, line_no);
        if (std::find(spec.methods.begin(), spec.methods.end(), m) !=
            spec.methods.end()) {
          fail(line_no, "repeated method '" + token + "'");
        }
        spec.methods.push_back(m);
      }
      if (spec.methods.empty()) fail(line_no, "expected at least one method");
    } else if (keyword == "warm") {
      if (!spec.warm.empty()) fail(line_no, "duplicate 'warm'");
      std::string token;
      while (iss >> token) {
        const online::WarmPolicy w = parse_warm(token, line_no);
        if (std::find(spec.warm.begin(), spec.warm.end(), w) != spec.warm.end()) {
          fail(line_no, "repeated warm policy '" + token + "'");
        }
        spec.warm.push_back(w);
      }
      if (spec.warm.empty()) fail(line_no, "expected at least one warm policy");
    } else if (keyword == "exhaust") {
      if (!spec.exhaust.empty()) fail(line_no, "duplicate 'exhaust'");
      std::string token;
      while (iss >> token) {
        const core::LocalExhaustPolicy e = parse_exhaust(token, line_no);
        if (std::find(spec.exhaust.begin(), spec.exhaust.end(), e) !=
            spec.exhaust.end()) {
          fail(line_no, "repeated exhaust policy '" + token + "'");
        }
        spec.exhaust.push_back(e);
      }
      if (spec.exhaust.empty()) fail(line_no, "expected at least one exhaust policy");
    } else if (keyword == "platform") {
      std::string kind;
      if (!(iss >> kind)) fail(line_no, "expected file|generate|grid");
      LineOptions opt(iss, line_no);
      if (kind == "file") {
        PlatformSource p;
        p.kind = PlatformSource::Kind::File;
        p.path = opt.get_string("path", "");
        if (p.path.empty()) fail(line_no, "platform file: missing path=");
        p.label = opt.get_string("label", "");
        if (p.label.empty()) p.label = dedupe(platform_labels, basename_of(p.path));
        else claim_label(platform_labels, p.label, line_no);
        opt.reject_unknown();
        spec.platforms.push_back(std::move(p));
      } else if (kind == "grid") {
        const std::vector<double> ks = opt.get_double_list("clusters", 10);
        const std::string label = opt.get_string("label", "");
        opt.reject_unknown();
        for (const double kd : ks) {
          if (kd != std::floor(kd) || kd < 1) {
            fail(line_no, "grid clusters must be positive integers");
          }
          PlatformSource p;
          p.kind = PlatformSource::Kind::Grid;
          p.grid_clusters = static_cast<int>(kd);
          p.label = label.empty()
                        ? dedupe(platform_labels,
                                 "grid:K=" + std::to_string(p.grid_clusters))
                        : (ks.size() == 1 ? label
                                          : label + ":K=" +
                                                std::to_string(p.grid_clusters));
          if (!label.empty()) claim_label(platform_labels, p.label, line_no);
          spec.platforms.push_back(std::move(p));
        }
      } else if (kind == "generate") {
        // Comma lists expand into the cross product of cells.
        const std::vector<double> clusters = opt.get_double_list("clusters", 10);
        const std::vector<double> connectivity =
            opt.get_double_list("connectivity", 0.4);
        const std::vector<double> heterogeneity =
            opt.get_double_list("heterogeneity", 0.5);
        const std::vector<double> gateway = opt.get_double_list("gateway", 250);
        const std::vector<double> bw = opt.get_double_list("bw", 50);
        const std::vector<double> maxcon = opt.get_double_list("maxcon", 50);
        const std::vector<double> speed = opt.get_double_list("speed", 100);
        const std::vector<double> latency = opt.get_double_list("latency", 0);
        const std::vector<double> transit = opt.get_double_list("transit", 0);
        const bool connected = opt.get_bool("connected", false);
        const std::string label = opt.get_string("label", "");
        opt.reject_unknown();

        struct Axis {
          const char* key;
          const std::vector<double>* values;
        };
        const Axis axes[] = {
            {"clusters", &clusters}, {"connectivity", &connectivity},
            {"heterogeneity", &heterogeneity}, {"gateway", &gateway},
            {"bw", &bw}, {"maxcon", &maxcon}, {"speed", &speed},
            {"latency", &latency}, {"transit", &transit},
        };
        std::size_t cells = 1;
        for (const Axis& a : axes) cells *= a.values->size();
        if (cells > 100000) fail(line_no, "generate line expands to too many cells");

        for (std::size_t cell = 0; cell < cells; ++cell) {
          std::size_t rest = cell;
          double picked[9];
          std::string varying;
          for (std::size_t a = 0; a < 9; ++a) {
            const std::vector<double>& vs = *axes[a].values;
            picked[a] = vs[rest % vs.size()];
            if (vs.size() > 1) {
              if (!varying.empty()) varying += ',';
              varying += std::string(axes[a].key) + "=" + label_double(picked[a]);
            }
            rest /= vs.size();
          }
          for (const std::size_t at : {std::size_t{0}, std::size_t{8}}) {
            if (picked[at] != std::floor(picked[at]) || picked[at] < (at == 0)) {
              fail(line_no, std::string("generate ") + axes[at].key +
                                " must be integral");
            }
          }
          PlatformSource p;
          p.kind = PlatformSource::Kind::Generate;
          p.params.num_clusters = static_cast<int>(picked[0]);
          p.params.connectivity = picked[1];
          p.params.heterogeneity = picked[2];
          p.params.mean_gateway_bw = picked[3];
          p.params.mean_backbone_bw = picked[4];
          p.params.mean_max_connections = picked[5];
          p.params.cluster_speed = picked[6];
          p.params.mean_latency = picked[7];
          p.params.num_transit_routers = static_cast<int>(picked[8]);
          p.params.ensure_connected = connected;
          if (!label.empty()) {
            p.label = cells == 1 ? label : label + ":" + varying;
            claim_label(platform_labels, p.label, line_no);
          } else {
            // Derived label: the varying keys when the line is an axis,
            // otherwise just the cluster count.
            std::string derived =
                varying.empty()
                    ? "gen:K=" + std::to_string(p.params.num_clusters)
                    : "gen:" + varying;
            p.label = dedupe(platform_labels, std::move(derived));
          }
          spec.platforms.push_back(std::move(p));
        }
      } else {
        fail(line_no, "unknown platform kind '" + kind +
                          "' (expected file|generate|grid)");
      }
    } else if (keyword == "workload") {
      std::string kind;
      if (!(iss >> kind)) fail(line_no, "expected none|batch|poisson|onoff|trace");
      LineOptions opt(iss, line_no);
      WorkloadSource s;
      std::string derived;
      if (kind == "none") {
        s.kind = WorkloadSource::Kind::None;
        derived = "none";
      } else if (kind == "batch") {
        s.kind = WorkloadSource::Kind::Batch;
        s.poisson.count = opt.get_int("count", 10);
        s.poisson.mean_load = opt.get_double("mean-load", 500);
        s.poisson.load_spread = opt.get_double("load-spread", 0.5);
        s.poisson.payoff_spread = opt.get_double("payoff-spread", 0.5);
        if (s.poisson.count < 1) fail(line_no, "batch count must be >= 1");
        derived = "batch";
      } else if (kind == "poisson") {
        s.kind = WorkloadSource::Kind::Poisson;
        s.poisson.count = opt.get_int("arrivals", 1000);
        s.poisson.rate = opt.get_double("rate", 1.0);
        s.poisson.mean_load = opt.get_double("mean-load", 500);
        s.poisson.load_spread = opt.get_double("load-spread", 0.5);
        s.poisson.payoff_spread = opt.get_double("payoff-spread", 0.5);
        if (s.poisson.count < 1) fail(line_no, "poisson arrivals must be >= 1");
        if (s.poisson.rate <= 0) fail(line_no, "poisson rate must be positive");
        derived = "poisson";
      } else if (kind == "onoff") {
        s.kind = WorkloadSource::Kind::OnOff;
        s.onoff.count = opt.get_int("arrivals", 1000);
        s.onoff.burst_rate = opt.get_double("burst-rate", 4.0);
        s.onoff.mean_on = opt.get_double("mean-on", 25);
        s.onoff.mean_off = opt.get_double("mean-off", 75);
        s.onoff.mean_load = opt.get_double("mean-load", 500);
        s.onoff.load_spread = opt.get_double("load-spread", 0.5);
        s.onoff.payoff_spread = opt.get_double("payoff-spread", 0.5);
        if (s.onoff.count < 1) fail(line_no, "onoff arrivals must be >= 1");
        if (s.onoff.burst_rate <= 0 || s.onoff.mean_on <= 0 || s.onoff.mean_off <= 0) {
          fail(line_no, "onoff rates and window means must be positive");
        }
        derived = "onoff";
      } else if (kind == "trace") {
        s.kind = WorkloadSource::Kind::Trace;
        s.path = opt.get_string("path", "");
        if (s.path.empty()) fail(line_no, "workload trace: missing path=");
        derived = "trace:" + basename_of(s.path);
      } else {
        fail(line_no, "unknown workload kind '" + kind +
                          "' (expected none|batch|poisson|onoff|trace)");
      }
      s.label = opt.get_string("label", "");
      if (s.label.empty()) s.label = dedupe(scenario_labels, std::move(derived));
      else claim_label(scenario_labels, s.label, line_no);
      opt.reject_unknown();
      spec.scenarios.push_back(std::move(s));
    } else if (keyword == "loads") {
      // The multi-load axis: count x mix x objective expand into one
      // scenario cell per combination (like platform generate lists).
      LineOptions opt(iss, line_no);
      const std::vector<double> counts = opt.get_double_list("count", 4);
      const std::vector<std::string> mixes =
          opt.get_string_list("mix", "uniform");
      const std::vector<std::string> objectives =
          opt.get_string_list("objective", "sum");
      const double weight_spread = opt.get_double("weight-spread", 0.5);
      const double ratio_spread = opt.get_double("ratio-spread", 0.0);
      const double cap_factor = opt.get_double("cap", 0.0);
      const std::string label = opt.get_string("label", "");
      opt.reject_unknown();
      const std::size_t cells = counts.size() * mixes.size() * objectives.size();
      for (const double cd : counts) {
        if (cd != std::floor(cd) || cd < 1) {
          fail(line_no, "loads count must be positive integers");
        }
        for (const std::string& mix : mixes) {
          if (mix != "uniform" && mix != "hotspot") {
            fail(line_no, "unknown loads mix '" + mix +
                              "' (expected uniform|hotspot)");
          }
          for (const std::string& obj : objectives) {
            WorkloadSource s;
            s.kind = WorkloadSource::Kind::Loads;
            s.load_count = static_cast<int>(cd);
            s.load_mix = mix;
            if (!core::parse_multi_objective(obj, s.multi_objective)) {
              fail(line_no, "unknown loads objective '" + obj +
                                "' (expected sum|maxmin|pf)");
            }
            s.weight_spread = weight_spread;
            s.ratio_spread = ratio_spread;
            s.cap_factor = cap_factor;
            std::string varying;
            const auto vary = [&](bool axis, const std::string& part) {
              if (!axis) return;
              if (!varying.empty()) varying += ',';
              varying += part;
            };
            vary(counts.size() > 1, "N=" + std::to_string(s.load_count));
            vary(mixes.size() > 1, "mix=" + mix);
            vary(objectives.size() > 1, "obj=" + obj);
            if (!label.empty()) {
              s.label = cells == 1 ? label : label + ":" + varying;
              claim_label(scenario_labels, s.label, line_no);
            } else {
              std::string derived =
                  "loads:" +
                  (varying.empty() ? "N=" + std::to_string(s.load_count)
                                   : varying);
              s.label = dedupe(scenario_labels, std::move(derived));
            }
            spec.scenarios.push_back(std::move(s));
          }
        }
      }
    } else if (keyword == "dynamics") {
      if (spec.scenarios.empty()) {
        fail(line_no, "dynamics line with no preceding workload line");
      }
      WorkloadSource& s = spec.scenarios.back();
      if (!s.stream()) {
        fail(line_no,
             "dynamics requires a stream workload (the preceding workload "
             "line replays no timeline)");
      }
      if (s.dyn != WorkloadSource::DynKind::None) {
        fail(line_no, "duplicate dynamics line for workload '" + s.label + "'");
      }
      std::string kind;
      if (!(iss >> kind)) fail(line_no, "expected scenario|trace");
      LineOptions opt(iss, line_no);
      if (kind == "scenario") {
        s.dyn = WorkloadSource::DynKind::Scenario;
        s.event_rate = opt.get_double("event-rate", 0.02);
        s.severity = opt.get_double("severity", 0.5);
        s.horizon = opt.get_double("horizon", 0.0);
        if (s.event_rate <= 0) fail(line_no, "event-rate must be positive");
        if (s.severity < 0 || s.severity > 1) fail(line_no, "severity out of [0, 1]");
        if (s.horizon < 0) fail(line_no, "horizon must be >= 0 (0 = auto)");
      } else if (kind == "trace") {
        s.dyn = WorkloadSource::DynKind::Trace;
        s.events_path = opt.get_string("path", "");
        if (s.events_path.empty()) fail(line_no, "dynamics trace: missing path=");
      } else {
        fail(line_no, "unknown dynamics kind '" + kind +
                          "' (expected scenario|trace)");
      }
      opt.reject_unknown();
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  require(have_header, "read_campaign: bad header (expected 'dls-campaign 1')");
  if (spec.methods.empty()) {
    spec.methods = {Method::G, Method::Lpr, Method::Lprg};
  }
  if (spec.objectives.empty()) spec.objectives = {core::Objective::MaxMin};
  if (spec.warm.empty()) spec.warm = {online::WarmPolicy::Auto};
  if (spec.exhaust.empty()) spec.exhaust = {core::LocalExhaustPolicy::TakeRemaining};
  if (spec.scenarios.empty()) {
    WorkloadSource none;
    none.label = "none";
    spec.scenarios.push_back(std::move(none));
  }
  require(!spec.platforms.empty(),
          "read_campaign: spec declares no platform axis values");

  // Cross-line contradictions get the best line number we have.
  const bool has_stream =
      std::any_of(spec.scenarios.begin(), spec.scenarios.end(),
                  [](const WorkloadSource& s) { return s.stream(); });
  if (has_stream && std::find(spec.methods.begin(), spec.methods.end(),
                              Method::Lprr) != spec.methods.end()) {
    fail(method_line,
         "method lprr is offline-only and cannot run a stream workload");
  }
  spec.validate();
  return spec;
}

std::string to_text(const ScenarioSpec& spec) {
  std::ostringstream oss;
  write_campaign(spec, oss);
  return oss.str();
}

ScenarioSpec from_text(const std::string& text) {
  std::istringstream iss(text);
  return read_campaign(iss);
}

ScenarioSpec read_campaign_file(const std::vector<std::string>& candidates) {
  require(!candidates.empty(), "read_campaign_file: no candidate paths");
  for (const std::string& path : candidates) {
    std::ifstream in(path);
    if (in) return read_campaign(in);
  }
  std::string tried;
  for (const std::string& path : candidates) {
    if (!tried.empty()) tried += ", ";
    tried += "'" + path + "'";
  }
  throw Error("read_campaign_file: cannot open any of " + tried);
}

}  // namespace dls::campaign
