// Experiment harness for the paper's §6 evaluation: runs every heuristic
// (plus the LP comparator) on generated platforms, with wall-clock timing,
// and aggregates ratio-to-LP series the way Figures 5-7 report them.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/heuristics.hpp"
#include "core/problem.hpp"
#include "lp/batch.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace dls::exp {

struct CaseConfig {
  platform::GeneratorParams params;
  core::Objective objective = core::Objective::MaxMin;
  std::uint64_t seed = 1;   ///< drives both the platform and LPRR's coins
  /// The LP-based methods each cost at least one relaxation solve; a
  /// campaign whose method axis excludes them skips that work (greedy
  /// and the LP bound always run — they anchor every ratio).
  bool with_lpr = true;
  bool with_lprg = true;
  bool with_lprr = false;   ///< LPRR costs ~K^2 LP solves; opt in
  bool with_lprr_eq = false;
  bool with_lprr_oneshot = false;  ///< both one-shot rounding ablations

  /// Per-application payoffs are sampled uniformly from
  /// [1 - payoff_spread, 1 + payoff_spread]. The paper's evaluation
  /// under-specifies payoffs; with uniform payoffs (spread 0) both
  /// objectives are trivially optimized by local-only computation (all
  /// ratios pin to 1.0, contradicting the paper's own curves), so a
  /// positive spread is required for non-trivial, network-bound
  /// instances. See DESIGN.md.
  double payoff_spread = 0.5;

  core::GreedyOptions greedy;  ///< local-exhaust policy ablation
};

struct Timing {
  double seconds = 0.0;
  int lp_solves = 0;
};

/// NaN marks methods that were not run.
struct CaseResult {
  bool ok = false;  ///< false if any LP solve failed (result then unusable)
  double lp = std::numeric_limits<double>::quiet_NaN();
  double g = std::numeric_limits<double>::quiet_NaN();
  double lpr = std::numeric_limits<double>::quiet_NaN();
  double lprg = std::numeric_limits<double>::quiet_NaN();
  double lprr = std::numeric_limits<double>::quiet_NaN();
  double lprr_eq = std::numeric_limits<double>::quiet_NaN();
  double lprr_1shot = std::numeric_limits<double>::quiet_NaN();
  double lprr_1shot_eq = std::numeric_limits<double>::quiet_NaN();
  Timing t_lp, t_g, t_lpr, t_lprg, t_lprr;
};

/// Generates the platform from config.seed and runs the requested methods.
/// Every produced allocation is validated against equations (7); a
/// violation throws (it would invalidate the whole experiment).
[[nodiscard]] CaseResult run_case(const CaseConfig& config);

/// The same case kernel on a pre-built platform — the campaign runner's
/// per-cell artifact cache hands one generated (or file-loaded) Platform
/// to every case that differs only in objective/method/seed, so the
/// platform and its route tables are built once. Payoffs and the LPRR
/// coins are drawn from a fresh Rng(config.seed); config.params is
/// ignored. Note the stream differs from run_case(config), which
/// interleaves platform generation into the same Rng.
[[nodiscard]] CaseResult run_case(const CaseConfig& config,
                                  const platform::Platform& plat);

/// The same kernels routed through a shared BatchSolver: every LP solve
/// in the case (the bound, LPR/LPRG's relaxation, LPRR's ~K^2 re-solves)
/// reuses the calling thread's arena and the batch's shared
/// column-structure cache. Numbers are bit-identical to the plain
/// overloads — the batch only removes redundant analysis and allocation.
/// Safe to share one BatchSolver across concurrent callers.
[[nodiscard]] CaseResult run_case(const CaseConfig& config, lp::BatchSolver& lps);
[[nodiscard]] CaseResult run_case(const CaseConfig& config,
                                  const platform::Platform& plat,
                                  lp::BatchSolver& lps);

/// Runs every config as an independent replication across a thread pool,
/// sharing one BatchSolver (per-thread arenas + one column-structure
/// cache) across the sweep. jobs = 0 uses all hardware threads; jobs = 1
/// runs inline. Results are deterministic and order-stable: result i
/// depends only on configs[i] (each case derives its randomness from its
/// own seed), so the worker count never changes the numbers. The first
/// exception thrown by any case is rethrown after the sweep stops.
[[nodiscard]] std::vector<CaseResult> run_cases(const std::vector<CaseConfig>& configs,
                                                int jobs = 0);

/// Uniformly samples one cell of the Table-1 grid for the non-K
/// dimensions (connectivity, heterogeneity, mean g / bw / maxcon).
[[nodiscard]] platform::GeneratorParams sample_grid_params(
    const platform::Table1Grid& grid, int num_clusters, Rng& rng);

/// Accumulates method / lp ratios over cases (skipping degenerate lp = 0
/// and not-run NaN methods) into a full support::Accumulator, so sweep
/// and campaign reports carry stddev and count alongside the mean.
class RatioAccumulator {
public:
  void add(double method_value, double lp_value);
  [[nodiscard]] double mean() const { return acc_.mean(); }
  [[nodiscard]] double stddev() const { return acc_.stddev(); }
  [[nodiscard]] int count() const { return static_cast<int>(acc_.count()); }
  [[nodiscard]] const Accumulator& acc() const { return acc_; }

private:
  Accumulator acc_;
};

/// Bench scale factor from DLS_BENCH_SCALE (default 1.0; e.g. 0.2 for a
/// smoke run, 5 for a long calibration run).
[[nodiscard]] double bench_scale();

/// Deterministic bench seed from DLS_BENCH_SEED (default fixed).
[[nodiscard]] std::uint64_t bench_seed();

/// Worker count for bench replication sweeps from DLS_BENCH_JOBS
/// (default 0 = all hardware threads).
[[nodiscard]] int bench_jobs();

/// max(1, round(n * bench_scale())).
[[nodiscard]] int scaled(int n);

}  // namespace dls::exp
