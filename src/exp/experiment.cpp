#include "exp/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace dls::exp {

namespace {

void check_valid(const core::SteadyStateProblem& problem,
                 const core::HeuristicResult& result, const char* method) {
  const auto report = core::validate_allocation(problem, result.allocation, 1e-5);
  if (!report.ok) {
    throw Error(std::string("experiment: ") + method + " produced an invalid "
                "allocation: " +
                (report.violations.empty() ? "?" : report.violations.front()));
  }
}

}  // namespace

namespace {

/// The shared case kernel: `rng` has already produced the platform (or
/// is fresh when the platform came from a cache) and now drives payoffs
/// and the LPRR coins. When `arena` is non-null every LP solve in the
/// case goes through it (shared column analysis, zero steady-state
/// allocation); the numbers are identical either way.
CaseResult run_case_on(const CaseConfig& config, const platform::Platform& plat,
                       Rng& rng, lp::SolveArena* arena) {
  std::vector<double> payoffs(plat.num_clusters());
  for (double& p : payoffs)
    p = rng.uniform(1.0 - config.payoff_spread, 1.0 + config.payoff_spread);
  const core::SteadyStateProblem problem(plat, payoffs, config.objective);

  // Fresh per call: LpWarmStart carries per-solve outputs (used/kind).
  core::LpWarmStart warm;
  warm.arena = arena;
  core::LpWarmStart* warm_ptr = arena != nullptr ? &warm : nullptr;

  CaseResult out;
  WallTimer timer;

  timer.reset();
  const auto bound = core::lp_upper_bound(problem, {}, warm_ptr);
  out.t_lp = {timer.seconds(), 1};
  if (bound.status != lp::SolveStatus::Optimal) return out;
  out.lp = bound.objective;

  timer.reset();
  const auto g = core::run_greedy(problem, config.greedy);
  out.t_g = {timer.seconds(), 0};
  check_valid(problem, g, "G");
  out.g = g.objective;

  if (config.with_lpr) {
    timer.reset();
    const auto lpr = core::run_lpr(problem, {}, warm_ptr);
    out.t_lpr = {timer.seconds(), lpr.lp_solves};
    if (lpr.status != lp::SolveStatus::Optimal) return out;
    check_valid(problem, lpr, "LPR");
    out.lpr = lpr.objective;
  }

  if (config.with_lprg) {
    timer.reset();
    const auto lprg = core::run_lprg(problem, {}, config.greedy, warm_ptr);
    out.t_lprg = {timer.seconds(), lprg.lp_solves};
    if (lprg.status != lp::SolveStatus::Optimal) return out;
    check_valid(problem, lprg, "LPRG");
    out.lprg = lprg.objective;
  }

  if (config.with_lprr) {
    Rng coin = rng.split();
    core::LprrOptions options;
    options.arena = arena;
    timer.reset();
    const auto lprr = core::run_lprr(problem, coin, options);
    out.t_lprr = {timer.seconds(), lprr.lp_solves};
    if (lprr.status != lp::SolveStatus::Optimal) return out;
    check_valid(problem, lprr, "LPRR");
    out.lprr = lprr.objective;
  }
  if (config.with_lprr_eq) {
    Rng coin = rng.split();
    core::LprrOptions options;
    options.equal_probability = true;
    options.arena = arena;
    const auto lprr_eq = core::run_lprr(problem, coin, options);
    if (lprr_eq.status != lp::SolveStatus::Optimal) return out;
    check_valid(problem, lprr_eq, "LPRR-EQ");
    out.lprr_eq = lprr_eq.objective;
  }
  if (config.with_lprr_oneshot) {
    core::LprrOptions options;
    options.resolve_between_fixings = false;
    options.arena = arena;
    {
      Rng coin = rng.split();
      const auto r = core::run_lprr(problem, coin, options);
      if (r.status != lp::SolveStatus::Optimal) return out;
      check_valid(problem, r, "LPRR-1SHOT");
      out.lprr_1shot = r.objective;
    }
    {
      Rng coin = rng.split();
      options.equal_probability = true;
      const auto r = core::run_lprr(problem, coin, options);
      if (r.status != lp::SolveStatus::Optimal) return out;
      check_valid(problem, r, "LPRR-1SHOT-EQ");
      out.lprr_1shot_eq = r.objective;
    }
  }

  out.ok = true;
  return out;
}

}  // namespace

CaseResult run_case(const CaseConfig& config) {
  require(config.payoff_spread >= 0.0 && config.payoff_spread < 1.0,
          "run_case: payoff_spread must be in [0, 1)");
  Rng rng(config.seed);
  const platform::Platform plat = generate_platform(config.params, rng);
  return run_case_on(config, plat, rng, nullptr);
}

CaseResult run_case(const CaseConfig& config, const platform::Platform& plat) {
  require(config.payoff_spread >= 0.0 && config.payoff_spread < 1.0,
          "run_case: payoff_spread must be in [0, 1)");
  Rng rng(config.seed);
  return run_case_on(config, plat, rng, nullptr);
}

CaseResult run_case(const CaseConfig& config, lp::BatchSolver& lps) {
  require(config.payoff_spread >= 0.0 && config.payoff_spread < 1.0,
          "run_case: payoff_spread must be in [0, 1)");
  Rng rng(config.seed);
  const platform::Platform plat = generate_platform(config.params, rng);
  return run_case_on(config, plat, rng, &lps.local_arena());
}

CaseResult run_case(const CaseConfig& config, const platform::Platform& plat,
                    lp::BatchSolver& lps) {
  require(config.payoff_spread >= 0.0 && config.payoff_spread < 1.0,
          "run_case: payoff_spread must be in [0, 1)");
  Rng rng(config.seed);
  return run_case_on(config, plat, rng, &lps.local_arena());
}

std::vector<CaseResult> run_cases(const std::vector<CaseConfig>& configs, int jobs) {
  require(jobs >= 0, "run_cases: negative job count");
  std::vector<CaseResult> results(configs.size());
  lp::BatchSolver batch;  // shared analysis; one arena per worker thread
  if (configs.size() <= 1 || jobs == 1) {
    for (std::size_t i = 0; i < configs.size(); ++i)
      results[i] = run_case(configs[i], batch);
    return results;
  }
  ThreadPool pool(static_cast<std::size_t>(jobs));
  // Chunk size 1: cases are coarse (milliseconds to seconds each) and
  // often cost-skewed, so per-case dynamic pull is the right grain.
  parallel_for(pool, 0, configs.size(),
               [&](std::size_t i) { results[i] = run_case(configs[i], batch); }, 1);
  return results;
}

platform::GeneratorParams sample_grid_params(const platform::Table1Grid& grid,
                                             int num_clusters, Rng& rng) {
  platform::GeneratorParams p;
  p.num_clusters = num_clusters;
  p.connectivity = grid.connectivity[rng.index(grid.connectivity.size())];
  p.heterogeneity = grid.heterogeneity[rng.index(grid.heterogeneity.size())];
  p.mean_gateway_bw = grid.mean_gateway_bw[rng.index(grid.mean_gateway_bw.size())];
  p.mean_backbone_bw =
      grid.mean_backbone_bw[rng.index(grid.mean_backbone_bw.size())];
  p.mean_max_connections =
      grid.mean_max_connections[rng.index(grid.mean_max_connections.size())];
  return p;
}

void RatioAccumulator::add(double method_value, double lp_value) {
  if (!(lp_value > 1e-12) || std::isnan(method_value)) return;
  acc_.add(method_value / lp_value);
}

double bench_scale() {
  const char* env = std::getenv("DLS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

std::uint64_t bench_seed() {
  const char* env = std::getenv("DLS_BENCH_SEED");
  if (env == nullptr) return 20240515ULL;
  return std::strtoull(env, nullptr, 10);
}

int bench_jobs() {
  const char* env = std::getenv("DLS_BENCH_JOBS");
  if (env == nullptr) return 0;
  const int v = std::atoi(env);
  return v > 0 ? v : 0;
}

int scaled(int n) {
  const double v = std::round(n * bench_scale());
  return v < 1.0 ? 1 : static_cast<int>(v);
}

}  // namespace dls::exp
