#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace dls::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Serve-level lifecycle series. Solver and rescheduler internals are
// counted one layer down (lp/, online/); these cover what the daemon
// itself decides: admission outcomes and load lifecycles.
/// Response-time buckets (virtual seconds). Loads drain over fluid
/// schedules, so responses span replay pacing, not network latency:
/// a decade-and-thirds ladder up to 10^4 keeps every realistic trace
/// inside the finite buckets.
const std::vector<double>& response_buckets() {
  static const std::vector<double> buckets = {0.1,  0.3,   1.0,   3.0,
                                              10.0, 30.0,  100.0, 300.0,
                                              1e3,  3e3,   1e4};
  return buckets;
}

struct ServeObs {
  obs::Counter admitted, rej_overload, rej_absent, rej_draining;
  obs::Counter completed, cancelled, aborted;
  obs::Histogram resp_completed, resp_cancelled, resp_aborted;
  obs::Gauge active;
  ServeObs() {
    auto& reg = obs::registry();
    const std::string arr = "dls_serve_arrivals_total";
    const std::string arr_help = "Arrival requests by admission outcome";
    admitted = reg.counter(arr, arr_help, "outcome=\"admitted\"");
    rej_overload = reg.counter(arr, arr_help, "outcome=\"rejected_overload\"");
    rej_absent = reg.counter(arr, arr_help, "outcome=\"rejected_absent\"");
    rej_draining = reg.counter(arr, arr_help, "outcome=\"rejected_draining\"");
    const std::string dep = "dls_serve_departures_total";
    const std::string dep_help = "Load departures by reason";
    completed = reg.counter(dep, dep_help, "reason=\"completed\"");
    cancelled = reg.counter(dep, dep_help, "reason=\"cancelled\"");
    aborted = reg.counter(dep, dep_help, "reason=\"aborted_churn\"");
    const std::string resp = "dls_serve_response_seconds";
    const std::string resp_help =
        "Load response time (virtual seconds, arrival to departure) by outcome";
    resp_completed =
        reg.histogram(resp, resp_help, response_buckets(), "outcome=\"completed\"");
    resp_cancelled =
        reg.histogram(resp, resp_help, response_buckets(), "outcome=\"cancelled\"");
    resp_aborted = reg.histogram(resp, resp_help, response_buckets(),
                                 "outcome=\"aborted_churn\"");
    active = reg.gauge("dls_serve_active_loads", "Loads currently draining");
  }
};

ServeObs& serve_obs() {
  static ServeObs handles;
  return handles;
}

}  // namespace

const char* to_string(Admit a) {
  switch (a) {
    case Admit::Admitted: return "admitted";
    case Admit::RejectedOverload: return "rejected_overload";
    case Admit::RejectedAbsent: return "rejected_absent";
    case Admit::RejectedDraining: return "rejected_draining";
  }
  return "?";
}

ServeEngine::ServeEngine(platform::Platform base, EngineOptions options)
    : options_(options),
      dyn_(std::move(base)),
      scheduler_(dyn_.plat(), options.sched) {
  require(options_.max_loads >= 0, "serve: max_loads cannot be negative");
  require(options_.load_eps > 0.0, "serve: load_eps must be positive");
  refresh_total_speed();
}

void ServeEngine::refresh_total_speed() {
  total_speed_ = 0.0;
  for (int k = 0; k < dyn_.plat().num_clusters(); ++k)
    total_speed_ += dyn_.plat().cluster(k).speed;
}

void ServeEngine::reschedule() {
  for (int app : active_ids_) rate_[app] = 0.0;
  if (active_ids_.empty()) {
    serve_obs().active.set(0.0);
    return;
  }
  loads_scratch_.clear();
  for (int app : active_ids_)
    loads_scratch_.push_back({app, apps_[app].cluster, apps_[app].payoff});
  const online::MultiReschedule r = scheduler_.reschedule(loads_scratch_);
  ++counters_.reschedules;
  if (r.warm) {
    ++counters_.warm_solves;
    counters_.repaired_solves += r.repaired;
  } else {
    ++counters_.cold_solves;
  }
  for (std::size_t i = 0; i < active_ids_.size(); ++i)
    rate_[active_ids_[i]] = r.rate[i];
  serve_obs().active.set(static_cast<double>(active_ids_.size()));
  obs::trace("serve.reschedule",
             "loads=" + std::to_string(active_ids_.size()) +
                 " start=" + (r.warm ? (r.repaired ? "repaired" : "warm")
                                     : "cold") +
                 " objective=" + std::to_string(r.objective));
}

double ServeEngine::next_completion() const {
  double t = kInf;
  for (int app : active_ids_) {
    if (rate_[app] <= 0.0) continue;
    t = std::min(t, now_ + remaining_[app] / rate_[app]);
  }
  return t;
}

void ServeEngine::drain_interval(double vt) {
  const double dt = vt - now_;
  if (dt > 0.0) {
    double work_rate = 0.0;
    weighted_rates_scratch_.clear();
    for (int app : active_ids_) {
      work_rate += rate_[app];
      weighted_rates_scratch_.push_back(apps_[app].payoff * rate_[app]);
      remaining_[app] -= rate_[app] * dt;
    }
    metrics_.record_interval(dt, work_rate, total_speed_,
                             weighted_rates_scratch_);
  }
  now_ = std::max(now_, vt);
}

void ServeEngine::complete_due() {
  bool changed = false;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < active_ids_.size(); ++i) {
    const int app = active_ids_[i];
    if (remaining_[app] > options_.load_eps) {
      active_ids_[keep++] = app;
      continue;
    }
    online::AppRecord& rec = apps_[app];
    rec.depart = now_;
    rec.outcome = online::AppOutcome::Completed;
    const double speed = dyn_.plat().cluster(rec.cluster).speed;
    rec.slowdown = speed > 0.0 ? rec.response() / (rec.load / speed) : 0.0;
    metrics_.record_completion(rec);
    ++counters_.completed;
    serve_obs().completed.inc();
    serve_obs().resp_completed.observe(rec.response());
    obs::trace("serve.complete", "id=" + std::to_string(app) +
                                     " response=" +
                                     std::to_string(rec.response()));
    changed = true;
  }
  active_ids_.resize(keep);
  if (changed) reschedule();
}

void ServeEngine::advance_to(double vt) {
  for (;;) {
    const double t_drain = next_completion();
    if (!std::isfinite(t_drain) || !(t_drain <= vt)) break;
    drain_interval(t_drain);
    complete_due();
  }
  drain_interval(vt);
}

ServeEngine::ArriveResult ServeEngine::arrive(double vt, int cluster,
                                              double payoff, double load,
                                              std::string name) {
  require(cluster >= 0 && cluster < dyn_.plat().num_clusters(),
          "serve: arrival cluster out of range");
  require(payoff > 0.0, "serve: arrival payoff must be positive");
  require(load > options_.load_eps, "serve: arrival load must exceed load_eps");
  advance_to(vt);
  ++counters_.arrivals;

  ArriveResult out;
  if (draining_) {
    out.admit = Admit::RejectedDraining;
    ++counters_.rejected_draining;
    serve_obs().rej_draining.inc();
  } else if (!dyn_.cluster_present(cluster)) {
    out.admit = Admit::RejectedAbsent;
    ++counters_.rejected_absent;
    serve_obs().rej_absent.inc();
  } else if (options_.max_loads > 0 &&
             active_count() >= options_.max_loads) {
    out.admit = Admit::RejectedOverload;
    ++counters_.rejected_overload;
    serve_obs().rej_overload.inc();
  } else {
    out.admit = Admit::Admitted;
    out.id = static_cast<int>(apps_.size());
    online::AppRecord rec;
    rec.id = out.id;
    rec.cluster = cluster;
    rec.payoff = payoff;
    rec.load = load;
    rec.arrival = vt;
    rec.admit = vt;
    apps_.push_back(rec);
    names_.push_back(std::move(name));
    remaining_.push_back(load);
    rate_.push_back(0.0);
    active_ids_.push_back(out.id);
    ++counters_.admitted;
    serve_obs().admitted.inc();
    counters_.peak_active = std::max(counters_.peak_active, active_count());
    reschedule();
  }
  obs::trace("serve.arrive",
             "cluster=" + std::to_string(cluster) + " load=" +
                 std::to_string(load) + " outcome=" + to_string(out.admit));
  return out;
}

bool ServeEngine::depart(double vt, int id) {
  advance_to(vt);
  const auto it = std::find(active_ids_.begin(), active_ids_.end(), id);
  if (it == active_ids_.end()) return false;
  active_ids_.erase(it);
  online::AppRecord& rec = apps_[id];
  rec.depart = vt;
  rec.outcome = online::AppOutcome::Cancelled;
  ++counters_.cancelled;
  serve_obs().cancelled.inc();
  serve_obs().resp_cancelled.observe(rec.response());
  obs::trace("serve.cancel", "id=" + std::to_string(id));
  reschedule();
  return true;
}

dynamics::ChangeScope ServeEngine::apply_event(double vt,
                                               const dynamics::PlatformEvent& ev) {
  advance_to(vt);
  const dynamics::ChangeScope scope = dyn_.apply(ev);
  ++counters_.platform_events;
  obs::trace("serve.platform_event",
             std::string(dynamics::to_string(ev.kind)) + " target=" +
                 std::to_string(ev.target) + " scope=" +
                 dynamics::to_string(scope));

  bool support_changed = false;
  if (ev.kind == dynamics::EventKind::ClusterLeave) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_ids_.size(); ++i) {
      const int app = active_ids_[i];
      if (apps_[app].cluster != ev.target) {
        active_ids_[keep++] = app;
        continue;
      }
      online::AppRecord& rec = apps_[app];
      rec.depart = now_;
      rec.outcome = online::AppOutcome::AbortedChurn;
      ++counters_.aborted_churn;
      serve_obs().aborted.inc();
      serve_obs().resp_aborted.observe(rec.response());
      support_changed = true;
    }
    active_ids_.resize(keep);
  }

  if (scope != dynamics::ChangeScope::None) {
    if (scope == dynamics::ChangeScope::Capacity) {
      scheduler_.platform_capacity_changed();
    } else {
      scheduler_.platform_topology_changed();
    }
    refresh_total_speed();
    reschedule();
  } else if (support_changed) {
    reschedule();
  }
  return scope;
}

}  // namespace dls::serve
