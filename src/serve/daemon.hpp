// The `dls serve` daemon: a poll-loop TCP server wrapping ServeEngine.
//
// One listening socket, non-blocking accepted connections, one
// poll_sockets() round per iteration — the same single-threaded event
// loop shape as the dist coordinator, so nothing in the engine needs
// locking. Each connection speaks HTTP (GET /metrics, /health, /stats;
// POST /arrive, /depart, /event) or the newline line protocol
// (http.hpp decides per request), and HTTP responses close the
// connection while line connections stay open for pipelining.
//
// Replay: `--replay trace.workload` (plus optional `--events`) feeds a
// recorded stream through the live engine. Virtual time advances at
// `speed` times wall clock (0 = as fast as possible), and the engine
// is only ever advanced to *exact* event times — wall jitter shifts
// when work happens, never what happens, which is what makes two
// replays of the same trace end with bit-identical counters.
//
// Lifecycle: ok → (SIGTERM / `shutdown`) → draining → stopped. On
// drain the daemon stops feeding replay arrivals, rejects client
// arrivals (counted), fast-forwards the remaining fluid schedule, and
// exits once idle — holding the socket open for at least
// `drain_grace` seconds so an operator can scrape the final state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dynamics/events.hpp"
#include "online/workload.hpp"
#include "platform/platform.hpp"
#include "serve/engine.hpp"

namespace dls::serve {

struct DaemonOptions {
  std::uint16_t port = 0;      ///< 0 = ephemeral
  std::string port_file;       ///< written with the bound port
  EngineOptions engine;

  online::Workload replay;       ///< optional recorded arrivals
  dynamics::EventTrace events;   ///< optional platform events (replay)
  double speed = 1.0;            ///< virtual seconds per wall second; <= 0 = max
  bool exit_after_replay = false;  ///< drain and stop once the replay is done

  std::string trace_file;        ///< JSONL span sink ("" = none)
  std::size_t trace_capacity = 1024;
  std::size_t max_request = 8192;  ///< per-request byte bound (http.hpp)
  int idle_poll_ms = 200;
  double drain_grace = 0.0;  ///< min wall seconds to keep serving while draining

  /// Polled once per loop; true requests a drain (the CLI wires this to
  /// SIGTERM/SIGINT). Optional.
  std::function<bool()> stop_requested;
  std::function<void(const std::string&)> log;
};

struct DaemonReport {
  EngineCounters counters;
  std::uint64_t requests = 0;      ///< requests served (HTTP + line)
  std::uint64_t bad_requests = 0;  ///< protocol errors (connection dropped)
  std::uint16_t port = 0;          ///< the port actually bound
  std::string exit_reason;         ///< "drained" | "replay-complete"
};

/// Runs the daemon until a drain completes. Throws dls::Error on setup
/// failures (bind, trace sink, invalid replay).
DaemonReport run_daemon(platform::Platform plat, const DaemonOptions& options);

}  // namespace dls::serve
