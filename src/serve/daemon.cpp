#include "serve/daemon.hpp"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/http.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"
#include "support/timer.hpp"

namespace dls::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct DaemonObs {
  obs::Counter req_metrics, req_health, req_stats, req_mutate, req_other;
  obs::Histogram loop_lag;
  obs::Gauge draining;
  DaemonObs() {
    auto& reg = obs::registry();
    const std::string req = "dls_serve_requests_total";
    const std::string req_help = "Requests served, by endpoint";
    req_metrics = reg.counter(req, req_help, "endpoint=\"metrics\"");
    req_health = reg.counter(req, req_help, "endpoint=\"health\"");
    req_stats = reg.counter(req, req_help, "endpoint=\"stats\"");
    req_mutate = reg.counter(req, req_help, "endpoint=\"mutate\"");
    req_other = reg.counter(req, req_help, "endpoint=\"other\"");
    loop_lag = reg.histogram("dls_serve_event_loop_lag_seconds",
                             "Poll wakeups behind their deadline",
                             obs::default_time_buckets());
    draining = reg.gauge("dls_serve_draining",
                         "1 while the daemon drains toward shutdown");
  }
};

DaemonObs& daemon_obs() {
  static DaemonObs handles;
  return handles;
}

struct Conn {
  Socket sock;
  std::string in;
};

const dynamics::EventKind kAllKinds[] = {
    dynamics::EventKind::LinkBandwidth, dynamics::EventKind::LinkMaxConnect,
    dynamics::EventKind::LinkDown,      dynamics::EventKind::LinkUp,
    dynamics::EventKind::GatewayBandwidth, dynamics::EventKind::ClusterLeave,
    dynamics::EventKind::ClusterJoin,   dynamics::EventKind::RouterDown,
    dynamics::EventKind::RouterUp,
};

bool parse_event_kind(const std::string& token, dynamics::EventKind& out) {
  for (const dynamics::EventKind kind : kAllKinds) {
    if (token == dynamics::to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string word;
  while (is >> word) out.push_back(std::move(word));
  return out;
}

bool parse_double_arg(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && std::isfinite(out);
}

bool parse_int_arg(const std::string& s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<int>(v);
  return out == v;
}

}  // namespace

// The daemon proper: owns the engine, the replay cursors, and the
// connection table. run_daemon() constructs one and runs its loop.
class Daemon {
public:
  Daemon(platform::Platform plat, const DaemonOptions& options)
      : options_(options), engine_(std::move(plat), options.engine) {}

  DaemonReport run();

private:
  // ---- virtual-time plumbing ------------------------------------------------

  [[nodiscard]] double wall_elapsed() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }
  /// The virtual time the wall clock has paid for. Infinite at
  /// unlimited speed: every queued replay item is immediately due.
  [[nodiscard]] double vt_budget() const {
    return options_.speed > 0.0 ? wall_elapsed() * options_.speed : kInf;
  }
  /// Timestamp for an external mutation: wherever the replay pace has
  /// gotten to, never behind the engine.
  [[nodiscard]] double vt_now() const {
    const double paced = options_.speed > 0.0 ? wall_elapsed() * options_.speed
                                              : engine_.now();
    return std::max(engine_.now(), paced);
  }

  /// Earliest pending virtual event (replay arrival, replay platform
  /// event, or fluid completion); kInf when none.
  [[nodiscard]] double next_due() const {
    double t = engine_.next_completion();
    if (next_arrival_ < options_.replay.arrivals.size())
      t = std::min(t, options_.replay.arrivals[next_arrival_].time);
    if (next_event_ < options_.events.events.size())
      t = std::min(t, options_.events.events[next_event_].time);
    return t;
  }

  /// Replays everything due under the wall budget, preserving
  /// run_multi's tie order (completions, then platform events, then
  /// arrivals). Bounded per call so sockets stay responsive at
  /// unlimited speed.
  void pump_replay() {
    const double budget = vt_budget();
    for (int step = 0; step < 512; ++step) {
      const double t_arr = next_arrival_ < options_.replay.arrivals.size()
                               ? options_.replay.arrivals[next_arrival_].time
                               : kInf;
      const double t_ev = next_event_ < options_.events.events.size()
                              ? options_.events.events[next_event_].time
                              : kInf;
      const double t_done = engine_.next_completion();
      const double t = std::min({t_arr, t_ev, t_done});
      // Note infinity <= infinity: an explicit finiteness check, or an
      // idle daemon at unlimited speed would advance_to(inf).
      if (!std::isfinite(t) || !(t <= budget)) break;
      if (t_done <= t_ev && t_done <= t_arr) {
        engine_.advance_to(t_done);
      } else if (t_ev <= t_arr) {
        (void)engine_.apply_event(t_ev, options_.events.events[next_event_++]);
      } else {
        const online::AppArrival& a = options_.replay.arrivals[next_arrival_++];
        (void)engine_.arrive(t_arr, a.cluster, a.payoff, a.load, a.name);
      }
    }
  }

  [[nodiscard]] bool replay_exhausted() const {
    return next_arrival_ >= options_.replay.arrivals.size() &&
           next_event_ >= options_.events.events.size();
  }

  void begin_drain(const std::string& why) {
    if (engine_.draining()) return;
    engine_.begin_drain();
    drain_started_ns_ = now_ns();
    daemon_obs().draining.set(1.0);
    obs::trace("serve.drain", why);
    say("draining (" + why + ")");
    // A drain abandons the replay pace: skip unfed arrivals/events and
    // fast-forward the remaining fluid schedule so shutdown is prompt
    // at any --speed.
    next_arrival_ = options_.replay.arrivals.size();
    next_event_ = options_.events.events.size();
    for (double t = engine_.next_completion(); std::isfinite(t);
         t = engine_.next_completion())
      engine_.advance_to(t);
  }

  // ---- responses ------------------------------------------------------------

  [[nodiscard]] std::string health_json() const {
    return std::string("{\"status\":\"") +
           (engine_.draining() ? "draining" : "ok") +
           "\",\"vt\":" + obs::format_double(engine_.now()) +
           ",\"active\":" + std::to_string(engine_.active_count()) + "}";
  }

  [[nodiscard]] std::string stats_json() const {
    const EngineCounters& c = engine_.counters();
    const online::OnlineMetrics& m = engine_.metrics();
    std::string out = "{";
    out += "\"vt\":" + obs::format_double(engine_.now());
    out += ",\"active\":" + std::to_string(engine_.active_count());
    out += ",\"peak_active\":" + std::to_string(c.peak_active);
    out += ",\"arrivals\":" + std::to_string(c.arrivals);
    out += ",\"admitted\":" + std::to_string(c.admitted);
    out += ",\"rejected_overload\":" + std::to_string(c.rejected_overload);
    out += ",\"rejected_absent\":" + std::to_string(c.rejected_absent);
    out += ",\"rejected_draining\":" + std::to_string(c.rejected_draining);
    out += ",\"completed\":" + std::to_string(c.completed);
    out += ",\"cancelled\":" + std::to_string(c.cancelled);
    out += ",\"aborted_churn\":" + std::to_string(c.aborted_churn);
    out += ",\"reschedules\":" + std::to_string(c.reschedules);
    out += ",\"warm_solves\":" + std::to_string(c.warm_solves);
    out += ",\"cold_solves\":" + std::to_string(c.cold_solves);
    out += ",\"repaired_solves\":" + std::to_string(c.repaired_solves);
    out += ",\"platform_events\":" + std::to_string(c.platform_events);
    out += ",\"replay_pending\":" +
           std::to_string(options_.replay.arrivals.size() - next_arrival_ +
                          options_.events.events.size() - next_event_);
    out += ",\"response_mean\":" + obs::format_double(m.response.mean());
    out += ",\"slowdown_mean\":" + obs::format_double(m.slowdown.mean());
    out += ",\"utilization_mean\":" + obs::format_double(m.utilization.mean());
    out += ",\"fairness_mean\":" + obs::format_double(m.fairness.mean());
    out += ",\"draining\":";
    out += engine_.draining() ? "true" : "false";
    out += "}";
    return out;
  }

  /// Active-load inventory: one object per draining load with its
  /// identity, home cluster, age in virtual seconds, and current rate.
  [[nodiscard]] std::string loads_json() const {
    std::string out = "{\"vt\":" + obs::format_double(engine_.now());
    out += ",\"loads\":[";
    bool first = true;
    for (const int id : engine_.active_ids()) {
      const online::AppRecord& rec =
          engine_.apps()[static_cast<std::size_t>(id)];
      if (!first) out += ",";
      first = false;
      out += "{\"id\":" + std::to_string(id);
      const std::string& name = engine_.app_name(id);
      if (!name.empty()) out += ",\"name\":\"" + name + "\"";
      out += ",\"cluster\":" + std::to_string(rec.cluster);
      out += ",\"payoff\":" + obs::format_double(rec.payoff);
      out += ",\"age\":" + obs::format_double(engine_.now() - rec.arrival);
      out += ",\"remaining\":" + obs::format_double(engine_.load_remaining(id));
      out += ",\"rate\":" + obs::format_double(engine_.load_rate(id));
      out += "}";
    }
    out += "]}";
    return out;
  }

  /// Executes one mutation/query in line-protocol form; both protocols
  /// funnel here so HTTP POST and line commands behave identically.
  [[nodiscard]] std::string run_command(const std::vector<std::string>& words,
                                        bool& close_conn) {
    if (words.empty()) return "err empty command";
    const std::string& cmd = words[0];
    if (cmd == "ping") return "ok pong";
    if (cmd == "health") {
      daemon_obs().req_health.inc();
      return std::string("ok ") + (engine_.draining() ? "draining" : "ok");
    }
    if (cmd == "stats") {
      daemon_obs().req_stats.inc();
      return "ok " + stats_json();
    }
    if (cmd == "loads") {
      daemon_obs().req_stats.inc();
      return "ok " + loads_json();
    }
    if (cmd == "quit") {
      close_conn = true;
      return "ok bye";
    }
    if (cmd == "shutdown") {
      daemon_obs().req_mutate.inc();
      begin_drain("client shutdown request");
      return "ok draining";
    }
    if (cmd == "arrive") {
      daemon_obs().req_mutate.inc();
      if (words.size() < 4 || words.size() > 5)
        return "err usage: arrive <cluster> <payoff> <load> [name]";
      int cluster = 0;
      double payoff = 0.0, load = 0.0;
      if (!parse_int_arg(words[1], cluster) ||
          !parse_double_arg(words[2], payoff) ||
          !parse_double_arg(words[3], load))
        return "err arrive: malformed arguments";
      try {
        const ServeEngine::ArriveResult r = engine_.arrive(
            vt_now(), cluster, payoff, load, words.size() == 5 ? words[4] : "");
        std::string reply = std::string("ok ") + to_string(r.admit);
        if (r.admit == Admit::Admitted) reply += " id=" + std::to_string(r.id);
        return reply;
      } catch (const Error& e) {
        return std::string("err ") + e.what();
      }
    }
    if (cmd == "depart") {
      daemon_obs().req_mutate.inc();
      int id = 0;
      if (words.size() != 2 || !parse_int_arg(words[1], id))
        return "err usage: depart <id>";
      return engine_.depart(vt_now(), id) ? "ok cancelled" : "err not active";
    }
    if (cmd == "event") {
      daemon_obs().req_mutate.inc();
      if (words.size() < 3 || words.size() > 4)
        return "err usage: event <kind> <target> [value]";
      dynamics::PlatformEvent ev;
      if (!parse_event_kind(words[1], ev.kind)) {
        std::string reply = "err unknown event kind; one of:";
        for (const dynamics::EventKind kind : kAllKinds)
          reply += std::string(" ") + dynamics::to_string(kind);
        return reply;
      }
      if (!parse_int_arg(words[2], ev.target)) return "err malformed target";
      if (dynamics::has_value(ev.kind) &&
          (words.size() != 4 || !parse_double_arg(words[3], ev.value)))
        return "err event kind needs a value";
      ev.time = vt_now();
      try {
        const dynamics::ChangeScope scope = engine_.apply_event(ev.time, ev);
        return std::string("ok ") + dynamics::to_string(scope);
      } catch (const Error& e) {
        return std::string("err ") + e.what();
      }
    }
    daemon_obs().req_other.inc();
    return "err unknown command '" + cmd + "'";
  }

  [[nodiscard]] std::string handle_http(const Request& req) {
    std::map<std::string, std::string> query;
    const std::string path = split_target(req.target, query);
    const bool head = req.method == "HEAD";
    const auto respond = [&](int status, const std::string& reason,
                             const std::string& type, const std::string& body) {
      return http_response(status, reason, type, head ? "" : body);
    };

    if (path == "/metrics") {
      daemon_obs().req_metrics.inc();
      return respond(200, "OK", "text/plain; version=0.0.4",
                     obs::to_prometheus(obs::registry().snapshot()));
    }
    if (path == "/health") {
      daemon_obs().req_health.inc();
      return respond(200, "OK", "application/json", health_json() + "\n");
    }
    if (path == "/stats") {
      daemon_obs().req_stats.inc();
      return respond(200, "OK", "application/json", stats_json() + "\n");
    }
    if (path == "/loads") {
      daemon_obs().req_stats.inc();
      return respond(200, "OK", "application/json", loads_json() + "\n");
    }
    if (req.method == "POST" &&
        (path == "/arrive" || path == "/depart" || path == "/event" ||
         path == "/shutdown")) {
      // Re-shape the query into the line command and share its logic.
      std::vector<std::string> words;
      words.push_back(path.substr(1));
      if (path == "/arrive") {
        words.push_back(query.count("cluster") ? query["cluster"] : "");
        words.push_back(query.count("payoff") ? query["payoff"] : "1");
        words.push_back(query.count("load") ? query["load"] : "");
        if (query.count("name")) words.push_back(query["name"]);
      } else if (path == "/depart") {
        words.push_back(query.count("id") ? query["id"] : "");
      } else if (path == "/event") {
        words.push_back(query.count("kind") ? query["kind"] : "");
        words.push_back(query.count("target") ? query["target"] : "");
        if (query.count("value")) words.push_back(query["value"]);
      }
      bool close_ignored = false;
      const std::string result = run_command(words, close_ignored);
      const bool ok = result.rfind("ok", 0) == 0;
      return respond(ok ? 200 : 400, ok ? "OK" : "Bad Request",
                     "text/plain", result + "\n");
    }
    daemon_obs().req_other.inc();
    return respond(404, "Not Found", "text/plain",
                   "unknown endpoint " + path + "\n");
  }

  /// Parses and serves everything complete in the connection's buffer.
  /// False when the connection must close.
  bool service(Conn& conn, DaemonReport& report) {
    for (;;) {
      const Request req = parse_request(conn.in, options_.max_request);
      if (req.kind == Request::Kind::Incomplete) return true;
      if (req.kind == Request::Kind::Error) {
        ++report.bad_requests;
        daemon_obs().req_other.inc();
        (void)send_all(conn.sock, req.error.data(), req.error.size());
        return false;
      }
      conn.in.erase(0, req.consumed);
      ++report.requests;
      if (req.kind == Request::Kind::Http) {
        const std::string response = handle_http(req);
        // HTTP responses close the connection (Connection: close) —
        // curl- and /dev/tcp-friendly. Line connections stay open.
        (void)send_all(conn.sock, response.data(), response.size());
        return false;
      }
      if (req.line.empty()) continue;  // bare newline keepalive
      bool close_conn = false;
      const std::string reply = run_command(split_words(req.line), close_conn) +
                                "\n";
      if (!send_all(conn.sock, reply.data(), reply.size())) return false;
      if (close_conn) return false;
    }
  }

  void say(const std::string& line) const {
    if (options_.log) options_.log(line);
  }

  DaemonOptions options_;
  ServeEngine engine_;
  std::size_t next_arrival_ = 0;
  std::size_t next_event_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t drain_started_ns_ = 0;
  std::map<int, Conn> conns_;
};

DaemonReport Daemon::run() {
  require(options_.speed >= 0.0, "serve: --speed cannot be negative");
  options_.replay.validate(engine_.plat().num_clusters());
  options_.events.validate(engine_.plat());
  if (!options_.trace_file.empty()) {
    obs::trace_ring().set_capacity(options_.trace_capacity);
    obs::trace_ring().set_sink(options_.trace_file);
  }
  daemon_obs().draining.set(0.0);

  Socket listener = tcp_listen(options_.port);
  set_nonblocking(listener, true);
  DaemonReport report;
  report.port = local_port(listener);
  if (!options_.port_file.empty()) {
    std::ofstream pf(options_.port_file, std::ios::trunc);
    require(pf.good(), "serve: cannot write port file '" + options_.port_file +
                           "'");
    pf << report.port << "\n";
  }
  say("listening on port " + std::to_string(report.port) + " (" +
      std::to_string(options_.replay.arrivals.size()) + " replay arrivals, " +
      std::to_string(options_.events.events.size()) + " replay events, speed " +
      (options_.speed > 0.0 ? obs::format_double(options_.speed) : "max") +
      ")");
  obs::trace("serve.start", "port=" + std::to_string(report.port));

  start_ns_ = now_ns();
  std::string exit_reason;
  char buf[65536];

  while (true) {
    if (options_.stop_requested && options_.stop_requested())
      begin_drain("stop requested");

    pump_replay();

    if (engine_.draining()) {
      const double held =
          static_cast<double>(now_ns() - drain_started_ns_) * 1e-9;
      if (engine_.active_count() == 0 && held >= options_.drain_grace) {
        if (exit_reason.empty()) exit_reason = "drained";
        break;
      }
    } else if (options_.exit_after_replay && replay_exhausted() &&
               engine_.active_count() == 0 &&
               !std::isfinite(engine_.next_completion())) {
      begin_drain("replay complete");
      exit_reason = "replay-complete";
      const double held =
          static_cast<double>(now_ns() - drain_started_ns_) * 1e-9;
      if (held >= options_.drain_grace) break;
    }

    // Sleep until the next replay item is due (wall time), the idle
    // tick, or socket activity — whichever first.
    int timeout_ms = options_.idle_poll_ms;
    const double due = next_due();
    if (std::isfinite(due)) {
      if (options_.speed > 0.0) {
        const double wall_due = due / options_.speed - wall_elapsed();
        timeout_ms = std::clamp(static_cast<int>(wall_due * 1e3), 0,
                                options_.idle_poll_ms);
      } else {
        timeout_ms = 0;  // unlimited speed: keep pumping
      }
    }

    std::vector<::pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const auto& [fd, conn] : conns_) fds.push_back({fd, POLLIN, 0});
    const std::uint64_t deadline_ns =
        now_ns() + static_cast<std::uint64_t>(timeout_ms) * 1'000'000ull;
    const int ready = poll_sockets(fds, timeout_ms);
    if (ready == 0) {
      // Timer-driven wakeup: how late past the deadline did we wake?
      const std::uint64_t woke = now_ns();
      if (woke > deadline_ns)
        daemon_obs().loop_lag.observe(static_cast<double>(woke - deadline_ns) *
                                      1e-9);
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        Socket accepted = tcp_accept(listener);
        if (!accepted.valid()) break;
        set_nonblocking(accepted, true);
        const int fd = accepted.fd();
        Conn conn;
        conn.sock = std::move(accepted);
        conns_.emplace(fd, std::move(conn));
      }
    }

    std::vector<int> to_close;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool open = true;
      try {
        for (;;) {
          const long got = recv_some(conn.sock, buf, sizeof buf);
          if (got < 0) break;  // drained
          if (got == 0) {      // EOF
            open = false;
            break;
          }
          conn.in.append(buf, static_cast<std::size_t>(got));
        }
        if (open) open = service(conn, report);
      } catch (const Error&) {
        open = false;
      }
      if (!open) to_close.push_back(fds[i].fd);
    }
    for (const int fd : to_close) conns_.erase(fd);
  }

  report.counters = engine_.counters();
  report.exit_reason = exit_reason;
  say("exit (" + exit_reason + "): " +
      std::to_string(report.counters.completed) + " completed, " +
      std::to_string(report.counters.cancelled) + " cancelled, " +
      std::to_string(report.counters.aborted_churn) + " aborted, " +
      std::to_string(report.requests) + " request(s) served");
  obs::trace("serve.stop", exit_reason);
  if (!options_.trace_file.empty()) obs::trace_ring().set_sink("");
  daemon_obs().draining.set(0.0);
  return report;
}

DaemonReport run_daemon(platform::Platform plat, const DaemonOptions& options) {
  Daemon daemon(std::move(plat), options);
  return daemon.run();
}

}  // namespace dls::serve
