// Request parsing for the serving daemon's dual protocol. A connection
// speaks either
//   * minimal HTTP/1.x — "GET /metrics HTTP/1.1" + headers + blank
//     line (no bodies; every daemon endpoint is parameterized through
//     the request target), or
//   * the line protocol — one newline-terminated command ("arrive 3
//     12.5 4000 app0"), the interactive/netcat-friendly twin of the
//     dist layer's framed protocol.
// The sniffing rule: a first token of GET/POST/HEAD means HTTP,
// anything else is a line command. Parsing is incremental and
// pipelining-safe — parse_request() consumes exactly one request and
// reports how many bytes it used, so a buffer holding one and a half
// requests yields the first and keeps the remainder.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace dls::serve {

struct Request {
  enum class Kind {
    Incomplete,  ///< need more bytes; nothing consumed
    Http,        ///< method/target filled
    Line,        ///< line filled (trimmed, may be empty)
    Error,       ///< protocol violation; error filled, connection must close
  };
  Kind kind = Kind::Incomplete;
  std::string method;  ///< HTTP: "GET" | "POST" | "HEAD"
  std::string target;  ///< HTTP: "/metrics", "/arrive?cluster=2", ...
  std::string line;    ///< line protocol: the whole command line
  std::string error;   ///< Kind::Error: human-readable reason
  std::size_t consumed = 0;  ///< bytes of input this request used
};

/// Parses the first complete request out of `input`. `max_request`
/// bounds how many bytes one request may span (request line + headers
/// for HTTP, one line for the line protocol); exceeding it yields
/// Kind::Error rather than unbounded buffering.
[[nodiscard]] Request parse_request(std::string_view input,
                                    std::size_t max_request = 8192);

/// Splits the query part of a target ("/arrive?cluster=2&load=4e3")
/// into the path and a key→value map. No percent-decoding beyond '+'
/// → ' ' — values here are numbers and short names.
[[nodiscard]] std::string split_target(const std::string& target,
                                       std::map<std::string, std::string>& query);

/// Serializes a minimal HTTP response (status line, Content-Type,
/// Content-Length, Connection: close, body).
[[nodiscard]] std::string http_response(int status, const std::string& reason,
                                        const std::string& content_type,
                                        const std::string& body);

}  // namespace dls::serve
