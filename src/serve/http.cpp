#include "serve/http.hpp"

namespace dls::serve {

namespace {

bool is_http_method(std::string_view token) {
  return token == "GET" || token == "POST" || token == "HEAD";
}

std::string_view first_token(std::string_view line) {
  const std::size_t start = line.find_first_not_of(' ');
  if (start == std::string_view::npos) return {};
  std::size_t end = line.find(' ', start);
  if (end == std::string_view::npos) end = line.size();
  return line.substr(start, end - start);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

Request parse_request(std::string_view input, std::size_t max_request) {
  Request req;
  if (input.empty()) return req;

  const std::size_t eol = input.find('\n');
  if (eol == std::string_view::npos) {
    if (input.size() > max_request) {
      req.kind = Request::Kind::Error;
      req.error = "request line exceeds " + std::to_string(max_request) +
                  " bytes";
    }
    return req;  // truncated request line: wait for the rest
  }

  const std::string_view line = trim(input.substr(0, eol));
  if (!is_http_method(first_token(line))) {
    if (eol + 1 > max_request) {
      req.kind = Request::Kind::Error;
      req.error = "command line exceeds " + std::to_string(max_request) +
                  " bytes";
      return req;
    }
    req.kind = Request::Kind::Line;
    req.line.assign(line);
    req.consumed = eol + 1;
    return req;
  }

  // HTTP: the request spans up to the blank line ending the headers
  // (either CRLF or bare LF convention — take whichever ends first).
  std::size_t head_end = std::string_view::npos;
  if (const std::size_t crlf = input.find("\n\r\n");
      crlf != std::string_view::npos)
    head_end = crlf + 3;
  if (const std::size_t lf = input.find("\n\n");
      lf != std::string_view::npos &&
      (head_end == std::string_view::npos || lf + 2 < head_end))
    head_end = lf + 2;
  if (head_end == std::string_view::npos) {
    if (input.size() > max_request) {
      req.kind = Request::Kind::Error;
      req.error = "request headers exceed " + std::to_string(max_request) +
                  " bytes";
    }
    return req;  // headers still arriving
  }
  if (head_end > max_request) {
    req.kind = Request::Kind::Error;
    req.error = "request headers exceed " + std::to_string(max_request) +
                " bytes";
    return req;
  }

  // "METHOD SP target SP HTTP/x.y"
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
    req.kind = Request::Kind::Error;
    req.error = "malformed HTTP request line";
    return req;
  }
  req.kind = Request::Kind::Http;
  req.method.assign(line.substr(0, sp1));
  req.target.assign(trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  req.consumed = head_end;
  if (req.target.empty()) {
    req.kind = Request::Kind::Error;
    req.error = "empty request target";
  }
  return req;
}

std::string split_target(const std::string& target,
                         std::map<std::string, std::string>& query) {
  query.clear();
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) return target;
  std::size_t pos = qmark + 1;
  while (pos <= target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      std::string key = pair.substr(0, eq);
      std::string value = eq == std::string::npos ? "" : pair.substr(eq + 1);
      for (char& c : value)
        if (c == '+') c = ' ';
      query[std::move(key)] = std::move(value);
    }
    pos = amp + 1;
  }
  return target.substr(0, qmark);
}

std::string http_response(int status, const std::string& reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace dls::serve
