// Live counterpart of OnlineEngine::run_multi: the same event
// semantics — fluid drains between events, completions at exact virtual
// times, one shared-LP reschedule per batch of changes — but driven
// incrementally by external calls instead of a pre-recorded workload.
// The daemon (daemon.hpp) feeds it replayed traces and client requests;
// tests drive it directly.
//
// Virtual time is the engine's only clock. advance_to(vt) drains loads
// and fires completions up to vt; arrive/depart/apply_event stamp their
// mutation at the vt the caller supplies (the daemon maps wall clock to
// virtual time). Because state changes only at call boundaries and
// every call is deterministic in (vt, arguments), an identical call
// sequence yields bit-identical counters — the property serve_smoke
// asserts across two replays.
//
// Admission control: a max-concurrent-loads budget plus the platform
// presence check run_multi applies. Each reject outcome is counted
// separately so an operator can tell overload from churn from
// shutdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dynamics/dynamic_platform.hpp"
#include "online/metrics.hpp"
#include "online/rescheduler.hpp"
#include "platform/platform.hpp"

namespace dls::serve {

/// Outcome of an arrival request.
enum class Admit : unsigned char {
  Admitted,
  RejectedOverload,  ///< active set at the max_loads budget
  RejectedAbsent,    ///< home cluster churned out (run_multi's reject)
  RejectedDraining,  ///< daemon is shutting down
};

[[nodiscard]] const char* to_string(Admit a);

struct EngineOptions {
  online::MultiReschedulerOptions sched;
  /// Admission budget: reject arrivals once this many loads are active.
  /// 0 means unlimited.
  int max_loads = 0;
  /// A load counts as drained when remaining <= load_eps (same epsilon
  /// as OnlineOptions).
  double load_eps = 1e-6;
};

/// Monotonic lifecycle counters, exported 1:1 as Prometheus series.
struct EngineCounters {
  std::uint64_t arrivals = 0;  ///< every arrive() call
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_absent = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;      ///< client depart requests honored
  std::uint64_t aborted_churn = 0;  ///< active when home cluster left
  std::uint64_t reschedules = 0;
  std::uint64_t warm_solves = 0;
  std::uint64_t cold_solves = 0;
  std::uint64_t repaired_solves = 0;
  std::uint64_t platform_events = 0;
  int peak_active = 0;
};

class ServeEngine {
public:
  ServeEngine(platform::Platform base, EngineOptions options);
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Drains active loads forward to virtual time vt, firing completions
  /// (and their reschedules) at their exact drain times. No-op when vt
  /// is in the past.
  void advance_to(double vt);

  /// Current virtual time (the latest vt any call reached).
  [[nodiscard]] double now() const { return now_; }

  /// Virtual time of the next completion under current rates, or +inf
  /// when nothing is draining. The daemon sleeps until then.
  [[nodiscard]] double next_completion() const;

  struct ArriveResult {
    Admit admit = Admit::RejectedOverload;
    int id = -1;  ///< app id when admitted
  };

  /// A load arrives at vt with `load` units homed on `cluster`,
  /// objective weight `payoff`. Throws dls::Error on invalid arguments
  /// (out-of-range cluster, non-positive payoff, load <= load_eps).
  ArriveResult arrive(double vt, int cluster, double payoff, double load,
                      std::string name = "");

  /// Client withdraws load `id` at vt. False when it is not active.
  bool depart(double vt, int id);

  /// Applies a platform event at vt: churn aborts affected loads, any
  /// capacity/topology change re-prices the shared LP.
  dynamics::ChangeScope apply_event(double vt, const dynamics::PlatformEvent& ev);

  /// Shutdown: every subsequent arrival is RejectedDraining; active
  /// loads keep draining.
  void begin_drain() { draining_ = true; }
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] int active_count() const {
    return static_cast<int>(active_ids_.size());
  }
  /// Active load ids in admission order (what GET /loads reports on).
  [[nodiscard]] const std::vector<int>& active_ids() const {
    return active_ids_;
  }
  /// Current fluid drain rate of load `id` (0 when not active).
  [[nodiscard]] double load_rate(int id) const {
    return rate_[static_cast<std::size_t>(id)];
  }
  /// Work units load `id` still has to drain.
  [[nodiscard]] double load_remaining(int id) const {
    return remaining_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const EngineCounters& counters() const { return counters_; }
  [[nodiscard]] const online::OnlineMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<online::AppRecord>& apps() const {
    return apps_;
  }
  [[nodiscard]] const std::string& app_name(int id) const {
    return names_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const platform::Platform& plat() const { return dyn_.plat(); }

private:
  /// One shared-LP solve over the current active set; updates rates and
  /// the solve counters. No-op when nothing is active.
  void reschedule();
  /// Advances the fluid drain over [now_, vt] without firing events.
  void drain_interval(double vt);
  void complete_due();
  void refresh_total_speed();

  EngineOptions options_;
  dynamics::DynamicPlatform dyn_;
  online::MultiLoadRescheduler scheduler_;
  double now_ = 0.0;
  double total_speed_ = 0.0;
  bool draining_ = false;

  std::vector<online::AppRecord> apps_;  ///< indexed by app id
  std::vector<std::string> names_;
  std::vector<double> remaining_;
  std::vector<double> rate_;
  std::vector<int> active_ids_;  ///< admission order

  EngineCounters counters_;
  online::OnlineMetrics metrics_;
  std::vector<online::ActiveLoad> loads_scratch_;
  std::vector<double> weighted_rates_scratch_;
};

}  // namespace dls::serve
