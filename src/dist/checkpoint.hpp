// Coordinator snapshots: {spec fingerprint, fold frontier, aggregate
// states, pending out-of-order case records} written atomically (tmp +
// rename, the ytsaurus snapshot_store idiom) so a restarted coordinator
// resumes from the last snapshot instead of re-running finished work.
//
// The snapshot captures exactly the coordinator's fold state: every
// case with index < frontier is already folded into the aggregate
// states in case order, and `pending` holds records from completed
// ranges beyond the frontier that are waiting for an earlier range to
// finish. Restoring therefore loses nothing a worker ever delivered —
// a resumed run re-executes only the indices in [frontier, total) that
// are not in `pending`, and the final report is bit-identical to an
// uninterrupted run.
//
// Format: line-oriented text, doubles as C99 hex-floats (bit-exact
// round trip), terminated by an `end` sentinel so a torn file is
// detected even if rename atomicity is lost (e.g. on NFS).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace dls::campaign {
struct CampaignReport;
}

namespace dls::dist {

struct MetricState {
  Accumulator::State acc;
  P2Quantile::State p50;
  P2Quantile::State p95;
};

struct Checkpoint {
  std::uint64_t spec_fingerprint = 0;
  std::size_t total_cases = 0;
  /// Every case index < frontier is folded into the states below.
  std::size_t frontier = 0;
  /// [group][metric] aggregate states at the frontier.
  std::vector<std::vector<MetricState>> groups;
  /// Received-but-unfolded records: case index -> metric values.
  std::map<std::size_t, std::vector<double>> pending;
};

/// Captures the aggregate states out of a report skeleton the
/// coordinator has been folding into.
[[nodiscard]] Checkpoint capture_checkpoint(
    const campaign::CampaignReport& report, std::uint64_t spec_fingerprint,
    std::size_t total_cases, std::size_t frontier,
    const std::map<std::size_t, std::vector<double>>& pending);

/// Restores the captured aggregates into a freshly expanded report
/// skeleton. Throws dls::Error when the group/metric shape disagrees
/// (the spec changed — the fingerprint check should have caught it).
void restore_checkpoint(const Checkpoint& checkpoint,
                        campaign::CampaignReport& report);

/// Serializes to/from the text format. read throws dls::Error naming
/// the defect (bad header, truncation, malformed number).
void write_checkpoint(const Checkpoint& checkpoint, std::ostream& os);
[[nodiscard]] Checkpoint read_checkpoint(std::istream& is);

/// Atomic file write: serialize to `path + ".tmp"`, fsync, rename.
void save_checkpoint_file(const Checkpoint& checkpoint,
                          const std::string& path);

/// Loads and validates a snapshot file. Throws dls::Error when the file
/// is unreadable, malformed, or fingerprint-mismatched against
/// `expected_fingerprint`.
[[nodiscard]] Checkpoint load_checkpoint_file(
    const std::string& path, std::uint64_t expected_fingerprint);

}  // namespace dls::dist
