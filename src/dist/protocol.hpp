// Wire protocol for distributed campaign execution (coordinator <->
// worker), modeled on the ytsaurus bus idiom scaled down to one file:
// length-prefixed frames over TCP, text payloads, no endianness traps.
//
// Frame      = <decimal payload length> '\n' <payload bytes>
// Payload    = one message line; SPEC and DONE carry extra lines after
//              the first (the length prefix makes embedded newlines
//              safe).
//
// Messages (first token of the payload):
//   worker -> coordinator
//     HELLO <protocol-version>
//     READY <spec-fingerprint-hex>        after parsing the spec
//     CASE <range-id> <case-index> <n> <v0> ... <vn-1>
//                                         one finished case; values in
//                                         C99 hex-float ("%a") so every
//                                         double round-trips bit-exact
//     DONE <range-id> <cases>             range complete; subsequent
//                                         lines carry per-range
//                                         Accumulator states
//                                         ("sum <group> <metric> <n>
//                                         <mean> <m2> <min> <max>
//                                         <sum>") merged by the
//                                         coordinator as an integrity
//                                         cross-check of the fold
//     FAIL <range-id> <message>           a case in the range threw; the
//                                         coordinator re-queues the
//                                         range once, then reports
//     PING                                heartbeat (sent while ranges
//                                         execute, so a busy worker is
//                                         distinguishable from a dead
//                                         one)
//     BYE                                 orderly goodbye after FIN
//   coordinator -> worker
//     SPEC <spec-fingerprint-hex>         second..last lines: canonical
//                                         .campaign text (the worker
//                                         needs no spec file)
//     RANGE <range-id> <lo> <hi>          lease of case indices [lo,hi)
//     FIN                                 no more work; disconnect
//     ABORT <message>                     fatal: spec mismatch or a
//                                         twice-failed range
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dls::dist {

constexpr int kProtocolVersion = 1;

/// Hard ceiling on one frame (a CASE frame is < 1 KiB; SPEC frames grow
/// with the platform axis). A peer announcing more is speaking some
/// other protocol and is dropped.
constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;  // 64 MiB

/// Length prefix + payload, ready for send_all.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() arbitrary byte chunks (TCP segment
/// boundaries are meaningless), next() pops complete payloads in order.
/// Throws dls::Error on a malformed or oversized length prefix.
class FrameReader {
public:
  void feed(const char* data, std::size_t size);
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned (diagnostics).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - consumed_; }

private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Bit-exact double <-> text: C99 hex-float for finite values ("%a"),
/// "nan"/"inf"/"-inf" otherwise. decode throws dls::Error on garbage.
[[nodiscard]] std::string encode_double(double value);
[[nodiscard]] double decode_double(const std::string& token);

/// Whitespace tokenizer for message lines (payloads are ASCII).
[[nodiscard]] std::vector<std::string> split_tokens(std::string_view line);

/// uint64 <-> fixed-width hex (spec fingerprints).
[[nodiscard]] std::string encode_hex64(std::uint64_t value);
[[nodiscard]] std::uint64_t decode_hex64(const std::string& token);

}  // namespace dls::dist
