#include "dist/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/error.hpp"

namespace dls::dist {

std::string encode_frame(std::string_view payload) {
  require(payload.size() <= kMaxFrameBytes, "protocol: frame too large");
  std::string frame = std::to_string(payload.size());
  frame.push_back('\n');
  frame.append(payload);
  return frame;
}

void FrameReader::feed(const char* data, std::size_t size) {
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

std::optional<std::string> FrameReader::next() {
  const std::size_t newline = buffer_.find('\n', consumed_);
  if (newline == std::string::npos) {
    require(buffer_.size() - consumed_ <= 32,
            "protocol: length prefix missing its newline");
    return std::nullopt;
  }
  const std::string_view header(buffer_.data() + consumed_, newline - consumed_);
  require(!header.empty() && header.size() <= 20 &&
              header.find_first_not_of("0123456789") == std::string_view::npos,
          "protocol: malformed frame length prefix");
  const std::size_t length = std::strtoull(std::string(header).c_str(), nullptr, 10);
  require(length <= kMaxFrameBytes, "protocol: frame length exceeds the cap");
  if (buffer_.size() - newline - 1 < length) return std::nullopt;
  std::string payload = buffer_.substr(newline + 1, length);
  consumed_ = newline + 1 + length;
  return payload;
}

std::string encode_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

double decode_double(const std::string& token) {
  if (token == "nan") return std::numeric_limits<double>::quiet_NaN();
  if (token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-inf") return -std::numeric_limits<double>::infinity();
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  require(end == begin + token.size() && !token.empty(),
          "protocol: malformed double '" + token + "'");
  return value;
}

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

std::string encode_hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t decode_hex64(const std::string& token) {
  require(!token.empty() &&
              token.find_first_not_of("0123456789abcdefABCDEF") ==
                  std::string::npos &&
              token.size() <= 16,
          "protocol: malformed hex64 '" + token + "'");
  return std::strtoull(token.c_str(), nullptr, 16);
}

}  // namespace dls::dist
