#include "dist/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/exec.hpp"
#include "campaign/plan.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "dist/protocol.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace dls::dist {

namespace {

std::string one_line(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

}  // namespace

WorkerResult run_worker(const WorkerOptions& options) {
  require(options.port != 0, "worker: no coordinator port given");
  require(options.jobs >= 0, "worker: negative job count");
  const auto say = [&](const std::string& line) {
    if (options.log) options.log(line);
  };

  // The coordinator may not be listening yet — scripts start both sides
  // concurrently — so retry inside the window before giving up.
  Socket sock;
  const std::uint64_t deadline_ns =
      now_ns() + static_cast<std::uint64_t>(options.retry_seconds * 1e9);
  for (;;) {
    try {
      sock = tcp_connect(options.host, options.port);
      break;
    } catch (const Error&) {
      if (now_ns() >= deadline_ns)
        throw Error("worker: cannot reach coordinator at " + options.host +
                    ":" + std::to_string(options.port) + " within " +
                    std::to_string(options.retry_seconds) + "s");
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  say("connected to " + options.host + ":" + std::to_string(options.port));

  // One blocking socket shared by the executing threads (CASE frames)
  // and the heartbeat thread, serialized by a write mutex.
  std::mutex write_mutex;
  const auto send_payload = [&](const std::string& payload) {
    const std::string frame = encode_frame(payload);
    std::scoped_lock lock(write_mutex);
    return send_all(sock, frame.data(), frame.size());
  };

  FrameReader reader;
  char buf[65536];
  const auto next_frame = [&]() -> std::optional<std::string> {
    for (;;) {
      if (auto payload = reader.next()) return payload;
      const long got = recv_some(sock, buf, sizeof buf);
      if (got == 0) return std::nullopt;  // coordinator gone
      if (got > 0) reader.feed(buf, static_cast<std::size_t>(got));
    }
  };

  require(send_payload("HELLO " + std::to_string(kProtocolVersion)),
          "worker: connection lost during handshake");

  // The spec arrives over the wire: first line "SPEC <fingerprint>",
  // the rest is canonical .campaign text.
  const auto spec_frame = next_frame();
  require(spec_frame.has_value(), "worker: coordinator hung up before SPEC");
  const std::size_t nl = spec_frame->find('\n');
  const std::vector<std::string> head =
      split_tokens(nl == std::string::npos ? *spec_frame
                                           : spec_frame->substr(0, nl));
  if (head.size() >= 2 && head[0] == "ABORT")
    return {.aborted = true, .abort_message = one_line(spec_frame->substr(6))};
  require(head.size() == 2 && head[0] == "SPEC" && nl != std::string::npos,
          "worker: expected SPEC frame, got '" + head[0] + "'");
  const campaign::ScenarioSpec spec =
      campaign::from_text(spec_frame->substr(nl + 1));
  const std::uint64_t fingerprint = campaign::spec_fingerprint(spec);
  require(fingerprint == decode_hex64(head[1]),
          "worker: spec fingerprint mismatch after parsing — canonical text "
          "disagreement between coordinator and worker builds");

  campaign::CampaignReport skeleton;
  const std::vector<campaign::CaseDef> defs =
      campaign::expand_cases(spec, skeleton);
  campaign::CaseExecutor exec(spec);
  require(send_payload("READY " + encode_hex64(fingerprint)),
          "worker: connection lost during handshake");
  say("campaign '" + spec.name + "': " + std::to_string(defs.size()) +
      " cases expanded");

  // Heartbeat: PING while ranges execute, so the coordinator can tell a
  // busy worker from a dead one. The send timestamp rides along; the
  // coordinator echoes it in a PONG, turning the silent keepalive into
  // a round-trip-time probe (a stalled coordinator shows up as missing
  // or slow PONGs instead of looking exactly like a healthy idle one).
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    std::unique_lock lock(hb_mutex);
    while (!hb_cv.wait_for(
        lock, std::chrono::duration<double>(options.heartbeat_period),
        [&] { return hb_stop; })) {
      if (!send_payload("PING " + std::to_string(now_ns())))
        return;  // peer gone; main loop sees EOF
    }
  });
  const auto stop_heartbeat = [&] {
    if (!heartbeat.joinable()) return;
    {
      std::scoped_lock lock(hb_mutex);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  const std::size_t threads =
      options.jobs == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : static_cast<std::size_t>(options.jobs);

  static auto& reg = obs::registry();
  static const obs::Counter pong_counter = reg.counter(
      "dls_worker_pongs_total", "Heartbeat round trips completed");
  static const obs::Histogram rtt_hist =
      reg.histogram("dls_worker_heartbeat_rtt_seconds",
                    "Heartbeat round-trip time", obs::default_time_buckets());

  WorkerResult result;
  std::size_t ranges_seen = 0;
  std::uint64_t pongs_seen = 0;
  try {
    for (;;) {
      const auto payload = next_frame();
      if (!payload) {
        say("coordinator closed the connection");
        break;
      }
      const std::vector<std::string> tokens = split_tokens(
          payload->substr(0, std::min(payload->size(), payload->find('\n'))));
      if (tokens.empty()) continue;

      if (tokens[0] == "PONG" && tokens.size() == 2) {
        // Echo of our own timestamped PING; both stamps are now_ns().
        const std::uint64_t sent =
            std::strtoull(tokens[1].c_str(), nullptr, 10);
        const double rtt = static_cast<double>(now_ns() - sent) * 1e-9;
        ++pongs_seen;
        pong_counter.inc();
        rtt_hist.observe(rtt);
        // Log the first round trip only; the rtt histogram carries the
        // ongoing drift signal without drowning range progress lines.
        if (pongs_seen == 1)
          say("heartbeat rtt " + std::to_string(rtt * 1e3) + " ms");
        continue;
      }

      if (tokens[0] == "FIN") {
        (void)send_payload("BYE");
        say("no more work; " + std::to_string(result.ranges_done) +
            " range(s), " + std::to_string(result.cases_run) + " case(s)");
        break;
      }
      if (tokens[0] == "ABORT") {
        result.aborted = true;
        if (payload->size() > 6) result.abort_message = one_line(payload->substr(6));
        break;
      }
      require(tokens[0] == "RANGE" && tokens.size() == 4,
              "worker: unexpected frame '" + tokens[0] + "'");
      const std::size_t id = std::strtoull(tokens[1].c_str(), nullptr, 10);
      const std::size_t lo = std::strtoull(tokens[2].c_str(), nullptr, 10);
      const std::size_t hi = std::strtoull(tokens[3].c_str(), nullptr, 10);
      require(lo < hi && hi <= defs.size(),
              "worker: lease [" + tokens[2] + "," + tokens[3] +
                  ") outside the case matrix");

      ++ranges_seen;
      if (options.die_on_range != 0 && ranges_seen == options.die_on_range) {
        say("test hook: dying on range [" + tokens[2] + "," + tokens[3] + ")");
        if (options.die_hard) std::raise(SIGKILL);
        stop_heartbeat();  // before close: a PING on a dead fd would throw
        sock.close();      // abrupt death, lease outstanding
        break;
      }

      // Per-range Welford summaries, sent with DONE as the
      // coordinator's integrity cross-check (same NaN-skip rule as the
      // fold).
      std::vector<std::vector<Accumulator>> sums(skeleton.groups.size());
      for (std::size_t g = 0; g < skeleton.groups.size(); ++g)
        sums[g].resize(skeleton.groups[g].metrics.size());
      std::mutex state_mutex;
      std::string error_message;  // first failed case wins

      // Satellite contract: a throwing case poisons only its range.
      // The catch is per case, so the pool never propagates — the
      // range FAILs, the worker (and its process) keeps serving.
      const auto body = [&](std::size_t k) {
        const std::size_t index = lo + k;
        const campaign::CaseDef& def = defs[index];
        try {
          if (options.fail_case && options.fail_case(index))
            throw Error("injected failure at case " + std::to_string(index));
          const std::vector<double> values = exec.run(def);
          std::string line = "CASE " + std::to_string(id) + " " +
                             std::to_string(index) + " " +
                             std::to_string(values.size());
          for (const double v : values) {
            line.push_back(' ');
            line += encode_double(v);
          }
          {
            std::scoped_lock lock(state_mutex);
            if (!error_message.empty()) return;  // range already poisoned
            for (std::size_t m = 0; m < values.size(); ++m)
              if (!std::isnan(values[m])) sums[def.group][m].add(values[m]);
          }
          if (!send_payload(line)) {
            std::scoped_lock lock(state_mutex);
            if (error_message.empty())
              error_message = "coordinator connection lost mid-range";
          }
        } catch (const std::exception& e) {
          std::scoped_lock lock(state_mutex);
          if (error_message.empty()) error_message = one_line(e.what());
        }
      };

      if (threads == 1 || hi - lo <= 1) {
        for (std::size_t k = 0; k < hi - lo; ++k) body(k);
      } else {
        ThreadPool pool(std::min<std::size_t>(threads, hi - lo));
        parallel_for(pool, 0, hi - lo, body, 1);
      }

      if (!error_message.empty()) {
        say("range [" + tokens[2] + "," + tokens[3] +
            ") failed: " + error_message);
        if (!send_payload("FAIL " + std::to_string(id) + " " + error_message))
          break;
        continue;
      }
      std::string done = "DONE " + std::to_string(id) + " " +
                         std::to_string(hi - lo);
      for (std::size_t g = 0; g < sums.size(); ++g) {
        for (std::size_t m = 0; m < sums[g].size(); ++m) {
          if (sums[g][m].count() == 0) continue;
          const Accumulator::State s = sums[g][m].state();
          done += "\nsum " + std::to_string(g) + " " + std::to_string(m) +
                  " " + std::to_string(s.n) + " " + encode_double(s.mean) +
                  " " + encode_double(s.m2) + " " + encode_double(s.min) +
                  " " + encode_double(s.max) + " " + encode_double(s.sum);
        }
      }
      if (!send_payload(done)) break;
      ++result.ranges_done;
      result.cases_run += hi - lo;
      say("range [" + tokens[2] + "," + tokens[3] + ") done");
    }
  } catch (...) {
    stop_heartbeat();
    throw;
  }
  stop_heartbeat();
  return result;
}

}  // namespace dls::dist
