#include "dist/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "campaign/plan.hpp"
#include "dist/checkpoint.hpp"
#include "dist/protocol.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"
#include "support/timer.hpp"

namespace dls::dist {

namespace {

using campaign::CaseDef;
using campaign::CaseRecord;

// Fleet telemetry: lease churn, worker lifecycle, and how close the
// quietest worker is to its heartbeat budget (a rising lag gauge with
// zero deaths means the fleet is stalled, not gone).
struct DistObs {
  obs::Counter leases, requeues, deaths;
  obs::Gauge heartbeat_lag;
  DistObs() {
    auto& reg = obs::registry();
    leases = reg.counter("dls_dist_leases_total", "Ranges leased to workers");
    requeues = reg.counter("dls_dist_requeues_total",
                           "Ranges re-queued after a FAIL or worker loss");
    deaths = reg.counter("dls_dist_worker_deaths_total",
                         "Ready workers lost (EOF, protocol, heartbeat)");
    heartbeat_lag = reg.gauge("dls_dist_heartbeat_lag_seconds",
                              "Longest per-worker silence at the last sweep");
  }
};

DistObs& dist_obs() {
  static DistObs handles;
  return handles;
}

struct Range {
  std::size_t id = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;  ///< exclusive
};

struct Client {
  Socket sock;
  FrameReader reader;
  std::uint64_t last_seen_ns = 0;  ///< support now_ns() of the last byte
  std::size_t worker_no = 0;
  bool ready = false;
  std::optional<Range> lease;
  /// CASE records of the current lease, staged until its DONE arrives —
  /// a FAILed or orphaned lease discards them wholesale, so a re-queued
  /// range can never fold twice.
  std::map<std::size_t, std::vector<double>> staged;
};

std::string tail_of(const std::vector<std::string>& tokens, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    if (!out.empty()) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

}  // namespace

CoordinatorResult serve_campaign(const campaign::ScenarioSpec& spec,
                                 const CoordinatorOptions& options) {
  spec.validate();
  require(options.range_size >= 1, "coordinator: range size must be >= 1");
  require(options.snapshot_every >= 1, "coordinator: snapshot-every must be >= 1");

  const auto say = [&](const std::string& line) {
    if (options.log) options.log(line);
  };

  CoordinatorResult result;
  campaign::CampaignReport& report = result.report;
  report.name = spec.name;
  report.shard_index = 0;
  report.shard_count = 1;
  report.replications = spec.replications;
  const std::vector<CaseDef> defs = campaign::expand_cases(spec, report);
  report.total_cases = defs.size();
  // The distributed run always covers the full matrix — the report must
  // be bit-identical to an unsharded single-process `dls campaign`.
  report.executed_cases = defs.size();
  const std::uint64_t fingerprint = campaign::spec_fingerprint(spec);
  const std::string spec_text = campaign::to_text(spec);

  // ---- fold state --------------------------------------------------------
  // Every case < frontier is folded; `pending` holds delivered records
  // waiting for an earlier range. Identical semantics to the in-process
  // OrderedReducer, minus the blocking (the coordinator never waits).
  std::size_t frontier = 0;
  std::map<std::size_t, std::vector<double>> pending;

  // Live-progress / integrity view: per-range Welford summaries from
  // DONE frames, merged via Accumulator::merge. Checked against the
  // exact fold before the report is returned — a lost, duplicated or
  // corrupted range shows up as count or moment drift here.
  std::vector<std::vector<Accumulator>> crosscheck(report.groups.size());
  for (std::size_t g = 0; g < report.groups.size(); ++g)
    crosscheck[g].resize(report.groups[g].metrics.size());

  if (options.resume) {
    const Checkpoint cp =
        load_checkpoint_file(options.checkpoint_path, fingerprint);
    require(cp.total_cases == defs.size(),
            "coordinator: checkpoint case count disagrees with the spec");
    restore_checkpoint(cp, report);
    frontier = cp.frontier;
    pending = cp.pending;
    result.resumed_cases = frontier + pending.size();
    // Seed the cross-check from the restored fold state (exact at the
    // frontier) plus the pending records, so it stays meaningful across
    // restarts: future DONE summaries only cover newly executed ranges.
    for (std::size_t g = 0; g < report.groups.size(); ++g)
      for (std::size_t m = 0; m < report.groups[g].metrics.size(); ++m)
        crosscheck[g][m] = report.groups[g].metrics[m].acc;
    for (const auto& [index, values] : pending) {
      const std::size_t group = defs[index].group;
      for (std::size_t m = 0; m < values.size(); ++m)
        if (!std::isnan(values[m])) crosscheck[group][m].add(values[m]);
    }
    say("resumed from '" + options.checkpoint_path + "': frontier " +
        std::to_string(frontier) + "/" + std::to_string(defs.size()) + ", " +
        std::to_string(pending.size()) + " pending record(s)");
  }

  // ---- work queue --------------------------------------------------------
  // Contiguous runs of still-missing indices, chunked into leases. On a
  // fresh run this is just [0, total) in range_size pieces.
  std::deque<Range> queue;
  std::size_t next_range_id = 0;
  {
    std::vector<std::size_t> todo;
    for (std::size_t i = frontier; i < defs.size(); ++i)
      if (pending.find(i) == pending.end()) todo.push_back(i);
    std::size_t s = 0;
    while (s < todo.size()) {
      std::size_t e = s + 1;
      while (e < todo.size() && todo[e] == todo[e - 1] + 1 &&
             e - s < options.range_size)
        ++e;
      queue.push_back({next_range_id++, todo[s], todo[e - 1] + 1});
      s = e;
    }
  }
  std::map<std::size_t, int> fail_requeues;   // range id -> FAILs seen
  std::map<std::size_t, int> death_requeues;  // range id -> owners lost

  // ---- listener ----------------------------------------------------------
  Socket listener = tcp_listen(options.port);
  set_nonblocking(listener, true);
  const std::uint16_t port = local_port(listener);
  if (!options.port_file.empty()) {
    std::ofstream pf(options.port_file, std::ios::trunc);
    require(static_cast<bool>(pf),
            "coordinator: cannot write port file '" + options.port_file + "'");
    pf << port << "\n";
  }
  say("serving campaign '" + spec.name + "' (" + std::to_string(defs.size()) +
      " cases, " + std::to_string(queue.size()) + " range(s)) on port " +
      std::to_string(port));
  if (options.on_listen) options.on_listen(port);

  std::map<int, Client> clients;  // fd -> state
  std::size_t ranges_since_snapshot = 0;
  bool stop_requested = false;

  const auto send_frame = [&](Client& client, const std::string& payload) {
    const std::string frame = encode_frame(payload);
    return send_all(client.sock, frame.data(), frame.size());
  };

  const auto snapshot = [&] {
    if (options.checkpoint_path.empty()) return;
    save_checkpoint_file(
        capture_checkpoint(report, fingerprint, defs.size(), frontier, pending),
        options.checkpoint_path);
    ++result.snapshots_written;
    ranges_since_snapshot = 0;
    say("snapshot #" + std::to_string(result.snapshots_written) +
        ": frontier " + std::to_string(frontier) + "/" +
        std::to_string(defs.size()) + ", " + std::to_string(pending.size()) +
        " pending");
    if (options.exit_after_snapshots != 0 &&
        result.snapshots_written >= options.exit_after_snapshots)
      stop_requested = true;
  };

  const auto drain_frontier = [&] {
    auto it = pending.begin();
    while (it != pending.end() && it->first == frontier) {
      CaseRecord record;
      record.index = it->first;
      record.group = defs[it->first].group;
      record.rep = defs[it->first].rep;
      record.values = std::move(it->second);
      campaign::fold_case(report, record);
      if (options.case_sink && !record.values.empty())
        options.case_sink(report, record);
      ++frontier;
      it = pending.erase(it);
    }
  };

  /// Puts a lost lease back at the queue front (frontier progress first)
  /// and enforces the per-range budget. Throws through abort_all on
  /// exhaustion.
  const auto abort_all = [&](const std::string& message) {
    for (auto& [fd, client] : clients)
      (void)send_frame(client, "ABORT " + message);
    clients.clear();
    throw Error("coordinator: " + message);
  };

  const auto requeue_for_death = [&](Client& client) {
    if (!client.lease) return;
    const Range range = *client.lease;
    client.lease.reset();
    client.staged.clear();
    const int losses = ++death_requeues[range.id];
    if (losses > options.max_death_requeues)
      abort_all("range [" + std::to_string(range.lo) + "," +
                std::to_string(range.hi) + ") lost " + std::to_string(losses) +
                " workers — giving up on it");
    queue.push_front(range);
    ++result.ranges_requeued;
    dist_obs().requeues.inc();
    say("requeued range [" + std::to_string(range.lo) + "," +
        std::to_string(range.hi) + ") after worker#" +
        std::to_string(client.worker_no) + " died");
  };

  const auto drop_client = [&](int fd, bool death) {
    auto it = clients.find(fd);
    if (it == clients.end()) return;
    if (death) {
      if (it->second.ready) {
        ++result.worker_deaths;
        dist_obs().deaths.inc();
      }
      requeue_for_death(it->second);
    }
    clients.erase(it);
  };

  // Returns false when the client must be dropped (protocol violation —
  // its lease is re-queued by the caller).
  const auto handle_payload = [&](Client& client, const std::string& payload) {
    std::istringstream lines(payload);
    std::string first;
    std::getline(lines, first);
    const std::vector<std::string> tokens = split_tokens(first);
    if (tokens.empty()) return false;
    const std::string& kind = tokens[0];

    if (kind == "HELLO") {
      if (tokens.size() != 2 ||
          tokens[1] != std::to_string(kProtocolVersion)) {
        (void)send_frame(client, "ABORT protocol version mismatch (coordinator "
                                 "speaks " + std::to_string(kProtocolVersion) +
                                 ")");
        return false;
      }
      return send_frame(client,
                        "SPEC " + encode_hex64(fingerprint) + "\n" + spec_text);
    }
    if (kind == "READY") {
      if (tokens.size() != 2 || decode_hex64(tokens[1]) != fingerprint) {
        (void)send_frame(client, "ABORT spec fingerprint mismatch");
        return false;
      }
      client.ready = true;
      ++result.workers_seen;
      client.worker_no = result.workers_seen;
      say("worker#" + std::to_string(client.worker_no) + " ready");
      return true;
    }
    if (kind == "PING") {
      // last_seen is already refreshed by the read loop. A timestamped
      // PING gets its timestamp echoed back so the worker can measure
      // the round trip; legacy bare PINGs expect (and get) no reply.
      if (tokens.size() >= 2) return send_frame(client, "PONG " + tokens[1]);
      return true;
    }
    if (kind == "BYE") return false;  // orderly goodbye: close without requeue

    // Everything below concerns the client's current lease.
    if (!client.lease || tokens.size() < 2 ||
        std::strtoull(tokens[1].c_str(), nullptr, 10) != client.lease->id)
      return false;
    const Range range = *client.lease;

    if (kind == "CASE") {
      if (tokens.size() < 4) return false;
      const std::size_t index = std::strtoull(tokens[2].c_str(), nullptr, 10);
      const std::size_t count = std::strtoull(tokens[3].c_str(), nullptr, 10);
      if (index < range.lo || index >= range.hi ||
          tokens.size() != 4 + count)
        return false;
      std::vector<double> values;
      values.reserve(count);
      for (std::size_t v = 0; v < count; ++v)
        values.push_back(decode_double(tokens[4 + v]));
      client.staged[index] = std::move(values);
      return true;
    }

    if (kind == "DONE") {
      if (tokens.size() != 3 ||
          std::strtoull(tokens[2].c_str(), nullptr, 10) != range.hi - range.lo ||
          client.staged.size() != range.hi - range.lo)
        return false;
      // Merge the per-range Welford summaries into the cross-check view.
      std::string line;
      while (std::getline(lines, line)) {
        const std::vector<std::string> sum = split_tokens(line);
        if (sum.size() != 9 || sum[0] != "sum") return false;
        const std::size_t g = std::strtoull(sum[1].c_str(), nullptr, 10);
        const std::size_t m = std::strtoull(sum[2].c_str(), nullptr, 10);
        if (g >= crosscheck.size() || m >= crosscheck[g].size()) return false;
        Accumulator::State state;
        state.n = std::strtoull(sum[3].c_str(), nullptr, 10);
        state.mean = decode_double(sum[4]);
        state.m2 = decode_double(sum[5]);
        state.min = decode_double(sum[6]);
        state.max = decode_double(sum[7]);
        state.sum = decode_double(sum[8]);
        crosscheck[g][m].merge(Accumulator::from_state(state));
      }
      pending.insert(std::make_move_iterator(client.staged.begin()),
                     std::make_move_iterator(client.staged.end()));
      client.staged.clear();
      client.lease.reset();
      drain_frontier();
      ++ranges_since_snapshot;
      if (ranges_since_snapshot >= options.snapshot_every) snapshot();
      return true;
    }

    if (kind == "FAIL") {
      client.staged.clear();
      client.lease.reset();
      const std::string message = tail_of(tokens, 2);
      const int fails = ++fail_requeues[range.id];
      if (fails > options.max_fail_requeues)
        abort_all("range [" + std::to_string(range.lo) + "," +
                  std::to_string(range.hi) + ") failed " +
                  std::to_string(fails) + " time(s): " + message);
      queue.push_front(range);
      ++result.ranges_requeued;
      dist_obs().requeues.inc();
      say("requeued range [" + std::to_string(range.lo) + "," +
          std::to_string(range.hi) + ") after failure (attempt " +
          std::to_string(fails) + "): " + message);
      return true;
    }
    return false;  // unknown message
  };

  // ---- poll loop ---------------------------------------------------------
  char buf[65536];
  while (!stop_requested) {
    // Completion: nothing queued, nothing leased, everything folded.
    if (frontier == defs.size()) {
      DLS_ASSERT(pending.empty() && queue.empty());
      break;
    }

    // Hand out leases to idle ready workers.
    std::vector<int> to_drop;
    for (auto& [fd, client] : clients) {
      if (!client.ready || client.lease || queue.empty()) continue;
      const Range range = queue.front();
      queue.pop_front();
      if (!send_frame(client, "RANGE " + std::to_string(range.id) + " " +
                                  std::to_string(range.lo) + " " +
                                  std::to_string(range.hi))) {
        client.lease = range;  // requeue_for_death puts it back
        to_drop.push_back(fd);
        continue;
      }
      client.lease = range;
      client.staged.clear();
      dist_obs().leases.inc();
    }
    for (const int fd : to_drop) drop_client(fd, /*death=*/true);
    to_drop.clear();

    std::vector<::pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const auto& [fd, client] : clients) fds.push_back({fd, POLLIN, 0});
    (void)poll_sockets(fds, 250);

    if (fds[0].revents & POLLIN) {
      for (;;) {
        Socket conn = tcp_accept(listener);
        if (!conn.valid()) break;
        set_nonblocking(conn, true);
        const int fd = conn.fd();
        Client client;
        client.sock = std::move(conn);
        client.last_seen_ns = now_ns();
        clients.emplace(fd, std::move(client));
      }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      auto it = clients.find(fds[i].fd);
      if (it == clients.end()) continue;
      Client& client = it->second;
      bool dead = false;
      try {
        for (;;) {
          const long got = recv_some(client.sock, buf, sizeof buf);
          if (got < 0) break;  // drained
          if (got == 0) {      // EOF
            dead = true;
            break;
          }
          client.last_seen_ns = now_ns();
          client.reader.feed(buf, static_cast<std::size_t>(got));
        }
        // Stop folding the moment the exit hook fires: the returned
        // fold state must match the snapshot just written, as a killed
        // process's would.
        while (!stop_requested) {
          const auto payload = client.reader.next();
          if (!payload) break;
          if (!handle_payload(client, *payload)) {
            dead = true;
            break;
          }
        }
      } catch (const Error&) {
        if (!clients.count(fds[i].fd)) throw;  // abort_all already cleaned up
        dead = true;  // malformed frame: treat as a dead peer
      }
      if (dead) drop_client(fds[i].fd, /*death=*/true);
      if (stop_requested) break;
    }

    // Heartbeat timeouts: silence beyond the budget means the worker —
    // or the path to it — is gone; its lease goes back in the queue.
    if (!stop_requested && options.heartbeat_timeout > 0) {
      const std::uint64_t now = now_ns();
      double worst_silence = 0.0;
      for (const auto& [fd, client] : clients) {
        const double silent =
            static_cast<double>(now - client.last_seen_ns) * 1e-9;
        worst_silence = std::max(worst_silence, silent);
        if (silent > options.heartbeat_timeout) to_drop.push_back(fd);
      }
      dist_obs().heartbeat_lag.set(worst_silence);
      for (const int fd : to_drop) {
        say("worker#" + std::to_string(clients.at(fd).worker_no) +
            " heartbeat timeout");
        drop_client(fd, /*death=*/true);
      }
      to_drop.clear();
    }
  }

  result.folded_cases = frontier;
  result.executed_cases = frontier - result.resumed_cases;
  result.complete = frontier == defs.size();

  if (result.complete) {
    // Integrity cross-check: the merged per-range summaries must agree
    // with the exact case-order fold. Counts/min/max are exact under
    // merge; mean/sum only up to reassociation.
    for (std::size_t g = 0; g < report.groups.size(); ++g) {
      for (std::size_t m = 0; m < report.groups[g].metrics.size(); ++m) {
        const Accumulator& exact = report.groups[g].metrics[m].acc;
        const Accumulator& merged = crosscheck[g][m];
        const auto close = [](double a, double b) {
          if (std::isnan(a) && std::isnan(b)) return true;
          return std::abs(a - b) <=
                 1e-8 * std::max({1.0, std::abs(a), std::abs(b)});
        };
        if (merged.count() != exact.count() ||
            !close(merged.sum(), exact.sum()) ||
            !close(merged.min(), exact.min()) ||
            !close(merged.max(), exact.max()))
          throw Error(
              "coordinator: integrity cross-check failed for group " +
              std::to_string(g) + " metric '" +
              report.groups[g].metrics[m].name + "' (merged n=" +
              std::to_string(merged.count()) + " vs folded n=" +
              std::to_string(exact.count()) + ") — a range was lost, " +
              "duplicated or corrupted in flight");
      }
    }
    snapshot();  // final frontier == total snapshot (idempotent resume)
    for (auto& [fd, client] : clients) (void)send_frame(client, "FIN");
    say("campaign complete: " + std::to_string(frontier) + " case(s), " +
        std::to_string(result.workers_seen) + " worker(s), " +
        std::to_string(result.ranges_requeued) + " requeue(s)");
  } else {
    say("stopping after snapshot #" +
        std::to_string(result.snapshots_written) + " with frontier " +
        std::to_string(frontier) + "/" + std::to_string(defs.size()));
  }
  return result;
}

}  // namespace dls::dist
