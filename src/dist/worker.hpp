// The campaign worker: connects to a coordinator, receives the spec
// over the wire (no spec file needed on the worker host), expands the
// same deterministic case matrix, and executes leased case-index
// ranges on a local thread pool, streaming per-case records back as
// bit-exact hex-float CASE frames.
//
// Failure containment (the distributed face of the thread-pool
// exception-propagation contract): a case that throws poisons only its
// range — the worker reports FAIL for the range and keeps serving; the
// coordinator re-queues the range once, then reports the failure. A
// heartbeat thread PINGs while ranges execute, so a busy worker is
// distinguishable from a dead one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace dls::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int jobs = 0;  ///< local threads per range; 0 = hardware, 1 = inline
  /// Connect retry window: the coordinator may not be listening yet
  /// (scripts start both sides concurrently).
  double retry_seconds = 10.0;
  double heartbeat_period = 2.0;  ///< seconds between PINGs
  /// Progress lines ("connected", "range [lo,hi) done", ...).
  std::function<void(const std::string&)> log;

  // -- test hooks ----------------------------------------------------------
  /// Called per case before execution; returning true makes the case
  /// throw (poisoned-case injection for the requeue tests).
  std::function<bool(std::size_t case_index)> fail_case;
  /// When n > 0: on receiving the n-th RANGE lease, drop the connection
  /// without executing it — a worker dying mid-range, as seen by the
  /// coordinator (EOF with an outstanding lease).
  std::size_t die_on_range = 0;
  /// With die_on_range: raise SIGKILL instead of closing the socket —
  /// a real process death for the CLI smoke tests (`--die-mid-range`).
  bool die_hard = false;
};

struct WorkerResult {
  std::size_t ranges_done = 0;
  std::size_t cases_run = 0;
  /// True when the coordinator sent ABORT (fatal campaign error);
  /// abort_message carries its reason. A plain EOF (coordinator gone or
  /// finished without FIN) is a graceful stop, not an abort.
  bool aborted = false;
  std::string abort_message;
};

/// Blocks until the coordinator sends FIN/ABORT or disconnects. Throws
/// dls::Error when the coordinator cannot be reached within
/// retry_seconds or the wire protocol is violated.
[[nodiscard]] WorkerResult run_worker(const WorkerOptions& options);

}  // namespace dls::dist
