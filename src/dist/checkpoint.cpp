#include "dist/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/runner.hpp"
#include "dist/protocol.hpp"
#include "support/error.hpp"

namespace dls::dist {

namespace {

void write_p2(std::ostream& os, const P2Quantile::State& s) {
  os << ' ' << encode_double(s.q) << ' ' << s.n;
  for (const double h : s.heights) os << ' ' << encode_double(h);
  for (const double p : s.pos) os << ' ' << encode_double(p);
  for (const double d : s.desired) os << ' ' << encode_double(d);
}

P2Quantile::State read_p2(const std::vector<std::string>& tokens,
                          std::size_t& at) {
  P2Quantile::State s;
  require(at + 17 <= tokens.size(), "checkpoint: truncated P2 state");
  s.q = decode_double(tokens[at++]);
  s.n = std::strtoull(tokens[at++].c_str(), nullptr, 10);
  for (double& h : s.heights) h = decode_double(tokens[at++]);
  for (double& p : s.pos) p = decode_double(tokens[at++]);
  for (double& d : s.desired) d = decode_double(tokens[at++]);
  return s;
}

}  // namespace

Checkpoint capture_checkpoint(
    const campaign::CampaignReport& report, std::uint64_t spec_fingerprint,
    std::size_t total_cases, std::size_t frontier,
    const std::map<std::size_t, std::vector<double>>& pending) {
  Checkpoint cp;
  cp.spec_fingerprint = spec_fingerprint;
  cp.total_cases = total_cases;
  cp.frontier = frontier;
  cp.pending = pending;
  cp.groups.reserve(report.groups.size());
  for (const campaign::GroupAggregate& group : report.groups) {
    std::vector<MetricState> metrics;
    metrics.reserve(group.metrics.size());
    for (const campaign::MetricAggregate& m : group.metrics)
      metrics.push_back({m.acc.state(), m.p50.state(), m.p95.state()});
    cp.groups.push_back(std::move(metrics));
  }
  return cp;
}

void restore_checkpoint(const Checkpoint& checkpoint,
                        campaign::CampaignReport& report) {
  require(checkpoint.groups.size() == report.groups.size(),
          "checkpoint: group count mismatch against the expanded spec");
  for (std::size_t g = 0; g < checkpoint.groups.size(); ++g) {
    campaign::GroupAggregate& group = report.groups[g];
    require(checkpoint.groups[g].size() == group.metrics.size(),
            "checkpoint: metric count mismatch in group " + std::to_string(g));
    for (std::size_t m = 0; m < group.metrics.size(); ++m) {
      const MetricState& s = checkpoint.groups[g][m];
      group.metrics[m].acc = Accumulator::from_state(s.acc);
      group.metrics[m].p50 = P2Quantile::from_state(s.p50);
      group.metrics[m].p95 = P2Quantile::from_state(s.p95);
    }
  }
}

void write_checkpoint(const Checkpoint& checkpoint, std::ostream& os) {
  os << "dls-checkpoint 1\n";
  os << "spec " << encode_hex64(checkpoint.spec_fingerprint) << "\n";
  os << "total " << checkpoint.total_cases << "\n";
  os << "frontier " << checkpoint.frontier << "\n";
  os << "groups " << checkpoint.groups.size() << "\n";
  for (std::size_t g = 0; g < checkpoint.groups.size(); ++g) {
    os << "group " << g << " " << checkpoint.groups[g].size() << "\n";
    for (const MetricState& m : checkpoint.groups[g]) {
      os << "metric " << m.acc.n << ' ' << encode_double(m.acc.mean) << ' '
         << encode_double(m.acc.m2) << ' ' << encode_double(m.acc.min) << ' '
         << encode_double(m.acc.max) << ' ' << encode_double(m.acc.sum);
      write_p2(os, m.p50);
      write_p2(os, m.p95);
      os << "\n";
    }
  }
  os << "pending " << checkpoint.pending.size() << "\n";
  for (const auto& [index, values] : checkpoint.pending) {
    os << "case " << index << " " << values.size();
    for (const double v : values) os << ' ' << encode_double(v);
    os << "\n";
  }
  os << "end\n";
}

Checkpoint read_checkpoint(std::istream& is) {
  Checkpoint cp;
  std::string line;

  const auto next_line = [&](const char* what) {
    require(static_cast<bool>(std::getline(is, line)),
            std::string("checkpoint: truncated before ") + what);
    return split_tokens(line);
  };
  const auto expect = [&](const std::vector<std::string>& tokens,
                          const char* keyword, std::size_t count) {
    require(tokens.size() == count && tokens[0] == keyword,
            std::string("checkpoint: expected '") + keyword + "' line, got '" +
                line + "'");
  };

  auto tokens = next_line("header");
  require(tokens.size() == 2 && tokens[0] == "dls-checkpoint" &&
              tokens[1] == "1",
          "checkpoint: bad header '" + line + "'");
  tokens = next_line("spec");
  expect(tokens, "spec", 2);
  cp.spec_fingerprint = decode_hex64(tokens[1]);
  tokens = next_line("total");
  expect(tokens, "total", 2);
  cp.total_cases = std::strtoull(tokens[1].c_str(), nullptr, 10);
  tokens = next_line("frontier");
  expect(tokens, "frontier", 2);
  cp.frontier = std::strtoull(tokens[1].c_str(), nullptr, 10);
  tokens = next_line("groups");
  expect(tokens, "groups", 2);
  const std::size_t groups = std::strtoull(tokens[1].c_str(), nullptr, 10);

  cp.groups.resize(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    tokens = next_line("group");
    expect(tokens, "group", 3);
    require(std::strtoull(tokens[1].c_str(), nullptr, 10) == g,
            "checkpoint: group lines out of order");
    const std::size_t metrics = std::strtoull(tokens[2].c_str(), nullptr, 10);
    cp.groups[g].resize(metrics);
    for (std::size_t m = 0; m < metrics; ++m) {
      tokens = next_line("metric");
      require(tokens.size() == 7 + 17 + 17 && tokens[0] == "metric",
              "checkpoint: malformed metric line '" + line + "'");
      MetricState& state = cp.groups[g][m];
      std::size_t at = 1;
      state.acc.n = std::strtoull(tokens[at++].c_str(), nullptr, 10);
      state.acc.mean = decode_double(tokens[at++]);
      state.acc.m2 = decode_double(tokens[at++]);
      state.acc.min = decode_double(tokens[at++]);
      state.acc.max = decode_double(tokens[at++]);
      state.acc.sum = decode_double(tokens[at++]);
      state.p50 = read_p2(tokens, at);
      state.p95 = read_p2(tokens, at);
    }
  }

  tokens = next_line("pending");
  expect(tokens, "pending", 2);
  const std::size_t pending = std::strtoull(tokens[1].c_str(), nullptr, 10);
  for (std::size_t i = 0; i < pending; ++i) {
    tokens = next_line("case");
    require(tokens.size() >= 3 && tokens[0] == "case",
            "checkpoint: malformed case line '" + line + "'");
    const std::size_t index = std::strtoull(tokens[1].c_str(), nullptr, 10);
    const std::size_t count = std::strtoull(tokens[2].c_str(), nullptr, 10);
    require(tokens.size() == 3 + count,
            "checkpoint: case value count mismatch on '" + line + "'");
    std::vector<double> values;
    values.reserve(count);
    for (std::size_t v = 0; v < count; ++v)
      values.push_back(decode_double(tokens[3 + v]));
    require(index >= cp.frontier,
            "checkpoint: pending case below the frontier");
    cp.pending.emplace(index, std::move(values));
  }
  tokens = next_line("end");
  expect(tokens, "end", 1);
  return cp;
}

void save_checkpoint_file(const Checkpoint& checkpoint,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    require(static_cast<bool>(out),
            "checkpoint: cannot write '" + tmp + "'");
    write_checkpoint(checkpoint, out);
    out.flush();
    require(static_cast<bool>(out), "checkpoint: write to '" + tmp + "' failed");
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "checkpoint: cannot rename '" + tmp + "' over '" + path + "'");
}

Checkpoint load_checkpoint_file(const std::string& path,
                                std::uint64_t expected_fingerprint) {
  std::ifstream in(path);
  require(static_cast<bool>(in), "checkpoint: cannot open '" + path + "'");
  const Checkpoint cp = read_checkpoint(in);
  require(cp.spec_fingerprint == expected_fingerprint,
          "checkpoint: '" + path +
              "' was written for a different campaign spec (fingerprint " +
              encode_hex64(cp.spec_fingerprint) + " != " +
              encode_hex64(expected_fingerprint) +
              ") — refusing to resume");
  return cp;
}

}  // namespace dls::dist
