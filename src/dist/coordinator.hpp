// The campaign coordinator: a single-threaded poll loop (the ytsaurus
// tcp_server pattern scaled to one file) that owns the deterministic
// case expansion of one ScenarioSpec and drives a fleet of worker
// processes through it.
//
//   * hands out contiguous case-index ranges as leases (`RANGE`),
//   * collects streamed per-case records and folds them into the group
//     aggregates strictly in case order (the same `fold_case` path as
//     the in-process runner — this is what makes the distributed report
//     bit-identical to `dls campaign` for any worker count, death
//     schedule or resume point),
//   * merges the per-range Welford summaries workers attach to `DONE`
//     via support::Accumulator::merge as an integrity cross-check of
//     the exact fold (count drift or a lost/double-counted range is a
//     hard error, not a silently wrong report),
//   * re-queues ranges lost to worker death (EOF or heartbeat timeout)
//     and re-queues a FAILed range once before reporting the failure,
//   * snapshots {spec fingerprint, fold frontier, aggregate states,
//     pending records} to a checkpoint file every `snapshot_every`
//     completed ranges, so a restarted coordinator resumes instead of
//     re-running finished work.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace dls::dist {

struct CoordinatorOptions {
  std::uint16_t port = 0;      ///< 0 = ephemeral (see on_listen / port_file)
  std::string port_file;       ///< write the bound port here once listening
  std::size_t range_size = 8;  ///< cases per lease
  double heartbeat_timeout = 15.0;  ///< seconds of silence before a worker
                                    ///< is declared dead and its lease
                                    ///< re-queued
  int max_fail_requeues = 1;   ///< FAILed-range re-queue budget ("once,
                               ///< then reported")
  int max_death_requeues = 5;  ///< per-range worker-death budget (guards
                               ///< against a case that kills every
                               ///< worker that touches it)

  std::string checkpoint_path;     ///< empty = no snapshots
  std::size_t snapshot_every = 8;  ///< completed ranges between snapshots
  bool resume = false;             ///< load checkpoint_path before serving

  /// Test hook: stop serving (checkpoint intact, workers dropped) after
  /// this many snapshots have been written. 0 = run to completion.
  std::size_t exit_after_snapshots = 0;

  /// Called with the bound port once the listener is up (in-process
  /// tests connect from here; the CLI writes port_file instead).
  std::function<void(std::uint16_t)> on_listen;
  /// Progress lines ("worker#2 connected", "folded 128/512", ...).
  std::function<void(const std::string&)> log;
  /// Streaming per-case sink, called in case order (the `--cases`
  /// stream). On a resumed run only newly folded cases are emitted.
  std::function<void(const campaign::CampaignReport&,
                     const campaign::CaseRecord&)> case_sink;
};

struct CoordinatorResult {
  campaign::CampaignReport report;
  /// False when exit_after_snapshots stopped the run early.
  bool complete = false;
  std::size_t folded_cases = 0;    ///< == total_cases when complete
  std::size_t resumed_cases = 0;   ///< restored from the checkpoint
  std::size_t executed_cases = 0;  ///< folded - resumed (ran this serve)
  std::size_t workers_seen = 0;
  std::size_t worker_deaths = 0;
  std::size_t ranges_requeued = 0;
  std::size_t snapshots_written = 0;
};

/// Serves the campaign until every case is folded (or the
/// exit_after_snapshots hook fires). Blocks; throws dls::Error on a
/// twice-FAILed range, a fingerprint-mismatched checkpoint, a failed
/// integrity cross-check, or socket setup failure.
[[nodiscard]] CoordinatorResult serve_campaign(const campaign::ScenarioSpec& spec,
                                               const CoordinatorOptions& options);

}  // namespace dls::dist
