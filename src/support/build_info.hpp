// Build provenance: which binary produced an artifact. `dls --version`
// prints this, and the bench drivers stamp it into their JSON lines, so
// a committed BENCH_*.json or a distributed report can always be traced
// to the build type, compiler and git revision that generated it.
//
// The values are baked in at configure time through compile definitions
// (CMakeLists.txt); a build from an exported tarball without git reports
// "unknown" for the revision.
#pragma once

#include <string>

namespace dls::support {

/// CMake build type ("RelWithDebInfo", "Debug", ...).
[[nodiscard]] const char* build_type();

/// Compiler id and version ("GNU 13.2.0").
[[nodiscard]] const char* compiler();

/// Abbreviated git revision at configure time, with "+dirty" when the
/// tree had local modifications; "unknown" outside a git checkout.
[[nodiscard]] const char* git_revision();

/// One-line summary: "dls <revision> (<build type>, <compiler>)".
[[nodiscard]] std::string build_summary();

}  // namespace dls::support
