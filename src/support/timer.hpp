// Wall-clock timing for the runtime experiments (paper Figure 7) and
// the steady-clock epoch shared by obs timestamps and heartbeat math.
#pragma once

#include <chrono>
#include <cstdint>

namespace dls {

/// Nanoseconds on the steady (monotonic) clock. Every timestamp that
/// is subtracted from another — obs trace spans, event-loop lag,
/// dist heartbeat round-trips and silence windows — must come from
/// this single helper so the math never mixes clocks.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic stopwatch started at construction.
class WallTimer {
public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dls
