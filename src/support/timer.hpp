// Wall-clock timing for the runtime experiments (paper Figure 7).
#pragma once

#include <chrono>

namespace dls {

/// Monotonic stopwatch started at construction.
class WallTimer {
public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dls
