// Descriptive statistics for experiment aggregation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dls {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
public:
  void add(double x);

  /// Folds another accumulator in (Chan's parallel Welford update).
  /// Mathematically exact for every moment: merging per-shard
  /// accumulators reproduces the sequential stream's count/sum/min/max
  /// exactly and mean/M2 up to floating-point reassociation, in any
  /// merge order. The distributed coordinator uses this for its live
  /// progress view and as an integrity cross-check against the exact
  /// case-order fold.
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double stddev() const;
  /// Smallest/largest value added; quiet NaN while empty (an empty
  /// extremum has no honest numeric value — callers that print tables
  /// should render it as a placeholder, not as a fabricated 0).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Raw streaming state, exposed so checkpoints can persist an
  /// accumulator and restore it bit-for-bit (`dist::write_checkpoint`).
  struct State {
    std::size_t n = 0;
    double mean = 0.0, m2 = 0.0, min = 0.0, max = 0.0, sum = 0.0;
  };
  [[nodiscard]] State state() const { return {n_, mean_, m2_, min_, max_, sum_}; }
  [[nodiscard]] static Accumulator from_state(const State& s);

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
/// five markers tracked with parabolic interpolation, O(1) memory per
/// quantile, so million-case campaign sweeps can report percentiles
/// without materializing a result vector. Exact for the first five
/// observations (they are simply kept sorted); afterwards the classical
/// P^2 marker updates apply. The estimate is a pure function of the
/// insertion *sequence* — the campaign runner feeds it in case order, so
/// reports are bit-identical for any worker count.
class P2Quantile {
public:
  /// q in (0, 1), e.g. 0.5 for the median, 0.95 for p95.
  explicit P2Quantile(double q);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  /// The tracked quantile q.
  [[nodiscard]] double quantile() const { return q_; }
  /// Current estimate; quiet NaN while empty.
  [[nodiscard]] double value() const;

  /// Folds another estimator for the same q in. Unlike Accumulator::
  /// merge this is approximate: P^2 keeps five markers, not the sample,
  /// so the merged markers are re-derived from the weighted mixture of
  /// the two piecewise-linear marker CDFs. Small sides (n <= 5) still
  /// hold raw samples and are replayed exactly. Order-invariance holds
  /// only within the estimator's own accuracy — tested against the
  /// sequential stream with tolerance, not bitwise.
  void merge(const P2Quantile& other);

  /// Raw marker state for checkpoint persistence (see Accumulator::State).
  struct State {
    double q = 0.5;
    std::size_t n = 0;
    double heights[5]{}, pos[5]{}, desired[5]{};
  };
  [[nodiscard]] State state() const;
  [[nodiscard]] static P2Quantile from_state(const State& s);

private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5]{};   ///< marker heights (first 5 adds: sorted samples)
  double pos_[5]{};       ///< marker positions (1-based observation counts)
  double desired_[5]{};   ///< desired marker positions
  double increment_[5]{}; ///< per-observation increments of desired_
};

/// Renders an accumulator-derived statistic (`acc.mean()`, `acc.max()`,
/// ...) for a text table: fixed-precision number, or "-" when the
/// accumulator is empty — the aggregate of nothing has no honest value
/// and must not print as a fabricated 0 (or as "nan" for the extrema).
[[nodiscard]] std::string table_cell(const Accumulator& acc, double value,
                                     int precision);

/// Same rule for JSON emission: the number, or the literal `null` when
/// the accumulator is empty (keeps the output parseable — "nan" is not
/// valid JSON).
[[nodiscard]] std::string json_value(const Accumulator& acc, double value,
                                     int precision);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two values.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (linear interpolation between middle elements).
[[nodiscard]] double median(std::span<const double> xs);

/// p-th percentile, p in [0,100], linear interpolation. Requires non-empty.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

}  // namespace dls
