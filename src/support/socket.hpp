// Thin RAII wrappers over POSIX TCP sockets and poll(2), shared by the
// distributed-campaign coordinator and worker (`src/dist/`).
//
// Deliberately minimal: blocking or non-blocking stream sockets over
// IPv4, loopback-friendly, no TLS, no name resolution beyond dotted
// quads and "localhost". The coordinator is a single-threaded poll
// loop (the ytsaurus tcp_server pattern scaled down); workers use one
// blocking socket guarded by a write mutex for the heartbeat thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

struct pollfd;  // <poll.h>

namespace dls {

/// Move-only owner of a socket file descriptor.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

private:
  int fd_ = -1;
};

/// Binds and listens on 0.0.0.0:`port` (0 = ephemeral, see local_port).
/// Throws dls::Error on failure (port in use, out of descriptors, ...).
[[nodiscard]] Socket tcp_listen(std::uint16_t port, int backlog = 16);

/// The locally bound port (resolves port 0 after tcp_listen).
[[nodiscard]] std::uint16_t local_port(const Socket& socket);

/// Accepts one pending connection; invalid Socket when none is pending
/// (the listener must be non-blocking for that; otherwise it blocks).
[[nodiscard]] Socket tcp_accept(const Socket& listener);

/// Connects to host:port ("127.0.0.1", "localhost", or a dotted quad).
/// Throws dls::Error when the connection is refused or times out.
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port);

void set_nonblocking(const Socket& socket, bool enabled);

/// Writes the whole buffer, riding out partial writes and EINTR; false
/// when the peer is gone (EPIPE/ECONNRESET — never raises SIGPIPE).
[[nodiscard]] bool send_all(const Socket& socket, const char* data,
                            std::size_t size);

/// One read: bytes received, 0 on orderly EOF, -1 when a non-blocking
/// socket has nothing pending. Throws dls::Error on hard errors other
/// than connection reset (a reset reads as EOF — the caller's dead-peer
/// path is the same either way).
[[nodiscard]] long recv_some(const Socket& socket, char* buffer,
                             std::size_t capacity);

/// poll(2) with EINTR retry; returns the number of ready entries.
[[nodiscard]] int poll_sockets(std::vector<::pollfd>& fds, int timeout_ms);

}  // namespace dls
