// Best rational approximation of a double under a denominator bound.
//
// The schedule period T_p is the lcm of the α denominators (paper §3.2);
// an unbounded conversion of solver doubles would make T_p astronomically
// large, so we approximate each rate with the best rational whose
// denominator stays below a caller-chosen bound (continued fractions /
// Stern–Brocot). Rounding *down* on the final convergent keeps the
// rationalized rate ≤ the LP rate, so every capacity constraint that held
// for the LP solution still holds for the schedule.
#pragma once

#include <cstdint>

#include "support/rational.hpp"

namespace dls {

/// Best rational approximation of `x` with denominator <= max_den.
/// Requires x finite and max_den >= 1. The result is within 1/max_den of x.
[[nodiscard]] Rational rationalize(double x, std::int64_t max_den);

/// Largest rational <= x with denominator <= max_den (never rounds up).
/// Used for capacities/rates where exceeding x would violate a constraint.
[[nodiscard]] Rational rationalize_floor(double x, std::int64_t max_den);

}  // namespace dls
