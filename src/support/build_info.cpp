#include "support/build_info.hpp"

#ifndef DLS_BUILD_TYPE
#define DLS_BUILD_TYPE "unknown"
#endif
#ifndef DLS_COMPILER
#define DLS_COMPILER "unknown"
#endif
#ifndef DLS_GIT_REVISION
#define DLS_GIT_REVISION "unknown"
#endif

namespace dls::support {

const char* build_type() { return DLS_BUILD_TYPE; }

const char* compiler() { return DLS_COMPILER; }

const char* git_revision() { return DLS_GIT_REVISION; }

std::string build_summary() {
  return std::string("dls ") + git_revision() + " (" + build_type() + ", " +
         compiler() + ")";
}

}  // namespace dls::support
