// Plain-text table and CSV emission for bench harness output.
//
// Every bench binary prints the same rows/series the paper reports; this
// formatter keeps those tables aligned and optionally mirrors them to CSV
// so plots can be regenerated outside the repo.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dls {

/// Column-aligned text table with a header row.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);

  /// Renders with single-space-padded columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (fields containing commas are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dls
