#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "support/error.hpp"

namespace dls {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  require(static_cast<bool>(job), "ThreadPool::submit: empty job");
  {
    std::scoped_lock lock(mutex_);
    require(!stop_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      job();
    } catch (...) {
      std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (chunk == 0) chunk = std::max<std::size_t>(1, n / (pool.size() * 8));
  // The cursor lives on this stack frame; pool.wait() below keeps the
  // frame alive until every worker job has returned.
  std::atomic<std::size_t> next{begin};
  const std::size_t jobs = std::min(pool.size(), (n + chunk - 1) / chunk);
  for (std::size_t w = 0; w < jobs; ++w) {
    pool.submit([&body, &next, end, chunk] {
      for (;;) {
        const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= end) return;
        const std::size_t hi = std::min(lo + chunk, end);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }
    });
  }
  pool.wait();
}

void parallel_for_static(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Exactly the partition parallel_for shipped before the dynamic
  // cursor: four contiguous blocks per worker, assigned up front — an
  // honest baseline, not a strawman.
  const std::size_t blocks = std::min(n, pool.size() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  for (std::size_t b = begin; b < end; b += chunk) {
    const std::size_t hi = std::min(b + chunk, end);
    pool.submit([&body, b, hi] {
      for (std::size_t i = b; i < hi; ++i) body(i);
    });
  }
  pool.wait();
}

}  // namespace dls
