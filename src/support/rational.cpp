#include "support/rational.hpp"

#include <cstdlib>
#include <limits>
#include <ostream>

namespace dls {

namespace {
// GCC/Clang extension; __extension__ silences -Wpedantic.
__extension__ typedef __int128 i128;

std::int64_t checked_narrow(i128 v, const char* op) {
  if (v > std::numeric_limits<std::int64_t>::max() ||
      v < std::numeric_limits<std::int64_t>::min()) {
    throw Error(std::string("Rational overflow in ") + op);
  }
  return static_cast<std::int64_t>(v);
}
}  // namespace

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  // llabs is safe here: INT64_MIN inputs are rejected by the callers that
  // construct rationals (they would overflow the negation in normalize()).
  std::uint64_t x = a == std::numeric_limits<std::int64_t>::min()
                        ? (1ULL << 63)
                        : static_cast<std::uint64_t>(std::llabs(a));
  std::uint64_t y = b == std::numeric_limits<std::int64_t>::min()
                        ? (1ULL << 63)
                        : static_cast<std::uint64_t>(std::llabs(b));
  while (y != 0) {
    const std::uint64_t t = x % y;
    x = y;
    y = t;
  }
  return checked_narrow(static_cast<i128>(x), "gcd64");
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  const i128 l = static_cast<i128>(std::llabs(a)) / g * static_cast<i128>(std::llabs(b));
  return checked_narrow(l, "lcm64");
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  require(den != 0, "Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked_narrow(-static_cast<i128>(num_), "Rational::normalize");
    den_ = checked_narrow(-static_cast<i128>(den_), "Rational::normalize");
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_narrow(-static_cast<i128>(num_), "Rational::operator-");
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  // Reduce cross terms first to keep intermediates small: a/b + c/d with
  // g = gcd(b, d) gives (a*(d/g) + c*(b/g)) / (b/g*d).
  const std::int64_t g = gcd64(den_, o.den_);
  const i128 n =
      static_cast<i128>(num_) * (o.den_ / g) + static_cast<i128>(o.num_) * (den_ / g);
  const i128 d = static_cast<i128>(den_ / g) * o.den_;
  num_ = checked_narrow(n, "Rational::operator+=");
  den_ = checked_narrow(d, "Rational::operator+=");
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-cancel before multiplying to delay overflow.
  const std::int64_t g1 = gcd64(num_, o.den_);
  const std::int64_t g2 = gcd64(o.num_, den_);
  const i128 n = static_cast<i128>(num_ / g1) * (o.num_ / g2);
  const i128 d = static_cast<i128>(den_ / g2) * (o.den_ / g1);
  num_ = checked_narrow(n, "Rational::operator*=");
  den_ = checked_narrow(d, "Rational::operator*=");
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  require(!o.is_zero(), "Rational: division by zero");
  return *this *= Rational(o.den_, o.num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  const i128 lhs = static_cast<i128>(a.num_) * b.den_;
  const i128 rhs = static_cast<i128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace dls
