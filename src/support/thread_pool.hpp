// Fixed-size thread pool with a blocking work queue.
//
// The experiment sweep evaluates thousands of independent platforms; each
// platform is a task. Tasks are plain std::function jobs; parallel_for
// hands out chunks of an index range through a shared atomic cursor, so
// skewed per-index costs (an LPRR case is ~K^2 LP solves next to a
// millisecond greedy case) cannot strand the tail of the range on one
// worker. Exceptions thrown by a task are captured and rethrown to the
// caller of wait()/parallel_for (first one wins), so a failing
// experiment aborts the sweep instead of vanishing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dls {

class ThreadPool {
public:
  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; may run on any worker thread.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all running jobs finished.
  /// Rethrows the first exception raised by any job since the last wait().
  void wait();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// Dynamic chunked scheduling: workers pull `chunk`-sized index blocks
/// from a shared atomic cursor until the range is drained, so one
/// expensive index only costs its own worker while the rest of the pool
/// keeps draining the range. chunk = 0 picks a small automatic chunk
/// (range / (workers * 8), at least 1). The set of indices executed is
/// always exactly [begin, end); only the index->worker assignment varies.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk = 0);

/// The pre-campaign static partition, kept verbatim as the
/// load-imbalance baseline for bench/campaign_sched: the range is cut
/// into at most four contiguous blocks per worker up front, so a
/// cluster of expensive indices in one block serializes on a single
/// worker no matter how idle the rest of the pool is.
void parallel_for_static(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body);

}  // namespace dls
