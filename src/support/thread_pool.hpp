// Fixed-size thread pool with a blocking work queue.
//
// The experiment sweep evaluates thousands of independent platforms; each
// platform is a task. Tasks are plain std::function jobs; parallel_for
// partitions an index range into per-worker blocks to avoid queue
// contention for fine-grained bodies. Exceptions thrown by a task are
// captured and rethrown to the caller of wait()/parallel_for (first one
// wins), so a failing experiment aborts the sweep instead of vanishing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dls {

class ThreadPool {
public:
  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; may run on any worker thread.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all running jobs finished.
  /// Rethrows the first exception raised by any job since the last wait().
  void wait();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// The range is split into contiguous blocks, one batch per worker.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace dls
