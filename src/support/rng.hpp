// Deterministic pseudo-random number generation.
//
// Every randomized component in dls (platform generator, LPRR rounding)
// takes an explicit Rng so experiments are reproducible from a single
// seed. The generator is xoshiro256** seeded through SplitMix64, which
// is both faster and statistically stronger than std::mt19937_64 and,
// unlike the standard distributions, produces identical streams across
// standard-library implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace dls {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniformly chosen index into a non-empty container of size n.
  std::size_t index(std::size_t n);

  /// Derives an independent child generator; used to give each platform
  /// in a sweep its own stream so results do not depend on scan order.
  Rng split();

private:
  std::uint64_t s_[4]{};
};

}  // namespace dls
