#include "support/rng.hpp"

#include <cmath>

namespace dls {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row, but guard against it anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  require(n > 0, "Rng::index: empty range");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd3833e804f4c574bULL); }

}  // namespace dls
