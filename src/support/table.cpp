#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/error.hpp"

namespace dls {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << field(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace dls
