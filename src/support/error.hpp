// Error handling primitives shared by every dls module.
//
// Policy (following the C++ Core Guidelines): exceptions signal violated
// preconditions on *user-supplied* data (malformed platforms, infeasible
// fixings, bad parameters); DLS_ASSERT guards *internal* invariants and
// aborts, because an internal invariant failure means the library itself
// is wrong and no recovery is meaningful.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dls {

/// Exception thrown on violated preconditions and malformed inputs.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws dls::Error with the given message if `cond` is false.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw Error(message);
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "dls internal invariant violated: %s (%s:%d)\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace dls

/// Internal invariant check. Active in all build types: the cost is
/// negligible next to the simplex inner loops it protects, and silent
/// corruption of a scheduling result is worse than an abort.
#define DLS_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::dls::detail::assert_fail(#expr, __FILE__, __LINE__))
