#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/error.hpp"

namespace dls {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  // Chan et al.: combine means weighted by counts, add the
  // between-shard term delta^2 * na*nb/n to the pooled M2.
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Accumulator Accumulator::from_state(const State& s) {
  Accumulator acc;
  acc.n_ = s.n;
  acc.mean_ = s.mean;
  acc.m2_ = s.m2;
  acc.min_ = s.min;
  acc.max_ = s.max;
  acc.sum_ = s.sum;
  return acc;
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Accumulator::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}
double Accumulator::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  require(q > 0.0 && q < 1.0, "P2Quantile: q out of (0, 1)");
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increment_[0] = 0.0;
  increment_[1] = q / 2.0;
  increment_[2] = q;
  increment_[3] = (1.0 + q) / 2.0;
  increment_[4] = 1.0;
}

void P2Quantile::add(double x) {
  require(!std::isnan(x), "P2Quantile: NaN observation");
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    std::sort(heights_, heights_ + n_);
    if (n_ == 5) {
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
    }
    return;
  }

  // Locate the cell [heights_[k], heights_[k+1]) containing x, widening
  // the extreme markers when x falls outside them.
  int k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++n_;
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Re-space the three interior markers towards their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the adjusted height.
      const double qp =
          heights_[i] +
          sign / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        // Parabolic step left the bracket: fall back to linear.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += sign;
    }
  }
}

P2Quantile::State P2Quantile::state() const {
  State s;
  s.q = q_;
  s.n = n_;
  for (int i = 0; i < 5; ++i) {
    s.heights[i] = heights_[i];
    s.pos[i] = pos_[i];
    s.desired[i] = desired_[i];
  }
  return s;
}

P2Quantile P2Quantile::from_state(const State& s) {
  P2Quantile p(s.q);
  p.n_ = s.n;
  for (int i = 0; i < 5; ++i) {
    p.heights_[i] = s.heights[i];
    p.pos_[i] = s.pos[i];
    p.desired_[i] = s.desired[i];
  }
  return p;
}

namespace {

/// Piecewise-linear empirical CDF spanned by one estimator's five
/// markers: marker i sits at height h_i and cumulative fraction
/// (pos_i - 1) / (n - 1).
double marker_cdf(const double h[5], const double f[5], double x) {
  if (x <= h[0]) return x < h[0] ? 0.0 : f[0];
  if (x >= h[4]) return 1.0;
  for (int i = 0; i < 4; ++i) {
    if (x <= h[i + 1]) {
      const double span = h[i + 1] - h[i];
      if (span <= 0.0) return f[i + 1];
      return f[i] + (f[i + 1] - f[i]) * (x - h[i]) / span;
    }
  }
  return 1.0;
}

}  // namespace

void P2Quantile::merge(const P2Quantile& other) {
  require(q_ == other.q_, "P2Quantile::merge: mismatched quantiles");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // A small side still holds its raw samples — replay them exactly.
  if (other.n_ <= 5) {
    for (std::size_t i = 0; i < other.n_; ++i) add(other.heights_[i]);
    return;
  }
  if (n_ <= 5) {
    double mine[5];
    const std::size_t count = n_;
    for (std::size_t i = 0; i < count; ++i) mine[i] = heights_[i];
    *this = other;
    for (std::size_t i = 0; i < count; ++i) add(mine[i]);
    return;
  }

  // Both sides are in marker mode: re-derive the five markers from the
  // count-weighted mixture of the two piecewise-linear marker CDFs.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double wa = na / (na + nb);
  double fa[5], fb[5];
  for (int i = 0; i < 5; ++i) {
    fa[i] = (pos_[i] - 1.0) / (na - 1.0);
    fb[i] = (other.pos_[i] - 1.0) / (nb - 1.0);
  }
  const auto mixture = [&](double x) {
    return wa * marker_cdf(heights_, fa, x) +
           (1.0 - wa) * marker_cdf(other.heights_, fb, x);
  };
  double breaks[10];
  for (int i = 0; i < 5; ++i) {
    breaks[i] = heights_[i];
    breaks[5 + i] = other.heights_[i];
  }
  std::sort(breaks, breaks + 10);

  const double target[5] = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  double merged[5];
  merged[0] = std::min(heights_[0], other.heights_[0]);
  merged[4] = std::max(heights_[4], other.heights_[4]);
  for (int m = 1; m <= 3; ++m) {
    const double t = target[m];
    double x = merged[4];
    for (int j = 0; j < 9; ++j) {
      const double g0 = mixture(breaks[j]);
      const double g1 = mixture(breaks[j + 1]);
      if (t > g1) continue;
      // Invert the linear segment; a flat segment keeps its left end.
      x = g1 > g0 ? breaks[j] + (breaks[j + 1] - breaks[j]) * (t - g0) / (g1 - g0)
                  : breaks[j];
      break;
    }
    merged[m] = x;
  }
  for (int i = 1; i < 5; ++i) merged[i] = std::max(merged[i], merged[i - 1]);

  const std::size_t n = n_ + other.n_;
  n_ = n;
  const double nn = static_cast<double>(n);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = merged[i];
    pos_[i] = 1.0 + target[i] * (nn - 1.0);
  }
  // Keep the marker-position invariants the update loop relies on:
  // integer-ish, strictly increasing, pos_[0] = 1, pos_[4] = n.
  pos_[0] = 1.0;
  pos_[4] = nn;
  for (int i = 1; i < 4; ++i) {
    pos_[i] = std::round(pos_[i]);
    if (pos_[i] <= pos_[i - 1]) pos_[i] = pos_[i - 1] + 1.0;
  }
  for (int i = 3; i >= 1; --i) {
    if (pos_[i] >= pos_[i + 1]) pos_[i] = pos_[i + 1] - 1.0;
  }
  // desired_ after n observations = constructor value + (n-5) increments.
  const double init[5] = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_,
                          5.0};
  for (int i = 0; i < 5; ++i)
    desired_[i] = init[i] + (nn - 5.0) * increment_[i];
}

double P2Quantile::value() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ <= 5) {
    // Exact small-sample percentile, same interpolation as percentile().
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, n_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

std::string table_cell(const Accumulator& acc, double value, int precision) {
  if (acc.count() == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string json_value(const Accumulator& acc, double value, int precision) {
  if (acc.count() == 0) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

double mean(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stddev(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double percentile(std::span<const double> xs, double p) {
  require(!xs.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

}  // namespace dls
