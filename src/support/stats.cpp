#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/error.hpp"

namespace dls {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Accumulator::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}
double Accumulator::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

std::string table_cell(const Accumulator& acc, double value, int precision) {
  if (acc.count() == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string json_value(const Accumulator& acc, double value, int precision) {
  if (acc.count() == 0) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

double mean(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stddev(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double percentile(std::span<const double> xs, double p) {
  require(!xs.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

}  // namespace dls
