#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/error.hpp"

namespace dls {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Accumulator::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}
double Accumulator::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  require(q > 0.0 && q < 1.0, "P2Quantile: q out of (0, 1)");
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increment_[0] = 0.0;
  increment_[1] = q / 2.0;
  increment_[2] = q;
  increment_[3] = (1.0 + q) / 2.0;
  increment_[4] = 1.0;
}

void P2Quantile::add(double x) {
  require(!std::isnan(x), "P2Quantile: NaN observation");
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    std::sort(heights_, heights_ + n_);
    if (n_ == 5) {
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
    }
    return;
  }

  // Locate the cell [heights_[k], heights_[k+1]) containing x, widening
  // the extreme markers when x falls outside them.
  int k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++n_;
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Re-space the three interior markers towards their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the adjusted height.
      const double qp =
          heights_[i] +
          sign / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        // Parabolic step left the bracket: fall back to linear.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ <= 5) {
    // Exact small-sample percentile, same interpolation as percentile().
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, n_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

std::string table_cell(const Accumulator& acc, double value, int precision) {
  if (acc.count() == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string json_value(const Accumulator& acc, double value, int precision) {
  if (acc.count() == 0) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

double mean(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stddev(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double percentile(std::span<const double> xs, double p) {
  require(!xs.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

}  // namespace dls
