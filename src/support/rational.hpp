// Exact rational arithmetic on 64-bit numerator/denominator.
//
// Used by the periodic-schedule reconstruction (paper §3.2): steady-state
// rates α_{k,l} are rationalized, the schedule period is the lcm of their
// denominators, and per-period chunk sizes are exact integers. All
// operations detect overflow via 128-bit intermediates and throw dls::Error
// instead of silently wrapping — a wrapped lcm would produce a bogus
// schedule period.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "support/error.hpp"

namespace dls {

/// A rational number p/q in lowest terms with q > 0.
class Rational {
public:
  /// Zero.
  constexpr Rational() = default;

  /// Integer value n/1.
  Rational(std::int64_t n) : num_(n) {}  // NOLINT(google-explicit-constructor): intended implicit lift

  /// num/den reduced to lowest terms; throws if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;

  void normalize();
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Greatest common divisor of |a| and |b|; gcd(0,0) == 0.
[[nodiscard]] std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple of |a| and |b|; throws dls::Error on overflow.
[[nodiscard]] std::int64_t lcm64(std::int64_t a, std::int64_t b);

}  // namespace dls
