#include "support/rationalize.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace dls {

namespace {

// Continued-fraction expansion producing the last convergent p/q with
// q <= max_den, plus the semiconvergent refinement. Returns the best
// approximation (closest in absolute value; ties go to the convergent).
Rational best_approx(double x, std::int64_t max_den) {
  const bool neg = x < 0;
  double v = std::fabs(x);

  // Convergents p_{-1}/q_{-1} = 1/0, p_0/q_0 = a_0/1, ...
  std::int64_t p_prev = 1, q_prev = 0;
  std::int64_t p_cur = static_cast<std::int64_t>(std::floor(v));
  std::int64_t q_cur = 1;
  double frac = v - std::floor(v);

  while (frac > 0) {
    const double inv = 1.0 / frac;
    if (inv > static_cast<double>(std::numeric_limits<std::int64_t>::max() / 2)) break;
    const std::int64_t a = static_cast<std::int64_t>(std::floor(inv));
    frac = inv - std::floor(inv);

    // Next convergent would be p = a*p_cur + p_prev, q = a*q_cur + q_prev.
    if (a > (max_den - q_prev) / q_cur) {
      // Full step exceeds the bound: take the largest semiconvergent
      // a' in [ceil(a/2), a) with q' = a'*q_cur + q_prev <= max_den.
      const std::int64_t a_fit = (max_den - q_prev) / q_cur;
      if (2 * a_fit >= a) {
        const std::int64_t p_semi = a_fit * p_cur + p_prev;
        const std::int64_t q_semi = a_fit * q_cur + q_prev;
        // The semiconvergent with a' = a/2 is only better when strictly
        // closer; comparing distances keeps "best approximation" exact.
        const double d_semi =
            std::fabs(v - static_cast<double>(p_semi) / static_cast<double>(q_semi));
        const double d_cur =
            std::fabs(v - static_cast<double>(p_cur) / static_cast<double>(q_cur));
        if (d_semi < d_cur) {
          p_cur = p_semi;
          q_cur = q_semi;
        }
      }
      break;
    }

    const std::int64_t p_next = a * p_cur + p_prev;
    const std::int64_t q_next = a * q_cur + q_prev;
    p_prev = p_cur;
    q_prev = q_cur;
    p_cur = p_next;
    q_cur = q_next;
    if (q_cur == max_den) break;
  }

  return {neg ? -p_cur : p_cur, q_cur};
}

}  // namespace

Rational rationalize(double x, std::int64_t max_den) {
  require(std::isfinite(x), "rationalize: non-finite input");
  require(max_den >= 1, "rationalize: max_den must be >= 1");
  return best_approx(x, max_den);
}

namespace {

// Modular inverse of a modulo m (m >= 1), result in [0, m).
std::int64_t mod_inverse(std::int64_t a, std::int64_t m) {
  a = ((a % m) + m) % m;
  std::int64_t t = 0, new_t = 1, r = m, new_r = a;
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    t = std::exchange(new_t, t - q * new_t);
    r = std::exchange(new_r, r - q * new_r);
  }
  require(r == 1, "mod_inverse: arguments not coprime");
  return ((t % m) + m) % m;
}

}  // namespace

Rational rationalize_floor(double x, std::int64_t max_den) {
  const Rational r = rationalize(x, max_den);
  if (r.to_double() <= x) return r;

  // r = p/q is the Farey fraction of order max_den nearest x, and it lies
  // above x. Its left Farey neighbor p'/q' (the consecutive fraction with
  // p*q' - p'*q = 1 and the largest q' <= max_den) is then the greatest
  // fraction <= x with denominator <= max_den, i.e. the exact floor.
  const std::int64_t p = r.num();
  const std::int64_t q = r.den();
  std::int64_t qp;
  if (q == 1) {
    qp = max_den;
  } else {
    const std::int64_t inv = mod_inverse(p, q);
    qp = inv == 0 ? q : inv;
    qp += (max_den - qp) / q * q;  // largest value <= max_den congruent to inv
  }
  __extension__ typedef __int128 i128;  // extension; silences -Wpedantic
  const i128 num = static_cast<i128>(p) * qp - 1;
  DLS_ASSERT(num % q == 0);
  return {static_cast<std::int64_t>(num / q), qp};
}

}  // namespace dls
