#include "support/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "support/error.hpp"

namespace dls {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error("socket: " + what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail("socket()");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    fail("bind(port " + std::to_string(port) + ")");
  if (::listen(sock.fd(), backlog) != 0) fail("listen()");
  return sock;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname()");
  return ntohs(addr.sin_port);
}

Socket tcp_accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return sock;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
      return Socket();
    fail("accept()");
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  require(::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) == 1,
          "socket: cannot parse host '" + host + "' (use a dotted quad)");

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail("socket()");
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
        0)
      break;
    if (errno == EINTR) continue;
    fail("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

void set_nonblocking(const Socket& socket, bool enabled) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(socket.fd(), F_SETFL, next) < 0) fail("fcntl(F_SETFL)");
}

bool send_all(const Socket& socket, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(socket.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Blocking sockets only block here under extreme backpressure;
      // ride it out with poll rather than spinning.
      std::vector<::pollfd> fds{{socket.fd(), POLLOUT, 0}};
      (void)poll_sockets(fds, 1000);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    fail("send()");
  }
  return true;
}

long recv_some(const Socket& socket, char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buffer, capacity, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) return 0;  // dead peer == EOF to the caller
    fail("recv()");
  }
}

int poll_sockets(std::vector<::pollfd>& fds, int timeout_ms) {
  for (;;) {
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    fail("poll()");
  }
}

}  // namespace dls
