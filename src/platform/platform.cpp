#include "platform/platform.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace dls::platform {

RouterId Platform::add_router(std::string name) {
  router_names_.push_back(std::move(name));
  return num_routers() - 1;
}

ClusterId Platform::add_cluster(double speed, double gateway_bw, RouterId router,
                                std::string name) {
  check_router(router);
  require(speed >= 0.0 && std::isfinite(speed), "add_cluster: invalid speed");
  require(gateway_bw > 0.0 && std::isfinite(gateway_bw),
          "add_cluster: gateway bandwidth must be positive");
  // Migrate the route table from K*K to (K+1)*(K+1) indexing.
  const int old_k = num_clusters();
  clusters_.push_back({speed, gateway_bw, router, std::move(name)});
  const int new_k = num_clusters();
  if (!routes_.empty()) {
    std::vector<std::vector<LinkId>> routes(static_cast<std::size_t>(new_k) * new_k);
    std::vector<char> present(static_cast<std::size_t>(new_k) * new_k, 0);
    std::vector<double> pbw(static_cast<std::size_t>(new_k) * new_k, 0.0);
    std::vector<double> lat(static_cast<std::size_t>(new_k) * new_k, 0.0);
    for (int k = 0; k < old_k; ++k) {
      for (int l = 0; l < old_k; ++l) {
        routes[static_cast<std::size_t>(k) * new_k + l] =
            std::move(routes_[static_cast<std::size_t>(k) * old_k + l]);
        present[static_cast<std::size_t>(k) * new_k + l] =
            route_present_[static_cast<std::size_t>(k) * old_k + l];
        pbw[static_cast<std::size_t>(k) * new_k + l] =
            route_pbw_[static_cast<std::size_t>(k) * old_k + l];
        lat[static_cast<std::size_t>(k) * new_k + l] =
            route_latency_sum_[static_cast<std::size_t>(k) * old_k + l];
      }
    }
    routes_ = std::move(routes);
    route_present_ = std::move(present);
    route_pbw_ = std::move(pbw);
    route_latency_sum_ = std::move(lat);
  }
  return new_k - 1;
}

LinkId Platform::add_backbone(RouterId a, RouterId b, double bw, int max_connections,
                              std::string name, double latency) {
  check_router(a);
  check_router(b);
  require(a != b, "add_backbone: self-loop backbone link");
  require(bw > 0.0 && std::isfinite(bw), "add_backbone: bandwidth must be positive");
  require(max_connections >= 0, "add_backbone: negative max_connections");
  require(latency >= 0.0 && std::isfinite(latency), "add_backbone: negative latency");
  links_.push_back({a, b, bw, max_connections, latency, true, std::move(name)});
  if (!routes_.empty()) link_pairs_.resize(links_.size());
  return num_links() - 1;
}

LinkId Platform::subdivide_link(LinkId i, RouterId mid) {
  check_link(i);
  check_router(mid);
  require(mid != links_[i].a && mid != links_[i].b,
          "subdivide_link: midpoint already an endpoint");
  const RouterId tail = links_[i].b;
  const double bw = links_[i].bw;
  const int maxcon = links_[i].max_connections;
  const double half_latency = links_[i].latency / 2.0;
  const std::string half_name = links_[i].name.empty() ? "" : links_[i].name + "+";
  links_[i].b = mid;
  links_[i].latency = half_latency;  // halves sum to the original latency
  // Existing routes may traverse the shortened link; drop them all.
  routes_.clear();
  route_present_.clear();
  route_pbw_.clear();
  route_latency_sum_.clear();
  link_pairs_.clear();
  severed_pairs_.clear();
  return add_backbone(mid, tail, bw, maxcon, half_name, half_latency);
}

const Cluster& Platform::cluster(ClusterId k) const {
  check_cluster(k);
  return clusters_[k];
}

const BackboneLink& Platform::link(LinkId i) const {
  check_link(i);
  return links_[i];
}

const std::string& Platform::router_name(RouterId r) const {
  check_router(r);
  return router_names_[r];
}

void Platform::set_route(ClusterId k, ClusterId l, std::vector<LinkId> links) {
  check_cluster(k);
  check_cluster(l);
  require(k != l, "set_route: local pairs need no route");
  // Validate the ordered list walks from router(k) to router(l).
  RouterId at = clusters_[k].router;
  for (LinkId li : links) {
    check_link(li);
    const BackboneLink& bl = links_[li];
    require(bl.up, "set_route: link " + std::to_string(li) + " is down");
    if (bl.a == at) {
      at = bl.b;
    } else if (bl.b == at) {
      at = bl.a;
    } else {
      throw Error("set_route: link " + std::to_string(li) +
                  " does not continue the path");
    }
  }
  require(at == clusters_[l].router, "set_route: path does not end at target router");

  ensure_tables();
  install_route(k, l, std::move(links));
}

void Platform::clear_route(ClusterId k, ClusterId l) {
  check_cluster(k);
  check_cluster(l);
  require(k != l, "clear_route: local pairs have no route");
  if (routes_.empty()) return;
  drop_route(k, l);
}

bool Platform::has_route(ClusterId k, ClusterId l) const {
  check_cluster(k);
  check_cluster(l);
  if (k == l) return true;
  if (routes_.empty()) return false;
  return route_present_[route_index(k, l)] != 0;
}

std::span<const LinkId> Platform::route(ClusterId k, ClusterId l) const {
  require(has_route(k, l), "route: no route installed for this pair");
  if (k == l) return {};
  return routes_[route_index(k, l)];
}

double Platform::route_bottleneck_bw(ClusterId k, ClusterId l) const {
  require(has_route(k, l), "route: no route installed for this pair");
  if (k == l) return std::numeric_limits<double>::infinity();
  return route_pbw_[route_index(k, l)];
}

double Platform::route_latency(ClusterId k, ClusterId l) const {
  require(has_route(k, l), "route: no route installed for this pair");
  if (k == l) return 0.0;
  return route_latency_sum_[route_index(k, l)];
}

void Platform::refresh_route_metrics(ClusterId k, ClusterId l) {
  double bw = std::numeric_limits<double>::infinity();
  double lat = 0.0;
  for (LinkId li : routes_[route_index(k, l)]) {
    bw = std::min(bw, links_[li].bw);
    lat += links_[li].latency;
  }
  route_pbw_[route_index(k, l)] = bw;
  route_latency_sum_[route_index(k, l)] = lat;
}

void Platform::ensure_tables() {
  if (!routes_.empty()) return;
  const int n = num_clusters();
  routes_.assign(static_cast<std::size_t>(n) * n, {});
  route_present_.assign(static_cast<std::size_t>(n) * n, 0);
  route_pbw_.assign(static_cast<std::size_t>(n) * n, 0.0);
  route_latency_sum_.assign(static_cast<std::size_t>(n) * n, 0.0);
  link_pairs_.assign(links_.size(), {});
}

void Platform::install_route(ClusterId k, ClusterId l, std::vector<LinkId> path) {
  drop_route(k, l);
  const std::size_t idx = route_index(k, l);
  for (LinkId li : path) link_pairs_[li].push_back({k, l});
  routes_[idx] = std::move(path);
  route_present_[idx] = 1;
  refresh_route_metrics(k, l);
  // A routed pair is no longer severed.
  severed_pairs_.erase({k, l});
}

void Platform::mark_severed(ClusterId k, ClusterId l) {
  severed_pairs_.insert({k, l});
}

void Platform::drop_route(ClusterId k, ClusterId l) {
  const std::size_t idx = route_index(k, l);
  if (!route_present_[idx]) return;
  for (LinkId li : routes_[idx]) {
    auto& pairs = link_pairs_[li];
    pairs.erase(std::find(pairs.begin(), pairs.end(), std::make_pair(k, l)));
  }
  routes_[idx].clear();
  route_present_[idx] = 0;
}

std::vector<std::vector<std::pair<RouterId, LinkId>>> Platform::up_adjacency()
    const {
  // Adjacency sorted by (neighbor, link id) for deterministic BFS trees.
  std::vector<std::vector<std::pair<RouterId, LinkId>>> adj(num_routers());
  for (LinkId i = 0; i < num_links(); ++i) {
    if (!links_[i].up) continue;
    adj[links_[i].a].push_back({links_[i].b, i});
    adj[links_[i].b].push_back({links_[i].a, i});
  }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());
  return adj;
}

void Platform::bfs(RouterId src,
                   const std::vector<std::vector<std::pair<RouterId, LinkId>>>& adj,
                   BfsTree& tree) const {
  const int r = num_routers();
  tree.parent.assign(r, -1);
  tree.parent_link.assign(r, -1);
  tree.seen.assign(r, 0);
  std::deque<RouterId> queue{src};
  tree.seen[src] = 1;
  while (!queue.empty()) {
    const RouterId at = queue.front();
    queue.pop_front();
    for (const auto& [next, li] : adj[at]) {
      if (tree.seen[next]) continue;
      tree.seen[next] = 1;
      tree.parent[next] = at;
      tree.parent_link[next] = li;
      queue.push_back(next);
    }
  }
}

std::vector<LinkId> Platform::tree_path(const BfsTree& tree, RouterId src,
                                        RouterId dst) const {
  std::vector<LinkId> path;
  for (RouterId at = dst; at != src; at = tree.parent[at])
    path.push_back(tree.parent_link[at]);
  std::reverse(path.begin(), path.end());
  return path;
}

int Platform::reroute_pairs(
    const std::vector<std::pair<ClusterId, ClusterId>>& pairs,
    bool drop_unreachable) {
  if (pairs.empty()) return 0;
  const auto adj = up_adjacency();
  int changed = 0;
  // One BFS per distinct source cluster; `pairs` is grouped by source.
  BfsTree tree;
  ClusterId tree_for = -1;
  for (const auto& [k, l] : pairs) {
    if (k != tree_for) {
      bfs(clusters_[k].router, adj, tree);
      tree_for = k;
    }
    const RouterId src = clusters_[k].router;
    const RouterId dst = clusters_[l].router;
    if (tree.seen[dst]) {
      install_route(k, l, tree_path(tree, src, dst));
      ++changed;
    } else if (drop_unreachable && route_present_[route_index(k, l)]) {
      drop_route(k, l);
      mark_severed(k, l);
      ++changed;
    }
  }
  return changed;
}

void Platform::compute_shortest_path_routes() {
  const int n = num_clusters();
  routes_.assign(static_cast<std::size_t>(n) * n, {});
  route_present_.assign(static_cast<std::size_t>(n) * n, 0);
  route_pbw_.assign(static_cast<std::size_t>(n) * n, 0.0);
  route_latency_sum_.assign(static_cast<std::size_t>(n) * n, 0.0);
  link_pairs_.assign(links_.size(), {});
  severed_pairs_.clear();
  if (n == 0) return;

  const auto adj = up_adjacency();
  BfsTree tree;
  for (ClusterId k = 0; k < n; ++k) {
    const RouterId src = clusters_[k].router;
    bfs(src, adj, tree);
    for (ClusterId l = 0; l < n; ++l) {
      if (l == k) continue;
      const RouterId dst = clusters_[l].router;
      if (!tree.seen[dst]) continue;  // unreachable: no route
      install_route(k, l, tree_path(tree, src, dst));
    }
  }
}

void Platform::set_link_bandwidth(LinkId i, double bw) {
  check_link(i);
  require(bw > 0.0 && std::isfinite(bw),
          "set_link_bandwidth: bandwidth must be positive");
  links_[i].bw = bw;
  if (routes_.empty()) return;
  for (const auto& [k, l] : link_pairs_[i]) refresh_route_metrics(k, l);
}

void Platform::set_link_max_connections(LinkId i, int max_connections) {
  check_link(i);
  require(max_connections >= 0,
          "set_link_max_connections: negative max_connections");
  links_[i].max_connections = max_connections;
}

int Platform::set_link_up(LinkId i, bool up, const RouteFilter& eligible) {
  check_link(i);
  if (links_[i].up == up) return 0;
  links_[i].up = up;
  if (routes_.empty()) return 0;
  if (!up) {
    // Orphaned pairs: everything routed through the failed link. The
    // incidence list mutates as routes are replaced, so walk a copy,
    // grouped by source to share BFS trees.
    auto orphans = link_pairs_[i];
    std::sort(orphans.begin(), orphans.end());
    return reroute_pairs(orphans, /*drop_unreachable=*/true);
  }
  return reroute_missing_pairs(eligible);
}

void Platform::set_cluster_speed(ClusterId k, double speed) {
  check_cluster(k);
  require(speed >= 0.0 && std::isfinite(speed),
          "set_cluster_speed: invalid speed");
  clusters_[k].speed = speed;
}

void Platform::set_cluster_gateway_bw(ClusterId k, double gateway_bw) {
  check_cluster(k);
  require(gateway_bw > 0.0 && std::isfinite(gateway_bw),
          "set_cluster_gateway_bw: gateway bandwidth must be positive");
  clusters_[k].gateway_bw = gateway_bw;
}

int Platform::clear_cluster_routes(ClusterId k) {
  check_cluster(k);
  if (routes_.empty()) return 0;
  int dropped = 0;
  for (ClusterId l = 0; l < num_clusters(); ++l) {
    if (l == k) continue;
    if (route_present_[route_index(k, l)]) {
      drop_route(k, l);
      mark_severed(k, l);
      ++dropped;
    }
    if (route_present_[route_index(l, k)]) {
      drop_route(l, k);
      mark_severed(l, k);
      ++dropped;
    }
  }
  return dropped;
}

int Platform::num_routes_through(LinkId i) const {
  check_link(i);
  if (routes_.empty()) return 0;
  return static_cast<int>(link_pairs_[i].size());
}

int Platform::reroute_missing_pairs(const RouteFilter& eligible) {
  if (routes_.empty() || severed_pairs_.empty()) return 0;
  // Only pairs a failure/churn mutator severed are candidates: a pair a
  // partial route table never routed stays unrouted. install_route
  // un-marks each restored pair, so a (set-ordered, i.e. source-grouped)
  // copy is walked.
  std::vector<std::pair<ClusterId, ClusterId>> candidates;
  candidates.reserve(severed_pairs_.size());
  for (const auto& [k, l] : severed_pairs_)
    if (!eligible || eligible(k, l)) candidates.push_back({k, l});
  return reroute_pairs(candidates, /*drop_unreachable=*/false);
}

void Platform::remove_cluster(ClusterId k) {
  check_cluster(k);
  const int old_k = num_clusters();
  const int new_k = old_k - 1;
  if (!routes_.empty()) {
    clear_cluster_routes(k);  // also scrubs the link incidence
    std::vector<std::vector<LinkId>> routes(static_cast<std::size_t>(new_k) * new_k);
    std::vector<char> present(static_cast<std::size_t>(new_k) * new_k, 0);
    std::vector<double> pbw(static_cast<std::size_t>(new_k) * new_k, 0.0);
    std::vector<double> lat(static_cast<std::size_t>(new_k) * new_k, 0.0);
    for (int a = 0; a < old_k; ++a) {
      if (a == k) continue;
      const int na = a - (a > k);
      for (int b = 0; b < old_k; ++b) {
        if (b == k) continue;
        const int nb = b - (b > k);
        const std::size_t from = static_cast<std::size_t>(a) * old_k + b;
        const std::size_t to = static_cast<std::size_t>(na) * new_k + nb;
        routes[to] = std::move(routes_[from]);
        present[to] = route_present_[from];
        pbw[to] = route_pbw_[from];
        lat[to] = route_latency_sum_[from];
      }
    }
    routes_ = std::move(routes);
    route_present_ = std::move(present);
    route_pbw_ = std::move(pbw);
    route_latency_sum_ = std::move(lat);
    for (auto& pairs : link_pairs_) {
      for (auto& [a, b] : pairs) {
        a -= a > k;
        b -= b > k;
      }
    }
    std::set<std::pair<ClusterId, ClusterId>> severed;
    for (const auto& [a, b] : severed_pairs_) {
      if (a == k || b == k) continue;
      severed.insert({a - (a > k), b - (b > k)});
    }
    severed_pairs_ = std::move(severed);
  }
  clusters_.erase(clusters_.begin() + k);
}

void Platform::validate() const {
  for (const Cluster& c : clusters_) {
    require(c.router >= 0 && c.router < num_routers(), "validate: dangling router id");
    require(c.gateway_bw > 0.0, "validate: non-positive gateway bandwidth");
    require(c.speed >= 0.0, "validate: negative speed");
  }
  for (const BackboneLink& l : links_) {
    require(l.a >= 0 && l.a < num_routers() && l.b >= 0 && l.b < num_routers(),
            "validate: dangling link endpoint");
    require(l.bw > 0.0, "validate: non-positive link bandwidth");
    require(l.max_connections >= 0, "validate: negative max_connections");
  }
  const int n = num_clusters();
  if (!routes_.empty()) {
    require(routes_.size() == static_cast<std::size_t>(n) * n,
            "validate: route table size mismatch");
    for (ClusterId k = 0; k < n; ++k) {
      for (ClusterId l = 0; l < n; ++l) {
        if (k == l || !route_present_[route_index(k, l)]) continue;
        RouterId at = clusters_[k].router;
        for (LinkId li : routes_[route_index(k, l)]) {
          require(li >= 0 && li < num_links(), "validate: dangling route link");
          const BackboneLink& bl = links_[li];
          require(bl.up, "validate: route traverses a down link");
          require(bl.a == at || bl.b == at, "validate: broken route path");
          at = bl.a == at ? bl.b : bl.a;
        }
        require(at == clusters_[l].router, "validate: route does not reach target");
      }
    }
  }
}

void Platform::check_cluster(ClusterId k) const {
  require(k >= 0 && k < num_clusters(), "Platform: cluster id out of range");
}

void Platform::check_router(RouterId r) const {
  require(r >= 0 && r < num_routers(), "Platform: router id out of range");
}

void Platform::check_link(LinkId i) const {
  require(i >= 0 && i < num_links(), "Platform: link id out of range");
}

std::size_t Platform::route_index(ClusterId k, ClusterId l) const {
  return static_cast<std::size_t>(k) * num_clusters() + l;
}

}  // namespace dls::platform
