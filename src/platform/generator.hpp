// Random platform generation following Table 1 of the paper (§6).
//
// One router per cluster; any two routers are joined by a backbone link
// with probability `connectivity`. Gateway bandwidth g, per-connection
// backbone bandwidth bw and max-connect are sampled uniformly from
// mean*(1-heterogeneity) .. mean*(1+heterogeneity). Cluster speed is fixed
// (the paper uses 100: only relative values matter in a periodic
// schedule). Routing is deterministic shortest-hop BFS.
#pragma once

#include "platform/platform.hpp"
#include "support/rng.hpp"

namespace dls::platform {

struct GeneratorParams {
  int num_clusters = 10;          ///< K
  double connectivity = 0.4;      ///< P(link between two cluster routers)
  double heterogeneity = 0.5;     ///< relative spread of g/bw/maxcon
  double mean_gateway_bw = 250.0; ///< mean g
  double mean_backbone_bw = 50.0; ///< mean bw (per connection)
  double mean_max_connections = 50.0;  ///< mean max-connect
  double cluster_speed = 100.0;   ///< s_k (fixed across clusters, as in §6)

  /// Mean one-way backbone latency (0 = latency-free, the paper's model).
  /// Sampled with the same heterogeneity spread; used only by the
  /// simulator's TCP-RTT-biased sharing policy.
  double mean_latency = 0.0;

  /// Extra transit routers: each splits a random backbone link in two
  /// halves that inherit its bw/max-connect (preserves bottlenecks).
  /// Models the intermediate routers of the paper's Figure 2.
  int num_transit_routers = 0;

  /// If true, a random spanning tree is added first so every pair of
  /// clusters can communicate. The paper's generator does not enforce
  /// this (disconnected pairs simply exchange no load).
  bool ensure_connected = false;
};

/// Generates a random platform with installed shortest-path routes.
/// Deterministic given (params, rng state).
[[nodiscard]] Platform generate_platform(const GeneratorParams& params, Rng& rng);

/// The exact Table-1 grid of the paper: K in {5,15,...,95}, connectivity
/// in {0.1,...,0.8}, heterogeneity in {0.2,...,0.8}, mean g in
/// {50,250,350,450}, mean bw in {10,...,90}, mean maxcon in {5,...,95}.
struct Table1Grid {
  std::vector<int> num_clusters{5, 15, 25, 35, 45, 55, 65, 75, 85, 95};
  std::vector<double> connectivity{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  std::vector<double> heterogeneity{0.2, 0.4, 0.6, 0.8};
  std::vector<double> mean_gateway_bw{50, 250, 350, 450};
  std::vector<double> mean_backbone_bw{10, 20, 30, 40, 50, 60, 70, 80, 90};
  std::vector<double> mean_max_connections{5, 15, 25, 35, 45, 55, 65, 75, 85, 95};
};

}  // namespace dls::platform
