#include "platform/serialization.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace dls::platform {

namespace {

std::string name_or_dash(const std::string& name) {
  require(name.find_first_of(" \t\n") == std::string::npos,
          "write_platform: names may not contain whitespace");
  return name.empty() ? "-" : name;
}

std::string dash_to_name(const std::string& token) {
  return token == "-" ? "" : token;
}

}  // namespace

void write_platform(const Platform& p, std::ostream& os) {
  // max_digits10 so bandwidths/speeds survive the round-trip bit-exactly;
  // anything less changes LP optima downstream.
  os.precision(17);
  os << "dls-platform 2\n";
  os << "routers " << p.num_routers() << '\n';
  for (RouterId r = 0; r < p.num_routers(); ++r)
    os << "router " << r << ' ' << name_or_dash(p.router_name(r)) << '\n';
  for (ClusterId k = 0; k < p.num_clusters(); ++k) {
    const Cluster& c = p.cluster(k);
    os << "cluster " << c.speed << ' ' << c.gateway_bw << ' ' << c.router << ' '
       << name_or_dash(c.name) << '\n';
  }
  for (LinkId i = 0; i < p.num_links(); ++i) {
    const BackboneLink& l = p.link(i);
    os << "link " << l.a << ' ' << l.b << ' ' << l.bw << ' ' << l.max_connections
       << ' ' << l.latency << ' ' << name_or_dash(l.name) << '\n';
  }
  for (ClusterId k = 0; k < p.num_clusters(); ++k) {
    for (ClusterId l = 0; l < p.num_clusters(); ++l) {
      if (k == l || !p.has_route(k, l)) continue;
      const auto route = p.route(k, l);
      os << "route " << k << ' ' << l << ' ' << route.size();
      for (LinkId li : route) os << ' ' << li;
      os << '\n';
    }
  }
}

Platform read_platform(std::istream& is) {
  std::string header;
  int version = 0;
  is >> header >> version;
  // Version 1 lacks link latencies; version 2 adds them.
  require(is && header == "dls-platform" && (version == 1 || version == 2),
          "read_platform: bad header (expected 'dls-platform 1|2')");

  Platform p;
  std::string keyword;
  while (is >> keyword) {
    if (keyword == "routers") {
      int count = 0;
      is >> count;
      require(is && count >= 0, "read_platform: bad router count");
    } else if (keyword == "router") {
      int id = 0;
      std::string name;
      is >> id >> name;
      require(static_cast<bool>(is), "read_platform: malformed router line");
      const RouterId got = p.add_router(dash_to_name(name));
      require(got == id, "read_platform: router ids must be dense and ordered");
    } else if (keyword == "cluster") {
      double speed = 0, gw = 0;
      int router = 0;
      std::string name;
      is >> speed >> gw >> router >> name;
      require(static_cast<bool>(is), "read_platform: malformed cluster line");
      p.add_cluster(speed, gw, router, dash_to_name(name));
    } else if (keyword == "link") {
      int a = 0, b = 0, maxcon = 0;
      double bw = 0, latency = 0;
      std::string name;
      is >> a >> b >> bw >> maxcon;
      if (version >= 2) is >> latency;
      is >> name;
      require(static_cast<bool>(is), "read_platform: malformed link line");
      p.add_backbone(a, b, bw, maxcon, dash_to_name(name), latency);
    } else if (keyword == "route") {
      int k = 0, l = 0, n = 0;
      is >> k >> l >> n;
      require(is && n >= 0, "read_platform: malformed route line");
      std::vector<LinkId> links(n);
      for (int i = 0; i < n; ++i) is >> links[i];
      require(static_cast<bool>(is), "read_platform: malformed route link list");
      p.set_route(k, l, std::move(links));
    } else {
      throw Error("read_platform: unknown keyword '" + keyword + "'");
    }
  }
  p.validate();
  return p;
}

std::string to_text(const Platform& platform) {
  std::ostringstream oss;
  write_platform(platform, oss);
  return oss.str();
}

Platform from_text(const std::string& text) {
  std::istringstream iss(text);
  return read_platform(iss);
}

}  // namespace dls::platform
