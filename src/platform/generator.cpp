#include "platform/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

namespace dls::platform {

namespace {

double sample_hetero(Rng& rng, double mean, double heterogeneity) {
  return rng.uniform(mean * (1.0 - heterogeneity), mean * (1.0 + heterogeneity));
}

int sample_maxcon(Rng& rng, double mean, double heterogeneity) {
  const double raw = sample_hetero(rng, mean, heterogeneity);
  return std::max(1, static_cast<int>(std::lround(raw)));
}

}  // namespace

Platform generate_platform(const GeneratorParams& p, Rng& rng) {
  require(p.num_clusters >= 1, "generate_platform: need at least one cluster");
  require(p.connectivity >= 0.0 && p.connectivity <= 1.0,
          "generate_platform: connectivity out of [0,1]");
  require(p.heterogeneity >= 0.0 && p.heterogeneity < 1.0,
          "generate_platform: heterogeneity out of [0,1)");
  require(p.mean_gateway_bw > 0, "generate_platform: mean gateway bw must be positive");
  require(p.mean_backbone_bw > 0, "generate_platform: mean backbone bw must be positive");
  require(p.mean_max_connections > 0,
          "generate_platform: mean max-connect must be positive");
  require(p.cluster_speed >= 0, "generate_platform: cluster speed cannot be negative");
  require(p.mean_latency >= 0, "generate_platform: mean latency cannot be negative");

  Platform plat;
  const int k = p.num_clusters;
  for (int i = 0; i < k; ++i) plat.add_router("r" + std::to_string(i));
  for (int i = 0; i < k; ++i) {
    plat.add_cluster(p.cluster_speed,
                     sample_hetero(rng, p.mean_gateway_bw, p.heterogeneity), i,
                     "C" + std::to_string(i));
  }

  // Latency uses the same heterogeneity spread as g/bw/max-connect but
  // draws from a dedicated substream (split unconditionally, so the main
  // stream's position is latency-independent): a latency-free run
  // (mean_latency 0, the paper's model) and a latency-enabled one sample
  // the identical topology, gateways, bandwidths and max-connect budgets
  // from the same seed.
  Rng latency_rng = rng.split();

  std::vector<std::vector<char>> joined(k, std::vector<char>(k, 0));
  auto add_link = [&](int a, int b) {
    joined[a][b] = joined[b][a] = 1;
    const double bw = sample_hetero(rng, p.mean_backbone_bw, p.heterogeneity);
    const int maxcon = sample_maxcon(rng, p.mean_max_connections, p.heterogeneity);
    const double latency =
        p.mean_latency > 0.0
            ? sample_hetero(latency_rng, p.mean_latency, p.heterogeneity)
            : 0.0;
    plat.add_backbone(a, b, bw, maxcon, "", latency);
  };

  if (p.ensure_connected && k > 1) {
    // Random spanning tree: attach each router to a random earlier one,
    // over a shuffled ordering so the tree shape is unbiased.
    std::vector<int> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (int i = 1; i < k; ++i) {
      const int a = order[i];
      const int b = order[rng.index(i)];
      add_link(a, b);
    }
  }

  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      if (joined[a][b]) continue;
      if (rng.bernoulli(p.connectivity)) add_link(a, b);
    }
  }

  // Transit routers subdivide random links, emulating backbone paths that
  // traverse routers with no attached institution (paper Figure 2). Both
  // halves inherit the original bw/max-connect, preserving bottlenecks.
  for (int t = 0; t < p.num_transit_routers && plat.num_links() > 0; ++t) {
    const LinkId victim = static_cast<LinkId>(rng.index(plat.num_links()));
    const RouterId mid = plat.add_router("transit" + std::to_string(t));
    plat.subdivide_link(victim, mid);
  }

  plat.compute_shortest_path_routes();
  return plat;
}

}  // namespace dls::platform
