// Platform model of the paper's §2 (see DESIGN.md for the full mapping).
//
// A platform is:
//   * a set of routers joined by undirected backbone links; each link
//     grants every connection a fixed bandwidth `bw` and admits at most
//     `max_connections` application connections in total (both directions);
//   * a set of clusters; cluster k is reduced to a front-end of cumulated
//     speed s_k attached to one router through a gateway link of capacity
//     g_k that is *shared* by all of the cluster's traffic (Eq. 7c);
//   * a fixed routing table: an ordered list of backbone links L_{k,l}
//     for every ordered cluster pair that can communicate.
//
// Routers without clusters are legal (transit routers; the NP-hardness
// gadget of §4 relies on them). Two clusters may share a router, in which
// case their route is the empty link list and only gateway capacities
// constrain their exchange.
#pragma once

#include <functional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace dls::platform {

using ClusterId = int;
using RouterId = int;
using LinkId = int;

struct Cluster {
  double speed = 0.0;       ///< s_k: work units the cluster completes per time unit
  double gateway_bw = 0.0;  ///< g_k: capacity of the front-end <-> router link
  RouterId router = -1;     ///< attachment point in the backbone graph
  std::string name;
};

struct BackboneLink {
  RouterId a = -1;          ///< endpoint (undirected)
  RouterId b = -1;          ///< endpoint (undirected)
  double bw = 0.0;          ///< bandwidth granted to *each* connection
  int max_connections = 0;  ///< max-connect: total connections admitted
  /// One-way propagation latency (time units). The steady-state model
  /// ignores it (the paper defers latencies to future work, §7); the
  /// simulator's TCP-biased sharing policy uses it for RTT weighting.
  double latency = 0.0;
  /// Operational state (src/dynamics/ failure events toggle it). Down
  /// links carry no routes and are skipped by BFS routing. Runtime state:
  /// not serialized by platform/serialization.
  bool up = true;
  std::string name;
};

class Platform {
public:
  /// Adds a router; returns its id.
  RouterId add_router(std::string name = "");

  /// Adds a cluster attached to an existing router. speed >= 0 (the
  /// NP-hardness source cluster has speed 0), gateway_bw > 0.
  ClusterId add_cluster(double speed, double gateway_bw, RouterId router,
                        std::string name = "");

  /// Adds an undirected backbone link. bw > 0, max_connections >= 0,
  /// latency >= 0.
  LinkId add_backbone(RouterId a, RouterId b, double bw, int max_connections,
                      std::string name = "", double latency = 0.0);

  /// Splits link i at router `mid`: i becomes (a, mid) and a new link
  /// (mid, b) with the same bw/max-connect is appended (its id is
  /// returned). Any installed routes are invalidated and must be
  /// recomputed or re-set by the caller.
  LinkId subdivide_link(LinkId i, RouterId mid);

  [[nodiscard]] int num_clusters() const { return static_cast<int>(clusters_.size()); }
  [[nodiscard]] int num_routers() const { return static_cast<int>(router_names_.size()); }
  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }

  [[nodiscard]] const Cluster& cluster(ClusterId k) const;
  [[nodiscard]] const BackboneLink& link(LinkId i) const;
  [[nodiscard]] const std::string& router_name(RouterId r) const;

  // ---- routing ----

  /// Installs the ordered link list L_{k,l}; validated to be a path from
  /// cluster k's router to cluster l's router. k == l is rejected (local
  /// work uses no route).
  void set_route(ClusterId k, ClusterId l, std::vector<LinkId> links);

  /// Removes the route (pair becomes unable to exchange load).
  void clear_route(ClusterId k, ClusterId l);

  /// True if k can send load to l. Always true for k == l.
  [[nodiscard]] bool has_route(ClusterId k, ClusterId l) const;

  /// The ordered backbone links of L_{k,l}; empty for same-router pairs.
  [[nodiscard]] std::span<const LinkId> route(ClusterId k, ClusterId l) const;

  /// Per-connection bandwidth of the route's bottleneck backbone link:
  /// min over L_{k,l} of bw(l_i). +infinity for an empty route (only the
  /// gateways then limit the transfer). Requires has_route(k, l).
  /// O(1): served from a dense per-pair cache that every topology/route
  /// mutator keeps current, so const queries never write (concurrent
  /// readers of one Platform are safe).
  [[nodiscard]] double route_bottleneck_bw(ClusterId k, ClusterId l) const;

  /// Sum of one-way latencies along L_{k,l}; 0 for an empty route. O(1),
  /// cached like route_bottleneck_bw.
  [[nodiscard]] double route_latency(ClusterId k, ClusterId l) const;

  /// Computes shortest-hop routes (deterministic BFS over up links; ties
  /// resolved by lowest router/link index) for every ordered cluster pair
  /// and installs them, replacing any existing table. Unreachable pairs
  /// get no route. This is the full-rebuild oracle the incremental
  /// mutators below are benchmarked against (bench/dynamics_churn).
  void compute_shortest_path_routes();

  // ---- dynamics mutators (src/dynamics/ platform events) ----
  //
  // Each updates the dense route_pbw_/route_latency_sum_ caches
  // incrementally: only the pairs whose installed route crosses the
  // touched link are refreshed (served by a per-link pair incidence kept
  // current by every route mutator), and BFS re-routing is confined to
  // pairs orphaned by a topology change — never the O(K^2 * E) full
  // recompute of compute_shortest_path_routes().

  /// Rescales one link's per-connection bandwidth. O(pairs through the
  /// link * route length) cache refresh.
  void set_link_bandwidth(LinkId i, double bw);

  /// Rescales one link's max-connect budget. No cached metric depends on
  /// it, so this is O(1).
  void set_link_max_connections(LinkId i, int max_connections);

  /// Restricts a recovery pass to pairs it approves; an empty filter
  /// approves everything. DynamicPlatform passes cluster presence so
  /// churned-out clusters are never offered routes in the first place.
  using RouteFilter = std::function<bool(ClusterId, ClusterId)>;

  /// Takes a link down or brings it back up. Down: every pair routed
  /// through it is re-routed by BFS over the remaining up links, or loses
  /// its route when no path survives (the pair is then recorded as
  /// *severed*). Up: every severed pair approved by `eligible` is
  /// offered a BFS route over the up links — pairs that never had a
  /// route (a deliberately partial route table) are left alone, and
  /// previously re-routed pairs keep their detour (installed routes are
  /// sticky, matching the paper's fixed-routing-table reading). Returns
  /// the number of pairs whose route changed; 0 when the link was
  /// already in that state.
  int set_link_up(LinkId i, bool up, const RouteFilter& eligible = {});

  /// Updates a cluster's cumulated speed (>= 0). O(1).
  void set_cluster_speed(ClusterId k, double speed);

  /// Updates a cluster's gateway capacity (> 0). O(1).
  void set_cluster_gateway_bw(ClusterId k, double gateway_bw);

  /// Removes cluster k entirely: clusters above it shift down one id and
  /// the route table drops its row and column (other pairs' routes are
  /// untouched — routes traverse links, never clusters). The cluster's
  /// gateway disappears with it; backbone links remain. Note: the
  /// dynamics event replay deliberately models churn as leave/join
  /// isolation instead (ids stay stable for the online engine's
  /// bookkeeping); this is the permanent-decommission API for tools
  /// that edit platforms between runs.
  void remove_cluster(ClusterId k);

  /// Drops every route from or to cluster k (the cluster-churn "leave"
  /// isolation step); the dropped pairs are recorded as severed. Returns
  /// the number of routes dropped.
  int clear_cluster_routes(ClusterId k);

  /// Offers a BFS route (over up links) to every *severed* pair — one
  /// that held a route until a failure/churn mutator dropped it — that
  /// `eligible` approves, and un-marks the pairs it manages to restore.
  /// Pairs a partial route table never routed are not touched. This is
  /// the recovery pass behind link-up and cluster-churn "join" events.
  /// Returns the number of routes installed.
  int reroute_missing_pairs(const RouteFilter& eligible = {});

  /// Number of installed routes traversing link i (0 when no route table
  /// is installed). O(1): served from the per-link incidence. A link
  /// with no routes does not appear in the steady-state LP at all, which
  /// lets event replays classify capacity moves on it as no-ops.
  [[nodiscard]] int num_routes_through(LinkId i) const;

  /// Throws dls::Error if any invariant is broken (dangling router ids,
  /// non-positive capacities, malformed routes).
  void validate() const;

private:
  /// Deterministic BFS tree over the up links from one router.
  struct BfsTree {
    std::vector<RouterId> parent;
    std::vector<int> parent_link;
    std::vector<char> seen;
  };

  void check_cluster(ClusterId k) const;
  void check_router(RouterId r) const;
  void check_link(LinkId i) const;
  [[nodiscard]] std::size_t route_index(ClusterId k, ClusterId l) const;
  void refresh_route_metrics(ClusterId k, ClusterId l);
  void ensure_tables();
  /// Installs a pre-validated path and keeps the metric caches and the
  /// link incidence current; an existing route is replaced.
  void install_route(ClusterId k, ClusterId l, std::vector<LinkId> path);
  /// Removes the pair's route from the table and the link incidence.
  void drop_route(ClusterId k, ClusterId l);
  /// Records a pair as severed (dropped by a failure/churn mutator).
  void mark_severed(ClusterId k, ClusterId l);
  /// Adjacency over up links, sorted for deterministic BFS trees.
  [[nodiscard]] std::vector<std::vector<std::pair<RouterId, LinkId>>>
  up_adjacency() const;
  void bfs(RouterId src,
           const std::vector<std::vector<std::pair<RouterId, LinkId>>>& adj,
           BfsTree& tree) const;
  /// Path from cluster k's router to `dst` in `tree`; empty optional-like
  /// contract: call only when tree.seen[dst].
  [[nodiscard]] std::vector<LinkId> tree_path(const BfsTree& tree, RouterId src,
                                              RouterId dst) const;
  /// BFS-routes every listed pair (ordered, distinct clusters), dropping
  /// those that stay unreachable when `drop_unreachable` is set. Returns
  /// the number of routes changed.
  int reroute_pairs(const std::vector<std::pair<ClusterId, ClusterId>>& pairs,
                    bool drop_unreachable);

  std::vector<Cluster> clusters_;
  std::vector<BackboneLink> links_;
  std::vector<std::string> router_names_;
  // Dense K*K table of routes; routes_[k*K+l] is L_{k,l}. A pair without a
  // route is marked in route_present_.
  std::vector<std::vector<LinkId>> routes_;
  std::vector<char> route_present_;
  // Cached per-pair route metrics (same K*K indexing, same lifetime as
  // routes_): bottleneck per-connection bandwidth and summed one-way
  // latency. Entries of absent pairs are meaningless.
  std::vector<double> route_pbw_;
  std::vector<double> route_latency_sum_;
  // Per-link incidence: the ordered cluster pairs whose installed route
  // traverses the link. Same lifetime as routes_; kept current by every
  // route mutator so capacity events refresh only the affected pairs.
  std::vector<std::vector<std::pair<ClusterId, ClusterId>>> link_pairs_;
  // Pairs whose route a failure/churn mutator dropped and that have not
  // been re-routed since. The recovery pass is confined to this set so
  // a down/up cycle is a no-op on deliberately partial route tables; an
  // ordered set keeps mark/un-mark O(log) under heavy churn and hands
  // the recovery pass its candidates already grouped by source cluster.
  std::set<std::pair<ClusterId, ClusterId>> severed_pairs_;
};

}  // namespace dls::platform
