// Platform model of the paper's §2 (see DESIGN.md for the full mapping).
//
// A platform is:
//   * a set of routers joined by undirected backbone links; each link
//     grants every connection a fixed bandwidth `bw` and admits at most
//     `max_connections` application connections in total (both directions);
//   * a set of clusters; cluster k is reduced to a front-end of cumulated
//     speed s_k attached to one router through a gateway link of capacity
//     g_k that is *shared* by all of the cluster's traffic (Eq. 7c);
//   * a fixed routing table: an ordered list of backbone links L_{k,l}
//     for every ordered cluster pair that can communicate.
//
// Routers without clusters are legal (transit routers; the NP-hardness
// gadget of §4 relies on them). Two clusters may share a router, in which
// case their route is the empty link list and only gateway capacities
// constrain their exchange.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dls::platform {

using ClusterId = int;
using RouterId = int;
using LinkId = int;

struct Cluster {
  double speed = 0.0;       ///< s_k: work units the cluster completes per time unit
  double gateway_bw = 0.0;  ///< g_k: capacity of the front-end <-> router link
  RouterId router = -1;     ///< attachment point in the backbone graph
  std::string name;
};

struct BackboneLink {
  RouterId a = -1;          ///< endpoint (undirected)
  RouterId b = -1;          ///< endpoint (undirected)
  double bw = 0.0;          ///< bandwidth granted to *each* connection
  int max_connections = 0;  ///< max-connect: total connections admitted
  /// One-way propagation latency (time units). The steady-state model
  /// ignores it (the paper defers latencies to future work, §7); the
  /// simulator's TCP-biased sharing policy uses it for RTT weighting.
  double latency = 0.0;
  std::string name;
};

class Platform {
public:
  /// Adds a router; returns its id.
  RouterId add_router(std::string name = "");

  /// Adds a cluster attached to an existing router. speed >= 0 (the
  /// NP-hardness source cluster has speed 0), gateway_bw > 0.
  ClusterId add_cluster(double speed, double gateway_bw, RouterId router,
                        std::string name = "");

  /// Adds an undirected backbone link. bw > 0, max_connections >= 0,
  /// latency >= 0.
  LinkId add_backbone(RouterId a, RouterId b, double bw, int max_connections,
                      std::string name = "", double latency = 0.0);

  /// Splits link i at router `mid`: i becomes (a, mid) and a new link
  /// (mid, b) with the same bw/max-connect is appended (its id is
  /// returned). Any installed routes are invalidated and must be
  /// recomputed or re-set by the caller.
  LinkId subdivide_link(LinkId i, RouterId mid);

  [[nodiscard]] int num_clusters() const { return static_cast<int>(clusters_.size()); }
  [[nodiscard]] int num_routers() const { return static_cast<int>(router_names_.size()); }
  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }

  [[nodiscard]] const Cluster& cluster(ClusterId k) const;
  [[nodiscard]] const BackboneLink& link(LinkId i) const;
  [[nodiscard]] const std::string& router_name(RouterId r) const;

  // ---- routing ----

  /// Installs the ordered link list L_{k,l}; validated to be a path from
  /// cluster k's router to cluster l's router. k == l is rejected (local
  /// work uses no route).
  void set_route(ClusterId k, ClusterId l, std::vector<LinkId> links);

  /// Removes the route (pair becomes unable to exchange load).
  void clear_route(ClusterId k, ClusterId l);

  /// True if k can send load to l. Always true for k == l.
  [[nodiscard]] bool has_route(ClusterId k, ClusterId l) const;

  /// The ordered backbone links of L_{k,l}; empty for same-router pairs.
  [[nodiscard]] std::span<const LinkId> route(ClusterId k, ClusterId l) const;

  /// Per-connection bandwidth of the route's bottleneck backbone link:
  /// min over L_{k,l} of bw(l_i). +infinity for an empty route (only the
  /// gateways then limit the transfer). Requires has_route(k, l).
  /// O(1): served from a dense per-pair cache that every topology/route
  /// mutator keeps current, so const queries never write (concurrent
  /// readers of one Platform are safe).
  [[nodiscard]] double route_bottleneck_bw(ClusterId k, ClusterId l) const;

  /// Sum of one-way latencies along L_{k,l}; 0 for an empty route. O(1),
  /// cached like route_bottleneck_bw.
  [[nodiscard]] double route_latency(ClusterId k, ClusterId l) const;

  /// Computes shortest-hop routes (deterministic BFS; ties resolved by
  /// lowest router/link index) for every ordered cluster pair and installs
  /// them, replacing any existing table. Unreachable pairs get no route.
  void compute_shortest_path_routes();

  /// Throws dls::Error if any invariant is broken (dangling router ids,
  /// non-positive capacities, malformed routes).
  void validate() const;

private:
  void check_cluster(ClusterId k) const;
  void check_router(RouterId r) const;
  void check_link(LinkId i) const;
  [[nodiscard]] std::size_t route_index(ClusterId k, ClusterId l) const;
  void refresh_route_metrics(ClusterId k, ClusterId l);

  std::vector<Cluster> clusters_;
  std::vector<BackboneLink> links_;
  std::vector<std::string> router_names_;
  // Dense K*K table of routes; routes_[k*K+l] is L_{k,l}. A pair without a
  // route is marked in route_present_.
  std::vector<std::vector<LinkId>> routes_;
  std::vector<char> route_present_;
  // Cached per-pair route metrics (same K*K indexing, same lifetime as
  // routes_): bottleneck per-connection bandwidth and summed one-way
  // latency. Entries of absent pairs are meaningless.
  std::vector<double> route_pbw_;
  std::vector<double> route_latency_sum_;
};

}  // namespace dls::platform
