// Text serialization of platforms.
//
// Line-oriented format, stable across versions:
//
//   dls-platform 1
//   routers <R>
//   router <id> <name?>
//   cluster <speed> <gateway_bw> <router> <name?>
//   link <a> <b> <bw> <max_connections> <name?>
//   route <k> <l> <n> <link ids...>
//
// Names may not contain whitespace; missing names are written as "-".
// Routes are optional (a file without route lines round-trips with an
// empty table; call compute_shortest_path_routes() afterwards if wanted).
#pragma once

#include <iosfwd>
#include <string>

#include "platform/platform.hpp"

namespace dls::platform {

/// Writes the platform, including any installed routes.
void write_platform(const Platform& platform, std::ostream& os);

/// Reads a platform; throws dls::Error on malformed input.
[[nodiscard]] Platform read_platform(std::istream& is);

/// Convenience string round-trip helpers.
[[nodiscard]] std::string to_text(const Platform& platform);
[[nodiscard]] Platform from_text(const std::string& text);

}  // namespace dls::platform
