// Max-min fair rate allocation (progressive filling / water-filling).
//
// This is the bandwidth-sharing model the paper's platform description
// appeals to (and the model behind SimGrid, which the authors built):
// entities (network flows, compute jobs) draw rate from the resources
// they traverse; the allocator raises everyone's rate together and
// freezes the entities of each resource as it saturates, yielding the
// unique max-min fair point. An entity may also carry an individual rate
// cap — here, beta * pbw for a flow's backbone allowance, which in the
// paper's model is a private per-connection grant rather than a shared
// pool.
#pragma once

#include <limits>
#include <vector>

#include "support/error.hpp"

namespace dls::sim {

struct FairShareProblem {
  struct Entity {
    std::vector<int> resources;  ///< indices of shared resources it uses
    double cap = 0.0;            ///< individual rate cap (use kNoCap for none)
    /// Rate share weight: rates rise as weight * common-level, which
    /// models TCP's RTT bias (weight ~ 1/RTT) — the paper's §7 "more
    /// realistic network model" extension. 1.0 = plain max-min fairness.
    double weight = 1.0;
  };

  static constexpr double kNoCap = std::numeric_limits<double>::infinity();

  std::vector<double> capacity;  ///< per shared resource, > 0
  std::vector<Entity> entities;
};

/// Returns one rate per entity: the weighted max-min fair allocation
/// subject to
///   sum of rates over each resource <= its capacity, rate_e <= cap_e,
/// where unconstrained entities keep equal rate/weight. Runs in
/// O(iterations * entities * avg-degree); every iteration saturates at
/// least one resource or cap, so it terminates.
[[nodiscard]] std::vector<double> max_min_fair_rates(const FairShareProblem& problem);

/// Verifies the weighted max-min bottleneck condition: every entity is
/// limited by its own cap or by a saturated resource among those it uses
/// on which its rate/weight is (weakly) maximal — and no resource is
/// oversubscribed. Used by tests as an optimality oracle.
[[nodiscard]] bool is_max_min_fair(const FairShareProblem& problem,
                                   const std::vector<double>& rates,
                                   double tol = 1e-7);

}  // namespace dls::sim
