#include "sim/engine.hpp"

#include <cmath>
#include <limits>

namespace dls::sim {

namespace {

/// Completion slack mirroring the pre-refactor loop: an item whose
/// remaining work dips below this is considered done.
inline bool is_done(double remaining, double rate) {
  return remaining <= 1e-9 * (1.0 + rate);
}

}  // namespace

SimEngine::SimEngine(std::vector<double> capacities, EngineKind kind)
    : capacities_(std::move(capacities)), kind_(kind) {
  for (double c : capacities_)
    require(c > 0.0 && std::isfinite(c), "SimEngine: bad resource capacity");
  res_live_.resize(capacities_.size());
  res_mark_.assign(capacities_.size(), 0);
  res_local_.assign(capacities_.size(), -1);
}

void SimEngine::set_capacity(int resource, double value) {
  require(resource >= 0 && resource < static_cast<int>(capacities_.size()),
          "set_capacity: resource out of range");
  require(value > 0.0 && std::isfinite(value),
          "set_capacity: bad resource capacity");
  require(num_live_ == 0, "set_capacity: a period is in progress");
  capacities_[resource] = value;
}

void SimEngine::begin_period(const std::vector<EngineItem>& items) {
  const int n = static_cast<int>(items.size());
  const int num_resources = static_cast<int>(capacities_.size());
  items_ = items;
  ents_.assign(n, Entity{});
  for (auto& live : res_live_) live.clear();
  calendar_ = {};
  now_ = 0.0;
  stats_ = PeriodStats{};
  num_live_ = 0;
  // epoch_ keeps counting across periods so stale marks never collide.
  item_mark_.assign(n, 0);

  for (int i = 0; i < n; ++i) {
    const EngineItem& item = items_[i];
    require(item.cap >= 0.0, "SimEngine: negative item cap");
    require(item.weight > 0.0 && std::isfinite(item.weight),
            "SimEngine: item weight must be positive");
    for (int r : item.resources)
      require(r >= 0 && r < num_resources, "SimEngine: resource out of range");
    Entity& e = ents_[i];
    e.remaining = item.size;
    if (item.size <= 0.0) continue;  // completes immediately, no event
    require(item.cap > 0.0,
            "SimEngine: live item with zero cap can never progress");
    require(!item.resources.empty() || std::isfinite(item.cap),
            "SimEngine: live item with no resource and no cap is unbounded");
    e.alive = true;
    ++num_live_;
    for (int r : item.resources) res_live_[r].push_back(i);
  }
  if (num_live_ == 0) return;

  solve_all();
  if (kind_ == EngineKind::Incremental)
    for (int i = 0; i < n; ++i)
      if (ents_[i].alive) push_event(i);
}

void SimEngine::solve_all() {
  scratch_problem_.capacity = capacities_;
  scratch_problem_.entities.clear();
  comp_items_.clear();
  for (int i = 0; i < static_cast<int>(items_.size()); ++i) {
    if (!ents_[i].alive) continue;
    comp_items_.push_back(i);
    scratch_problem_.entities.push_back(
        {items_[i].resources, items_[i].cap, items_[i].weight});
  }
  const std::vector<double> rates = max_min_fair_rates(scratch_problem_);
  ++stats_.full_solves;
  for (std::size_t j = 0; j < comp_items_.size(); ++j)
    ents_[comp_items_[j]].rate = rates[j];
}

void SimEngine::push_event(int item) {
  Entity& e = ents_[item];
  DLS_ASSERT(e.rate > 0.0);  // max-min gives every live item positive rate
  calendar_.push({e.last_sync + e.remaining / e.rate, item, e.version});
}

std::optional<double> SimEngine::step() {
  return kind_ == EngineKind::Incremental ? step_incremental() : step_rescan();
}

std::optional<double> SimEngine::step_rescan() {
  if (num_live_ == 0) return std::nullopt;
  // Earliest completion at current rates (full O(live) scan, as the
  // pre-refactor loop did).
  double dt = std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(items_.size()); ++i)
    if (ents_[i].alive && ents_[i].rate > 0.0)
      dt = std::min(dt, ents_[i].remaining / ents_[i].rate);
  DLS_ASSERT(std::isfinite(dt));
  now_ += dt;

  // Advance everyone; batch all simultaneous completions into this step.
  for (int i = 0; i < static_cast<int>(items_.size()); ++i) {
    Entity& e = ents_[i];
    if (!e.alive) continue;
    e.remaining -= e.rate * dt;
    e.last_sync = now_;
    if (is_done(e.remaining, e.rate)) {
      e.alive = false;
      --num_live_;
      ++stats_.events;
    }
  }
  if (num_live_ > 0) solve_all();
  return now_;
}

void SimEngine::collect_component(int seed_item) {
  // Epoch-stamped BFS over the bipartite item/resource graph; only live
  // entities are expanded. comp_items_ excludes seed_item itself.
  ++epoch_;
  comp_items_.clear();
  comp_resources_.clear();
  item_mark_[seed_item] = epoch_;
  std::size_t res_head = 0;
  for (int r : items_[seed_item].resources) {
    if (res_mark_[r] == epoch_) continue;
    res_mark_[r] = epoch_;
    comp_resources_.push_back(r);
  }
  while (res_head < comp_resources_.size()) {
    const int r = comp_resources_[res_head++];
    for (int i : res_live_[r]) {
      if (item_mark_[i] == epoch_) continue;
      item_mark_[i] = epoch_;
      comp_items_.push_back(i);
      for (int r2 : items_[i].resources) {
        if (res_mark_[r2] == epoch_) continue;
        res_mark_[r2] = epoch_;
        comp_resources_.push_back(r2);
      }
    }
  }
}

std::optional<double> SimEngine::step_incremental() {
  // Pop the next valid event; skip entries invalidated by rate changes.
  int completed = -1;
  while (!calendar_.empty()) {
    const Event ev = calendar_.top();
    calendar_.pop();
    Entity& e = ents_[ev.item];
    if (!e.alive || e.version != ev.version) continue;
    completed = ev.item;
    now_ = std::max(now_, ev.time);
    break;
  }
  if (completed == -1) {
    DLS_ASSERT(num_live_ == 0);  // no live work may be stranded eventless
    return std::nullopt;
  }

  Entity& done = ents_[completed];
  done.remaining = 0.0;
  done.alive = false;
  done.last_sync = now_;
  --num_live_;
  ++stats_.events;

  // Delta-update the persistent per-resource tables: drop the completed
  // entity from its resources' live lists.
  collect_component(completed);
  for (int r : items_[completed].resources) {
    auto& live = res_live_[r];
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (live[j] == completed) {
        live[j] = live.back();
        live.pop_back();
        break;
      }
    }
  }
  if (comp_items_.empty() || num_live_ == 0) return now_;

  // Freed capacity can only *raise* rates (max-min is monotone under
  // entity removal); if every affected entity already sits at its
  // individual cap, nothing can change — skip the solve.
  bool all_capped = true;
  for (int i : comp_items_) {
    const Entity& e = ents_[i];
    if (!(std::isfinite(items_[i].cap) &&
          e.rate >= items_[i].cap * (1.0 - 1e-12))) {
      all_capped = false;
      break;
    }
  }
  if (all_capped) return now_;

  // Re-run progressive filling over the dirty component only. Entities
  // outside it share no resource with it, so their rates — and their
  // calendar entries — stay valid untouched.
  scratch_problem_.capacity.clear();
  for (std::size_t j = 0; j < comp_resources_.size(); ++j) {
    res_local_[comp_resources_[j]] = static_cast<int>(j);
    scratch_problem_.capacity.push_back(capacities_[comp_resources_[j]]);
  }
  scratch_problem_.entities.clear();
  for (int i : comp_items_) {
    FairShareProblem::Entity ent;
    ent.cap = items_[i].cap;
    ent.weight = items_[i].weight;
    ent.resources.reserve(items_[i].resources.size());
    for (int r : items_[i].resources) ent.resources.push_back(res_local_[r]);
    scratch_problem_.entities.push_back(std::move(ent));
  }
  const std::vector<double> rates = max_min_fair_rates(scratch_problem_);
  if (static_cast<int>(comp_items_.size()) == num_live_) {
    ++stats_.full_solves;  // the dirty set happened to span everyone
  } else {
    ++stats_.partial_solves;
  }

  for (std::size_t j = 0; j < comp_items_.size(); ++j) {
    Entity& e = ents_[comp_items_[j]];
    // Sync remaining work to `now_` before the rate switches.
    e.remaining = std::max(0.0, e.remaining - e.rate * (now_ - e.last_sync));
    e.last_sync = now_;
    if (rates[j] != e.rate) {
      e.rate = rates[j];
      ++e.version;  // lazily invalidates the stale calendar entry
      push_event(comp_items_[j]);
    }
  }
  return now_;
}

PeriodStats SimEngine::finish_period() {
  while (step().has_value()) {
  }
  stats_.duration = now_;
  return stats_;
}

PeriodStats SimEngine::run_period(const std::vector<EngineItem>& items) {
  begin_period(items);
  return finish_period();
}

}  // namespace dls::sim
