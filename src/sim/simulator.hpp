// Flow-level discrete-event execution of a periodic schedule.
//
// The simulator plays the §3.2 pipeline on the platform model: in each
// period every transfer of the schedule becomes a network flow (rate
// limited by its connections' backbone allowance beta*pbw and by the
// max-min fair share of the two gateway links it crosses) and every
// compute chunk becomes a job sharing its cluster's CPU. Events are flow
// and job completions; rates are re-solved at each event (progressive
// filling, see fair_share.hpp) by the engine layer (engine.hpp), which by
// default applies component-limited delta re-solves driven by an event
// calendar instead of a from-scratch pass per event.
//
// Backbone max-connect limits are enforced: when a schedule opens more
// connections across a link than the link admits, every connection on
// that link is degraded proportionally (bw * max_connections / opened),
// so oversubscribed schedules surface as period overruns instead of
// simulating as feasible.
//
// This replaces the authors' (unavailable) SimGrid tooling with an
// in-repo substrate of the same fluid bandwidth-sharing family; see
// DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "sim/engine.hpp"

namespace dls::sim {

/// How flows and jobs draw rate within a period. These are presets for
/// the SharingModel policy objects in engine.hpp; pass a custom model via
/// SimOptions::model to go beyond them.
enum class SharingPolicy {
  /// Every item is throttled to its reserved rate units/T_p — the fluid
  /// execution the paper's §3.2 feasibility argument implies. A valid
  /// schedule then always completes exactly at the period boundary.
  Paced,
  /// Work-conserving max-min fair sharing (TCP-like). Greedier early, but
  /// a flow capped by its connections (beta*pbw) cannot catch up after
  /// losing fair-share rounds, so valid schedules can overrun T_p by a
  /// measurable factor — an effect the analytical model hides and the
  /// bench_sim_validation experiment quantifies.
  MaxMin,
  /// Max-min sharing with TCP's RTT bias: each flow's share weight is
  /// 1 / (2 * route latency + rtt_floor), so long-haul flows lose
  /// gateway contention the way long-RTT TCP connections do. This is the
  /// paper's §7 "more realistic network model" direction. Identical to
  /// MaxMin on latency-free platforms.
  TcpRttBias,
  /// Max-min sharing with the classical W/RTT ceiling: each connection
  /// keeps at most SimOptions::window_units in flight, capping a flow at
  /// connections * window / rtt on top of fair sharing.
  BoundedWindow,
};

/// One mid-run capacity change, honored at a period boundary: from
/// period `at_period` (0-based, counting warm-up periods first) onwards
/// the named capacity takes `value`. The schedule itself is not
/// re-planned — this shows what a fixed periodic schedule achieves when
/// the platform drifts under it (src/dynamics/ supplies the events; the
/// online engine re-plans, the simulator deliberately does not).
struct CapacityRevision {
  enum class Kind : unsigned char {
    GatewayBw,       ///< target = cluster id, value = new gateway capacity
    ClusterSpeed,    ///< target = cluster id, value = new cumulated speed
    LinkBw,          ///< target = link id, value = new per-connection bw
    LinkMaxConnect,  ///< target = link id, value = new max-connect budget
  };
  int at_period = 0;
  Kind kind = Kind::LinkBw;
  int target = 0;
  double value = 0.0;
};

struct SimOptions {
  int periods = 20;        ///< periods executed after warm-up
  int warmup_periods = 2;  ///< pipeline fill periods excluded from stats
  SharingPolicy policy = SharingPolicy::Paced;
  /// Capacity revisions applied at period boundaries, sorted by
  /// at_period (simulate_schedule validates the order).
  std::vector<CapacityRevision> revisions;
  /// Minimum RTT under TcpRttBias/BoundedWindow (avoids infinite weight
  /// or cap on zero-latency routes and models host processing delay).
  double rtt_floor = 1e-3;
  /// Per-connection in-flight load under BoundedWindow.
  double window_units = 50.0;
  /// Execution core (see engine.hpp); Rescan reproduces the pre-refactor
  /// full-pass-per-event loop for cross-checking.
  EngineKind engine = EngineKind::Incremental;
  /// Custom sharing model; overrides `policy` when set (non-owning, must
  /// outlive the call).
  const SharingModel* model = nullptr;
};

struct SimReport {
  double total_time = 0.0;  ///< measured window duration (clocked periods:
                            ///< max(T_p, actual duration) per period)
  std::vector<double> throughput;      ///< per application: load / time
  double mean_period_duration = 0.0;
  double max_period_duration = 0.0;
  /// max period duration / T_p: <= 1 means the schedule held its period.
  double worst_overrun_ratio = 0.0;
  std::int64_t flows_completed = 0;
  std::int64_t jobs_completed = 0;
  /// Full progressive-filling passes over every live item (under the
  /// incremental engine: period-start solves plus dirty sets that spanned
  /// the whole live set).
  std::int64_t rate_recomputations = 0;
  /// Component-limited re-solves done instead of full passes (always 0
  /// under EngineKind::Rescan).
  std::int64_t partial_recomputations = 0;
  std::int64_t events = 0;  ///< item completions across all periods
};

/// The SharingModel preset behind a SharingPolicy value.
[[nodiscard]] std::unique_ptr<SharingModel> make_sharing_model(
    SharingPolicy policy, const SimOptions& options);

/// Executes the schedule for warmup + measured periods and reports
/// achieved steady-state throughput per application. The schedule should
/// be valid for the problem's platform (see validate_schedule); an
/// infeasible schedule still runs but shows overrun ratios above 1.
[[nodiscard]] SimReport simulate_schedule(const core::SteadyStateProblem& problem,
                                          const core::PeriodicSchedule& schedule,
                                          const SimOptions& options = {});

}  // namespace dls::sim
