#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dls::sim {

namespace {

/// Per-link admission scaling: a link opened beyond its max-connect
/// budget degrades every connection proportionally. The floor keeps an
/// inadmissible flow (budget 0) trickling instead of deadlocking the
/// period; its overrun then diverges, which is the observable symptom.
constexpr double kMinAdmission = 1e-6;

std::vector<double> link_admission_factors(const platform::Platform& plat,
                                           const core::PeriodicSchedule& schedule,
                                           const std::vector<double>& link_maxcon) {
  std::vector<double> opened(plat.num_links(), 0.0);
  for (const core::Transfer& tr : schedule.transfers)
    for (platform::LinkId li : plat.route(tr.from, tr.to))
      opened[li] += tr.connections;
  std::vector<double> factor(plat.num_links(), 1.0);
  for (platform::LinkId li = 0; li < plat.num_links(); ++li) {
    const double budget = link_maxcon[li];
    if (opened[li] > budget)
      factor[li] = std::max(budget / opened[li], kMinAdmission);
  }
  return factor;
}

void check_revisions(const SimOptions& options, const platform::Platform& plat) {
  int prev = 0;
  for (const CapacityRevision& rev : options.revisions) {
    require(rev.at_period >= prev,
            "simulate_schedule: revisions must be sorted by at_period");
    prev = rev.at_period;
    switch (rev.kind) {
      case CapacityRevision::Kind::GatewayBw:
        require(rev.target >= 0 && rev.target < plat.num_clusters() &&
                    rev.value > 0.0 && std::isfinite(rev.value),
                "simulate_schedule: bad gateway revision");
        break;
      case CapacityRevision::Kind::ClusterSpeed:
        require(rev.target >= 0 && rev.target < plat.num_clusters() &&
                    rev.value >= 0.0 && std::isfinite(rev.value),
                "simulate_schedule: bad speed revision");
        break;
      case CapacityRevision::Kind::LinkBw:
        require(rev.target >= 0 && rev.target < plat.num_links() &&
                    rev.value > 0.0 && std::isfinite(rev.value),
                "simulate_schedule: bad link bandwidth revision");
        break;
      case CapacityRevision::Kind::LinkMaxConnect:
        require(rev.target >= 0 && rev.target < plat.num_links() &&
                    rev.value >= 0.0 && std::isfinite(rev.value),
                "simulate_schedule: bad max-connect revision");
        break;
    }
  }
}

}  // namespace

std::unique_ptr<SharingModel> make_sharing_model(SharingPolicy policy,
                                                 const SimOptions& options) {
  switch (policy) {
    case SharingPolicy::Paced:
      return std::make_unique<PacedSharing>();
    case SharingPolicy::MaxMin:
      return std::make_unique<MaxMinSharing>();
    case SharingPolicy::TcpRttBias:
      return std::make_unique<TcpRttBiasSharing>(options.rtt_floor);
    case SharingPolicy::BoundedWindow:
      require(options.window_units > 0.0 && std::isfinite(options.window_units),
              "make_sharing_model: window_units must be positive");
      return std::make_unique<BoundedWindowSharing>(options.window_units,
                                                    options.rtt_floor);
  }
  throw Error("make_sharing_model: unknown policy");
}

SimReport simulate_schedule(const core::SteadyStateProblem& problem,
                            const core::PeriodicSchedule& schedule,
                            const SimOptions& options) {
  require(options.periods >= 1 && options.warmup_periods >= 0,
          "simulate_schedule: invalid options");
  const platform::Platform& plat = problem.plat();
  const int n = plat.num_clusters();
  check_revisions(options, plat);

  // Capacities the revisions may move mid-run; seeded from the platform.
  std::vector<double> link_bw(plat.num_links());
  std::vector<double> link_maxcon(plat.num_links());
  for (platform::LinkId li = 0; li < plat.num_links(); ++li) {
    link_bw[li] = plat.link(li).bw;
    link_maxcon[li] = plat.link(li).max_connections;
  }

  // Shared resources: gateway link per cluster, then CPU per cluster.
  // (Backbone links are not shared pools in the paper's model: every
  // connection owns bw(l_i), so a flow's backbone allowance is the
  // private cap beta * pbw — scaled down when the link's max-connect
  // budget is oversubscribed.)
  std::vector<double> capacities(2 * n);
  for (int k = 0; k < n; ++k) {
    capacities[k] = plat.cluster(k).gateway_bw;
    capacities[n + k] = std::max(plat.cluster(k).speed, 1e-12);
  }

  std::unique_ptr<SharingModel> preset;
  const SharingModel* model = options.model;
  if (model == nullptr) {
    preset = make_sharing_model(options.policy, options);
    model = preset.get();
  }
  const auto period_length = static_cast<double>(schedule.period);

  // Template work items for one period, priced at the current link
  // capacities; rebuilt whenever a link revision moves them.
  std::vector<EngineItem> period_items;
  const auto build_items = [&] {
    const std::vector<double> admission =
        link_admission_factors(plat, schedule, link_maxcon);
    period_items.clear();
    period_items.reserve(schedule.transfers.size() + schedule.compute.size());
    for (const core::Transfer& tr : schedule.transfers) {
      EngineItem item;
      item.size = static_cast<double>(tr.units);
      item.resources = {tr.from, tr.to};  // both gateways
      double pbw = std::numeric_limits<double>::infinity();
      for (platform::LinkId li : plat.route(tr.from, tr.to))
        pbw = std::min(pbw, link_bw[li] * admission[li]);
      ItemContext ctx;
      ctx.is_flow = true;
      ctx.reserved_rate = item.size / period_length;
      ctx.rtt = 2.0 * plat.route_latency(tr.from, tr.to);
      ctx.connections = tr.connections;
      ctx.pbw = pbw;
      const ItemShaping shaping = model->shape(ctx);
      const double connection_cap =
          std::isfinite(pbw) ? tr.connections * pbw : FairShareProblem::kNoCap;
      item.cap = std::min(connection_cap, shaping.cap);
      item.weight = shaping.weight;
      period_items.push_back(std::move(item));
    }
    for (const core::ComputeTask& ct : schedule.compute) {
      EngineItem item;
      item.size = static_cast<double>(ct.units);
      item.resources = {n + ct.on_cluster};
      ItemContext ctx;
      ctx.reserved_rate = item.size / period_length;
      const ItemShaping shaping = model->shape(ctx);
      item.cap = shaping.cap;
      item.weight = shaping.weight;
      period_items.push_back(std::move(item));
    }
  };
  build_items();

  SimReport report;
  report.throughput.assign(n, 0.0);

  SimEngine engine(std::move(capacities), options.engine);
  const int total_periods = options.warmup_periods + options.periods;
  double measured_time = 0.0;
  double max_duration = 0.0;
  std::vector<double> measured_load(n, 0.0);
  std::size_t next_revision = 0;
  for (int p = 0; p < total_periods; ++p) {
    // Period-boundary platform events: capacities move between periods,
    // never inside one (the engine's live rate tables stay consistent).
    bool links_moved = false;
    while (next_revision < options.revisions.size() &&
           options.revisions[next_revision].at_period <= p) {
      const CapacityRevision& rev = options.revisions[next_revision++];
      switch (rev.kind) {
        case CapacityRevision::Kind::GatewayBw:
          engine.set_capacity(rev.target, rev.value);
          break;
        case CapacityRevision::Kind::ClusterSpeed:
          engine.set_capacity(n + rev.target, std::max(rev.value, 1e-12));
          break;
        case CapacityRevision::Kind::LinkBw:
          link_bw[rev.target] = rev.value;
          links_moved = true;
          break;
        case CapacityRevision::Kind::LinkMaxConnect:
          link_maxcon[rev.target] = rev.value;
          links_moved = true;
          break;
      }
    }
    if (links_moved) build_items();

    const PeriodStats period = engine.run_period(period_items);
    report.rate_recomputations += period.full_solves;
    report.partial_recomputations += period.partial_solves;
    report.events += period.events;
    if (p < options.warmup_periods) continue;
    // The schedule is clocked: a period that finishes early idles until
    // the T_p boundary; one that overruns delays the next period.
    measured_time += std::max(period.duration, period_length);
    max_duration = std::max(max_duration, period.duration);
    report.flows_completed +=
        static_cast<std::int64_t>(schedule.transfers.size());
    report.jobs_completed += static_cast<std::int64_t>(schedule.compute.size());
    for (const core::ComputeTask& ct : schedule.compute)
      measured_load[ct.app] += static_cast<double>(ct.units);
  }

  report.total_time = measured_time;
  report.mean_period_duration = measured_time / options.periods;
  report.max_period_duration = max_duration;
  report.worst_overrun_ratio = max_duration / period_length;
  if (measured_time > 0.0) {
    for (int k = 0; k < n; ++k) report.throughput[k] = measured_load[k] / measured_time;
  }
  return report;
}

}  // namespace dls::sim
