#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/fair_share.hpp"

namespace dls::sim {

namespace {

/// Work item alive during one period: either a flow (transfer) or a job
/// (compute chunk). Flows use the two gateway resources; jobs use their
/// cluster's CPU resource.
struct WorkItem {
  double remaining = 0.0;
  int app = -1;      // owning application (for throughput accounting)
  bool is_flow = false;
  FairShareProblem::Entity entity;
};

/// Executes one period's work items to completion; returns its duration
/// and the number of rate recomputations.
double run_period(const std::vector<double>& capacities, std::vector<WorkItem> items,
                  std::int64_t& recomputations) {
  double t = 0.0;
  std::vector<char> done(items.size(), 0);
  int active = static_cast<int>(items.size());
  // Items of zero size complete immediately.
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].remaining <= 0.0) {
      done[i] = 1;
      --active;
    }
  }

  while (active > 0) {
    // Solve the rate problem for the live items.
    FairShareProblem fsp;
    fsp.capacity = capacities;
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (done[i]) continue;
      live.push_back(i);
      fsp.entities.push_back(items[i].entity);
    }
    const std::vector<double> rates = max_min_fair_rates(fsp);
    ++recomputations;

    // Earliest completion at these rates.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (rates[j] <= 0.0) continue;
      dt = std::min(dt, items[live[j]].remaining / rates[j]);
    }
    // A live item with rate 0 and no positive-rate sibling would hang:
    // capacities are positive and every item uses >= 1 resource or cap,
    // so max-min always gives someone positive rate.
    DLS_ASSERT(std::isfinite(dt));

    t += dt;
    for (std::size_t j = 0; j < live.size(); ++j) {
      WorkItem& item = items[live[j]];
      item.remaining -= rates[j] * dt;
      if (item.remaining <= 1e-9 * (1.0 + rates[j])) {
        done[live[j]] = 1;
        --active;
      }
    }
  }
  return t;
}

}  // namespace

SimReport simulate_schedule(const core::SteadyStateProblem& problem,
                            const core::PeriodicSchedule& schedule,
                            const SimOptions& options) {
  require(options.periods >= 1 && options.warmup_periods >= 0,
          "simulate_schedule: invalid options");
  const platform::Platform& plat = problem.plat();
  const int n = plat.num_clusters();

  // Shared resources: gateway link per cluster, then CPU per cluster.
  // (Backbone links are not shared pools in the paper's model: every
  // connection owns bw(l_i), so a flow's backbone allowance is the
  // private cap beta * pbw.)
  std::vector<double> capacities(2 * n);
  for (int k = 0; k < n; ++k) {
    capacities[k] = plat.cluster(k).gateway_bw;
    capacities[n + k] = std::max(plat.cluster(k).speed, 1e-12);
  }

  // Template work items for one period.
  std::vector<WorkItem> period_items;
  for (const core::Transfer& tr : schedule.transfers) {
    WorkItem item;
    item.remaining = static_cast<double>(tr.units);
    item.app = tr.from;
    item.is_flow = true;
    item.entity.resources = {tr.from, tr.to};  // both gateways
    const double pbw = plat.route_bottleneck_bw(tr.from, tr.to);
    item.entity.cap = std::isfinite(pbw) ? tr.connections * pbw
                                         : FairShareProblem::kNoCap;
    if (options.policy == SharingPolicy::TcpRttBias) {
      const double rtt =
          std::max(2.0 * plat.route_latency(tr.from, tr.to), options.rtt_floor);
      item.entity.weight = 1.0 / rtt;
    }
    period_items.push_back(std::move(item));
  }
  for (const core::ComputeTask& ct : schedule.compute) {
    WorkItem item;
    item.remaining = static_cast<double>(ct.units);
    item.app = ct.app;
    item.is_flow = false;
    item.entity.resources = {n + ct.on_cluster};
    item.entity.cap = FairShareProblem::kNoCap;
    period_items.push_back(std::move(item));
  }
  if (options.policy == SharingPolicy::Paced) {
    // Throttle every item to its reserved fluid rate. Shared resources
    // stay in place, so an infeasible schedule still surfaces as overrun.
    for (WorkItem& item : period_items) {
      item.entity.cap = std::min(
          item.entity.cap,
          item.remaining / static_cast<double>(schedule.period));
    }
  }

  SimReport report;
  report.throughput.assign(n, 0.0);

  const int total_periods = options.warmup_periods + options.periods;
  double measured_time = 0.0;
  double max_duration = 0.0;
  std::vector<double> measured_load(n, 0.0);
  for (int p = 0; p < total_periods; ++p) {
    const double duration =
        run_period(capacities, period_items, report.rate_recomputations);
    if (p < options.warmup_periods) continue;
    // The schedule is clocked: a period that finishes early idles until
    // the T_p boundary; one that overruns delays the next period.
    measured_time += std::max(duration, static_cast<double>(schedule.period));
    max_duration = std::max(max_duration, duration);
    report.flows_completed +=
        static_cast<std::int64_t>(schedule.transfers.size());
    report.jobs_completed += static_cast<std::int64_t>(schedule.compute.size());
    for (const core::ComputeTask& ct : schedule.compute)
      measured_load[ct.app] += static_cast<double>(ct.units);
  }

  report.total_time = measured_time;
  report.mean_period_duration = measured_time / options.periods;
  report.max_period_duration = max_duration;
  report.worst_overrun_ratio =
      max_duration / static_cast<double>(schedule.period);
  if (measured_time > 0.0) {
    for (int k = 0; k < n; ++k) report.throughput[k] = measured_load[k] / measured_time;
  }
  return report;
}

}  // namespace dls::sim
