// Reusable simulation engine for fluid bandwidth-sharing execution.
//
// This layer replaces the original per-event from-scratch loop (rebuild a
// FairShareProblem and re-run progressive filling after every completion)
// with persistent solver state:
//
//   * per-resource tables of the live entities (and their total weight)
//     are kept alive across events and updated by deltas when an entity
//     completes;
//   * completions are driven by an event calendar — a binary min-heap of
//     projected finish times, invalidated lazily through per-entity
//     version counters when a rate changes — instead of an O(live) scan
//     per event;
//   * when an entity completes, only its *connected component* (entities
//     transitively reachable through shared resources) can change rate,
//     because weighted max-min fairness decomposes across components; the
//     engine re-runs progressive filling over that component only
//     (dirty-set propagation) and skips the solve outright when every
//     affected entity already sits at its individual cap.
//
// The original algorithm is preserved as EngineKind::Rescan, both as a
// cross-check oracle for tests and as the reference the incremental
// engine's counters are compared against.
//
// Sharing models (how items translate into rate caps and weights) are
// policy objects (SharingModel), so new models — bounded-window TCP,
// RTT-biased variants — plug in without touching the engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "sim/fair_share.hpp"

namespace dls::sim {

/// One unit of period work handed to the engine: `size` units of load
/// drawing rate from `resources` under an individual cap and share weight.
struct EngineItem {
  double size = 0.0;
  std::vector<int> resources;  ///< shared resource indices it uses
  double cap = FairShareProblem::kNoCap;
  double weight = 1.0;
};

/// Counters of one executed period.
struct PeriodStats {
  double duration = 0.0;
  std::int64_t events = 0;  ///< item completions
  /// Progressive-filling passes over the *entire* live set (period-start
  /// solves, plus any event-driven solve whose dirty component happened to
  /// span every live entity).
  std::int64_t full_solves = 0;
  /// Component-limited re-solves (strict subsets of the live set).
  std::int64_t partial_solves = 0;
};

/// Which execution core drives a period.
enum class EngineKind {
  /// Pre-refactor reference: full progressive-filling pass per event.
  Rescan,
  /// Event calendar + component-limited delta re-solves (the default).
  Incremental,
};

// ---- sharing-model policy ---------------------------------------------------

/// What the simulator knows about an item when shaping it for the engine.
struct ItemContext {
  bool is_flow = false;
  double reserved_rate = 0.0;  ///< units / T_p, the schedule's fluid rate
  double rtt = 0.0;            ///< 2 * one-way route latency (flows only)
  int connections = 0;         ///< opened connections (flows only)
  /// Effective per-connection bottleneck bandwidth along the route (after
  /// max-connect admission scaling); +inf when no backbone link is crossed.
  double pbw = FairShareProblem::kNoCap;
};

/// Extra rate cap and share weight a sharing model assigns to one item.
/// The engine enforces cap in addition to the structural connection cap
/// (connections * pbw).
struct ItemShaping {
  double weight = 1.0;
  double cap = FairShareProblem::kNoCap;
};

/// A sharing model decides how items draw rate within a period. Stateless
/// and const: one instance may shape many simulations concurrently.
class SharingModel {
public:
  virtual ~SharingModel() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual ItemShaping shape(const ItemContext& ctx) const = 0;
};

/// Every item throttled to its reserved fluid rate (§3.2 feasibility
/// argument): a valid schedule completes exactly at the period boundary.
class PacedSharing final : public SharingModel {
public:
  [[nodiscard]] const char* name() const override { return "paced"; }
  [[nodiscard]] ItemShaping shape(const ItemContext& ctx) const override {
    return {1.0, ctx.reserved_rate};
  }
};

/// Work-conserving max-min fair sharing (TCP-like, no bias).
class MaxMinSharing final : public SharingModel {
public:
  [[nodiscard]] const char* name() const override { return "maxmin"; }
  [[nodiscard]] ItemShaping shape(const ItemContext&) const override { return {}; }
};

/// Max-min sharing with TCP's RTT bias: flow weight 1 / max(rtt, floor).
class TcpRttBiasSharing final : public SharingModel {
public:
  explicit TcpRttBiasSharing(double rtt_floor) : rtt_floor_(rtt_floor) {}
  [[nodiscard]] const char* name() const override { return "tcp-rtt-bias"; }
  [[nodiscard]] ItemShaping shape(const ItemContext& ctx) const override {
    if (!ctx.is_flow) return {};
    return {1.0 / std::max(ctx.rtt, rtt_floor_), FairShareProblem::kNoCap};
  }

private:
  double rtt_floor_;
};

/// Bounded-window TCP: each connection keeps at most `window` units in
/// flight, so a flow's rate is additionally capped at
/// connections * window / rtt — the classical W/RTT throughput ceiling.
/// On latency-free routes the cap is governed by the RTT floor alone.
class BoundedWindowSharing final : public SharingModel {
public:
  BoundedWindowSharing(double window, double rtt_floor)
      : window_(window), rtt_floor_(rtt_floor) {}
  [[nodiscard]] const char* name() const override { return "bounded-window"; }
  [[nodiscard]] ItemShaping shape(const ItemContext& ctx) const override {
    if (!ctx.is_flow) return {};
    const double rtt = std::max(ctx.rtt, rtt_floor_);
    return {1.0, ctx.connections * window_ / rtt};
  }

private:
  double window_;
  double rtt_floor_;
};

// ---- engine -----------------------------------------------------------------

/// Executes periods of work items over a fixed set of shared resources.
/// Reusable across periods (buffers persist); one instance per thread.
///
/// Stepping interface: begin_period() loads items and solves initial
/// rates; step() advances to the next completion. Tests use the stepping
/// form to check the live allocation against the max-min oracle after
/// every event; simulate_schedule uses run_period().
class SimEngine {
public:
  explicit SimEngine(std::vector<double> capacities,
                     EngineKind kind = EngineKind::Incremental);

  /// Loads one period of work and computes initial rates. Items of zero
  /// size complete immediately. Items with positive size must have a
  /// positive cap or use at least one resource.
  void begin_period(const std::vector<EngineItem>& items);

  /// Advances to the next completion event; returns its absolute time
  /// within the period, or nullopt when no live work remains. (Rescan
  /// batches simultaneous completions into one step, matching the
  /// pre-refactor loop; Incremental pops one completion per step.)
  std::optional<double> step();

  /// Drives the loaded period to completion and returns its stats.
  PeriodStats finish_period();

  /// Convenience: begin_period + finish_period.
  PeriodStats run_period(const std::vector<EngineItem>& items);

  /// Replaces one shared resource's capacity (a period-boundary platform
  /// event, see sim::CapacityRevision). Only legal between periods: the
  /// live rate tables of a period in progress still price the old value.
  void set_capacity(int resource, double value);

  [[nodiscard]] const std::vector<double>& capacities() const { return capacities_; }
  [[nodiscard]] EngineKind kind() const { return kind_; }
  [[nodiscard]] int num_items() const { return static_cast<int>(items_.size()); }
  [[nodiscard]] int num_live() const { return num_live_; }
  [[nodiscard]] bool is_live(int item) const { return ents_[item].alive; }
  /// Current rate of a live item (meaningless once it completed).
  [[nodiscard]] double rate(int item) const { return ents_[item].rate; }
  /// Running counters of the period in progress (duration is filled in by
  /// finish_period).
  [[nodiscard]] const PeriodStats& stats() const { return stats_; }

private:
  struct Entity {
    double remaining = 0.0;
    double rate = 0.0;
    double last_sync = 0.0;  ///< time `remaining` was last made current
    std::uint32_t version = 0;  ///< bumped on rate change; stale events skipped
    bool alive = false;
  };

  struct Event {
    double time = 0.0;
    int item = -1;
    std::uint32_t version = 0;
    bool operator>(const Event& o) const { return time > o.time; }
  };

  void solve_all();
  void push_event(int item);
  std::optional<double> step_incremental();
  std::optional<double> step_rescan();
  /// Collects the connected component around `seed_item`'s resources into
  /// comp_items_/comp_resources_ (excluding completed entities).
  void collect_component(int seed_item);

  std::vector<double> capacities_;
  EngineKind kind_;

  // ---- per-period state (buffers persist across periods) ----
  std::vector<EngineItem> items_;
  std::vector<Entity> ents_;
  std::vector<std::vector<int>> res_live_;  ///< live entity ids per resource
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> calendar_;
  double now_ = 0.0;
  int num_live_ = 0;
  PeriodStats stats_;

  // ---- scratch for component collection / sub-solves ----
  std::vector<int> comp_items_;
  std::vector<int> comp_resources_;
  std::vector<std::uint32_t> item_mark_;
  std::vector<std::uint32_t> res_mark_;
  std::vector<int> res_local_;  ///< resource -> local index in sub-problem
  std::uint32_t epoch_ = 0;
  FairShareProblem scratch_problem_;
};

}  // namespace dls::sim
