#include "sim/fair_share.hpp"

#include <algorithm>
#include <cmath>

namespace dls::sim {

std::vector<double> max_min_fair_rates(const FairShareProblem& problem) {
  const int num_entities = static_cast<int>(problem.entities.size());
  const int num_resources = static_cast<int>(problem.capacity.size());
  for (double c : problem.capacity)
    require(c > 0.0 && std::isfinite(c), "max_min_fair_rates: bad resource capacity");
  for (const auto& e : problem.entities) {
    require(e.cap >= 0.0, "max_min_fair_rates: negative cap");
    require(e.weight > 0.0 && std::isfinite(e.weight),
            "max_min_fair_rates: weight must be positive");
    require(!e.resources.empty() || std::isfinite(e.cap),
            "max_min_fair_rates: entity with no resource and no cap is unbounded");
    for (int r : e.resources)
      require(r >= 0 && r < num_resources, "max_min_fair_rates: resource out of range");
  }

  std::vector<double> rate(num_entities, 0.0);
  std::vector<char> frozen(num_entities, 0);
  // Remaining capacity once frozen entities' rates are subtracted, and
  // the total weight of unfrozen entities per resource.
  std::vector<double> slack(problem.capacity);
  std::vector<double> weight_on(num_resources, 0.0);
  // Integer count alongside the float weight sum: repeated subtraction can
  // leave a phantom epsilon of weight on a resource whose entities all
  // froze, which would stall the water-filling loop.
  std::vector<int> count_on(num_resources, 0);
  for (const auto& e : problem.entities)
    for (int r : e.resources) {
      weight_on[r] += e.weight;
      ++count_on[r];
    }

  // Unfrozen entity rates are weight * level; all rise together.
  double level = 0.0;
  int remaining = num_entities;
  while (remaining > 0) {
    // Next stop: the tightest resource's level or the smallest unfrozen
    // normalized cap (cap / weight).
    double next = FairShareProblem::kNoCap;
    for (int r = 0; r < num_resources; ++r) {
      if (count_on[r] == 0 || weight_on[r] <= 0.0) continue;
      next = std::min(next, level + slack[r] / weight_on[r]);
    }
    for (int e = 0; e < num_entities; ++e)
      if (!frozen[e])
        next = std::min(next, problem.entities[e].cap / problem.entities[e].weight);
    DLS_ASSERT(std::isfinite(next));
    DLS_ASSERT(next >= level - 1e-12);
    next = std::max(next, level);

    // Advance everyone to `next`, consuming slack in proportion to weight.
    const double step = next - level;
    if (step > 0.0) {
      for (int r = 0; r < num_resources; ++r)
        if (count_on[r] > 0) slack[r] -= step * weight_on[r];
      level = next;
    }

    // Freeze entities that hit their cap or sit on a drained resource.
    constexpr double kTol = 1e-12;
    int frozen_this_round = 0;
    for (int e = 0; e < num_entities; ++e) {
      if (frozen[e]) continue;
      const auto& ent = problem.entities[e];
      bool stop = ent.cap <= level * ent.weight + kTol;
      if (!stop) {
        for (int r : ent.resources) {
          if (slack[r] <= kTol * problem.capacity[r]) {
            stop = true;
            break;
          }
        }
      }
      if (stop) {
        frozen[e] = 1;
        rate[e] = std::min(level * ent.weight, ent.cap);
        for (int r : ent.resources) {
          weight_on[r] -= ent.weight;
          --count_on[r];
        }
        ++frozen_this_round;
      }
    }
    DLS_ASSERT(frozen_this_round > 0);  // every round saturates something
    remaining -= frozen_this_round;
  }
  return rate;
}

bool is_max_min_fair(const FairShareProblem& problem, const std::vector<double>& rates,
                     double tol) {
  const int num_entities = static_cast<int>(problem.entities.size());
  const int num_resources = static_cast<int>(problem.capacity.size());
  if (static_cast<int>(rates.size()) != num_entities) return false;

  std::vector<double> used(num_resources, 0.0);
  for (int e = 0; e < num_entities; ++e) {
    if (rates[e] < -tol || rates[e] > problem.entities[e].cap + tol) return false;
    for (int r : problem.entities[e].resources) used[r] += rates[e];
  }
  for (int r = 0; r < num_resources; ++r)
    if (used[r] > problem.capacity[r] * (1 + tol) + tol) return false;

  // Weighted bottleneck condition: every entity is at its cap, or uses a
  // saturated resource on which its normalized rate is (weakly) largest.
  for (int e = 0; e < num_entities; ++e) {
    if (rates[e] >= problem.entities[e].cap - tol) continue;
    const double norm_e = rates[e] / problem.entities[e].weight;
    bool bottlenecked = false;
    for (int r : problem.entities[e].resources) {
      if (used[r] < problem.capacity[r] - tol) continue;  // not saturated
      double max_on_r = 0.0;
      for (int e2 = 0; e2 < num_entities; ++e2) {
        const auto& res = problem.entities[e2].resources;
        if (std::find(res.begin(), res.end(), r) != res.end())
          max_on_r = std::max(max_on_r, rates[e2] / problem.entities[e2].weight);
      }
      if (norm_e >= max_on_r - tol) {
        bottlenecked = true;
        break;
      }
    }
    if (!bottlenecked) return false;
  }
  return true;
}

}  // namespace dls::sim
