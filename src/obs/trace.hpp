// Structured trace ring: a bounded in-memory span log for "what did
// the scheduler just do" questions that counters aggregate away. Each
// span is (steady-clock ns, name, detail, optional duration); the ring
// keeps the most recent N and counts what it overwrote. An optional
// sink mirrors every span to a JSONL file (`dls serve --trace-file`)
// so a replay leaves a machine-readable timeline behind.
//
// Writes take a mutex — spans are emitted at scheduler-event rate
// (arrivals, reschedules, platform events), orders of magnitude below
// the counter hot paths, so sharding would buy nothing here.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dls::obs {

struct TraceSpan {
  std::uint64_t ts_ns = 0;   ///< support now_ns() at emit
  std::uint64_t dur_ns = 0;  ///< 0 for instant events
  std::string name;
  std::string detail;
};

class TraceRing {
public:
  explicit TraceRing(std::size_t capacity = 1024);
  ~TraceRing();

  /// Drops buffered spans and resizes the ring.
  void set_capacity(std::size_t capacity);

  /// Mirrors subsequent spans to `path` as JSON lines (append mode).
  /// Empty path closes the sink. Throws dls::Error if unwritable.
  void set_sink(const std::string& path);

  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  void emit(std::string_view name, std::string_view detail = {},
            std::uint64_t dur_ns = 0);

  /// Buffered spans, oldest first.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;
  /// Spans evicted from the ring since construction (sink still saw them).
  [[nodiscard]] std::uint64_t dropped() const;

private:
  mutable std::mutex mutex_;
  std::vector<TraceSpan> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = true;
  void* sink_ = nullptr;   ///< FILE*, kept opaque to spare <cstdio> here
};

/// Process-global ring used by the instrumentation macros below.
[[nodiscard]] TraceRing& trace_ring();

/// Emits on the global ring.
void trace(std::string_view name, std::string_view detail = {},
           std::uint64_t dur_ns = 0);

}  // namespace dls::obs
