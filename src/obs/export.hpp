// Exposition formats for a Registry snapshot: the Prometheus text
// format served at `GET /metrics` and a JSON rendering for `/stats`
// consumers and tests. Both iterate series in registration order, so
// output is deterministic for a deterministic workload — serve_smoke
// diffs the counter lines of two replays byte-for-byte.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace dls::obs {

/// Prometheus text exposition (# HELP / # TYPE once per family, then
/// one line per series; histograms expand to _bucket/_sum/_count).
[[nodiscard]] std::string to_prometheus(const RegistrySnapshot& snap);

/// JSON object: {"series":[{"name":...,"labels":...,"type":...,...}]}.
[[nodiscard]] std::string to_json(const RegistrySnapshot& snap);

/// Shortest round-trippable rendering of a double ("0.25", "1e-05");
/// shared by the exporters and the bench JSON emitters.
[[nodiscard]] std::string format_double(double v);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace dls::obs
