// Lock-cheap metrics registry for the long-running surfaces (`dls
// serve`, the distributed coordinator/worker) and the layers they sit
// on (lp/, online/, dynamics/).
//
// Design: write-side cost must be invisible next to the simplex inner
// loops, so every counter/histogram write lands in a *per-thread shard*
// — a fixed-capacity block of relaxed atomics owned by the writing
// thread — and the shards are folded only at scrape time (the
// "shard-and-fold" pattern of ytsaurus' profiling manager, scaled
// down). The registry mutex is taken on three slow paths only:
// registering a metric, creating a thread's shard, and folding a
// snapshot. A hot-path write is one relaxed load (the enabled flag) plus
// one relaxed fetch_add on cache lines no other writer touches.
//
// Capacities are fixed at construction (counters/gauges/histogram
// buckets), so a shard never reallocates and scrape-time reads never
// race a resize. Registering past a capacity throws — instrumentation
// is a closed, code-reviewed set, not a dynamic namespace.
//
// Metric model (Prometheus-shaped):
//   * Counter   — monotonic uint64, sharded;
//   * Gauge     — last-write double, unsharded (set/add are rare);
//   * Histogram — fixed bucket upper bounds + sum + count, sharded.
// A series is (name, labels); families sharing a name are exported
// under one HELP/TYPE header (export.hpp). Registering the same
// (name, labels) twice returns the same series.
//
// The process-global instance is obs::registry(); set_enabled(false)
// turns every write into a single branch (the bench gate measures this
// delta on bench_lp_scaling cold solves; budget <= 2%).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dls::obs {

class Registry;

enum class MetricType : unsigned char { Counter, Gauge, Histogram };

[[nodiscard]] const char* to_string(MetricType type);

/// Monotonic counter handle. Copyable, trivially small; a
/// default-constructed handle is inert (writes are dropped).
class Counter {
public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const;
  /// Folded value across all shards (slow path; scrape/test use).
  [[nodiscard]] std::uint64_t value() const;

private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t index) : reg_(reg), index_(index) {}
  Registry* reg_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Last-write-wins gauge handle (unsharded: one atomic per series).
class Gauge {
public:
  Gauge() = default;
  void set(double v) const;
  void add(double delta) const;
  [[nodiscard]] double value() const;

private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t index) : reg_(reg), index_(index) {}
  Registry* reg_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram handle. Bucket bounds are upper bounds (le);
/// an implicit +Inf bucket is always appended.
class Histogram {
public:
  Histogram() = default;
  void observe(double v) const;

private:
  friend class Registry;
  Histogram(Registry* reg, const std::vector<double>* bounds, std::uint32_t slot,
            std::uint32_t bucket_base)
      : reg_(reg), bounds_(bounds), slot_(slot), bucket_base_(bucket_base) {}
  Registry* reg_ = nullptr;
  const std::vector<double>* bounds_ = nullptr;  ///< stable: metas_ is a deque
  std::uint32_t slot_ = 0;
  std::uint32_t bucket_base_ = 0;
};

/// The log-spaced seconds buckets used by every duration histogram in
/// the repo (1e-5 s .. 10 s, roughly x3 steps).
[[nodiscard]] const std::vector<double>& default_time_buckets();

/// One exported series, folded across shards at snapshot time.
struct SeriesSnapshot {
  std::string name;
  std::string labels;  ///< 'key="value",key2="value2"' or empty
  std::string help;
  MetricType type = MetricType::Counter;
  std::uint64_t counter = 0;         ///< Counter
  double gauge = 0.0;                ///< Gauge
  std::vector<double> bounds;        ///< Histogram upper bounds (no +Inf)
  std::vector<std::uint64_t> buckets;///< per-bound counts + final +Inf bucket
  double sum = 0.0;                  ///< Histogram sum of observations
  std::uint64_t count = 0;           ///< Histogram observation count
};

struct RegistrySnapshot {
  std::vector<SeriesSnapshot> series;  ///< registration order
};

class Registry {
public:
  struct Limits {
    std::uint32_t max_counters = 256;
    std::uint32_t max_gauges = 128;
    std::uint32_t max_histograms = 64;
    std::uint32_t max_hist_buckets = 1024;  ///< total across histograms
  };

  Registry();  ///< default Limits
  explicit Registry(Limits limits);

  /// Registers (or re-finds) a series. Throws dls::Error past capacity
  /// or when a name is reused with a different type.
  [[nodiscard]] Counter counter(const std::string& name, const std::string& help,
                                const std::string& labels = "");
  [[nodiscard]] Gauge gauge(const std::string& name, const std::string& help,
                            const std::string& labels = "");
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    const std::string& help,
                                    const std::vector<double>& bounds,
                                    const std::string& labels = "");

  /// Global write switch. Disabled, every handle write is one relaxed
  /// load and a branch; snapshots still work (they fold what was
  /// recorded while enabled).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Folds every shard into one consistent-enough view (counters are
  /// monotonic per shard, so successive snapshots never go backwards).
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Number of per-thread shards created so far (observability of the
  /// observability layer; tests assert shard reuse).
  [[nodiscard]] std::size_t shard_count() const;

private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    explicit Shard(const Limits& limits)
        : counters(limits.max_counters),
          hist_counts(limits.max_hist_buckets),
          hist_sums(limits.max_histograms) {}
    std::vector<std::atomic<std::uint64_t>> counters;
    std::vector<std::atomic<std::uint64_t>> hist_counts;  ///< flattened buckets
    std::vector<std::atomic<double>> hist_sums;
  };

  struct Meta {
    std::string name, labels, help;
    MetricType type = MetricType::Counter;
    std::uint32_t index = 0;        ///< counter/gauge/histogram slot
    std::uint32_t bucket_base = 0;  ///< histogram: offset into hist_counts
    std::vector<double> bounds;     ///< histogram bounds (no +Inf)
  };

  [[nodiscard]] Shard& local_shard();
  [[nodiscard]] const Meta& register_series(MetricType type,
                                            const std::string& name,
                                            const std::string& help,
                                            const std::string& labels,
                                            const std::vector<double>* bounds);

  Limits limits_;
  /// Process-unique id: the thread-local shard cache keys on (address,
  /// generation) so a new Registry reusing a destroyed one's address
  /// cannot alias its cached shard pointer.
  std::uint64_t generation_ = 0;
  std::atomic<bool> enabled_{true};

  mutable std::mutex mutex_;
  std::deque<Shard> shards_;  ///< stable addresses; never removed
  std::map<std::thread::id, Shard*> shard_of_;
  std::deque<Meta> metas_;    ///< registration order; stable addresses
                              ///< (histogram handles point into it)
  std::map<std::pair<std::string, std::string>, std::uint32_t> by_key_;
  std::uint32_t next_counter_ = 0;
  std::uint32_t next_gauge_ = 0;
  std::uint32_t next_histogram_ = 0;
  std::uint32_t next_bucket_ = 0;
  std::vector<std::atomic<double>> gauges_;
};

/// The process-global registry every instrumentation site writes to.
[[nodiscard]] Registry& registry();

/// Convenience switches on the global registry.
inline void set_enabled(bool enabled) { registry().set_enabled(enabled); }
[[nodiscard]] inline bool enabled() { return registry().enabled(); }

}  // namespace dls::obs
