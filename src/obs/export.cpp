#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace dls::obs {

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  // Integral values print as plain integers ("10", not "1e+01") so
  // counter-backed gauges and le bounds read naturally.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// name + optional labels + optional extra label, Prometheus-style.
std::string series_ref(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  std::string out = name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  return out;
}

}  // namespace

std::string to_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  std::set<std::string> headered;
  for (const SeriesSnapshot& s : snap.series) {
    if (headered.insert(s.name).second) {
      out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " " + to_string(s.type) + "\n";
    }
    switch (s.type) {
      case MetricType::Counter:
        out += series_ref(s.name, s.labels) + " " + std::to_string(s.counter) + "\n";
        break;
      case MetricType::Gauge:
        out += series_ref(s.name, s.labels) + " " + format_double(s.gauge) + "\n";
        break;
      case MetricType::Histogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          cumulative += s.buckets[b];
          const std::string le =
              b < s.bounds.size() ? format_double(s.bounds[b]) : "+Inf";
          out += series_ref(s.name + "_bucket", s.labels, "le=\"" + le + "\"") +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += series_ref(s.name + "_sum", s.labels) + " " + format_double(s.sum) + "\n";
        out += series_ref(s.name + "_count", s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json(const RegistrySnapshot& snap) {
  std::string out = "{\"series\":[";
  bool first = true;
  for (const SeriesSnapshot& s : snap.series) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"labels\":\"" +
           json_escape(s.labels) + "\",\"type\":\"" + to_string(s.type) + "\"";
    switch (s.type) {
      case MetricType::Counter:
        out += ",\"value\":" + std::to_string(s.counter);
        break;
      case MetricType::Gauge:
        out += ",\"value\":" + format_double(s.gauge);
        break;
      case MetricType::Histogram: {
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b != 0) out += ',';
          out += "[" +
                 (b < s.bounds.size() ? format_double(s.bounds[b])
                                      : std::string("\"+Inf\"")) +
                 "," + std::to_string(s.buckets[b]) + "]";
        }
        out += "],\"sum\":" + format_double(s.sum) +
               ",\"count\":" + std::to_string(s.count);
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace dls::obs
