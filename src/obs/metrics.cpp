#include "obs/metrics.hpp"

#include "support/error.hpp"

namespace dls::obs {
namespace {

// atomic<double> has no fetch_add before C++20 on all library versions
// we target; a CAS loop is equivalent and the sites are cold.
void atomic_add(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

struct ShardCache {
  const Registry* owner = nullptr;
  std::uint64_t generation = 0;
  void* shard = nullptr;
};
thread_local ShardCache t_shard_cache;

std::atomic<std::uint64_t> g_registry_generation{0};

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "unknown";
}

const std::vector<double>& default_time_buckets() {
  static const std::vector<double> buckets = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
  return buckets;
}

Registry::Registry() : Registry(Limits()) {}

Registry::Registry(Limits limits)
    : limits_(limits),
      generation_(g_registry_generation.fetch_add(1, std::memory_order_relaxed) +
                  1),
      gauges_(limits.max_gauges) {}

Registry::Shard& Registry::local_shard() {
  if (t_shard_cache.owner == this &&
      t_shard_cache.generation == generation_) {
    return *static_cast<Shard*>(t_shard_cache.shard);
  }
  std::scoped_lock lock(mutex_);
  const auto tid = std::this_thread::get_id();
  auto [it, inserted] = shard_of_.try_emplace(tid, nullptr);
  if (inserted) {
    shards_.emplace_back(limits_);
    it->second = &shards_.back();
  }
  t_shard_cache = {this, generation_, it->second};
  return *it->second;
}

const Registry::Meta& Registry::register_series(MetricType type,
                                                const std::string& name,
                                                const std::string& help,
                                                const std::string& labels,
                                                const std::vector<double>* bounds) {
  std::scoped_lock lock(mutex_);
  auto key = std::make_pair(name, labels);
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    const Meta& meta = metas_[it->second];
    require(meta.type == type, "obs: metric '" + name +
                                   "' re-registered with a different type");
    return meta;
  }
  // Same family name, different labels: the type must agree or the
  // exporter would emit conflicting TYPE headers.
  for (const Meta& meta : metas_) {
    require(meta.name != name || meta.type == type,
            "obs: metric family '" + name + "' mixes types");
  }
  Meta meta;
  meta.name = name;
  meta.labels = labels;
  meta.help = help;
  meta.type = type;
  switch (type) {
    case MetricType::Counter:
      require(next_counter_ < limits_.max_counters, "obs: counter capacity exceeded");
      meta.index = next_counter_++;
      break;
    case MetricType::Gauge:
      require(next_gauge_ < limits_.max_gauges, "obs: gauge capacity exceeded");
      meta.index = next_gauge_++;
      break;
    case MetricType::Histogram: {
      require(bounds != nullptr && !bounds->empty(), "obs: histogram needs bounds");
      for (std::size_t i = 1; i < bounds->size(); ++i) {
        require((*bounds)[i - 1] < (*bounds)[i], "obs: histogram bounds must increase");
      }
      require(next_histogram_ < limits_.max_histograms,
              "obs: histogram capacity exceeded");
      const auto want = static_cast<std::uint32_t>(bounds->size() + 1);  // +Inf
      require(next_bucket_ + want <= limits_.max_hist_buckets,
              "obs: histogram bucket capacity exceeded");
      meta.index = next_histogram_++;
      meta.bucket_base = next_bucket_;
      meta.bounds = *bounds;
      next_bucket_ += want;
      break;
    }
  }
  by_key_.emplace(std::move(key), static_cast<std::uint32_t>(metas_.size()));
  metas_.push_back(std::move(meta));
  return metas_.back();
}

Counter Registry::counter(const std::string& name, const std::string& help,
                          const std::string& labels) {
  const Meta& meta = register_series(MetricType::Counter, name, help, labels, nullptr);
  return Counter(this, meta.index);
}

Gauge Registry::gauge(const std::string& name, const std::string& help,
                      const std::string& labels) {
  const Meta& meta = register_series(MetricType::Gauge, name, help, labels, nullptr);
  return Gauge(this, meta.index);
}

Histogram Registry::histogram(const std::string& name, const std::string& help,
                              const std::vector<double>& bounds,
                              const std::string& labels) {
  const Meta& meta = register_series(MetricType::Histogram, name, help, labels, &bounds);
  return Histogram(this, &meta.bounds, meta.index, meta.bucket_base);
}

void Counter::inc(std::uint64_t n) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->local_shard().counters[index_].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  if (reg_ == nullptr) return 0;
  std::scoped_lock lock(reg_->mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : reg_->shards_) {
    total += shard.counters[index_].load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::set(double v) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->gauges_[index_].store(v, std::memory_order_relaxed);
}

void Gauge::add(double delta) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  atomic_add(reg_->gauges_[index_], delta);
}

double Gauge::value() const {
  if (reg_ == nullptr) return 0.0;
  return reg_->gauges_[index_].load(std::memory_order_relaxed);
}

void Histogram::observe(double v) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  std::uint32_t bucket = 0;
  while (bucket < bounds_->size() && v > (*bounds_)[bucket]) ++bucket;
  Registry::Shard& shard = reg_->local_shard();
  shard.hist_counts[bucket_base_ + bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add(shard.hist_sums[slot_], v);
}

RegistrySnapshot Registry::snapshot() const {
  std::scoped_lock lock(mutex_);
  RegistrySnapshot snap;
  snap.series.reserve(metas_.size());
  for (const Meta& meta : metas_) {
    SeriesSnapshot s;
    s.name = meta.name;
    s.labels = meta.labels;
    s.help = meta.help;
    s.type = meta.type;
    switch (meta.type) {
      case MetricType::Counter:
        for (const auto& shard : shards_) {
          s.counter += shard.counters[meta.index].load(std::memory_order_relaxed);
        }
        break;
      case MetricType::Gauge:
        s.gauge = gauges_[meta.index].load(std::memory_order_relaxed);
        break;
      case MetricType::Histogram: {
        s.bounds = meta.bounds;
        s.buckets.assign(meta.bounds.size() + 1, 0);
        for (const auto& shard : shards_) {
          for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            s.buckets[b] +=
                shard.hist_counts[meta.bucket_base + b].load(std::memory_order_relaxed);
          }
          s.sum += shard.hist_sums[meta.index].load(std::memory_order_relaxed);
        }
        for (std::uint64_t c : s.buckets) s.count += c;
        break;
      }
    }
    snap.series.push_back(std::move(s));
  }
  return snap;
}

std::size_t Registry::shard_count() const {
  std::scoped_lock lock(mutex_);
  return shards_.size();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace dls::obs
