#include "obs/trace.hpp"

#include <cstdio>

#include "obs/export.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace dls::obs {

TraceRing::TraceRing(std::size_t capacity)
    : ring_(capacity), capacity_(capacity) {}

TraceRing::~TraceRing() {
  if (sink_ != nullptr) std::fclose(static_cast<std::FILE*>(sink_));
}

void TraceRing::set_capacity(std::size_t capacity) {
  std::scoped_lock lock(mutex_);
  ring_.assign(capacity, TraceSpan{});
  capacity_ = capacity;
  head_ = size_ = 0;
}

void TraceRing::set_sink(const std::string& path) {
  std::scoped_lock lock(mutex_);
  if (sink_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(sink_));
    sink_ = nullptr;
  }
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  require(f != nullptr, "obs: cannot open trace sink '" + path + "'");
  sink_ = f;
}

void TraceRing::set_enabled(bool enabled) {
  std::scoped_lock lock(mutex_);
  enabled_ = enabled;
}

bool TraceRing::enabled() const {
  std::scoped_lock lock(mutex_);
  return enabled_;
}

void TraceRing::emit(std::string_view name, std::string_view detail,
                     std::uint64_t dur_ns) {
  std::scoped_lock lock(mutex_);
  if (!enabled_ || capacity_ == 0) return;
  TraceSpan& slot = ring_[head_];
  if (size_ == capacity_) ++dropped_;
  slot.ts_ns = now_ns();
  slot.dur_ns = dur_ns;
  slot.name.assign(name);
  slot.detail.assign(detail);
  if (sink_ != nullptr) {
    std::string line = "{\"ts_ns\":" + std::to_string(slot.ts_ns);
    if (dur_ns != 0) line += ",\"dur_ns\":" + std::to_string(dur_ns);
    line += ",\"name\":\"" + json_escape(slot.name) + "\"";
    if (!slot.detail.empty()) {
      line += ",\"detail\":\"" + json_escape(slot.detail) + "\"";
    }
    line += "}\n";
    std::fputs(line.c_str(), static_cast<std::FILE*>(sink_));
    std::fflush(static_cast<std::FILE*>(sink_));
  }
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<TraceSpan> TraceRing::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<TraceSpan> out;
  out.reserve(size_);
  const std::size_t first = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

std::uint64_t TraceRing::dropped() const {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

TraceRing& trace_ring() {
  static TraceRing instance;
  return instance;
}

void trace(std::string_view name, std::string_view detail, std::uint64_t dur_ns) {
  trace_ring().emit(name, detail, dur_ns);
}

}  // namespace dls::obs
