#include "lp/batch.hpp"

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace dls::lp {

BatchSolver::BatchSolver(SimplexOptions options, int jobs)
    : options_(options), jobs_(jobs), store_(std::make_shared<ColumnCacheStore>()) {
  require(jobs >= 0, "BatchSolver: negative job count");
}

BatchSolver::~BatchSolver() = default;

SolveArena& BatchSolver::local_arena() {
  const std::thread::id id = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<SolveArena>& slot = arenas_[id];
  if (!slot) slot = std::make_unique<SolveArena>(store_);
  return *slot;
}

Solution BatchSolver::solve(const Model& model) {
  solves_.fetch_add(1, std::memory_order_relaxed);
  return SimplexSolver(options_).solve(model, local_arena());
}

Solution BatchSolver::solve(const Model& model, WarmState* state) {
  solves_.fetch_add(1, std::memory_order_relaxed);
  return SimplexSolver(options_).solve(model, state, local_arena());
}

std::vector<Solution> BatchSolver::solve_all(
    std::span<const Model* const> models) {
  std::vector<Solution> out(models.size());
  if (models.size() <= 1 || jobs_ == 1) {
    for (std::size_t i = 0; i < models.size(); ++i) out[i] = solve(*models[i]);
    return out;
  }
  parallel_for(ensure_pool(), 0, models.size(),
               [&](std::size_t i) { out[i] = solve(*models[i]); }, 1);
  return out;
}

std::vector<Solution> BatchSolver::solve_all(std::span<const Model> models) {
  std::vector<const Model*> ptrs(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) ptrs[i] = &models[i];
  return solve_all(std::span<const Model* const>(ptrs));
}

ThreadPool& BatchSolver::ensure_pool() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(jobs_));
  return *pool_;
}

BatchSolver::Stats BatchSolver::stats() const {
  Stats s;
  s.solves = solves_.load(std::memory_order_relaxed);
  s.cache_hits = store_->hits();
  s.cache_misses = store_->misses();
  std::lock_guard<std::mutex> lock(mutex_);
  s.arenas = arenas_.size();
  return s;
}

}  // namespace dls::lp
