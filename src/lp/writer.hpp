// Debug serialization of a Model in CPLEX LP text format.
//
// Lets a developer dump any steady-state program and cross-check it with
// an external solver; also used by tests as a cheap structural snapshot.
#pragma once

#include <iosfwd>
#include <string>

#include "lp/model.hpp"

namespace dls::lp {

/// Writes the model in CPLEX LP format (objective, rows, bounds, generals).
void write_lp_format(const Model& model, std::ostream& os);

/// Convenience wrapper returning the text.
[[nodiscard]] std::string to_lp_format(const Model& model);

}  // namespace dls::lp
