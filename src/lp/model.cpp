#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/error.hpp"

namespace dls::lp {

int Model::add_variable(double lb, double ub, double obj, std::string name) {
  require(!(lb > ub), "Model::add_variable: lb > ub");
  require(!std::isnan(lb) && !std::isnan(ub) && std::isfinite(obj),
          "Model::add_variable: invalid bound or objective");
  lb_.push_back(lb);
  ub_.push_back(ub);
  obj_.push_back(obj);
  integer_.push_back(false);
  var_name_.push_back(std::move(name));
  fingerprint_.v.store(0, std::memory_order_relaxed);
  return num_variables() - 1;
}

int Model::add_constraint(std::vector<Term> terms, Relation rel, double rhs,
                          std::string name) {
  require(std::isfinite(rhs), "Model::add_constraint: non-finite rhs");
  for (const Term& t : terms) {
    check_var(t.var);
    require(std::isfinite(t.coef), "Model::add_constraint: non-finite coefficient");
  }
  // Merge duplicate variable mentions and drop exact zeros.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coef == 0.0; });

  rows_.push_back(std::move(merged));
  rel_.push_back(rel);
  rhs_.push_back(rhs);
  row_name_.push_back(std::move(name));
  fingerprint_.v.store(0, std::memory_order_relaxed);
  return num_constraints() - 1;
}

void Model::set_row(int c, std::vector<Term> terms) {
  require(c >= 0 && c < num_constraints(), "Model::set_row: row out of range");
  for (const Term& t : terms) {
    check_var(t.var);
    require(std::isfinite(t.coef), "Model::set_row: non-finite coefficient");
  }
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coef == 0.0; });
  rows_[c] = std::move(merged);
  fingerprint_.v.store(0, std::memory_order_relaxed);
}

void Model::set_rhs(int c, double rhs) {
  require(c >= 0 && c < num_constraints(), "Model::set_rhs: row out of range");
  require(std::isfinite(rhs), "Model::set_rhs: non-finite rhs");
  rhs_[c] = rhs;
}

void Model::set_objective_coef(int var, double coef) {
  check_var(var);
  require(std::isfinite(coef), "Model::set_objective_coef: non-finite coefficient");
  obj_[var] = coef;
}

void Model::set_bounds(int var, double lb, double ub) {
  check_var(var);
  require(!(lb > ub), "Model::set_bounds: lb > ub");
  lb_[var] = lb;
  ub_[var] = ub;
}

void Model::set_integer(int var, bool integer) {
  check_var(var);
  integer_[var] = integer;
}

double Model::objective_value(std::span<const double> x) const {
  require(static_cast<int>(x.size()) == num_variables(),
          "Model::objective_value: wrong assignment size");
  double v = obj_constant_;
  for (int j = 0; j < num_variables(); ++j) v += obj_[j] * x[j];
  return v;
}

bool Model::is_feasible(std::span<const double> x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  for (int j = 0; j < num_variables(); ++j) {
    if (x[j] < lb_[j] - tol || x[j] > ub_[j] + tol) return false;
  }
  for (int c = 0; c < num_constraints(); ++c) {
    double lhs = 0.0;
    for (const Term& t : rows_[c]) lhs += t.coef * x[t.var];
    switch (rel_[c]) {
      case Relation::LessEqual:
        if (lhs > rhs_[c] + tol) return false;
        break;
      case Relation::GreaterEqual:
        if (lhs < rhs_[c] - tol) return false;
        break;
      case Relation::Equal:
        if (std::fabs(lhs - rhs_[c]) > tol) return false;
        break;
    }
  }
  return true;
}

bool Model::is_integer_feasible(std::span<const double> x, double tol) const {
  for (int j = 0; j < num_variables(); ++j) {
    if (!integer_[j]) continue;
    if (std::fabs(x[j] - std::round(x[j])) > tol) return false;
  }
  return true;
}

std::uint64_t Model::structure_fingerprint() const {
  std::uint64_t h = fingerprint_.v.load(std::memory_order_relaxed);
  if (h != 0) return h;
  h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(num_variables()));
  mix(static_cast<std::uint64_t>(num_constraints()));
  for (int c = 0; c < num_constraints(); ++c) {
    mix(static_cast<std::uint64_t>(rel_[c]) + 0x517c);
    for (const Term& t : rows_[c]) {
      mix(static_cast<std::uint64_t>(t.var));
      std::uint64_t bits = 0;
      std::memcpy(&bits, &t.coef, sizeof(bits));
      mix(bits);
    }
  }
  // h == 0 is unreachable for FNV-1a over a nonempty input in practice;
  // if it ever happened the only cost is recomputing on each call.
  fingerprint_.v.store(h, std::memory_order_relaxed);
  return h;
}

void Model::check_var(int var) const {
  require(var >= 0 && var < num_variables(), "Model: variable index out of range");
}

}  // namespace dls::lp
