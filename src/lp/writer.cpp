#include "lp/writer.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "lp/types.hpp"

namespace dls::lp {

namespace {

std::string var_name(const Model& m, int j) {
  const std::string& given = m.variable_name(j);
  return given.empty() ? "x" + std::to_string(j) : given;
}

void write_terms(const Model& m, std::span<const Term> terms, std::ostream& os) {
  bool first = true;
  for (const Term& t : terms) {
    const double c = t.coef;
    if (first) {
      if (c < 0) os << "- ";
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    const double mag = std::fabs(c);
    if (mag != 1.0) os << mag << ' ';
    os << var_name(m, t.var);
  }
  if (first) os << "0";
}

}  // namespace

void write_lp_format(const Model& model, std::ostream& os) {
  os << (model.sense() == Sense::Maximize ? "Maximize" : "Minimize") << "\n obj: ";
  std::vector<Term> obj;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.objective_coef(j) != 0.0) obj.push_back({j, model.objective_coef(j)});
  }
  write_terms(model, obj, os);
  os << "\nSubject To\n";
  for (int c = 0; c < model.num_constraints(); ++c) {
    const std::string& given = model.constraint_name(c);
    os << ' ' << (given.empty() ? "c" + std::to_string(c) : given) << ": ";
    write_terms(model, model.row(c), os);
    os << ' ' << to_string(model.relation(c)) << ' ' << model.rhs(c) << '\n';
  }
  os << "Bounds\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    if (lb == 0.0 && ub == kInf) continue;  // LP-format default
    os << ' ';
    if (lb == ub) {
      os << var_name(model, j) << " = " << lb << '\n';
      continue;
    }
    if (std::isfinite(lb)) {
      os << lb << " <= ";
    } else {
      os << "-inf <= ";
    }
    os << var_name(model, j);
    if (std::isfinite(ub)) os << " <= " << ub;
    os << '\n';
  }
  bool any_int = false;
  for (int j = 0; j < model.num_variables(); ++j) any_int |= model.is_integer(j);
  if (any_int) {
    os << "Generals\n";
    for (int j = 0; j < model.num_variables(); ++j)
      if (model.is_integer(j)) os << ' ' << var_name(model, j) << '\n';
  }
  os << "End\n";
}

std::string to_lp_format(const Model& model) {
  std::ostringstream oss;
  write_lp_format(model, oss);
  return oss.str();
}

}  // namespace dls::lp
