// Linear/mixed-integer program builder.
//
// A Model owns variables (with bounds, objective coefficients, optional
// integrality) and sparse constraint rows. It is solver-agnostic: the
// simplex solver consumes it read-only, and the MILP branch-and-bound
// clones bound sets per node without copying rows.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lp/types.hpp"

namespace dls::lp {

class Model {
public:
  /// Adds a variable with bounds [lb, ub] (use -kInf/kInf for free sides)
  /// and objective coefficient `obj`. Returns its index.
  int add_variable(double lb, double ub, double obj, std::string name = "");

  /// Adds a constraint Σ terms {<=,=,>=} rhs. Duplicate variable mentions
  /// within one row are merged. Returns the row index.
  int add_constraint(std::vector<Term> terms, Relation rel, double rhs,
                     std::string name = "");

  void set_sense(Sense sense) { sense_ = sense; }
  /// Replaces one row's terms in place (duplicates merged, zeros dropped
  /// like add_constraint); relation and rhs keep their values. Currently
  /// exercised by the warm-repair tests (a capacity event re-pricing one
  /// row); the dynamics rescheduler itself still rebuilds its reduced
  /// model per platform event — patching it row-wise through this is the
  /// designed next optimization.
  void set_row(int c, std::vector<Term> terms);
  /// Replaces one row's right-hand side (a pure capacity rescale).
  void set_rhs(int c, double rhs);
  void set_objective_coef(int var, double coef);
  /// Constant added to the objective value (does not affect the argmax).
  void set_objective_constant(double c) { obj_constant_ = c; }
  void set_bounds(int var, double lb, double ub);
  /// Marks a variable as integer (used by the MILP solver; the LP solver
  /// ignores integrality, which is exactly the rational relaxation).
  void set_integer(int var, bool integer = true);

  [[nodiscard]] int num_variables() const { return static_cast<int>(lb_.size()); }
  [[nodiscard]] int num_constraints() const { return static_cast<int>(rhs_.size()); }
  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] double objective_constant() const { return obj_constant_; }

  [[nodiscard]] double lower_bound(int var) const { return lb_[var]; }
  [[nodiscard]] double upper_bound(int var) const { return ub_[var]; }
  [[nodiscard]] double objective_coef(int var) const { return obj_[var]; }
  [[nodiscard]] bool is_integer(int var) const { return integer_[var]; }
  [[nodiscard]] const std::string& variable_name(int var) const { return var_name_[var]; }

  [[nodiscard]] std::span<const Term> row(int c) const { return rows_[c]; }
  [[nodiscard]] Relation relation(int c) const { return rel_[c]; }
  [[nodiscard]] double rhs(int c) const { return rhs_[c]; }
  [[nodiscard]] const std::string& constraint_name(int c) const { return row_name_[c]; }

  /// Objective value of a full assignment (includes the constant).
  [[nodiscard]] double objective_value(std::span<const double> x) const;

  /// True iff `x` satisfies all bounds and rows within tolerance `tol`
  /// (integrality is not checked; see is_integer_feasible).
  [[nodiscard]] bool is_feasible(std::span<const double> x, double tol) const;

  /// True iff every integer-marked variable of `x` is within `tol` of an integer.
  [[nodiscard]] bool is_integer_feasible(std::span<const double> x, double tol) const;

  /// FNV-1a hash of the constraint *structure* (dimensions, relations,
  /// term indices and coefficient bits). Costs, bounds, rhs and
  /// integrality are deliberately excluded, so re-priced variants of one
  /// matrix share a fingerprint (this is what keys the solver's column
  /// cache and warm-start capsules). Computed lazily and cached; the
  /// structural mutators (add_variable, add_constraint, set_row)
  /// invalidate the cache, the non-structural ones keep it.
  [[nodiscard]] std::uint64_t structure_fingerprint() const;

private:
  void check_var(int var) const;

  /// Copyable lazily-filled hash slot; 0 means "not computed yet".
  /// Atomic so concurrent read-only solves of one model may race to fill
  /// it (they all store the same value).
  struct CachedHash {
    std::atomic<std::uint64_t> v{0};
    CachedHash() = default;
    CachedHash(const CachedHash& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    CachedHash& operator=(const CachedHash& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  Sense sense_ = Sense::Minimize;
  double obj_constant_ = 0.0;
  std::vector<double> lb_, ub_, obj_;
  std::vector<bool> integer_;
  std::vector<std::string> var_name_;
  std::vector<std::vector<Term>> rows_;
  std::vector<Relation> rel_;
  std::vector<double> rhs_;
  std::vector<std::string> row_name_;
  mutable CachedHash fingerprint_;
};

}  // namespace dls::lp
