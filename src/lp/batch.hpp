// Batch LP solving with shared symbolic analysis.
//
// A campaign cell (and every replication sweep built on exp::run_cases)
// solves thousands of small independent LPs whose constraint matrices
// repeat: one reduced steady-state model shape per platform, re-priced
// per payoff draw. BatchSolver amortizes everything those solves can
// share — one ColumnCacheStore holds each distinct matrix's column-wise
// structure (keyed by the constraint fingerprint, built once, read by
// every thread), and each worker thread owns a SolveArena so repeated
// solves allocate nothing once capacities warm up.
//
// Determinism contract: a solve's result depends only on its model (and
// optional warm state) — never on the thread that ran it, the arena's
// history, or the job count — so solve_all() is bit-identical to a
// sequential loop for any `jobs`.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lp/simplex.hpp"

namespace dls {
class ThreadPool;
}

namespace dls::lp {

class BatchSolver {
 public:
  /// `jobs` caps solve_all()'s parallelism: 0 = all hardware threads,
  /// 1 = solve inline on the calling thread (no pool is ever created).
  explicit BatchSolver(SimplexOptions options = {}, int jobs = 0);
  ~BatchSolver();

  BatchSolver(const BatchSolver&) = delete;
  BatchSolver& operator=(const BatchSolver&) = delete;

  /// One solve through the calling thread's arena (usable from any
  /// thread, including pool workers of an outer parallel_for — the
  /// campaign runner's offline kernel calls this from its case bodies).
  [[nodiscard]] Solution solve(const Model& model);
  [[nodiscard]] Solution solve(const Model& model, WarmState* state);

  /// Solves every model across the internal pool (chunk 1: LP costs are
  /// skewed). Results are positionally stable and bit-identical to the
  /// sequential loop regardless of `jobs`.
  [[nodiscard]] std::vector<Solution> solve_all(
      std::span<const Model* const> models);
  [[nodiscard]] std::vector<Solution> solve_all(std::span<const Model> models);

  /// The calling thread's arena, created on first use and bound to the
  /// shared column-cache store. For callers that drive SimplexSolver
  /// directly but still want the shared analysis and buffer reuse.
  [[nodiscard]] SolveArena& local_arena();

  [[nodiscard]] const SimplexOptions& options() const { return options_; }
  [[nodiscard]] const std::shared_ptr<ColumnCacheStore>& store() const {
    return store_;
  }

  struct Stats {
    std::size_t solves = 0;        ///< solves issued through this batch
    std::size_t cache_hits = 0;    ///< store lookups that found a structure
    std::size_t cache_misses = 0;  ///< store lookups that had to build one
    std::size_t arenas = 0;        ///< distinct worker arenas materialized
  };
  [[nodiscard]] Stats stats() const;

 private:
  ThreadPool& ensure_pool();

  SimplexOptions options_;
  int jobs_ = 0;
  std::shared_ptr<ColumnCacheStore> store_;
  mutable std::mutex mutex_;  // guards arenas_ and pool_ creation
  std::unordered_map<std::thread::id, std::unique_ptr<SolveArena>> arenas_;
  std::unique_ptr<ThreadPool> pool_;  // lazy: first parallel solve_all
  std::atomic<std::size_t> solves_{0};
};

}  // namespace dls::lp
