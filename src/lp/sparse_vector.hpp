// Sparse-vector plumbing for the hypersparse simplex solves.
//
// SparseVector pairs a dense-addressable value array with an explicit
// nonzero index list, the shape every consumer of a basis solve wants:
// random access for scatter/gather arithmetic, plus the support so
// loops over the result cost O(nnz) instead of O(m). The invariant is
// strict — every position off `pattern` holds an exact (+)0.0 — which
// is what lets the next solve rebuild a right-hand side by clearing
// only the previous support.
//
// SolveScratch is the per-arena workspace the reach-set solves in
// BasisLu need: stamped visited marks (bumping the stamp invalidates
// every mark in O(1)), a DFS stack, two reach lists, and an all-zero
// numeric scratch row. It carries no per-basis state, so one instance
// serves any number of BasisLu objects sequentially; it lives in the
// SolveArena (not in BasisLu) so warm-start capsules stay small and
// BatchSolver's solves allocate nothing once capacities warm up.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace dls::lp {

/// Dense-addressable vector with an explicit support list.
/// Invariant: values[i] == 0.0 (positive zero) for every i not in
/// `pattern`; `pattern` holds distinct indices, sorted ascending
/// whenever a BasisLu solve returns.
struct SparseVector {
  std::vector<double> values;
  std::vector<int> pattern;

  /// Resets to an all-zero vector of dimension m (reallocates only on
  /// growth; the usual arena path reuses capacity).
  void reset(int m) {
    values.assign(static_cast<std::size_t>(m), 0.0);
    pattern.clear();
  }

  /// Clears the support in O(nnz), restoring the all-zero invariant.
  void clear_support() {
    for (const int i : pattern) values[static_cast<std::size_t>(i)] = 0.0;
    pattern.clear();
  }
};

/// Workspace for the symbolic (reach-set) phase of hypersparse basis
/// solves. All buffers are sized to the largest basis seen; `work` is
/// kept all-zero between calls (each solve re-zeroes exactly the
/// positions it touched).
struct SolveScratch {
  std::vector<int> mark;       ///< stamped visited marks (steps or positions)
  int stamp = 0;               ///< current mark generation
  std::vector<int> stack;      ///< DFS stack of pivot steps
  std::vector<int> reach_a;    ///< reach of the first triangular pass
  std::vector<int> reach_b;    ///< reach of the second triangular pass
  std::vector<double> work;    ///< numeric scratch, all-zero between solves

  /// Grows the workspace to dimension m. Shrinking is never needed:
  /// oversized marks/scratch are correct for any smaller basis.
  void ensure(int m) {
    if (static_cast<int>(work.size()) < m) {
      mark.assign(static_cast<std::size_t>(m), 0);
      stamp = 0;
      work.assign(static_cast<std::size_t>(m), 0.0);
    }
  }

  /// Starts a fresh mark generation; wraps by re-zeroing the marks.
  int bump() {
    if (stamp == std::numeric_limits<int>::max()) {
      std::fill(mark.begin(), mark.end(), 0);
      stamp = 0;
    }
    return ++stamp;
  }
};

}  // namespace dls::lp
