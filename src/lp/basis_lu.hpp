// Sparse LU factorization of a simplex basis with product-form updates.
//
// The basis matrices this repo produces are extremely sparse: a slack
// column is a singleton and an alpha column touches two gateway rows,
// one compute row and the links of one route. BasisLu factorizes such a
// matrix as P B Q = L U by right-looking Gaussian elimination with
// Markowitz pivoting (minimize (r_i - 1)(c_j - 1) fill estimate among
// entries passing a relative stability threshold within their column),
// then answers the two solves the revised simplex needs:
//
//   ftran:  B x = b   (entering-column transform, basic-value recompute)
//   btran:  B' y = c  (pricing multipliers, dual extraction)
//
// Between refactorizations, pivots are absorbed by an eta file: when
// basis slot r is replaced by a column whose FTRAN image is w, the new
// basis is B E with E = I except column r = w, so one sparse eta vector
// per pivot extends both solves in O(nnz(w)). The owning solver bounds
// the eta stack with its refactorization policy (comparing eta_nnz()
// against base_nnz(), plus a pivot-count backstop).
//
// Index spaces: ftran maps a right-hand side over *rows* to a solution
// over *basis slots* (columns); btran maps a cost vector over basis
// slots to multipliers over rows. Eta vectors live in slot space.
// Hypersparse solves: when the right-hand side is sparse (an entering
// column, a unit vector, an update spike), the dense O(m) sweeps above
// are replaced by a Gilbert–Peierls-style two-phase solve — a symbolic
// flood fill over the factor dependency graphs computes the reach set
// of pivot steps the solution can touch, then a numeric scatter/gather
// pass runs only those steps, in the same order and with the same
// skip-zero guards as the dense loops, so every nonzero of the result
// is bitwise identical to the dense pass. A symbolic pass whose reach
// crosses `crossover * m` abandons the sparse route and finishes with
// the dense sweeps (the predicted bookkeeping would cost more than the
// straight pass it replaces). The graphs (pivot permutation inverses
// plus L/U transposes) are built once per factorize() in O(nnz).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lp/sparse_vector.hpp"

namespace dls::lp {

class BasisLu {
public:
  /// Outcome of one hypersparse solve.
  struct SolveStats {
    int reach = 0;          ///< steps touched by the widest triangular pass
    bool fallback = false;  ///< reach crossed the density cutoff; dense pass ran
  };

  /// Factorizes the m x m basis given in compressed-sparse-column form
  /// (column j's entries are rows[col_ptr[j]..col_ptr[j+1])). Discards
  /// any previous factorization and eta file. Returns false — leaving
  /// the object invalid — when the matrix is numerically singular
  /// (no remaining pivot reaches `abs_pivot_tol`).
  bool factorize(int m, std::span<const int> col_ptr, std::span<const int> rows,
                 std::span<const double> values, double abs_pivot_tol = 1e-12);

  /// True once factorize() has succeeded (updates keep it true).
  [[nodiscard]] bool valid() const { return m_ > 0; }
  /// Dimension of the factorized basis; 0 when invalid.
  [[nodiscard]] int dimension() const { return m_; }

  /// Solves B x = b in place: `x` holds b over rows on entry and the
  /// solution over basis slots on return.
  void ftran(std::vector<double>& x) const;

  /// Solves B' y = c in place: `y` holds c over basis slots on entry and
  /// the solution over rows on return.
  void btran(std::vector<double>& y) const;

  /// Hypersparse FTRAN. `x` must satisfy the SparseVector invariant on
  /// entry (rhs values on its pattern, exact zeros elsewhere); on return
  /// it holds the solution with its pattern rewritten to the exact
  /// nonzero support, sorted ascending (entries that cancelled exactly
  /// are reset to +0.0). Falls back to the dense passes — and an O(m)
  /// pattern rescan — when the symbolic reach exceeds `crossover * m`.
  /// Nonzero values are bitwise identical to ftran() either way.
  SolveStats ftran_sparse(SparseVector& x, SolveScratch& ws,
                          double crossover) const;

  /// Hypersparse BTRAN; same contract as ftran_sparse.
  SolveStats btran_sparse(SparseVector& y, SolveScratch& ws,
                          double crossover) const;

  /// Hypersparse btran of the slot-space unit vector e_slot: row `slot`
  /// of B^{-1} with its nonzero pattern collected by the solve itself
  /// (no post-scan). `y` is cleared via its own pattern, so callers just
  /// keep handing the same SparseVector back.
  SolveStats btran_unit_sparse(int slot, SparseVector& y, SolveScratch& ws,
                               double crossover) const;

  /// Product-form update after a simplex pivot: slot `r` of the basis is
  /// replaced by a column whose FTRAN image is `w` (dense, slot space).
  /// Returns false without changing anything when |w[r]| <= pivot_tol —
  /// the caller should refactorize from the updated basis instead.
  bool update(int r, const std::vector<double>& w, double pivot_tol);

  /// Pattern-driven form of update(): reads only `w.pattern` (ascending,
  /// exact nonzeros — what ftran_sparse returns), appending the same eta
  /// vector the dense scan would.
  bool update(int r, const SparseVector& w, double pivot_tol);

  /// btran of a slot-space unit vector e_slot: `y` is resized and
  /// overwritten with row `slot` of B^{-1} (over rows). When `nonzeros`
  /// is non-null it receives the indices of y's nonzero entries — the
  /// support the simplex pricing update scatters its pivot row from.
  /// (Legacy dense pass; the pivot loop uses btran_unit_sparse.)
  void btran_unit(int slot, std::vector<double>& y,
                  std::vector<int>* nonzeros = nullptr) const;

  /// Number of eta vectors appended since the last factorize().
  [[nodiscard]] int eta_count() const { return static_cast<int>(eta_pivot_pos_.size()); }
  /// Nonzeros of the base factorization alone (L + U + pivots).
  [[nodiscard]] std::size_t base_nnz() const {
    return l_row_.size() + u_col_.size() + pivot_row_.size();
  }
  /// Nonzeros accumulated in the eta file since the last factorize();
  /// what the owning solver's fill-based refactorization trigger and
  /// capsule compression compare against base_nnz().
  [[nodiscard]] std::size_t eta_nnz() const {
    return eta_pos_.size() + eta_pivot_pos_.size();
  }
  /// Nonzeros held: L + U + pivots + eta file.
  [[nodiscard]] std::size_t factor_nnz() const;
  /// Heap bytes of the factorization (what a warm-start capsule carries;
  /// scales with nnz, not with dimension squared).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Returns to the invalid (never-factorized) state and frees storage.
  void clear();

private:
  // Dense pass stages (bit-exact splits of ftran()/btran(); the
  // hypersparse solves re-enter them mid-solve on a crossover fallback).
  void ftran_l_dense(std::vector<double>& x) const;
  void ftran_u_dense(std::vector<double>& x) const;
  void ftran_eta_dense(std::vector<double>& x) const;
  void btran_eta_dense(std::vector<double>& y) const;
  void btran_ul_dense(std::vector<double>& y) const;

  /// O(m) fallback pattern collection: exact nonzeros ascending, with
  /// negative zeros (structural zeros of the dense passes) normalized
  /// so the SparseVector invariant holds.
  void rebuild_pattern(std::vector<double>& v, std::vector<int>& pattern) const;

  /// Builds the reach-set graphs (permutation inverses + L/U transposes)
  /// from the freshly factorized L/U. O(nnz).
  void build_solve_graphs();

  int m_ = 0;

  // Pivot sequence t = 0..m-1: row, basis slot (column), pivot value.
  std::vector<int> pivot_row_;
  std::vector<int> pivot_col_;
  std::vector<double> pivot_val_;

  // L: per pivot, the elimination multipliers (row index, value), unit
  // diagonal implicit. Applied in pivot order during ftran.
  std::vector<int> l_start_;  // size m+1
  std::vector<int> l_row_;
  std::vector<double> l_val_;

  // U: per pivot, the eliminated row's surviving entries keyed by the
  // basis slot that will be pivoted later. Back-substituted in reverse
  // pivot order.
  std::vector<int> u_start_;  // size m+1
  std::vector<int> u_col_;
  std::vector<double> u_val_;

  // Reach-set graphs, rebuilt by factorize(). row_to_step_/col_to_step_
  // invert the pivot permutations; ut_*/lt_* are the U rows transposed
  // by basis slot and the L columns transposed by row — the reverse
  // dependency adjacencies the backward symbolic passes walk.
  std::vector<int> row_to_step_;  // pivot row -> elimination step
  std::vector<int> col_to_step_;  // basis slot -> elimination step
  std::vector<int> ut_start_;     // size m+1, indexed by slot
  std::vector<int> ut_step_;
  std::vector<int> lt_start_;     // size m+1, indexed by row
  std::vector<int> lt_step_;

  // Eta file: per update, the pivot slot, w[r], and the other nonzeros.
  std::vector<int> eta_start_;  // size eta_count+1
  std::vector<int> eta_pos_;
  std::vector<double> eta_val_;
  std::vector<int> eta_pivot_pos_;
  std::vector<double> eta_pivot_val_;

  mutable std::vector<double> work_;  ///< solve scratch (single-threaded use)
};

}  // namespace dls::lp
