// Sparse LU factorization of a simplex basis with product-form updates.
//
// The basis matrices this repo produces are extremely sparse: a slack
// column is a singleton and an alpha column touches two gateway rows,
// one compute row and the links of one route. BasisLu factorizes such a
// matrix as P B Q = L U by right-looking Gaussian elimination with
// Markowitz pivoting (minimize (r_i - 1)(c_j - 1) fill estimate among
// entries passing a relative stability threshold within their column),
// then answers the two solves the revised simplex needs:
//
//   ftran:  B x = b   (entering-column transform, basic-value recompute)
//   btran:  B' y = c  (pricing multipliers, dual extraction)
//
// Between refactorizations, pivots are absorbed by an eta file: when
// basis slot r is replaced by a column whose FTRAN image is w, the new
// basis is B E with E = I except column r = w, so one sparse eta vector
// per pivot extends both solves in O(nnz(w)). The owning solver bounds
// the eta stack with its refactorization policy (comparing eta_nnz()
// against base_nnz(), plus a pivot-count backstop).
//
// Index spaces: ftran maps a right-hand side over *rows* to a solution
// over *basis slots* (columns); btran maps a cost vector over basis
// slots to multipliers over rows. Eta vectors live in slot space.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dls::lp {

class BasisLu {
public:
  /// Factorizes the m x m basis given in compressed-sparse-column form
  /// (column j's entries are rows[col_ptr[j]..col_ptr[j+1])). Discards
  /// any previous factorization and eta file. Returns false — leaving
  /// the object invalid — when the matrix is numerically singular
  /// (no remaining pivot reaches `abs_pivot_tol`).
  bool factorize(int m, std::span<const int> col_ptr, std::span<const int> rows,
                 std::span<const double> values, double abs_pivot_tol = 1e-12);

  /// True once factorize() has succeeded (updates keep it true).
  [[nodiscard]] bool valid() const { return m_ > 0; }
  /// Dimension of the factorized basis; 0 when invalid.
  [[nodiscard]] int dimension() const { return m_; }

  /// Solves B x = b in place: `x` holds b over rows on entry and the
  /// solution over basis slots on return.
  void ftran(std::vector<double>& x) const;

  /// Solves B' y = c in place: `y` holds c over basis slots on entry and
  /// the solution over rows on return.
  void btran(std::vector<double>& y) const;

  /// Product-form update after a simplex pivot: slot `r` of the basis is
  /// replaced by a column whose FTRAN image is `w` (dense, slot space).
  /// Returns false without changing anything when |w[r]| <= pivot_tol —
  /// the caller should refactorize from the updated basis instead.
  bool update(int r, const std::vector<double>& w, double pivot_tol);

  /// btran of a slot-space unit vector e_slot: `y` is resized and
  /// overwritten with row `slot` of B^{-1} (over rows). When `nonzeros`
  /// is non-null it receives the indices of y's nonzero entries — the
  /// support the simplex pricing update scatters its pivot row from.
  void btran_unit(int slot, std::vector<double>& y,
                  std::vector<int>* nonzeros = nullptr) const;

  /// Number of eta vectors appended since the last factorize().
  [[nodiscard]] int eta_count() const { return static_cast<int>(eta_pivot_pos_.size()); }
  /// Nonzeros of the base factorization alone (L + U + pivots).
  [[nodiscard]] std::size_t base_nnz() const {
    return l_row_.size() + u_col_.size() + pivot_row_.size();
  }
  /// Nonzeros accumulated in the eta file since the last factorize();
  /// what the owning solver's fill-based refactorization trigger and
  /// capsule compression compare against base_nnz().
  [[nodiscard]] std::size_t eta_nnz() const {
    return eta_pos_.size() + eta_pivot_pos_.size();
  }
  /// Nonzeros held: L + U + pivots + eta file.
  [[nodiscard]] std::size_t factor_nnz() const;
  /// Heap bytes of the factorization (what a warm-start capsule carries;
  /// scales with nnz, not with dimension squared).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Returns to the invalid (never-factorized) state and frees storage.
  void clear();

private:
  int m_ = 0;

  // Pivot sequence t = 0..m-1: row, basis slot (column), pivot value.
  std::vector<int> pivot_row_;
  std::vector<int> pivot_col_;
  std::vector<double> pivot_val_;

  // L: per pivot, the elimination multipliers (row index, value), unit
  // diagonal implicit. Applied in pivot order during ftran.
  std::vector<int> l_start_;  // size m+1
  std::vector<int> l_row_;
  std::vector<double> l_val_;

  // U: per pivot, the eliminated row's surviving entries keyed by the
  // basis slot that will be pivoted later. Back-substituted in reverse
  // pivot order.
  std::vector<int> u_start_;  // size m+1
  std::vector<int> u_col_;
  std::vector<double> u_val_;

  // Eta file: per update, the pivot slot, w[r], and the other nonzeros.
  std::vector<int> eta_start_;  // size eta_count+1
  std::vector<int> eta_pos_;
  std::vector<double> eta_val_;
  std::vector<int> eta_pivot_pos_;
  std::vector<double> eta_pivot_val_;

  mutable std::vector<double> work_;  ///< solve scratch (single-threaded use)
};

}  // namespace dls::lp
