// Branch-and-bound for mixed-integer linear programs.
//
// The paper's program (7) is mixed: rational alpha, integer beta. Solving
// it exactly is NP-hard (paper §4) and the authors never run it at scale;
// we provide an exact solver anyway for small instances, used to (a)
// verify the NP-completeness reduction (MILP optimum == max independent
// set) and (b) measure how far each heuristic lands from the true mixed
// optimum on toy platforms.
//
// Depth-first search, most-fractional branching, LP relaxation bounds via
// SimplexSolver, best-known incumbent pruning.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace dls::lp {

struct MilpOptions {
  SimplexOptions lp;            ///< options for the relaxation solves
  double int_tol = 1e-6;        ///< how close to an integer counts as integral
  std::int64_t max_nodes = 200000;  ///< search-tree size cap
  double gap_tol = 1e-9;        ///< prune nodes within this of the incumbent
};

struct MilpResult {
  SolveStatus status = SolveStatus::Infeasible;
  double objective = 0.0;       ///< incumbent objective (model sense)
  std::vector<double> x;        ///< incumbent assignment (empty if none)
  std::int64_t nodes = 0;       ///< LP relaxations solved
};

class BranchAndBound {
public:
  explicit BranchAndBound(MilpOptions options = {}) : options_(options) {}

  /// Solves the model exactly over its integer-marked variables.
  /// Status is Optimal (tree exhausted), NodeLimit (incumbent may be
  /// suboptimal), Infeasible, or Unbounded (relaxation unbounded at root).
  [[nodiscard]] MilpResult solve(const Model& model) const;

private:
  MilpOptions options_;
};

}  // namespace dls::lp
