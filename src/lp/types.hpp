// Common vocabulary types for the linear-programming substrate.
#pragma once

#include <limits>
#include <string>

namespace dls::lp {

/// Optimization direction of a Model's objective.
enum class Sense { Minimize, Maximize };

/// Row relation of a linear constraint.
enum class Relation { LessEqual, Equal, GreaterEqual };

/// Outcome of a solve.
enum class SolveStatus {
  Optimal,         ///< proven optimal within tolerances
  Infeasible,      ///< no point satisfies the constraints
  Unbounded,       ///< objective can improve without limit
  IterationLimit,  ///< stopped at the iteration cap; solution is best basis so far
  NodeLimit,       ///< (MILP) stopped at the node cap; incumbent may be suboptimal
  NumericalError,  ///< basis became numerically unusable
};

/// Positive infinity used for "no bound".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One nonzero of a constraint row: coefficient `coef` on variable `var`.
struct Term {
  int var = 0;
  double coef = 0.0;
};

[[nodiscard]] std::string to_string(SolveStatus s);
[[nodiscard]] std::string to_string(Relation r);
[[nodiscard]] std::string to_string(Sense s);

}  // namespace dls::lp
