#include "lp/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace dls::lp {

namespace {

/// Relative stability threshold for Markowitz pivot candidates: an entry
/// competes only when its magnitude reaches this fraction of the largest
/// magnitude in its column (classical threshold pivoting, u = 0.1 keeps
/// growth bounded without forcing the dense partial-pivoting order).
constexpr double kThreshold = 0.1;

/// How many minimum-count columns to examine per pivot choice. The
/// Markowitz cost is monotone in the column count, so candidates beyond
/// the first few smallest columns cannot win by much; bounding the scan
/// keeps pivot selection O(1) amortized per elimination step.
constexpr int kCandidateCols = 8;

}  // namespace

void BasisLu::clear() {
  m_ = 0;
  pivot_row_.clear();
  pivot_col_.clear();
  pivot_val_.clear();
  l_start_.clear();
  l_row_.clear();
  l_val_.clear();
  u_start_.clear();
  u_col_.clear();
  u_val_.clear();
  row_to_step_.clear();
  col_to_step_.clear();
  ut_start_.clear();
  ut_step_.clear();
  lt_start_.clear();
  lt_step_.clear();
  eta_start_.clear();
  eta_pos_.clear();
  eta_val_.clear();
  eta_pivot_pos_.clear();
  eta_pivot_val_.clear();
}

bool BasisLu::factorize(int m, std::span<const int> col_ptr,
                        std::span<const int> rows, std::span<const double> values,
                        double abs_pivot_tol) {
  clear();
  DLS_ASSERT(static_cast<int>(col_ptr.size()) == m + 1);

  // Active submatrix, column-wise with exact per-row/column counts. The
  // row lists are supersets (stale column ids are skipped on use).
  std::vector<std::vector<int>> col_rows(m);
  std::vector<std::vector<double>> col_vals(m);
  std::vector<std::vector<int>> row_cols(m);
  std::vector<int> row_count(m, 0), col_count(m, 0);
  for (int j = 0; j < m; ++j) {
    for (int p = col_ptr[j]; p < col_ptr[j + 1]; ++p) {
      const int i = rows[p];
      const double v = values[p];
      if (v == 0.0) continue;
      col_rows[j].push_back(i);
      col_vals[j].push_back(v);
      row_cols[i].push_back(j);
      ++row_count[i];
      ++col_count[j];
    }
  }

  std::vector<char> row_done(m, 0), col_done(m, 0);
  pivot_row_.reserve(m);
  pivot_col_.reserve(m);
  pivot_val_.reserve(m);
  l_start_.reserve(m + 1);
  l_start_.push_back(0);
  u_start_.reserve(m + 1);
  u_start_.push_back(0);

  // Singleton-column fast path: a column with one active entry has
  // Markowitz cost (r-1)*0 = 0, the global minimum, and eliminating it
  // produces no fill. Simplex bases are largely triangularizable (slack
  // columns and the fronts they open), so most pivots come from this
  // stack in O(1) instead of a column scan. Lazily validated on pop.
  std::vector<int> singletons;
  for (int j = 0; j < m; ++j)
    if (col_count[j] == 1) singletons.push_back(j);

  // Scratch for one elimination step: the U-row entries found in other
  // active columns (column id + value + position inside that column).
  std::vector<int> urow_cols;
  std::vector<double> urow_vals;

  for (int step = 0; step < m; ++step) {
    int best_row = -1, best_col = -1;
    double best_val = 0.0;
    while (!singletons.empty()) {
      const int j = singletons.back();
      singletons.pop_back();
      if (col_done[j] || col_count[j] != 1) continue;  // stale entry
      const double v = col_vals[j].front();
      if (std::fabs(v) < abs_pivot_tol) break;  // too small: full scan decides
      best_row = col_rows[j].front();
      best_col = j;
      best_val = v;
      break;
    }

    if (best_col < 0) {
      // ---- Markowitz pivot selection ------------------------------------
      // Scan the kCandidateCols smallest active columns; within each,
      // only entries above the stability threshold compete. Cost
      // estimate is the classical (row_count-1)*(col_count-1) fill bound.
      long long best_cost = std::numeric_limits<long long>::max();
      for (int pass = 0; pass < 2 && best_col < 0; ++pass) {
        // Pass 0 honors the stability threshold; pass 1 (rare) accepts
        // any entry above the absolute tolerance so near-singular bases
        // still factorize instead of stalling.
        // Single sweep keeping the kCandidateCols smallest active
        // columns (insertion into a fixed-size window).
        int order[kCandidateCols];
        int filled = 0;
        for (int j = 0; j < m; ++j) {
          if (col_done[j]) continue;
          int pos = filled;
          while (pos > 0 && col_count[order[pos - 1]] > col_count[j]) --pos;
          if (pos >= kCandidateCols) continue;
          if (filled < kCandidateCols) ++filled;
          for (int s = filled - 1; s > pos; --s) order[s] = order[s - 1];
          order[pos] = j;
        }
        for (int o = 0; o < filled; ++o) {
          const int j = order[o];
          if (col_count[j] == 0) return false;  // structurally singular
          double colmax = 0.0;
          for (double v : col_vals[j]) colmax = std::max(colmax, std::fabs(v));
          const double accept = pass == 0
                                    ? std::max(kThreshold * colmax, abs_pivot_tol)
                                    : abs_pivot_tol;
          for (std::size_t p = 0; p < col_rows[j].size(); ++p) {
            const int i = col_rows[j][p];
            const double v = col_vals[j][p];
            if (std::fabs(v) < accept) continue;
            const long long cost = static_cast<long long>(row_count[i] - 1) *
                                   static_cast<long long>(col_count[j] - 1);
            if (cost < best_cost ||
                (cost == best_cost && std::fabs(v) > std::fabs(best_val))) {
              best_cost = cost;
              best_row = i;
              best_col = j;
              best_val = v;
            }
          }
        }
      }
      if (best_col < 0) return false;  // numerically singular
    }

    const int pr = best_row, pc = best_col;
    const double pval = best_val;
    row_done[pr] = 1;
    col_done[pc] = 1;
    pivot_row_.push_back(pr);
    pivot_col_.push_back(pc);
    pivot_val_.push_back(pval);

    // ---- L column: multipliers from the pivot column --------------------
    for (std::size_t p = 0; p < col_rows[pc].size(); ++p) {
      const int i = col_rows[pc][p];
      if (i == pr) continue;
      l_row_.push_back(i);
      l_val_.push_back(col_vals[pc][p] / pval);
      --row_count[i];
    }
    l_start_.push_back(static_cast<int>(l_row_.size()));
    col_rows[pc].clear();
    col_rows[pc].shrink_to_fit();
    col_vals[pc].clear();
    col_vals[pc].shrink_to_fit();

    // ---- U row: remove row pr from the other active columns -------------
    urow_cols.clear();
    urow_vals.clear();
    for (const int j : row_cols[pr]) {
      if (col_done[j]) continue;
      // Find (pr, j); the row list is a superset, so absence is fine.
      auto& cr = col_rows[j];
      auto& cv = col_vals[j];
      for (std::size_t p = 0; p < cr.size(); ++p) {
        if (cr[p] != pr) continue;
        urow_cols.push_back(j);
        urow_vals.push_back(cv[p]);
        cr[p] = cr.back();
        cr.pop_back();
        cv[p] = cv.back();
        cv.pop_back();
        if (--col_count[j] == 1) singletons.push_back(j);
        break;
      }
    }
    row_cols[pr].clear();
    row_cols[pr].shrink_to_fit();
    for (std::size_t q = 0; q < urow_cols.size(); ++q) {
      u_col_.push_back(urow_cols[q]);
      u_val_.push_back(urow_vals[q]);
    }
    u_start_.push_back(static_cast<int>(u_col_.size()));

    // ---- Schur update: cols[j] -= l * u_j for every U entry -------------
    const int lbeg = l_start_[step], lend = l_start_[step + 1];
    for (std::size_t q = 0; q < urow_cols.size(); ++q) {
      const int j = urow_cols[q];
      const double u = urow_vals[q];
      auto& cr = col_rows[j];
      auto& cv = col_vals[j];
      for (int p = lbeg; p < lend; ++p) {
        const int i = l_row_[p];
        const double delta = l_val_[p] * u;
        bool found = false;
        for (std::size_t e = 0; e < cr.size(); ++e) {
          if (cr[e] == i) {
            cv[e] -= delta;
            found = true;
            break;
          }
        }
        if (!found && delta != 0.0) {  // fill-in
          cr.push_back(i);
          cv.push_back(-delta);
          row_cols[i].push_back(j);
          ++row_count[i];
          ++col_count[j];
        }
      }
    }
  }

  m_ = m;
  eta_start_.push_back(0);
  work_.assign(m, 0.0);
  build_solve_graphs();
  return true;
}

void BasisLu::build_solve_graphs() {
  row_to_step_.resize(m_);
  col_to_step_.resize(m_);
  for (int t = 0; t < m_; ++t) {
    row_to_step_[pivot_row_[t]] = t;
    col_to_step_[pivot_col_[t]] = t;
  }
  // U transposed by basis slot: for each slot, the (earlier) steps whose
  // U row references it — the reverse dependencies of the FTRAN back
  // substitution. Counting sort into CSR; the +2 offset leaves the
  // filled cursors as the final start array.
  ut_start_.assign(m_ + 2, 0);
  for (const int c : u_col_) ++ut_start_[c + 2];
  for (int i = 2; i < m_ + 2; ++i) ut_start_[i] += ut_start_[i - 1];
  ut_step_.resize(u_col_.size());
  for (int t = 0; t < m_; ++t)
    for (int p = u_start_[t]; p < u_start_[t + 1]; ++p)
      ut_step_[ut_start_[u_col_[p] + 1]++] = t;
  ut_start_.pop_back();
  // L transposed by row: for each row, the (earlier) steps whose L
  // column scatters into it — the reverse dependencies of the BTRAN
  // backward pass.
  lt_start_.assign(m_ + 2, 0);
  for (const int i : l_row_) ++lt_start_[i + 2];
  for (int i = 2; i < m_ + 2; ++i) lt_start_[i] += lt_start_[i - 1];
  lt_step_.resize(l_row_.size());
  for (int t = 0; t < m_; ++t)
    for (int p = l_start_[t]; p < l_start_[t + 1]; ++p)
      lt_step_[lt_start_[l_row_[p] + 1]++] = t;
  lt_start_.pop_back();
}

void BasisLu::ftran_l_dense(std::vector<double>& x) const {
  // Forward elimination: apply the L operations in pivot order.
  for (int t = 0; t < m_; ++t) {
    const double v = x[pivot_row_[t]];
    if (v == 0.0) continue;
    for (int p = l_start_[t]; p < l_start_[t + 1]; ++p) x[l_row_[p]] -= l_val_[p] * v;
  }
}

void BasisLu::ftran_u_dense(std::vector<double>& x) const {
  // Back substitution into slot space.
  work_.resize(m_);
  for (int t = m_ - 1; t >= 0; --t) {
    double v = x[pivot_row_[t]];
    for (int p = u_start_[t]; p < u_start_[t + 1]; ++p)
      v -= u_val_[p] * work_[u_col_[p]];
    work_[pivot_col_[t]] = v / pivot_val_[t];
  }
  x.swap(work_);
}

void BasisLu::ftran_eta_dense(std::vector<double>& x) const {
  // Eta file, oldest first: x <- E^{-1} x per update.
  const int etas = eta_count();
  for (int e = 0; e < etas; ++e) {
    const int r = eta_pivot_pos_[e];
    const double xr = x[r] / eta_pivot_val_[e];
    if (xr != 0.0) {
      for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
        x[eta_pos_[p]] -= eta_val_[p] * xr;
    }
    x[r] = xr;
  }
}

void BasisLu::ftran(std::vector<double>& x) const {
  DLS_ASSERT(valid() && static_cast<int>(x.size()) == m_);
  ftran_l_dense(x);
  ftran_u_dense(x);
  ftran_eta_dense(x);
}

void BasisLu::btran_eta_dense(std::vector<double>& y) const {
  // Eta file transposed, newest first: solve E' z = y per update.
  for (int e = eta_count() - 1; e >= 0; --e) {
    const int r = eta_pivot_pos_[e];
    double acc = y[r];
    for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
      acc -= eta_val_[p] * y[eta_pos_[p]];
    y[r] = acc / eta_pivot_val_[e];
  }
}

void BasisLu::btran_ul_dense(std::vector<double>& y) const {
  // U' forward pass (slot space in, row space out), updates scattered
  // eagerly so each pivot's value is final when visited.
  work_.assign(m_, 0.0);
  for (int t = 0; t < m_; ++t) {
    const double v = y[pivot_col_[t]] / pivot_val_[t];
    work_[pivot_row_[t]] = v;
    if (v == 0.0) continue;
    for (int p = u_start_[t]; p < u_start_[t + 1]; ++p) y[u_col_[p]] -= u_val_[p] * v;
  }
  // L' backward pass.
  for (int t = m_ - 1; t >= 0; --t) {
    double acc = 0.0;
    for (int p = l_start_[t]; p < l_start_[t + 1]; ++p)
      acc += l_val_[p] * work_[l_row_[p]];
    work_[pivot_row_[t]] -= acc;
  }
  y.swap(work_);
}

void BasisLu::btran(std::vector<double>& y) const {
  DLS_ASSERT(valid() && static_cast<int>(y.size()) == m_);
  btran_eta_dense(y);
  btran_ul_dense(y);
}

void BasisLu::rebuild_pattern(std::vector<double>& v,
                              std::vector<int>& pattern) const {
  pattern.clear();
  for (int i = 0; i < m_; ++i) {
    if (v[i] != 0.0)
      pattern.push_back(i);
    else
      v[i] = 0.0;  // normalize -0.0 structural zeros of the dense passes
  }
}

BasisLu::SolveStats BasisLu::ftran_sparse(SparseVector& x, SolveScratch& ws,
                                          double crossover) const {
  DLS_ASSERT(valid() && static_cast<int>(x.values.size()) == m_);
  ws.ensure(m_);
  SolveStats st;
  const int limit = static_cast<int>(crossover * m_);
  auto& v = x.values;
  auto& pat = x.pattern;

  // ---- L pass: symbolic flood over steps from the rhs rows --------------
  // An L scatter at step t only reaches rows eliminated later, so the
  // dependency graph is acyclic with ascending step order a topological
  // order — processing the sorted reach reproduces the dense loop's
  // operation sequence exactly.
  auto& reach = ws.reach_a;
  auto& stack = ws.stack;
  reach.clear();
  stack.clear();
  bool give_up = static_cast<int>(pat.size()) > limit;
  if (!give_up) {
    const int stamp = ws.bump();
    for (const int i : pat) {
      const int s = row_to_step_[i];
      if (ws.mark[s] == stamp) continue;
      ws.mark[s] = stamp;
      reach.push_back(s);
      stack.push_back(s);
    }
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      for (int p = l_start_[t]; p < l_start_[t + 1]; ++p) {
        const int s = row_to_step_[l_row_[p]];
        if (ws.mark[s] == stamp) continue;
        ws.mark[s] = stamp;
        reach.push_back(s);
        stack.push_back(s);
      }
      if (static_cast<int>(reach.size()) > limit) {
        give_up = true;
        break;
      }
    }
  }
  if (give_up) {
    ftran_l_dense(v);
    ftran_u_dense(v);
    ftran_eta_dense(v);
    rebuild_pattern(v, pat);
    st.reach = m_;
    st.fallback = true;
    return st;
  }
  std::sort(reach.begin(), reach.end());
  for (const int t : reach) {
    const double xv = v[pivot_row_[t]];
    if (xv == 0.0) continue;  // same guard as the dense loop
    for (int p = l_start_[t]; p < l_start_[t + 1]; ++p)
      v[l_row_[p]] -= l_val_[p] * xv;
  }
  st.reach = static_cast<int>(reach.size());

  // ---- U pass: reverse reachability from the L reach --------------------
  // Step t's output depends on slots pivoted later, so activity flows
  // backwards: an active step activates every earlier step whose U row
  // references its slot (the ut_* transpose).
  auto& ureach = ws.reach_b;
  ureach.clear();
  const int ustamp = ws.bump();
  for (const int s : reach) {
    ws.mark[s] = ustamp;
    ureach.push_back(s);
    stack.push_back(s);
  }
  while (!stack.empty()) {
    const int t = stack.back();
    stack.pop_back();
    const int c = pivot_col_[t];
    for (int p = ut_start_[c]; p < ut_start_[c + 1]; ++p) {
      const int s = ut_step_[p];
      if (ws.mark[s] == ustamp) continue;
      ws.mark[s] = ustamp;
      ureach.push_back(s);
      stack.push_back(s);
    }
    if (static_cast<int>(ureach.size()) > limit) {
      give_up = true;
      break;
    }
  }
  if (give_up) {
    ftran_u_dense(v);
    ftran_eta_dense(v);
    rebuild_pattern(v, pat);
    st.reach = m_;
    st.fallback = true;
    return st;
  }
  std::sort(ureach.begin(), ureach.end());
  auto& work = ws.work;  // all-zero between solves
  for (int k = static_cast<int>(ureach.size()) - 1; k >= 0; --k) {
    const int t = ureach[k];
    double acc = v[pivot_row_[t]];
    for (int p = u_start_[t]; p < u_start_[t + 1]; ++p)
      acc -= u_val_[p] * work[u_col_[p]];
    work[pivot_col_[t]] = acc / pivot_val_[t];
  }
  st.reach = std::max(st.reach, static_cast<int>(ureach.size()));
  // Gather into slot space: clear the consumed row support, move the
  // reached slots out of the scratch (restoring its zeros), and start
  // the result pattern. Pivot columns are a permutation, so the reached
  // slots are distinct.
  for (const int t : reach) v[pivot_row_[t]] = 0.0;
  pat.clear();
  const int sstamp = ws.bump();
  for (const int t : ureach) {
    const int c = pivot_col_[t];
    v[c] = work[c];
    work[c] = 0.0;
    ws.mark[c] = sstamp;
    pat.push_back(c);
  }

  // ---- eta pass: sequential scan with an O(1) support guard -------------
  // Any eta may touch the support, so the file is scanned in order; a
  // pivot position off the support skips in O(1) (the dense loop writes
  // a structural +/-0 there, never a value).
  const int etas = eta_count();
  for (int e = 0; e < etas; ++e) {
    const int r = eta_pivot_pos_[e];
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double xr = vr / eta_pivot_val_[e];
    if (xr != 0.0) {
      for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p) {
        const int c = eta_pos_[p];
        v[c] -= eta_val_[p] * xr;
        if (ws.mark[c] != sstamp) {
          ws.mark[c] = sstamp;
          pat.push_back(c);
        }
      }
    }
    v[r] = xr;
  }

  // Exact nonzeros only, ascending — the contract every consumer of the
  // pattern (ratio test order, pricing cost decision) relies on.
  int keep = 0;
  for (const int c : pat) {
    if (v[c] != 0.0)
      pat[keep++] = c;
    else
      v[c] = 0.0;  // exact cancellation: normalize any -0.0
  }
  pat.resize(keep);
  std::sort(pat.begin(), pat.end());
  return st;
}

BasisLu::SolveStats BasisLu::btran_sparse(SparseVector& y, SolveScratch& ws,
                                          double crossover) const {
  DLS_ASSERT(valid() && static_cast<int>(y.values.size()) == m_);
  ws.ensure(m_);
  SolveStats st;
  const int limit = static_cast<int>(crossover * m_);
  auto& v = y.values;
  auto& pat = y.pattern;
  if (static_cast<int>(pat.size()) > limit) {
    btran_eta_dense(v);
    btran_ul_dense(v);
    rebuild_pattern(v, pat);
    st.reach = m_;
    st.fallback = true;
    return st;
  }

  // ---- eta transpose pass (newest first) over the tracked support -------
  // An eta participates only when its pivot slot or one of its scatter
  // positions is already in the support; otherwise the dense loop would
  // compute a structural zero for it.
  const int sstamp = ws.bump();
  for (const int c : pat) ws.mark[c] = sstamp;
  for (int e = eta_count() - 1; e >= 0; --e) {
    const int r = eta_pivot_pos_[e];
    bool member = ws.mark[r] == sstamp;
    for (int p = eta_start_[e]; p < eta_start_[e + 1] && !member; ++p)
      member = ws.mark[eta_pos_[p]] == sstamp;
    if (!member) continue;
    double acc = v[r];
    for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
      acc -= eta_val_[p] * v[eta_pos_[p]];
    v[r] = acc / eta_pivot_val_[e];
    if (ws.mark[r] != sstamp) {
      ws.mark[r] = sstamp;
      pat.push_back(r);
    }
  }

  // ---- U' pass: forward flood from the rhs slots ------------------------
  auto& ureach = ws.reach_a;
  auto& stack = ws.stack;
  ureach.clear();
  stack.clear();
  bool give_up = static_cast<int>(pat.size()) > limit;
  if (!give_up) {
    const int ustamp = ws.bump();
    for (const int c : pat) {
      const int s = col_to_step_[c];
      if (ws.mark[s] == ustamp) continue;
      ws.mark[s] = ustamp;
      ureach.push_back(s);
      stack.push_back(s);
    }
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      for (int p = u_start_[t]; p < u_start_[t + 1]; ++p) {
        const int s = col_to_step_[u_col_[p]];
        if (ws.mark[s] == ustamp) continue;
        ws.mark[s] = ustamp;
        ureach.push_back(s);
        stack.push_back(s);
      }
      if (static_cast<int>(ureach.size()) > limit) {
        give_up = true;
        break;
      }
    }
  }
  if (give_up) {
    btran_ul_dense(v);
    rebuild_pattern(v, pat);
    st.reach = m_;
    st.fallback = true;
    return st;
  }
  std::sort(ureach.begin(), ureach.end());
  auto& work = ws.work;
  for (const int t : ureach) {
    const double uv = v[pivot_col_[t]] / pivot_val_[t];
    work[pivot_row_[t]] = uv;
    if (uv == 0.0) continue;  // same guard as the dense loop
    for (int p = u_start_[t]; p < u_start_[t + 1]; ++p)
      v[u_col_[p]] -= u_val_[p] * uv;
  }
  st.reach = static_cast<int>(ureach.size());

  // ---- L' pass: reverse reachability from the U' reach ------------------
  // Step t reads rows owned by later steps, so activity flows backwards
  // through the lt_* transpose.
  auto& lreach = ws.reach_b;
  lreach.clear();
  const int lstamp = ws.bump();
  for (const int s : ureach) {
    ws.mark[s] = lstamp;
    lreach.push_back(s);
    stack.push_back(s);
  }
  while (!stack.empty()) {
    const int t = stack.back();
    stack.pop_back();
    const int row = pivot_row_[t];
    for (int p = lt_start_[row]; p < lt_start_[row + 1]; ++p) {
      const int s = lt_step_[p];
      if (ws.mark[s] == lstamp) continue;
      ws.mark[s] = lstamp;
      lreach.push_back(s);
      stack.push_back(s);
    }
    if (static_cast<int>(lreach.size()) > limit) {
      give_up = true;
      break;
    }
  }
  if (give_up) {
    // The U' pass already ran sparse into the scratch; finish the
    // backward pass dense there, then copy the full row-space result
    // out and restore the scratch zeros.
    for (int t = m_ - 1; t >= 0; --t) {
      double acc = 0.0;
      for (int p = l_start_[t]; p < l_start_[t + 1]; ++p)
        acc += l_val_[p] * work[l_row_[p]];
      work[pivot_row_[t]] -= acc;
    }
    std::copy(work.begin(), work.begin() + m_, v.begin());
    std::fill(work.begin(), work.begin() + m_, 0.0);
    rebuild_pattern(v, pat);
    st.reach = m_;
    st.fallback = true;
    return st;
  }
  std::sort(lreach.begin(), lreach.end());
  for (int k = static_cast<int>(lreach.size()) - 1; k >= 0; --k) {
    const int t = lreach[k];
    double acc = 0.0;
    for (int p = l_start_[t]; p < l_start_[t + 1]; ++p)
      acc += l_val_[p] * work[l_row_[p]];
    work[pivot_row_[t]] -= acc;
  }
  st.reach = std::max(st.reach, static_cast<int>(lreach.size()));
  // Clear the consumed slot-space rhs (every touched slot's step is in
  // the U' reach), then gather the row-space result out of the scratch.
  for (const int t : ureach) v[pivot_col_[t]] = 0.0;
  pat.clear();
  for (const int t : lreach) {
    const int row = pivot_row_[t];
    const double rv = work[row];
    work[row] = 0.0;
    if (rv != 0.0) {
      v[row] = rv;
      pat.push_back(row);
    }
  }
  std::sort(pat.begin(), pat.end());
  return st;
}

BasisLu::SolveStats BasisLu::btran_unit_sparse(int slot, SparseVector& y,
                                               SolveScratch& ws,
                                               double crossover) const {
  DLS_ASSERT(valid() && slot >= 0 && slot < m_);
  if (static_cast<int>(y.values.size()) != m_)
    y.reset(m_);
  else
    y.clear_support();
  y.values[slot] = 1.0;
  y.pattern.push_back(slot);
  return btran_sparse(y, ws, crossover);
}

void BasisLu::btran_unit(int slot, std::vector<double>& y,
                         std::vector<int>* nonzeros) const {
  DLS_ASSERT(valid() && slot >= 0 && slot < m_);
  y.assign(m_, 0.0);
  y[slot] = 1.0;
  btran(y);
  if (nonzeros != nullptr) {
    nonzeros->clear();
    for (int i = 0; i < m_; ++i)
      if (y[i] != 0.0) nonzeros->push_back(i);
  }
}

bool BasisLu::update(int r, const std::vector<double>& w, double pivot_tol) {
  DLS_ASSERT(valid() && static_cast<int>(w.size()) == m_);
  if (std::fabs(w[r]) <= pivot_tol) return false;
  for (int i = 0; i < m_; ++i) {
    if (i == r || w[i] == 0.0) continue;
    eta_pos_.push_back(i);
    eta_val_.push_back(w[i]);
  }
  eta_start_.push_back(static_cast<int>(eta_pos_.size()));
  eta_pivot_pos_.push_back(r);
  eta_pivot_val_.push_back(w[r]);
  return true;
}

bool BasisLu::update(int r, const SparseVector& w, double pivot_tol) {
  DLS_ASSERT(valid() && static_cast<int>(w.values.size()) == m_);
  const double wr = w.values[r];
  if (std::fabs(wr) <= pivot_tol) return false;
  // The pattern is ascending with exact nonzeros, so this appends the
  // same eta entries, in the same order, as the dense scan above.
  for (const int i : w.pattern) {
    if (i == r) continue;
    eta_pos_.push_back(i);
    eta_val_.push_back(w.values[i]);
  }
  eta_start_.push_back(static_cast<int>(eta_pos_.size()));
  eta_pivot_pos_.push_back(r);
  eta_pivot_val_.push_back(wr);
  return true;
}

std::size_t BasisLu::factor_nnz() const {
  return l_row_.size() + u_col_.size() + pivot_row_.size() + eta_pos_.size() +
         eta_pivot_pos_.size();
}

std::size_t BasisLu::memory_bytes() const {
  const auto ints = pivot_row_.size() + pivot_col_.size() + l_start_.size() +
                    l_row_.size() + u_start_.size() + u_col_.size() +
                    row_to_step_.size() + col_to_step_.size() +
                    ut_start_.size() + ut_step_.size() + lt_start_.size() +
                    lt_step_.size() + eta_start_.size() + eta_pos_.size() +
                    eta_pivot_pos_.size();
  const auto doubles = pivot_val_.size() + l_val_.size() + u_val_.size() +
                       eta_val_.size() + eta_pivot_val_.size() + work_.size();
  return ints * sizeof(int) + doubles * sizeof(double);
}

}  // namespace dls::lp
