#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace dls::lp {

namespace {

enum class VarStatus : unsigned char { Basic, AtLower, AtUpper, Free };

/// Full solver state for one solve() call. Variable indexing:
///   [0, n)            structural variables (model order)
///   [n, n+m)          slack of row i at index n+i
///   [n+m, n+2m)       artificial of row i at index n+m+i
class Worker {
public:
  Worker(const Model& model, const SimplexOptions& opt) : model_(model), opt_(opt) {
    n_ = model.num_variables();
    m_ = model.num_constraints();
    total_ = n_ + 2 * m_;
    build_columns();
    build_bounds_and_costs();
  }

  Solution run() {
    Solution sol;
    if (m_ == 0) return solve_unconstrained();

    init_basis();

    const int max_iters = opt_.max_iterations > 0
                              ? opt_.max_iterations
                              : 200 * (n_ + m_) + 20000;

    // Phase 1: drive artificial infeasibility to zero if any was needed.
    if (need_phase1_) {
      in_phase1_ = true;
      const SolveStatus st = iterate(max_iters);
      sol.phase1_iterations = iters_;
      if (st == SolveStatus::NumericalError || st == SolveStatus::IterationLimit) {
        sol.status = st;
        sol.iterations = iters_;
        return sol;
      }
      // Unbounded cannot occur: the phase-1 objective is bounded below by 0.
      if (infeasibility() > opt_.feas_tol * rhs_scale_) {
        sol.status = SolveStatus::Infeasible;
        sol.iterations = iters_;
        return sol;
      }
      // Pin all artificials; any still basic is at value ~0 and its [0,0]
      // bounds make the ratio test evict it before it could move.
      for (int i = 0; i < m_; ++i) {
        const int a = n_ + m_ + i;
        lb_[a] = ub_[a] = 0.0;
        if (status_[a] != VarStatus::Basic) set_nonbasic_value(a, VarStatus::AtLower);
      }
      in_phase1_ = false;
    }

    const SolveStatus st = iterate(max_iters);
    sol.iterations = iters_;
    sol.status = st;
    if (st != SolveStatus::Optimal && st != SolveStatus::Unbounded) return sol;

    extract(sol);
    return sol;
  }

private:
  // ---- setup -------------------------------------------------------------

  void build_columns() {
    // Structural columns, gathered column-wise from the model's rows.
    col_ptr_.assign(total_ + 1, 0);
    std::vector<int> counts(n_, 0);
    for (int c = 0; c < m_; ++c)
      for (const Term& t : model_.row(c)) ++counts[t.var];
    for (int j = 0; j < n_; ++j) col_ptr_[j + 1] = col_ptr_[j] + counts[j];
    const int struct_nnz = col_ptr_[n_];
    col_row_.resize(struct_nnz);
    col_val_.resize(struct_nnz);
    std::vector<int> fill(n_, 0);
    for (int c = 0; c < m_; ++c) {
      for (const Term& t : model_.row(c)) {
        const int pos = col_ptr_[t.var] + fill[t.var]++;
        col_row_[pos] = c;
        col_val_[pos] = t.coef;
      }
    }
    // Slack and artificial columns are singletons (e_i, sigma_i e_i); they
    // are synthesized on the fly by for_each_in_column().
    for (int j = n_; j <= total_ - 1; ++j) col_ptr_[j + 1] = col_ptr_[n_];
  }

  template <typename Fn>
  void for_each_in_column(int j, Fn&& fn) const {
    if (j < n_) {
      for (int p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) fn(col_row_[p], col_val_[p]);
    } else if (j < n_ + m_) {
      fn(j - n_, 1.0);
    } else {
      fn(j - n_ - m_, art_sign_[j - n_ - m_]);
    }
  }

  void build_bounds_and_costs() {
    lb_.resize(total_);
    ub_.resize(total_);
    cost_.assign(total_, 0.0);
    const double sign = model_.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (int j = 0; j < n_; ++j) {
      lb_[j] = model_.lower_bound(j);
      ub_[j] = model_.upper_bound(j);
      cost_[j] = sign * model_.objective_coef(j);
    }
    b_.resize(m_);
    rhs_scale_ = 1.0;
    for (int c = 0; c < m_; ++c) {
      b_[c] = model_.rhs(c);
      rhs_scale_ = std::max(rhs_scale_, std::fabs(b_[c]));
      const int s = n_ + c;
      switch (model_.relation(c)) {
        case Relation::LessEqual:
          lb_[s] = 0.0;
          ub_[s] = kInf;
          break;
        case Relation::GreaterEqual:
          lb_[s] = -kInf;
          ub_[s] = 0.0;
          break;
        case Relation::Equal:
          lb_[s] = ub_[s] = 0.0;
          break;
      }
    }
    art_sign_.assign(m_, 1.0);
    for (int i = 0; i < m_; ++i) {
      const int a = n_ + m_ + i;
      lb_[a] = ub_[a] = 0.0;  // widened per-row in init_basis when needed
    }
  }

  /// Starting point: every structural variable nonbasic at its bound
  /// nearest zero (or free at 0), slacks basic. Rows whose slack value
  /// falls outside the slack bounds get an artificial basic instead.
  void init_basis() {
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (std::isfinite(lb_[j]) &&
          (std::fabs(lb_[j]) <= std::fabs(ub_[j]) || !std::isfinite(ub_[j]))) {
        set_nonbasic_value(j, VarStatus::AtLower);
      } else if (std::isfinite(ub_[j])) {
        set_nonbasic_value(j, VarStatus::AtUpper);
      } else {
        set_nonbasic_value(j, VarStatus::Free);
      }
    }

    // Row activity of the nonbasic start.
    std::vector<double> r = b_;
    for (int j = 0; j < n_; ++j) {
      if (value_[j] == 0.0) continue;
      for_each_in_column(j, [&](int row, double coef) { r[row] -= coef * value_[j]; });
    }

    basis_.resize(m_);
    xb_.resize(m_);
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    need_phase1_ = false;
    for (int i = 0; i < m_; ++i) {
      const int s = n_ + i;
      const bool fits = r[i] >= lb_[s] - opt_.feas_tol && r[i] <= ub_[s] + opt_.feas_tol;
      if (fits) {
        basis_[i] = s;
        xb_[i] = r[i];
        status_[s] = VarStatus::Basic;
        binv_at(i, i) = 1.0;
      } else {
        // Park the slack at the violated side's bound and absorb the
        // remainder into a fresh artificial of matching sign.
        const double parked = r[i] > ub_[s] ? ub_[s] : lb_[s];
        set_nonbasic_value(s, r[i] > ub_[s] ? VarStatus::AtUpper : VarStatus::AtLower);
        const double residual = r[i] - parked;
        const int a = n_ + m_ + i;
        art_sign_[i] = residual >= 0.0 ? 1.0 : -1.0;
        lb_[a] = 0.0;
        ub_[a] = kInf;
        cost_[a] = 0.0;  // phase-1 pricing adds the +1 cost virtually
        basis_[i] = a;
        xb_[i] = std::fabs(residual);
        status_[a] = VarStatus::Basic;
        binv_at(i, i) = art_sign_[i];  // B = diag(sigma) on artificial rows
        need_phase1_ = true;
      }
    }
    pivots_since_refactor_ = 0;
    iters_ = 0;
    stall_ = 0;
    use_bland_ = false;
  }

  void set_nonbasic_value(int j, VarStatus st) {
    status_[j] = st;
    switch (st) {
      case VarStatus::AtLower: value_[j] = lb_[j]; break;
      case VarStatus::AtUpper: value_[j] = ub_[j]; break;
      case VarStatus::Free: value_[j] = 0.0; break;
      case VarStatus::Basic: DLS_ASSERT(false);
    }
  }

  // ---- iteration ---------------------------------------------------------

  double current_cost(int j) const {
    if (in_phase1_) return j >= n_ + m_ ? 1.0 : 0.0;
    return cost_[j];
  }

  double infeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i)
      if (basis_[i] >= n_ + m_) total += std::max(0.0, xb_[i]);
    return total;
  }

  SolveStatus iterate(int max_iters) {
    std::vector<double> y(m_), w(m_);
    while (true) {
      if (iters_ >= max_iters) return SolveStatus::IterationLimit;

      // BTRAN: y = c_B' B^{-1}.
      std::fill(y.begin(), y.end(), 0.0);
      for (int i = 0; i < m_; ++i) {
        const double cb = current_cost(basis_[i]);
        if (cb == 0.0) continue;
        const double* row = &binv_[static_cast<std::size_t>(i) * m_];
        for (int k = 0; k < m_; ++k) y[k] += cb * row[k];
      }

      // Pricing.
      int q = -1;
      bool increase = true;
      double best_score = opt_.opt_tol;
      for (int j = 0; j < total_; ++j) {
        if (status_[j] == VarStatus::Basic) continue;
        if (lb_[j] == ub_[j]) continue;  // fixed: can never move
        double d = current_cost(j);
        for_each_in_column(j, [&](int row, double coef) { d -= y[row] * coef; });
        const bool can_up = status_[j] != VarStatus::AtUpper;
        const bool can_down = status_[j] != VarStatus::AtLower;
        if (use_bland_) {
          if (can_up && d < -opt_.opt_tol) { q = j; increase = true; break; }
          if (can_down && d > opt_.opt_tol) { q = j; increase = false; break; }
        } else {
          if (can_up && -d > best_score) { best_score = -d; q = j; increase = true; }
          if (can_down && d > best_score) { best_score = d; q = j; increase = false; }
        }
      }
      if (q < 0) return SolveStatus::Optimal;

      // FTRAN: w = B^{-1} A_q.
      std::fill(w.begin(), w.end(), 0.0);
      for_each_in_column(q, [&](int row, double coef) {
        for (int i = 0; i < m_; ++i) w[i] += binv_at(i, row) * coef;
      });

      const double dir = increase ? 1.0 : -1.0;

      // Ratio test. The entering variable can move t >= 0 in direction
      // dir until (a) it reaches its own opposite bound, or (b) a basic
      // variable reaches one of its bounds.
      double t_best = kInf;
      int leave = -1;  // row index; -1 = entering flips to its other bound
      if (std::isfinite(lb_[q]) && std::isfinite(ub_[q])) t_best = ub_[q] - lb_[q];
      double leave_pivot = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double delta = -dir * w[i];  // d(x_B[i]) / dt
        if (std::fabs(delta) <= opt_.pivot_tol) continue;
        const int bvar = basis_[i];
        double limit = kInf;
        if (delta > 0.0) {
          if (std::isfinite(ub_[bvar])) limit = (ub_[bvar] - xb_[i]) / delta;
        } else {
          if (std::isfinite(lb_[bvar])) limit = (lb_[bvar] - xb_[i]) / delta;
        }
        if (limit == kInf) continue;
        limit = std::max(limit, 0.0);  // clamp tolerance-level negatives
        // Prefer strictly smaller limits; on near-ties keep the row with
        // the largest pivot magnitude for numerical stability.
        if (limit < t_best - 1e-12 ||
            (limit < t_best + 1e-12 && std::fabs(w[i]) > std::fabs(leave_pivot))) {
          t_best = limit;
          leave = i;
          leave_pivot = w[i];
        }
      }

      if (t_best == kInf) {
        DLS_ASSERT(!in_phase1_);  // phase-1 objective is bounded below
        return SolveStatus::Unbounded;
      }

      ++iters_;
      if (t_best > 1e-10) {
        stall_ = 0;
      } else if (++stall_ > opt_.stall_limit) {
        use_bland_ = true;  // anti-cycling fallback; never switched back
      }

      // Apply the step to the basic values.
      for (int i = 0; i < m_; ++i) xb_[i] -= dir * t_best * w[i];

      if (leave < 0) {
        // Bound flip: basis unchanged.
        set_nonbasic_value(q, increase ? VarStatus::AtUpper : VarStatus::AtLower);
        continue;
      }

      // Pivot: q enters at row `leave`, the old basic leaves to the bound
      // it just reached.
      const int old_var = basis_[leave];
      const double delta_leave = -dir * w[leave];
      set_nonbasic_value(old_var, delta_leave > 0.0 ? VarStatus::AtUpper
                                                    : VarStatus::AtLower);
      // An artificial that leaves the basis is pinned for good.
      if (old_var >= n_ + m_) {
        lb_[old_var] = ub_[old_var] = 0.0;
        set_nonbasic_value(old_var, VarStatus::AtLower);
      }
      const double enter_value = value_[q] + dir * t_best;
      basis_[leave] = q;
      status_[q] = VarStatus::Basic;
      xb_[leave] = enter_value;

      update_binv(leave, w);

      if (++pivots_since_refactor_ >= refactor_interval()) {
        if (!refactor()) return SolveStatus::NumericalError;
      }
    }
  }

  int refactor_interval() const {
    return std::max(opt_.refactor_interval, m_ / 4);
  }

  /// Elementary row transformation of B^{-1} for a pivot in row r with
  /// FTRAN column w: row r scales by 1/w_r, other rows eliminate w_i.
  void update_binv(int r, const std::vector<double>& w) {
    const double piv = w[r];
    DLS_ASSERT(std::fabs(piv) > 0.0);
    double* prow = &binv_[static_cast<std::size_t>(r) * m_];
    const double inv = 1.0 / piv;
    for (int k = 0; k < m_; ++k) prow[k] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == r || w[i] == 0.0) continue;
      const double f = w[i];
      double* irow = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
    }
  }

  /// Rebuilds B^{-1} by Gauss-Jordan with partial pivoting and recomputes
  /// the basic values from scratch. Returns false on a singular basis.
  bool refactor() {
    pivots_since_refactor_ = 0;
    // Gather B (dense, column per basic variable).
    scratch_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      for_each_in_column(basis_[i],
                         [&](int row, double coef) { scratch_at(row, i) = coef; });
    }
    // Invert scratch into binv_.
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < m_; ++i) binv_at(i, i) = 1.0;
    for (int col = 0; col < m_; ++col) {
      int piv_row = col;
      double piv_val = std::fabs(scratch_at(col, col));
      for (int i = col + 1; i < m_; ++i) {
        if (std::fabs(scratch_at(i, col)) > piv_val) {
          piv_val = std::fabs(scratch_at(i, col));
          piv_row = i;
        }
      }
      if (piv_val < 1e-12) return false;
      if (piv_row != col) {
        swap_rows(scratch_, piv_row, col);
        swap_rows(binv_, piv_row, col);
      }
      const double inv = 1.0 / scratch_at(col, col);
      for (int k = 0; k < m_; ++k) {
        scratch_at(col, k) *= inv;
        binv_at(col, k) *= inv;
      }
      for (int i = 0; i < m_; ++i) {
        if (i == col) continue;
        const double f = scratch_at(i, col);
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          scratch_at(i, k) -= f * scratch_at(col, k);
          binv_at(i, k) -= f * binv_at(col, k);
        }
      }
    }
    // Fresh basic values: x_B = B^{-1} (b - N x_N).
    std::vector<double> r = b_;
    for (int j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::Basic || value_[j] == 0.0) continue;
      for_each_in_column(j, [&](int row, double coef) { r[row] -= coef * value_[j]; });
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      const double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) v += row[k] * r[k];
      xb_[i] = v;
    }
    return true;
  }

  void swap_rows(std::vector<double>& mat, int a, int bb) {
    double* ra = &mat[static_cast<std::size_t>(a) * m_];
    double* rb = &mat[static_cast<std::size_t>(bb) * m_];
    std::swap_ranges(ra, ra + m_, rb);
  }

  // ---- extraction --------------------------------------------------------

  Solution solve_unconstrained() {
    // No rows: each variable independently goes to its best bound.
    Solution sol;
    sol.x.assign(n_, 0.0);
    const double sign = model_.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (int j = 0; j < n_; ++j) {
      const double c = sign * model_.objective_coef(j);
      if (c > 0.0) {
        if (!std::isfinite(lb_[j])) { sol.status = SolveStatus::Unbounded; return sol; }
        sol.x[j] = lb_[j];
      } else if (c < 0.0) {
        if (!std::isfinite(ub_[j])) { sol.status = SolveStatus::Unbounded; return sol; }
        sol.x[j] = ub_[j];
      } else {
        sol.x[j] = std::isfinite(lb_[j]) ? lb_[j] : (std::isfinite(ub_[j]) ? ub_[j] : 0.0);
      }
    }
    sol.status = SolveStatus::Optimal;
    sol.objective = model_.objective_value(sol.x);
    return sol;
  }

  void extract(Solution& sol) const {
    sol.x.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) sol.x[j] = value_[j];
    for (int i = 0; i < m_; ++i)
      if (basis_[i] < n_) sol.x[basis_[i]] = xb_[i];
    // Snap solver noise onto the bounds so downstream validation is clean.
    for (int j = 0; j < n_; ++j) {
      if (std::isfinite(lb_[j])) sol.x[j] = std::max(sol.x[j], lb_[j]);
      if (std::isfinite(ub_[j])) sol.x[j] = std::min(sol.x[j], ub_[j]);
    }
    if (sol.status == SolveStatus::Optimal) {
      sol.objective = model_.objective_value(sol.x);
      // Shadow prices: y = c_B' B^{-1} of the internal minimize form,
      // negated back for Maximize so duals are d(objective)/d(rhs).
      sol.duals.assign(m_, 0.0);
      for (int i = 0; i < m_; ++i) {
        const double cb = cost_[basis_[i]];
        if (cb == 0.0) continue;
        const double* row = &binv_[static_cast<std::size_t>(i) * m_];
        for (int k = 0; k < m_; ++k) sol.duals[k] += cb * row[k];
      }
      if (model_.sense() == Sense::Maximize)
        for (double& d : sol.duals) d = -d;
    }
  }

  double& binv_at(int i, int j) { return binv_[static_cast<std::size_t>(i) * m_ + j]; }
  double binv_at(int i, int j) const { return binv_[static_cast<std::size_t>(i) * m_ + j]; }
  double& scratch_at(int i, int j) { return scratch_[static_cast<std::size_t>(i) * m_ + j]; }

  const Model& model_;
  const SimplexOptions& opt_;
  int n_ = 0, m_ = 0, total_ = 0;

  // Column-wise structural matrix.
  std::vector<int> col_ptr_, col_row_;
  std::vector<double> col_val_;
  std::vector<double> art_sign_;

  std::vector<double> lb_, ub_, cost_, b_;
  std::vector<VarStatus> status_;
  std::vector<double> value_;  // nonbasic resting values (basics in xb_)
  std::vector<int> basis_;
  std::vector<double> xb_;
  std::vector<double> binv_, scratch_;

  double rhs_scale_ = 1.0;
  bool need_phase1_ = false;
  bool in_phase1_ = false;
  bool use_bland_ = false;
  int iters_ = 0, stall_ = 0, pivots_since_refactor_ = 0;
};

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  Worker worker(model, options_);
  return worker.run();
}

}  // namespace dls::lp
