#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace dls::lp {

namespace detail {

enum class VarStatus : unsigned char { Basic, AtLower, AtUpper, Free };

/// All reusable solver buffers. A solve fully (re)initializes every
/// buffer it reads, so only capacity — never content — survives between
/// solves; results are bit-identical whether an arena is reused, fresh,
/// or shared sequentially between threads.
struct ArenaImpl {
  std::shared_ptr<ColumnCacheStore> store;          // optional shared analysis
  std::shared_ptr<const ColumnCache> columns;       // last structure used

  // Model-derived data (bounds/costs/rhs of the internal minimize form).
  std::vector<double> lb, ub, cost, b;
  std::vector<double> art_sign;

  // Basis state.
  std::vector<VarStatus> status;
  std::vector<double> value, xb;
  std::vector<int> basis;
  BasisLu lu;
  std::vector<int> csc_ptr, csc_row;
  std::vector<double> csc_val;
  std::vector<double> binv, scratch;  // dense path

  // Iteration scratch. w/rho are the sparse-path FTRAN image and
  // pricing row; hs is the reach-set workspace their hypersparse solves
  // share (arena-owned so BatchSolver stays allocation-free and warm
  // capsules carry no scratch).
  std::vector<double> y, r;
  SparseVector w, rho;
  SolveScratch hs;

  // Incremental pricing state.
  std::vector<double> d, weights, alpha;
  std::vector<int> cand, touched;
  std::vector<char> in_cand;
};

std::uint64_t matrix_fingerprint(const Model& model) {
  // The hash lives on the Model (lazily computed, invalidated only by
  // structural mutators), so warm re-solves and re-priced batch variants
  // pay it once instead of once per solve.
  return model.structure_fingerprint();
}

std::shared_ptr<const ColumnCache> build_column_cache(const Model& model) {
  auto cache = std::make_shared<ColumnCache>();
  const int n = model.num_variables();
  const int m = model.num_constraints();
  cache->fingerprint = matrix_fingerprint(model);
  cache->rows = m;
  cache->cols = n;
  cache->col_ptr.assign(n + 1, 0);
  std::vector<int> counts(n, 0);
  for (int c = 0; c < m; ++c)
    for (const Term& t : model.row(c)) ++counts[t.var];
  for (int j = 0; j < n; ++j)
    cache->col_ptr[j + 1] = cache->col_ptr[j] + counts[j];
  const int nnz = cache->col_ptr[n];
  cache->col_row.resize(nnz);
  cache->col_val.resize(nnz);
  std::vector<int> fill(n, 0);
  for (int c = 0; c < m; ++c) {
    for (const Term& t : model.row(c)) {
      const int pos = cache->col_ptr[t.var] + fill[t.var]++;
      cache->col_row[pos] = c;
      cache->col_val[pos] = t.coef;
    }
  }
  return cache;
}

}  // namespace detail

namespace {

using detail::VarStatus;

/// Scores that are mathematically tied differ only by representation
/// noise (dense inverse vs LU arithmetic), so a candidate must beat the
/// incumbent by this relative margin to take over — ties then resolve by
/// scan order whichever factorization computed the inputs, keeping the
/// visited vertex (and the rounding heuristics built on it) stable
/// across representations.
constexpr double kTieMargin = 1e-9;

/// Devex weights above this trigger a reference-framework reset (a full
/// pricing refresh, which reinitializes every weight to 1).
constexpr double kWeightCap = 1e7;

/// Reach-fraction buckets for the hypersparse solve histograms: dense
/// coverage of the tiny-reach regime the pivot loop lives in, with the
/// 1.0 bucket catching crossover fallbacks (recorded as a full sweep).
std::vector<double> reach_fraction_buckets() {
  return {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0};
}

/// Hypersparse-solve instrumentation. Also touched from record_solve()
/// so the series register — and appear in a /metrics scrape — even when
/// every solve so far ran the dense-inverse path.
struct HyperObs {
  obs::Histogram ftran_reach, btran_reach;
  obs::Counter ftran_fallbacks, btran_fallbacks;
  HyperObs() {
    auto& reg = obs::registry();
    ftran_reach = reg.histogram(
        "dls_lp_ftran_reach_fraction",
        "Reach of hypersparse FTRANs as a fraction of basis rows",
        reach_fraction_buckets());
    btran_reach = reg.histogram(
        "dls_lp_btran_reach_fraction",
        "Reach of hypersparse BTRANs as a fraction of basis rows",
        reach_fraction_buckets());
    ftran_fallbacks =
        reg.counter("dls_lp_ftran_fallbacks_total",
                    "Hypersparse FTRANs that crossed the density cutoff");
    btran_fallbacks =
        reg.counter("dls_lp_btran_fallbacks_total",
                    "Hypersparse BTRANs that crossed the density cutoff");
  }
};

HyperObs& hyper_obs() {
  static HyperObs handles;
  return handles;
}

/// Full solver state for one solve() call. Variable indexing:
///   [0, n)            structural variables (model order)
///   [n, n+m)          slack of row i at index n+i
///   [n+m, n+2m)       artificial of row i at index n+m+i
/// All bulk storage lives in the arena (references below), so repeated
/// solves through one arena allocate nothing once capacities warm up.
class Worker {
public:
  Worker(const Model& model, const SimplexOptions& opt, detail::ArenaImpl& arena)
      : model_(model),
        opt_(opt),
        a_(arena),
        lb_(arena.lb),
        ub_(arena.ub),
        cost_(arena.cost),
        b_(arena.b),
        art_sign_(arena.art_sign),
        status_(arena.status),
        value_(arena.value),
        xb_(arena.xb),
        basis_(arena.basis),
        lu_(arena.lu),
        csc_ptr_(arena.csc_ptr),
        csc_row_(arena.csc_row),
        csc_val_(arena.csc_val),
        binv_(arena.binv),
        scratch_(arena.scratch),
        y_(arena.y),
        w_(arena.w.values),
        w_nz_(arena.w.pattern),
        rho_(arena.rho.values),
        rho_nz_(arena.rho.pattern),
        r_(arena.r),
        hs_(arena.hs),
        d_(arena.d),
        weights_(arena.weights),
        alpha_(arena.alpha),
        cand_(arena.cand),
        touched_(arena.touched),
        in_cand_(arena.in_cand) {
    n_ = model.num_variables();
    m_ = model.num_constraints();
    total_ = n_ + 2 * m_;
    dense_ = opt.factorization == Factorization::DenseInverse ||
             (opt.factorization == Factorization::Auto &&
              m_ <= opt.dense_crossover_rows);
    hyper_ = !dense_ && opt.hypersparse;
    if (hyper_) hs_.ensure(m_);
    rule_ = opt.pricing == Pricing::Auto ? Pricing::SteepestEdge : opt.pricing;
    window_ = opt.partial_window > 0 ? opt.partial_window
                                     : std::max(64, (n_ + m_) / 16);
    cand_cap_ = opt.se_candidate_cap > 0
                    ? static_cast<std::size_t>(opt.se_candidate_cap)
                : opt.se_candidate_cap == 0
                    ? static_cast<std::size_t>(512)
                    : static_cast<std::size_t>(n_) + static_cast<std::size_t>(m_);
    fingerprint_ = detail::matrix_fingerprint(model);
    resolve_columns();
    build_bounds_and_costs();
  }

  Solution run(const Basis* warm, WarmState* state) {
    Solution sol = run_inner(warm, state);
    sol.factorization_used =
        dense_ ? Factorization::DenseInverse : Factorization::SparseLu;
    sol.pricing_used = rule_;
    sol.refactorizations = refactor_count_;
    sol.pricing_refreshes = refresh_count_;
    sol.eta_peak_nnz = eta_peak_;
    sol.column_cache_hit = cache_hit_;
    return sol;
  }

private:
  Solution run_inner(const Basis* warm, WarmState* state) {
    Solution sol;
    if (m_ == 0) return solve_unconstrained();

    const int max_iters = opt_.max_iterations > 0
                              ? opt_.max_iterations
                              : 200 * (n_ + m_) + 20000;
    if (rule_ != Pricing::Dantzig) alpha_.assign(n_ + m_, 0.0);

    bool warm_ok = false;
    WarmKind kind = WarmKind::Cold;
    if (state != nullptr && state->valid) {
      const bool matrix_changed = state->fingerprint != fingerprint_;
      warm_ok = init_from_state(*state);
      if (warm_ok) {
        kind = WarmKind::Capsule;
      } else if (opt_.warm_repair && matrix_changed) {
        // Basis repair: the constraint matrix moved under the capsule (a
        // platform capacity event re-priced coefficients). Its statuses
        // may still describe a near-optimal vertex of the new model;
        // refactorize them against the new matrix and let the composite
        // bound phase 1 below absorb any primal infeasibility. A basic
        // set the new matrix makes singular fails the refactorization
        // and falls through to the cold start.
        warm_ok = init_basis_warm(state->basis);
        if (warm_ok) kind = WarmKind::Basis;
      }
    }
    if (!warm_ok && warm != nullptr) {
      warm_ok = init_basis_warm(*warm);
      if (warm_ok) kind = WarmKind::Basis;
    }
    if (warm_ok && warm_infeasible_) {
      // Composite bound phase 1: bounds moved since the basis was taken
      // (an application departed and its alphas were clamped to zero),
      // so some basic variables sit outside their bounds. Drive the
      // total violation to zero with the violated basics carrying
      // virtual costs of +/-1; a repair that does not converge falls
      // back to the cold start, whose artificial phase 1 is the
      // authority on true infeasibility.
      in_phase1_ = true;
      bound_phase1_ = true;
      const SolveStatus st = iterate(max_iters);
      in_phase1_ = false;
      bound_phase1_ = false;
      if (st != SolveStatus::Optimal ||
          bound_infeasibility() > opt_.feas_tol * rhs_scale_)
        warm_ok = false;
      else
        sol.phase1_iterations = iters_;
    }
    sol.warm_used = warm_ok;
    sol.warm_kind = warm_ok ? kind : WarmKind::Cold;
    if (!warm_ok) init_basis();

    // Phase 1: drive artificial infeasibility to zero if any was needed.
    if (need_phase1_) {
      in_phase1_ = true;
      const SolveStatus st = iterate(max_iters);
      sol.phase1_iterations = iters_;
      if (st == SolveStatus::NumericalError || st == SolveStatus::IterationLimit) {
        sol.status = st;
        sol.iterations = iters_;
        return sol;
      }
      // Unbounded cannot occur: the phase-1 objective is bounded below by 0.
      if (infeasibility() > opt_.feas_tol * rhs_scale_) {
        sol.status = SolveStatus::Infeasible;
        sol.iterations = iters_;
        return sol;
      }
      // Pin all artificials; any still basic is at value ~0 and its [0,0]
      // bounds make the ratio test evict it before it could move.
      for (int i = 0; i < m_; ++i) {
        const int a = n_ + m_ + i;
        lb_[a] = ub_[a] = 0.0;
        if (status_[a] != VarStatus::Basic) set_nonbasic_value(a, VarStatus::AtLower);
      }
      in_phase1_ = false;
    }

    const SolveStatus st = iterate(max_iters);
    sol.iterations = iters_;
    sol.status = st;
    if (!dense_ && lu_.valid())
      eta_peak_ = std::max(eta_peak_, lu_.eta_nnz());
    if (st != SolveStatus::Optimal && st != SolveStatus::Unbounded) return sol;

    extract(sol);
    if (state != nullptr && st == SolveStatus::Optimal) save_state(sol, *state);
    return sol;
  }

  // ---- setup -------------------------------------------------------------

  /// Binds cols_ to the column-wise structural matrix: the arena's last
  /// structure if the fingerprint still matches, else the shared store,
  /// else a fresh build (published to the store when one is attached).
  void resolve_columns() {
    if (a_.columns && a_.columns->fingerprint == fingerprint_ &&
        a_.columns->rows == m_ && a_.columns->cols == n_) {
      cols_ = a_.columns.get();
      cache_hit_ = true;
      return;
    }
    if (a_.store) {
      if (auto c = a_.store->find(fingerprint_);
          c && c->rows == m_ && c->cols == n_) {
        a_.columns = std::move(c);
        cols_ = a_.columns.get();
        cache_hit_ = true;
        return;
      }
    }
    a_.columns = detail::build_column_cache(model_);
    cols_ = a_.columns.get();
    cache_hit_ = false;
    if (a_.store) a_.store->insert(a_.columns);
  }

  /// Slack and artificial columns are singletons (e_i, sigma_i e_i);
  /// they are synthesized on the fly, structural columns come from the
  /// shared column cache.
  template <typename Fn>
  void for_each_in_column(int j, Fn&& fn) const {
    if (j < n_) {
      const detail::ColumnCache& c = *cols_;
      for (int p = c.col_ptr[j]; p < c.col_ptr[j + 1]; ++p)
        fn(c.col_row[p], c.col_val[p]);
    } else if (j < n_ + m_) {
      fn(j - n_, 1.0);
    } else {
      fn(j - n_ - m_, art_sign_[j - n_ - m_]);
    }
  }

  void build_bounds_and_costs() {
    lb_.resize(total_);
    ub_.resize(total_);
    cost_.assign(total_, 0.0);
    const double sign = model_.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (int j = 0; j < n_; ++j) {
      lb_[j] = model_.lower_bound(j);
      ub_[j] = model_.upper_bound(j);
      cost_[j] = sign * model_.objective_coef(j);
    }
    b_.resize(m_);
    rhs_scale_ = 1.0;
    for (int c = 0; c < m_; ++c) {
      b_[c] = model_.rhs(c);
      rhs_scale_ = std::max(rhs_scale_, std::fabs(b_[c]));
      const int s = n_ + c;
      switch (model_.relation(c)) {
        case Relation::LessEqual:
          lb_[s] = 0.0;
          ub_[s] = kInf;
          break;
        case Relation::GreaterEqual:
          lb_[s] = -kInf;
          ub_[s] = 0.0;
          break;
        case Relation::Equal:
          lb_[s] = ub_[s] = 0.0;
          break;
      }
    }
    art_sign_.assign(m_, 1.0);
    for (int i = 0; i < m_; ++i) {
      const int a = n_ + m_ + i;
      lb_[a] = ub_[a] = 0.0;  // widened per-row in init_basis when needed
    }
  }

  /// Starting point: every structural variable nonbasic at its bound
  /// nearest zero (or free at 0), slacks basic. Rows whose slack value
  /// falls outside the slack bounds get an artificial basic instead.
  void init_basis() {
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (std::isfinite(lb_[j]) &&
          (std::fabs(lb_[j]) <= std::fabs(ub_[j]) || !std::isfinite(ub_[j]))) {
        set_nonbasic_value(j, VarStatus::AtLower);
      } else if (std::isfinite(ub_[j])) {
        set_nonbasic_value(j, VarStatus::AtUpper);
      } else {
        set_nonbasic_value(j, VarStatus::Free);
      }
    }

    // Row activity of the nonbasic start.
    r_ = b_;
    for (int j = 0; j < n_; ++j) {
      if (value_[j] == 0.0) continue;
      for_each_in_column(j, [&](int row, double coef) { r_[row] -= coef * value_[j]; });
    }

    basis_.resize(m_);
    xb_.resize(m_);
    if (dense_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    need_phase1_ = false;
    for (int i = 0; i < m_; ++i) {
      const int s = n_ + i;
      const bool fits = r_[i] >= lb_[s] - opt_.feas_tol && r_[i] <= ub_[s] + opt_.feas_tol;
      if (fits) {
        basis_[i] = s;
        xb_[i] = r_[i];
        status_[s] = VarStatus::Basic;
        if (dense_) binv_at(i, i) = 1.0;
      } else {
        // Park the slack at the violated side's bound and absorb the
        // remainder into a fresh artificial of matching sign.
        const double parked = r_[i] > ub_[s] ? ub_[s] : lb_[s];
        set_nonbasic_value(s, r_[i] > ub_[s] ? VarStatus::AtUpper : VarStatus::AtLower);
        const double residual = r_[i] - parked;
        const int a = n_ + m_ + i;
        art_sign_[i] = residual >= 0.0 ? 1.0 : -1.0;
        lb_[a] = 0.0;
        ub_[a] = kInf;
        cost_[a] = 0.0;  // phase-1 pricing adds the +1 cost virtually
        basis_[i] = a;
        xb_[i] = std::fabs(residual);
        status_[a] = VarStatus::Basic;
        if (dense_) binv_at(i, i) = art_sign_[i];  // B = diag(sigma) on art. rows
        need_phase1_ = true;
      }
    }
    if (!dense_) {
      // The all-logical start is diagonal (+/-1), so factorizing cannot
      // fail; it also recomputes xb_, reproducing the values above.
      const bool ok = refactor();
      DLS_ASSERT(ok);
    }
    pivots_since_refactor_ = 0;
    iters_ = 0;
    stall_ = 0;
    use_bland_ = false;
  }

  /// Maps a saved status back, sanitized against bounds that may have
  /// moved since the basis was taken: a resting place that no longer
  /// exists falls back the way the cold start picks resting places
  /// (nearest-zero finite bound, else free). Basic entries are collected
  /// into basis_ unless `keep_basis_order` (the capsule path, where the
  /// saved row order must match the saved inverse).
  void place_status(int j, BasisStatus st, bool keep_basis_order) {
    if (st == BasisStatus::Basic) {
      if (!keep_basis_order) basis_.push_back(j);
      status_[j] = VarStatus::Basic;
      return;
    }
    VarStatus want = st == BasisStatus::AtUpper   ? VarStatus::AtUpper
                     : st == BasisStatus::AtLower ? VarStatus::AtLower
                                                  : VarStatus::Free;
    if (want == VarStatus::AtLower && !std::isfinite(lb_[j]))
      want = std::isfinite(ub_[j]) ? VarStatus::AtUpper : VarStatus::Free;
    if (want == VarStatus::AtUpper && !std::isfinite(ub_[j]))
      want = std::isfinite(lb_[j]) ? VarStatus::AtLower : VarStatus::Free;
    if (want == VarStatus::Free && std::isfinite(lb_[j]) &&
        (std::fabs(lb_[j]) <= std::fabs(ub_[j]) || !std::isfinite(ub_[j])))
      want = VarStatus::AtLower;
    else if (want == VarStatus::Free && std::isfinite(ub_[j]))
      want = VarStatus::AtUpper;
    set_nonbasic_value(j, want);
  }

  /// Shared tail of both warm paths: reset the iteration counters and
  /// derive the basic values from the restored inverse. A restored basis
  /// needs no artificial phase 1 (artificials stay pinned nonbasic at
  /// zero); basic values pushed outside their bounds by bound changes
  /// are flagged for the composite bound phase 1 instead.
  bool finish_warm_init() {
    iters_ = 0;
    stall_ = 0;
    use_bland_ = false;
    need_phase1_ = false;
    xb_.resize(m_);
    recompute_basic_values();
    const double tol = opt_.feas_tol * std::max(1.0, rhs_scale_);
    warm_infeasible_ = false;
    for (int i = 0; i < m_; ++i) {
      const int bvar = basis_[i];
      if (xb_[i] < lb_[bvar] - tol || xb_[i] > ub_[bvar] + tol)
        warm_infeasible_ = true;
    }
    return true;
  }

  /// Restores a statuses-only basis: the factorization must be rebuilt
  /// from scratch. Returns false — leaving the caller to run the cold
  /// start — when the basis has the wrong cardinality, is singular, or
  /// is no longer primal feasible.
  bool init_basis_warm(const Basis& warm) {
    if (static_cast<int>(warm.variables.size()) != n_ ||
        static_cast<int>(warm.slacks.size()) != m_)
      return false;
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    basis_.clear();
    for (int j = 0; j < n_; ++j) place_status(j, warm.variables[j], false);
    for (int i = 0; i < m_; ++i) place_status(n_ + i, warm.slacks[i], false);
    if (static_cast<int>(basis_.size()) != m_) return false;
    // Artificials stay pinned at their [0,0] bounds from build_bounds_and_costs.

    xb_.assign(m_, 0.0);
    if (dense_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    pivots_since_refactor_ = 0;
    if (!refactor()) return false;
    return finish_warm_init();
  }

  /// Restores a capsule: statuses plus the saved factorization, O(m +
  /// nnz). Requires the capsule to come from the same constraint matrix
  /// (the fingerprint check); bounds, costs and rhs may differ. The
  /// capsule's heavy buffers are *moved* into the worker (the capsule is
  /// marked consumed); save_state moves them back after an Optimal
  /// solve. A capsule without a usable factorization (saved by the
  /// dense-inverse path, or consumed under a different Factorization)
  /// still warm-starts from its basic set via a refactorization.
  bool init_from_state(WarmState& state) {
    if (static_cast<int>(state.basis.variables.size()) != n_ ||
        static_cast<int>(state.basis.slacks.size()) != m_ ||
        static_cast<int>(state.basic_vars.size()) != m_ ||
        state.fingerprint != fingerprint_)
      return false;
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    for (int j = 0; j < n_; ++j) place_status(j, state.basis.variables[j], true);
    for (int i = 0; i < m_; ++i)
      place_status(n_ + i, state.basis.slacks[i], true);
    int basics = 0;
    for (int j = 0; j < n_ + m_; ++j) basics += status_[j] == VarStatus::Basic;
    if (basics != m_) return false;
    // Each Basic-marked variable must appear in basic_vars exactly once;
    // a duplicate entry would desynchronize basis_ from the factorization.
    std::vector<char> seen(static_cast<std::size_t>(n_ + m_), 0);
    for (int b : state.basic_vars) {
      if (b < 0 || b >= n_ + m_ || status_[b] != VarStatus::Basic ||
          seen[static_cast<std::size_t>(b)])
        return false;
      seen[static_cast<std::size_t>(b)] = 1;
    }
    basis_ = std::move(state.basic_vars);
    state.valid = false;  // consumed; save_state re-validates after the solve
    if (!dense_ && state.lu.dimension() == m_) {
      lu_ = std::move(state.lu);
      pivots_since_refactor_ = state.pivots_since_refactor;
    } else {
      xb_.assign(m_, 0.0);
      if (dense_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
      pivots_since_refactor_ = 0;
      if (!refactor()) return false;
    }
    return finish_warm_init();
  }

  /// Refreshes the caller's capsule from the optimal basis just reached
  /// (moving the heavy buffers: the worker is done with them). A
  /// degenerate optimum with an artificial still basic cannot be
  /// captured (its column lives outside the public index space); the
  /// capsule is invalidated so the next solve runs cold. An eta file
  /// that outgrew capsule_eta_fill is compressed away by one extra
  /// refactorization first, so the capsule a long warm chain keeps
  /// re-saving stays O(base LU nnz) instead of accreting etas.
  void save_state(const Solution& sol, WarmState& state) {
    for (int b : basis_)
      if (b >= n_ + m_) {
        state.valid = false;
        return;
      }
    if (!dense_) {
      eta_peak_ = std::max(eta_peak_, lu_.eta_nnz());
      if (opt_.capsule_eta_fill >= 0.0 &&
          static_cast<double>(lu_.eta_nnz()) >
              opt_.capsule_eta_fill *
                  static_cast<double>(std::max(lu_.base_nnz(),
                                               static_cast<std::size_t>(m_)))) {
        // Post-extract, so the basic-value recompute inside is harmless.
        if (!refactor()) {
          state.valid = false;
          return;
        }
      }
    }
    state.basis = sol.basis;
    state.basic_vars = std::move(basis_);
    if (dense_)
      state.lu.clear();  // the dense inverse is not persisted
    else
      state.lu = std::move(lu_);
    state.pivots_since_refactor = pivots_since_refactor_;
    state.fingerprint = fingerprint_;
    state.valid = true;
  }

  void set_nonbasic_value(int j, VarStatus st) {
    status_[j] = st;
    switch (st) {
      case VarStatus::AtLower: value_[j] = lb_[j]; break;
      case VarStatus::AtUpper: value_[j] = ub_[j]; break;
      case VarStatus::Free: value_[j] = 0.0; break;
      case VarStatus::Basic: DLS_ASSERT(false);
    }
  }

  // ---- pricing -----------------------------------------------------------

  double current_cost(int j) const {
    if (in_phase1_) return j >= n_ + m_ ? 1.0 : 0.0;
    return cost_[j];
  }

  /// Phase-dependent cost of the basic variable in row i. The composite
  /// bound phase 1 charges violated basics +/-1 (recomputed every
  /// iteration: the charge drops once the variable re-enters its range).
  double basis_cost(int i) const {
    if (!in_phase1_) return cost_[basis_[i]];
    if (!bound_phase1_) return basis_[i] >= n_ + m_ ? 1.0 : 0.0;
    const int b = basis_[i];
    const double tol = opt_.feas_tol * std::max(1.0, rhs_scale_);
    if (xb_[i] > ub_[b] + tol) return 1.0;
    if (xb_[i] < lb_[b] - tol) return -1.0;
    return 0.0;
  }

  /// BTRAN of the phase-aware basic costs: y_ = c_B' B^{-1}.
  void compute_pricing_y() {
    y_.resize(m_);
    if (dense_) {
      std::fill(y_.begin(), y_.end(), 0.0);
      for (int i = 0; i < m_; ++i) {
        const double cb = basis_cost(i);
        if (cb == 0.0) continue;
        const double* row = &binv_[static_cast<std::size_t>(i) * m_];
        for (int k = 0; k < m_; ++k) y_[k] += cb * row[k];
      }
    } else {
      for (int i = 0; i < m_; ++i) y_[i] = basis_cost(i);
      lu_.btran(y_);
    }
  }

  /// Legacy full-scan pricing over freshly computed reduced costs: the
  /// Dantzig oracle, and the only pricing valid when the cost vector
  /// moves mid-iteration (composite bound phase 1) or when Bland's rule
  /// needs exact signs (anti-cycling).
  void pick_entering_full(int& q, bool& increase) {
    q = -1;
    increase = true;
    double best_score = opt_.opt_tol;
    for (int j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::Basic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed: can never move
      double d = current_cost(j);
      for_each_in_column(j, [&](int row, double coef) { d -= y_[row] * coef; });
      const bool can_up = status_[j] != VarStatus::AtUpper;
      const bool can_down = status_[j] != VarStatus::AtLower;
      if (use_bland_) {
        if (can_up && d < -opt_.opt_tol) { q = j; increase = true; break; }
        if (can_down && d > opt_.opt_tol) { q = j; increase = false; break; }
      } else {
        const double bar = best_score * (1.0 + kTieMargin);
        if (can_up && -d > bar) { best_score = -d; q = j; increase = true; }
        if (can_down && d > bar) { best_score = d; q = j; increase = false; }
      }
    }
  }

  /// Windowed variant of the legacy scan for the composite bound
  /// phase 1 under the incremental rules: the virtual costs move with
  /// every pivot, so nothing can be maintained across iterations — but a
  /// full O(nnz) sweep per pivot is overkill when any descent direction
  /// makes progress. Scans cycling windows of freshly computed reduced
  /// costs and takes the best of the first window that holds a
  /// candidate; a full cycle with nothing attractive is exact
  /// optimality, same as the full scan. (The Dantzig oracle and Bland's
  /// rule keep the full scan: the former by definition, the latter for
  /// its termination guarantee.)
  void pick_entering_window(int& q, bool& increase) {
    q = -1;
    increase = true;
    const int nn = total_;
    int start = phase1_cursor_;
    int examined = 0;
    double best_score = opt_.opt_tol;
    while (examined < nn) {
      const int count = std::min(window_, nn - examined);
      for (int t = 0; t < count; ++t) {
        int j = start + t;
        if (j >= nn) j -= nn;
        if (status_[j] == VarStatus::Basic || lb_[j] == ub_[j]) continue;
        double d = current_cost(j);
        for_each_in_column(j, [&](int row, double coef) { d -= y_[row] * coef; });
        const double bar = best_score * (1.0 + kTieMargin);
        if (status_[j] != VarStatus::AtUpper && -d > bar) {
          best_score = -d;
          q = j;
          increase = true;
        }
        if (status_[j] != VarStatus::AtLower && d > bar) {
          best_score = d;
          q = j;
          increase = false;
        }
      }
      examined += count;
      start += count;
      if (start >= nn) start -= nn;
      if (q >= 0) break;
    }
    phase1_cursor_ = start;
  }

  /// Drops the weakest candidates until roughly cand_cap_ remain, using
  /// a histogram over the binary exponents of |d| instead of a selection
  /// sort: one pass counts candidates per binade, a walk from the top
  /// binade finds the cutoff that keeps at least cand_cap_, and a final
  /// pass compacts the list in place — index order (and thus the
  /// tie-breaking scan order) is preserved, and no comparator ever runs.
  /// Whole binades are kept or dropped, so heavy score ties can leave
  /// somewhat more than cand_cap_ candidates; that only costs speed,
  /// never correctness (off-list columns are re-found by the next
  /// refresh).
  void truncate_candidates() {
    constexpr int kBuckets = 2048;  // full biased-exponent range of a double
    int hist[kBuckets];
    std::memset(hist, 0, sizeof(hist));
    const auto binade = [this](int j) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d_[j], sizeof(bits));
      return static_cast<int>((bits >> 52) & 0x7ff);
    };
    for (const int j : cand_) ++hist[binade(j)];
    std::size_t kept = 0;
    int cutoff = 0;
    for (int b = kBuckets - 1; b >= 0; --b) {
      kept += static_cast<std::size_t>(hist[b]);
      if (kept >= cand_cap_) {
        cutoff = b;
        break;
      }
    }
    // Whole binades above the cutoff are kept; the cutoff binade fills
    // the remainder in index order. The hard cap matters on the tied
    // cohorts of these route LPs: thousands of columns can share one
    // binade, and keeping them all would make every per-pivot candidate
    // sweep O(n/16) no matter what cap the caller asked for.
    std::size_t keep = 0;
    std::size_t cutoff_left = cand_cap_ - std::min(
        cand_cap_, kept - static_cast<std::size_t>(hist[cutoff]));
    for (std::size_t s = 0; s < cand_.size(); ++s) {
      const int j = cand_[s];
      const int b = binade(j);
      if (b > cutoff || (b == cutoff && cutoff_left > 0)) {
        cand_[keep++] = j;
        if (b == cutoff) --cutoff_left;
      } else {
        in_cand_[j] = 0;
      }
    }
    cand_.resize(keep);
  }

  /// Profitable to move in some allowed direction at the opt tolerance.
  bool attractive(int j) const {
    const double d = d_[j];
    return (status_[j] != VarStatus::AtUpper && d < -opt_.opt_tol) ||
           (status_[j] != VarStatus::AtLower && d > opt_.opt_tol);
  }

  /// Recomputes the whole reduced-cost vector (one BTRAN + one sweep of
  /// the column structures), resets the Devex reference framework, and
  /// rebuilds the candidate list. Runs at phase entry, after every
  /// refactorization (the incremental updates drift at the same rate the
  /// factorization does), on Devex weight overflow, and as the
  /// confirmation pass before declaring optimality.
  void refresh_pricing() {
    ++refresh_count_;
    const int nn = n_ + m_;
    compute_pricing_y();
    d_.resize(nn);
    // One fused pass over the columns: reduced cost, Devex weight reset
    // and candidate collection together. Per-column arithmetic, scan
    // order and the resulting candidate list are identical to running
    // the three passes separately; fusing just avoids streaming the
    // O(n) arrays through the cache three times per refresh.
    const bool se = rule_ == Pricing::SteepestEdge;
    if (se) {
      weights_.resize(nn);
      cand_.clear();
      in_cand_.assign(nn, 0);
    }
    const detail::ColumnCache& c = *cols_;
    for (int j = 0; j < nn; ++j) {
      if (se) weights_[j] = 1.0;
      if (status_[j] == VarStatus::Basic) {
        d_[j] = 0.0;
        continue;
      }
      double d = current_cost(j);
      if (j < n_) {
        for (int p = c.col_ptr[j]; p < c.col_ptr[j + 1]; ++p)
          d -= y_[c.col_row[p]] * c.col_val[p];
      } else {
        d -= y_[j - n_];  // slack column e_{j-n}
      }
      d_[j] = d;
      if (se && lb_[j] != ub_[j] && attractive(j)) {
        cand_.push_back(j);
        in_cand_[j] = 1;
      }
    }
    if (se && cand_.size() > cand_cap_) truncate_candidates();
    d_fresh_ = true;
    pricing_ready_ = true;
  }

  /// Cheap mid-phase candidate refill for steepest edge, replacing the
  /// full O(n) refresh the solver used to pay every time its candidate
  /// list ran dry (on LPs with n >> m — K^2 route columns over O(K)
  /// rows — one pivot neutralizes whole cohorts of tied columns, so dry
  /// lists are the common case, every handful of pivots). One BTRAN
  /// refreshes y, then cycling windows of columns get their reduced
  /// costs recomputed with exactly the per-column arithmetic of
  /// refresh_pricing; the first window yielding attractive columns ends
  /// the scan. Refilled candidates restart at the Devex reference
  /// weight. A fruitless full cycle recomputed every reduced cost
  /// against one fresh y — the same optimality evidence a full refresh
  /// produces — so it sets d_fresh_ and the caller can declare
  /// optimality without another O(n) pass.
  bool refill_candidates() {
    const int nn = n_ + m_;
    compute_pricing_y();
    const detail::ColumnCache& c = *cols_;
    int start = refill_cursor_;
    int examined = 0;
    bool found = false;
    while (examined < nn && !found) {
      const int count = std::min(window_, nn - examined);
      for (int t = 0; t < count; ++t) {
        int j = start + t;
        if (j >= nn) j -= nn;
        if (status_[j] == VarStatus::Basic) {
          d_[j] = 0.0;
          continue;
        }
        double d = current_cost(j);
        if (j < n_) {
          for (int p = c.col_ptr[j]; p < c.col_ptr[j + 1]; ++p)
            d -= y_[c.col_row[p]] * c.col_val[p];
        } else {
          d -= y_[j - n_];
        }
        d_[j] = d;
        if (lb_[j] == ub_[j] || in_cand_[j]) continue;
        if (attractive(j)) {
          weights_[j] = 1.0;
          in_cand_[j] = 1;
          cand_.push_back(j);
          found = true;
        }
      }
      examined += count;
      start += count;
      if (start >= nn) start -= nn;
    }
    refill_cursor_ = start;
    if (cand_.size() > cand_cap_) truncate_candidates();
    if (!found && examined >= nn) d_fresh_ = true;
    return found;
  }

  /// Entering-variable selection over the incrementally maintained
  /// reduced costs. SteepestEdge scans (and compacts) the candidate
  /// list, scoring d^2/weight; Partial scans a cycling window with
  /// Dantzig scores, stopping at the first window holding a candidate.
  void pick_entering_incremental(int& q, bool& increase) {
    q = -1;
    increase = true;
    if (rule_ == Pricing::SteepestEdge) {
      double best = 0.0;
      std::size_t keep = 0;
      for (std::size_t s = 0; s < cand_.size(); ++s) {
        const int j = cand_[s];
        if (status_[j] == VarStatus::Basic || lb_[j] == ub_[j] ||
            !attractive(j)) {
          in_cand_[j] = 0;  // lazily dropped; re-added if it turns attractive
          continue;
        }
        cand_[keep++] = j;
        const double d = d_[j];
        const double score = d * d / weights_[j];
        if (score > best * (1.0 + kTieMargin)) {
          best = score;
          q = j;
          increase = d < 0.0;
        }
      }
      cand_.resize(keep);
      return;
    }
    const int nn = n_ + m_;
    int start = partial_cursor_;
    int examined = 0;
    double best_score = opt_.opt_tol;
    while (examined < nn) {
      const int count = std::min(window_, nn - examined);
      for (int t = 0; t < count; ++t) {
        int j = start + t;
        if (j >= nn) j -= nn;
        if (status_[j] == VarStatus::Basic || lb_[j] == ub_[j]) continue;
        const double d = d_[j];
        const double bar = best_score * (1.0 + kTieMargin);
        if (status_[j] != VarStatus::AtUpper && -d > bar) {
          best_score = -d;
          q = j;
          increase = true;
        }
        if (status_[j] != VarStatus::AtLower && d > bar) {
          best_score = d;
          q = j;
          increase = false;
        }
      }
      examined += count;
      start += count;
      if (start >= nn) start -= nn;
      if (q >= 0) break;
    }
    partial_cursor_ = start;
  }

  /// Post-pivot maintenance of the incremental pricing state: with the
  /// pivot row alpha_r = rho' A (rho = row `leave` of the pre-update
  /// B^{-1}, so this must run before the factorization absorbs the
  /// pivot), every reduced cost moves by d_j -= (d_q / alpha_rq) *
  /// alpha_rj, and the Devex weights take their reference update from
  /// the same row. Called after the status flips (q basic, old_var at a
  /// bound), so the touched sweep skips q and updates old_var naturally.
  void update_pricing(int q, int old_var, int leave, double pivot) {
    const int nn = n_ + m_;
    const double ratio = d_[q] / pivot;
    const double wq = rule_ == Pricing::SteepestEdge ? weights_[q] : 0.0;
    const double inv_p2 = 1.0 / (pivot * pivot);

    // rho = (row `leave` of B^{-1})' with its nonzero support. On the
    // hypersparse path the solve itself hands back the pattern; the
    // dense inverse keeps its scan (a dense row has no other source).
    const double* rv;
    if (dense_) {
      rv = &binv_[static_cast<std::size_t>(leave) * m_];
      rho_nz_.clear();
      for (int i = 0; i < m_; ++i)
        if (rv[i] != 0.0) rho_nz_.push_back(i);
    } else if (hyper_) {
      const BasisLu::SolveStats hst =
          lu_.btran_unit_sparse(leave, a_.rho, hs_, opt_.hypersparse_crossover);
      HyperObs& ho = hyper_obs();
      ho.btran_reach.observe(
          hst.fallback ? 1.0 : static_cast<double>(hst.reach) / m_);
      if (hst.fallback) ho.btran_fallbacks.inc();
      rv = rho_.data();
    } else {
      lu_.btran_unit(leave, rho_, &rho_nz_);
      rv = rho_.data();
    }

    // Two ways to apply alpha = rho' A.
    //
    // Row-wise scatters every touched column (exact maintenance of the
    // whole d_ vector, and newly attractive columns join the candidate
    // list); its cost is the nnz of the rows in rho's support, which on
    // a near-dense rho is the whole matrix. Column-wise computes
    // alpha_j = rho . A_j for the *candidates only* — the off-candidate
    // reduced costs go stale, which steepest-edge tolerates because
    // optimality is only ever declared off a fresh confirmation pass
    // (refresh_pricing rebuilds the list when the candidates run dry).
    // On a warm re-solve the candidate list is a few dozen columns while
    // rho is dense, so the candidate sweep turns an O(nnz) pivot into a
    // near-free one. Pick whichever sweep reads fewer coefficients; the
    // choice is deterministic (it depends only on the pivot path so
    // far), so solves stay reproducible.
    std::size_t rowwise_cost = rho_nz_.size();
    for (const int i : rho_nz_) rowwise_cost += model_.row(i).size();
    const std::size_t avg_col_nnz =
        1 + static_cast<std::size_t>(cols_->col_ptr[n_]) /
                static_cast<std::size_t>(std::max(1, n_));
    const bool column_wise = rule_ == Pricing::SteepestEdge &&
                             cand_.size() * avg_col_nnz < rowwise_cost;

    if (column_wise) {
      std::size_t keep = 0;
      for (std::size_t s = 0; s < cand_.size(); ++s) {
        const int j = cand_[s];
        if (status_[j] == VarStatus::Basic || lb_[j] == ub_[j]) {
          in_cand_[j] = 0;
          continue;
        }
        cand_[keep++] = j;
        double aj = 0.0;
        for_each_in_column(j, [&](int row, double coef) { aj += rv[row] * coef; });
        if (aj == 0.0) continue;
        d_[j] -= ratio * aj;
        const double w_new = aj * aj * inv_p2 * wq;
        if (w_new > weights_[j]) {
          weights_[j] = w_new;
          if (w_new > kWeightCap) weight_overflow_ = true;
        }
      }
      cand_.resize(keep);
    } else {
      // Artificial columns are skipped: they are only ever basic or fixed.
      touched_.clear();
      for (const int i : rho_nz_) {
        const double ri = rv[i];
        const int s = n_ + i;
        if (alpha_[s] == 0.0) touched_.push_back(s);
        alpha_[s] += ri;
        for (const Term& t : model_.row(i)) {
          if (alpha_[t.var] == 0.0) touched_.push_back(t.var);
          alpha_[t.var] += ri * t.coef;
        }
      }

      for (const int j : touched_) {
        const double aj = alpha_[j];
        alpha_[j] = 0.0;
        if (aj == 0.0) continue;  // duplicate entry after exact cancellation
        if (status_[j] == VarStatus::Basic || lb_[j] == ub_[j]) continue;
        d_[j] -= ratio * aj;
        if (rule_ == Pricing::SteepestEdge) {
          const double w_new = aj * aj * inv_p2 * wq;
          if (w_new > weights_[j]) {
            weights_[j] = w_new;
            if (w_new > kWeightCap) weight_overflow_ = true;
          }
          // Newly attractive columns rejoin the list, but never past
          // twice the cap — beyond that they wait for the next refresh,
          // keeping the per-pivot scan bounded.
          if (!in_cand_[j] && cand_.size() < 2 * cand_cap_ && attractive(j)) {
            in_cand_[j] = 1;
            cand_.push_back(j);
          }
        }
      }
    }

    d_[q] = 0.0;  // entered the basis
    if (old_var < nn) {  // a leaving artificial is pinned, never re-priced
      d_[old_var] = -ratio;
      if (rule_ == Pricing::SteepestEdge) {
        weights_[old_var] = std::max(wq * inv_p2, 1.0);
        if (!in_cand_[old_var] && attractive(old_var)) {
          in_cand_[old_var] = 1;
          cand_.push_back(old_var);
        }
      }
    }
    d_fresh_ = false;
    if (weight_overflow_) {
      // Reference framework exhausted: schedule a full refresh, which
      // restarts every weight at 1.
      weight_overflow_ = false;
      pricing_ready_ = false;
    }
  }

  // ---- iteration ---------------------------------------------------------

  double infeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i)
      if (basis_[i] >= n_ + m_) total += std::max(0.0, xb_[i]);
    return total;
  }

  /// Total bound violation of the basic values (composite phase 1).
  double bound_infeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[i];
      total += std::max(0.0, xb_[i] - ub_[b]) + std::max(0.0, lb_[b] - xb_[i]);
    }
    return total;
  }

  SolveStatus iterate(int max_iters) {
    y_.resize(m_);
    if (hyper_)
      a_.w.reset(m_);  // restore the invariant whatever mode used the arena last
    else
      w_.resize(m_);
    pricing_ready_ = false;  // every phase starts from a fresh pricing pass
    while (true) {
      if (iters_ >= max_iters) return SolveStatus::IterationLimit;

      // The incremental rules assume a cost vector that is constant
      // across pivots; the composite bound phase 1 violates that (its
      // virtual costs follow the violations), and Bland's termination
      // guarantee needs exact reduced-cost signs. Both fall back to the
      // legacy recompute-every-iteration loop, as does the Dantzig
      // oracle by definition.
      const bool legacy =
          rule_ == Pricing::Dantzig || bound_phase1_ || use_bland_;
      int q = -1;
      bool increase = true;
      if (legacy) {
        compute_pricing_y();
        if (bound_phase1_ && !use_bland_ && rule_ != Pricing::Dantzig) {
          pick_entering_window(q, increase);
        } else {
          pick_entering_full(q, increase);
        }
      } else {
        if (!pricing_ready_) refresh_pricing();
        pick_entering_incremental(q, increase);
        if (q < 0 && !d_fresh_ && rule_ == Pricing::SteepestEdge) {
          // Dry candidate list mid-phase: refill from cycling windows
          // of freshly recomputed reduced costs instead of paying a
          // full O(n) refresh. A fruitless full cycle sets d_fresh_ —
          // optimality confirmed off fresh values, same as a refresh.
          if (refill_candidates()) pick_entering_incremental(q, increase);
        }
        if (q < 0 && !d_fresh_) {
          // Confirmation pass: the maintained reduced costs carry
          // rounding drift, so optimality is only declared off a
          // freshly recomputed vector.
          refresh_pricing();
          pick_entering_incremental(q, increase);
        }
      }
      if (q < 0) return SolveStatus::Optimal;

      // FTRAN: w = B^{-1} A_q.
      if (hyper_) {
        a_.w.clear_support();
        for_each_in_column(q, [&](int row, double coef) {
          if (w_[row] == 0.0) w_nz_.push_back(row);
          w_[row] += coef;
        });
        const BasisLu::SolveStats hst =
            lu_.ftran_sparse(a_.w, hs_, opt_.hypersparse_crossover);
        HyperObs& ho = hyper_obs();
        ho.ftran_reach.observe(
            hst.fallback ? 1.0 : static_cast<double>(hst.reach) / m_);
        if (hst.fallback) ho.ftran_fallbacks.inc();
      } else {
        std::fill(w_.begin(), w_.end(), 0.0);
        if (dense_) {
          for_each_in_column(q, [&](int row, double coef) {
            for (int i = 0; i < m_; ++i) w_[i] += binv_at(i, row) * coef;
          });
        } else {
          for_each_in_column(q, [&](int row, double coef) { w_[row] += coef; });
          lu_.ftran(w_);
        }
      }

      const double dir = increase ? 1.0 : -1.0;

      // Ratio test. The entering variable can move t >= 0 in direction
      // dir until (a) it reaches its own opposite bound, or (b) a basic
      // variable reaches one of its bounds. In the composite bound
      // phase 1 a basic *outside* its bounds blocks only when moving
      // back toward its violated bound (it stops there, where its +/-1
      // charge drops); moving further away it imposes no limit — the
      // pricing step only selects directions that shrink the total
      // violation.
      const double btol =
          bound_phase1_ ? opt_.feas_tol * std::max(1.0, rhs_scale_) : 0.0;
      double t_best = kInf;
      int leave = -1;  // row index; -1 = entering flips to its other bound
      bool leave_upper = false;  // which bound the leaving basic rests at
      if (std::isfinite(lb_[q]) && std::isfinite(ub_[q])) t_best = ub_[q] - lb_[q];
      double leave_pivot = 0.0;
      // On the hypersparse path only w's support can block; its pattern
      // is ascending, so the tie-breaking scan order matches the dense
      // sweep (off-pattern entries are exact zeros the sweep skips).
      const int wn = hyper_ ? static_cast<int>(w_nz_.size()) : m_;
      for (int k = 0; k < wn; ++k) {
        const int i = hyper_ ? w_nz_[k] : k;
        const double delta = -dir * w_[i];  // d(x_B[i]) / dt
        if (std::fabs(delta) <= opt_.pivot_tol) continue;
        const int bvar = basis_[i];
        double limit = kInf;
        bool at_upper = false;
        if (bound_phase1_ && xb_[i] > ub_[bvar] + btol) {
          if (delta < 0.0) {
            limit = (ub_[bvar] - xb_[i]) / delta;
            at_upper = true;
          }
        } else if (bound_phase1_ && xb_[i] < lb_[bvar] - btol) {
          if (delta > 0.0) limit = (lb_[bvar] - xb_[i]) / delta;
        } else if (delta > 0.0) {
          if (std::isfinite(ub_[bvar])) {
            limit = (ub_[bvar] - xb_[i]) / delta;
            at_upper = true;
          }
        } else {
          if (std::isfinite(lb_[bvar])) limit = (lb_[bvar] - xb_[i]) / delta;
        }
        if (limit == kInf) continue;
        limit = std::max(limit, 0.0);  // clamp tolerance-level negatives
        // Prefer strictly smaller limits; on near-ties keep the row with
        // the largest pivot magnitude for numerical stability. The pivot
        // comparison carries the same relative margin as pricing so that
        // mathematically tied pivots resolve by row order, not by
        // factorization-dependent noise.
        if (limit < t_best - 1e-12 ||
            (limit < t_best + 1e-12 &&
             std::fabs(w_[i]) > std::fabs(leave_pivot) * (1.0 + kTieMargin))) {
          t_best = limit;
          leave = i;
          leave_pivot = w_[i];
          leave_upper = at_upper;
        }
      }

      if (t_best == kInf) {
        DLS_ASSERT(!in_phase1_);  // phase-1 objective is bounded below
        return SolveStatus::Unbounded;
      }

      ++iters_;
      if (t_best > 1e-10) {
        stall_ = 0;
      } else if (++stall_ > opt_.stall_limit) {
        use_bland_ = true;  // anti-cycling fallback; never switched back
      }

      // Apply the step to the basic values (only w's support moves).
      if (hyper_) {
        for (const int i : w_nz_) xb_[i] -= dir * t_best * w_[i];
      } else {
        for (int i = 0; i < m_; ++i) xb_[i] -= dir * t_best * w_[i];
      }

      if (leave < 0) {
        // Bound flip: basis (and the reduced costs) unchanged.
        set_nonbasic_value(q, increase ? VarStatus::AtUpper : VarStatus::AtLower);
        continue;
      }

      // Pivot: q enters at row `leave`, the old basic leaves to the bound
      // it just reached.
      const int old_var = basis_[leave];
      set_nonbasic_value(old_var,
                         leave_upper ? VarStatus::AtUpper : VarStatus::AtLower);
      // An artificial that leaves the basis is pinned for good.
      if (old_var >= n_ + m_) {
        lb_[old_var] = ub_[old_var] = 0.0;
        set_nonbasic_value(old_var, VarStatus::AtLower);
      }
      const double enter_value = value_[q] + dir * t_best;
      basis_[leave] = q;
      status_[q] = VarStatus::Basic;
      xb_[leave] = enter_value;

      // Pricing update needs the pre-update factorization for its BTRAN.
      if (!legacy) update_pricing(q, old_var, leave, leave_pivot);

      if (dense_) {
        update_binv(leave, w_);
      } else if (hyper_ ? !lu_.update(leave, a_.w, opt_.pivot_tol)
                        : !lu_.update(leave, w_, opt_.pivot_tol)) {
        // The ratio test guarantees a usable pivot, so this is a pure
        // numerical-drift escape hatch: rebuild from the updated basis.
        if (!refactor()) return SolveStatus::NumericalError;
        pricing_ready_ = false;
      }

      if (++pivots_since_refactor_ >= refactor_cap() || eta_fill_exceeded()) {
        if (!refactor()) return SolveStatus::NumericalError;
        pricing_ready_ = false;
      }
    }
  }

  int refactor_cap() const {
    // Dense Gauss-Jordan rebuilds are O(m^3), so they are spaced out on
    // big bases. On the sparse path the fill trigger below is the
    // policy; the pivot count is only a numerical-drift backstop, scaled
    // to the basis size. Disabling the fill trigger (refactor_fill <= 0)
    // restores the historical fixed-interval behavior.
    if (dense_) return std::max(opt_.refactor_interval, m_ / 4);
    return opt_.refactor_fill > 0.0 ? std::max(opt_.refactor_interval, m_)
                                    : opt_.refactor_interval;
  }

  /// Fill-based refactorization trigger: the eta file has outgrown
  /// refactor_fill times the base LU, so FTRAN/BTRAN now spend more time
  /// replaying etas than a rebuilt factorization would cost.
  bool eta_fill_exceeded() const {
    if (dense_ || opt_.refactor_fill <= 0.0) return false;
    return static_cast<double>(lu_.eta_nnz()) >
           opt_.refactor_fill *
               static_cast<double>(
                   std::max(lu_.base_nnz(), static_cast<std::size_t>(m_)));
  }

  /// Elementary row transformation of B^{-1} for a pivot in row r with
  /// FTRAN column w: row r scales by 1/w_r, other rows eliminate w_i.
  void update_binv(int r, const std::vector<double>& w) {
    const double piv = w[r];
    DLS_ASSERT(std::fabs(piv) > 0.0);
    double* prow = &binv_[static_cast<std::size_t>(r) * m_];
    const double inv = 1.0 / piv;
    for (int k = 0; k < m_; ++k) prow[k] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == r || w[i] == 0.0) continue;
      const double f = w[i];
      double* irow = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
    }
  }

  /// Rebuilds the basis factorization from scratch and recomputes the
  /// basic values. SparseLu gathers the basic columns in CSC form and
  /// runs the Markowitz LU; DenseInverse runs the legacy Gauss-Jordan
  /// inversion. Returns false on a singular basis.
  bool refactor() {
    pivots_since_refactor_ = 0;
    ++refactor_count_;
    if (!dense_) {
      if (lu_.valid()) eta_peak_ = std::max(eta_peak_, lu_.eta_nnz());
      csc_ptr_.assign(m_ + 1, 0);
      csc_row_.clear();
      csc_val_.clear();
      for (int i = 0; i < m_; ++i) {
        for_each_in_column(basis_[i], [&](int row, double coef) {
          csc_row_.push_back(row);
          csc_val_.push_back(coef);
        });
        csc_ptr_[i + 1] = static_cast<int>(csc_row_.size());
      }
      if (!lu_.factorize(m_, csc_ptr_, csc_row_, csc_val_)) return false;
      recompute_basic_values();
      return true;
    }
    // Gather B (dense, column per basic variable).
    scratch_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      for_each_in_column(basis_[i],
                         [&](int row, double coef) { scratch_at(row, i) = coef; });
    }
    // Invert scratch into binv_.
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_at(i, i) = 1.0;
    for (int col = 0; col < m_; ++col) {
      int piv_row = col;
      double piv_val = std::fabs(scratch_at(col, col));
      for (int i = col + 1; i < m_; ++i) {
        if (std::fabs(scratch_at(i, col)) > piv_val) {
          piv_val = std::fabs(scratch_at(i, col));
          piv_row = i;
        }
      }
      if (piv_val < 1e-12) return false;
      if (piv_row != col) {
        swap_rows(scratch_, piv_row, col);
        swap_rows(binv_, piv_row, col);
      }
      const double inv = 1.0 / scratch_at(col, col);
      for (int k = 0; k < m_; ++k) {
        scratch_at(col, k) *= inv;
        binv_at(col, k) *= inv;
      }
      for (int i = 0; i < m_; ++i) {
        if (i == col) continue;
        const double f = scratch_at(i, col);
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          scratch_at(i, k) -= f * scratch_at(col, k);
          binv_at(i, k) -= f * binv_at(col, k);
        }
      }
    }
    recompute_basic_values();
    return true;
  }

  /// x_B = B^{-1} (b - N x_N) from the current factorization and
  /// nonbasic values.
  void recompute_basic_values() {
    r_ = b_;
    for (int j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::Basic || value_[j] == 0.0) continue;
      for_each_in_column(j, [&](int row, double coef) { r_[row] -= coef * value_[j]; });
    }
    if (!dense_) {
      lu_.ftran(r_);
      xb_.swap(r_);
      return;
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      const double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) v += row[k] * r_[k];
      xb_[i] = v;
    }
  }

  void swap_rows(std::vector<double>& mat, int a, int bb) {
    double* ra = &mat[static_cast<std::size_t>(a) * m_];
    double* rb = &mat[static_cast<std::size_t>(bb) * m_];
    std::swap_ranges(ra, ra + m_, rb);
  }

  // ---- extraction --------------------------------------------------------

  Solution solve_unconstrained() {
    // No rows: each variable independently goes to its best bound.
    Solution sol;
    sol.x.assign(n_, 0.0);
    const double sign = model_.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (int j = 0; j < n_; ++j) {
      const double c = sign * model_.objective_coef(j);
      if (c > 0.0) {
        if (!std::isfinite(lb_[j])) { sol.status = SolveStatus::Unbounded; return sol; }
        sol.x[j] = lb_[j];
      } else if (c < 0.0) {
        if (!std::isfinite(ub_[j])) { sol.status = SolveStatus::Unbounded; return sol; }
        sol.x[j] = ub_[j];
      } else {
        sol.x[j] = std::isfinite(lb_[j]) ? lb_[j] : (std::isfinite(ub_[j]) ? ub_[j] : 0.0);
      }
    }
    sol.status = SolveStatus::Optimal;
    sol.objective = model_.objective_value(sol.x);
    return sol;
  }

  void extract(Solution& sol) const {
    sol.x.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) sol.x[j] = value_[j];
    for (int i = 0; i < m_; ++i)
      if (basis_[i] < n_) sol.x[basis_[i]] = xb_[i];
    // Snap solver noise onto the bounds so downstream validation is clean.
    for (int j = 0; j < n_; ++j) {
      if (std::isfinite(lb_[j])) sol.x[j] = std::max(sol.x[j], lb_[j]);
      if (std::isfinite(ub_[j])) sol.x[j] = std::min(sol.x[j], ub_[j]);
    }
    if (sol.status == SolveStatus::Optimal) {
      const auto public_status = [&](int j) {
        switch (status_[j]) {
          case VarStatus::Basic: return BasisStatus::Basic;
          case VarStatus::AtUpper: return BasisStatus::AtUpper;
          case VarStatus::Free: return BasisStatus::Free;
          case VarStatus::AtLower: break;
        }
        return BasisStatus::AtLower;
      };
      sol.basis.variables.resize(n_);
      sol.basis.slacks.resize(m_);
      for (int j = 0; j < n_; ++j) sol.basis.variables[j] = public_status(j);
      for (int i = 0; i < m_; ++i) sol.basis.slacks[i] = public_status(n_ + i);
      sol.objective = model_.objective_value(sol.x);
      if (opt_.compute_duals) {
        // Shadow prices: y = c_B' B^{-1} of the internal minimize form,
        // negated back for Maximize so duals are d(objective)/d(rhs).
        sol.duals.assign(m_, 0.0);
        if (dense_) {
          for (int i = 0; i < m_; ++i) {
            const double cb = cost_[basis_[i]];
            if (cb == 0.0) continue;
            const double* row = &binv_[static_cast<std::size_t>(i) * m_];
            for (int k = 0; k < m_; ++k) sol.duals[k] += cb * row[k];
          }
        } else {
          for (int i = 0; i < m_; ++i) sol.duals[i] = cost_[basis_[i]];
          lu_.btran(sol.duals);
        }
        if (model_.sense() == Sense::Maximize)
          for (double& d : sol.duals) d = -d;
      }
    }
  }

  double& binv_at(int i, int j) { return binv_[static_cast<std::size_t>(i) * m_ + j]; }
  double binv_at(int i, int j) const { return binv_[static_cast<std::size_t>(i) * m_ + j]; }
  double& scratch_at(int i, int j) { return scratch_[static_cast<std::size_t>(i) * m_ + j]; }

  const Model& model_;
  const SimplexOptions& opt_;
  detail::ArenaImpl& a_;

  // Arena-backed buffers (aliases keep the solver body readable).
  std::vector<double>& lb_;
  std::vector<double>& ub_;
  std::vector<double>& cost_;
  std::vector<double>& b_;
  std::vector<double>& art_sign_;
  std::vector<VarStatus>& status_;
  std::vector<double>& value_;  // nonbasic resting values (basics in xb_)
  std::vector<double>& xb_;
  std::vector<int>& basis_;
  BasisLu& lu_;                          // sparse path
  std::vector<int>& csc_ptr_;            // basis-gather scratch (sparse path)
  std::vector<int>& csc_row_;
  std::vector<double>& csc_val_;
  std::vector<double>& binv_;            // dense path
  std::vector<double>& scratch_;
  std::vector<double>& y_;
  std::vector<double>& w_;       // FTRAN image values (arena.w.values)
  std::vector<int>& w_nz_;       // its support when hyper_ (arena.w.pattern)
  std::vector<double>& rho_;     // pricing row values (arena.rho.values)
  std::vector<int>& rho_nz_;     // its support (arena.rho.pattern)
  std::vector<double>& r_;
  SolveScratch& hs_;             // hypersparse reach-set workspace
  std::vector<double>& d_;       // incremental reduced costs
  std::vector<double>& weights_; // Devex reference weights
  std::vector<double>& alpha_;   // pivot-row scatter (kept all-zero between uses)
  std::vector<int>& cand_;       // steepest-edge candidate list
  std::vector<int>& touched_;
  std::vector<char>& in_cand_;

  const detail::ColumnCache* cols_ = nullptr;
  bool cache_hit_ = false;

  bool dense_ = false;  ///< Factorization::DenseInverse baseline path
  bool hyper_ = false;  ///< reach-set basis solves on the sparse path
  Pricing rule_ = Pricing::SteepestEdge;
  int n_ = 0, m_ = 0, total_ = 0;
  int window_ = 0;           ///< partial-pricing window size
  int phase1_cursor_ = 0;    ///< cycling cursor of the phase-1 window scan
  std::size_t cand_cap_ = 0; ///< steepest-edge candidate-list cap
  int partial_cursor_ = 0;
  int refill_cursor_ = 0;    ///< cycling cursor of the candidate refill scan

  double rhs_scale_ = 1.0;
  std::uint64_t fingerprint_ = 0;
  bool need_phase1_ = false;
  bool in_phase1_ = false;
  bool bound_phase1_ = false;      ///< composite flavor: basics carry violation
  bool warm_infeasible_ = false;   ///< warm restore left basics out of bounds
  bool use_bland_ = false;
  bool pricing_ready_ = false;     ///< incremental d_/weights_ initialized
  bool d_fresh_ = false;           ///< d_ recomputed since the last pivot
  bool weight_overflow_ = false;
  int iters_ = 0, stall_ = 0, pivots_since_refactor_ = 0;
  int refactor_count_ = 0;
  int refresh_count_ = 0;
  std::size_t eta_peak_ = 0;
};

}  // namespace

bool Basis::compatible(const Model& model) const {
  return static_cast<int>(variables.size()) == model.num_variables() &&
         static_cast<int>(slacks.size()) == model.num_constraints();
}

std::size_t WarmState::memory_bytes() const {
  return basis.variables.size() * sizeof(BasisStatus) +
         basis.slacks.size() * sizeof(BasisStatus) +
         basic_vars.size() * sizeof(int) + lu.memory_bytes() + sizeof(*this);
}

std::shared_ptr<const detail::ColumnCache> ColumnCacheStore::find(
    std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = caches_.find(fingerprint);
  if (it == caches_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void ColumnCacheStore::insert(std::shared_ptr<const detail::ColumnCache> cache) {
  if (!cache) return;
  std::lock_guard<std::mutex> lock(mutex_);
  caches_.emplace(cache->fingerprint, std::move(cache));
}

std::size_t ColumnCacheStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ColumnCacheStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

SolveArena::SolveArena() : impl_(std::make_unique<detail::ArenaImpl>()) {}

SolveArena::SolveArena(std::shared_ptr<ColumnCacheStore> store)
    : impl_(std::make_unique<detail::ArenaImpl>()) {
  impl_->store = std::move(store);
}

SolveArena::~SolveArena() = default;
SolveArena::SolveArena(SolveArena&&) noexcept = default;
SolveArena& SolveArena::operator=(SolveArena&&) noexcept = default;

Solution SimplexSolver::solve(const Model& model, const Basis* warm) const {
  SolveArena arena;
  return solve(model, warm, arena);
}

Solution SimplexSolver::solve(const Model& model, WarmState* state) const {
  SolveArena arena;
  return solve(model, state, arena);
}

Solution SimplexSolver::solve(const Model& model, SolveArena& arena) const {
  return solve(model, static_cast<const Basis*>(nullptr), arena);
}

namespace {

// Every solve funnels through the two arena overloads below, so this
// is the one place the lp layer reports to obs. Handles are resolved
// once; each record is a handful of relaxed atomics on the calling
// thread's shard.
struct LpObs {
  obs::Counter cold, warm, repaired;
  obs::Counter pivots, refactorizations;
  obs::Histogram seconds;
  LpObs() {
    auto& reg = obs::registry();
    const std::string solves = "dls_lp_solves_total";
    const std::string solves_help = "Simplex solves by start kind";
    cold = reg.counter(solves, solves_help, "start=\"cold\"");
    warm = reg.counter(solves, solves_help, "start=\"warm\"");
    repaired = reg.counter(solves, solves_help, "start=\"repaired\"");
    pivots = reg.counter("dls_lp_pivots_total", "Simplex pivots across all solves");
    refactorizations = reg.counter("dls_lp_refactorizations_total",
                                   "Basis refactorizations across all solves");
    seconds = reg.histogram("dls_lp_solve_seconds", "Wall time per simplex solve",
                            obs::default_time_buckets());
  }
};

void record_solve(const Solution& solution, double seconds) {
  static LpObs handles;
  hyper_obs();  // register the hypersparse series even on dense-path solves
  switch (solution.warm_kind) {
    case WarmKind::Cold: handles.cold.inc(); break;
    case WarmKind::Capsule: handles.warm.inc(); break;
    case WarmKind::Basis: handles.repaired.inc(); break;
  }
  handles.pivots.inc(static_cast<std::uint64_t>(solution.iterations));
  handles.refactorizations.inc(
      static_cast<std::uint64_t>(solution.refactorizations));
  handles.seconds.observe(seconds);
}

}  // namespace

Solution SimplexSolver::solve(const Model& model, const Basis* warm,
                              SolveArena& arena) const {
  WallTimer timer;
  Worker worker(model, options_, arena.impl());
  Solution solution =
      worker.run(warm != nullptr && warm->compatible(model) ? warm : nullptr,
                 nullptr);
  record_solve(solution, timer.seconds());
  return solution;
}

Solution SimplexSolver::solve(const Model& model, WarmState* state,
                              SolveArena& arena) const {
  WallTimer timer;
  Worker worker(model, options_, arena.impl());
  Solution solution = worker.run(nullptr, state);
  record_solve(solution, timer.seconds());
  return solution;
}

}  // namespace dls::lp
