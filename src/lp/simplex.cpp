#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "support/error.hpp"

namespace dls::lp {

namespace {

enum class VarStatus : unsigned char { Basic, AtLower, AtUpper, Free };

/// Full solver state for one solve() call. Variable indexing:
///   [0, n)            structural variables (model order)
///   [n, n+m)          slack of row i at index n+i
///   [n+m, n+2m)       artificial of row i at index n+m+i
class Worker {
public:
  Worker(const Model& model, const SimplexOptions& opt)
      : model_(model),
        opt_(opt),
        dense_(opt.factorization == Factorization::DenseInverse) {
    n_ = model.num_variables();
    m_ = model.num_constraints();
    total_ = n_ + 2 * m_;
    build_columns();
    build_bounds_and_costs();
  }

  Solution run(const Basis* warm, WarmState* state) {
    Solution sol;
    if (m_ == 0) return solve_unconstrained();

    const int max_iters = opt_.max_iterations > 0
                              ? opt_.max_iterations
                              : 200 * (n_ + m_) + 20000;

    if (state != nullptr) fingerprint_ = matrix_fingerprint();
    bool warm_ok = false;
    WarmKind kind = WarmKind::Cold;
    if (state != nullptr && state->valid) {
      const bool matrix_changed = state->fingerprint != fingerprint_;
      warm_ok = init_from_state(*state);
      if (warm_ok) {
        kind = WarmKind::Capsule;
      } else if (opt_.warm_repair && matrix_changed) {
        // Basis repair: the constraint matrix moved under the capsule (a
        // platform capacity event re-priced coefficients). Its statuses
        // may still describe a near-optimal vertex of the new model;
        // refactorize them against the new matrix and let the composite
        // bound phase 1 below absorb any primal infeasibility. A basic
        // set the new matrix makes singular fails the refactorization
        // and falls through to the cold start.
        warm_ok = init_basis_warm(state->basis);
        if (warm_ok) kind = WarmKind::Basis;
      }
    }
    if (!warm_ok && warm != nullptr) {
      warm_ok = init_basis_warm(*warm);
      if (warm_ok) kind = WarmKind::Basis;
    }
    if (warm_ok && warm_infeasible_) {
      // Composite bound phase 1: bounds moved since the basis was taken
      // (an application departed and its alphas were clamped to zero),
      // so some basic variables sit outside their bounds. Drive the
      // total violation to zero with the violated basics carrying
      // virtual costs of +/-1; a repair that does not converge falls
      // back to the cold start, whose artificial phase 1 is the
      // authority on true infeasibility.
      in_phase1_ = true;
      bound_phase1_ = true;
      const SolveStatus st = iterate(max_iters);
      in_phase1_ = false;
      bound_phase1_ = false;
      if (st != SolveStatus::Optimal ||
          bound_infeasibility() > opt_.feas_tol * rhs_scale_)
        warm_ok = false;
      else
        sol.phase1_iterations = iters_;
    }
    sol.warm_used = warm_ok;
    sol.warm_kind = warm_ok ? kind : WarmKind::Cold;
    if (!warm_ok) init_basis();

    // Phase 1: drive artificial infeasibility to zero if any was needed.
    if (need_phase1_) {
      in_phase1_ = true;
      const SolveStatus st = iterate(max_iters);
      sol.phase1_iterations = iters_;
      if (st == SolveStatus::NumericalError || st == SolveStatus::IterationLimit) {
        sol.status = st;
        sol.iterations = iters_;
        return sol;
      }
      // Unbounded cannot occur: the phase-1 objective is bounded below by 0.
      if (infeasibility() > opt_.feas_tol * rhs_scale_) {
        sol.status = SolveStatus::Infeasible;
        sol.iterations = iters_;
        return sol;
      }
      // Pin all artificials; any still basic is at value ~0 and its [0,0]
      // bounds make the ratio test evict it before it could move.
      for (int i = 0; i < m_; ++i) {
        const int a = n_ + m_ + i;
        lb_[a] = ub_[a] = 0.0;
        if (status_[a] != VarStatus::Basic) set_nonbasic_value(a, VarStatus::AtLower);
      }
      in_phase1_ = false;
    }

    const SolveStatus st = iterate(max_iters);
    sol.iterations = iters_;
    sol.status = st;
    if (st != SolveStatus::Optimal && st != SolveStatus::Unbounded) return sol;

    extract(sol);
    if (state != nullptr && st == SolveStatus::Optimal) save_state(sol, *state);
    return sol;
  }

private:
  // ---- setup -------------------------------------------------------------

  void build_columns() {
    // Structural columns, gathered column-wise from the model's rows.
    col_ptr_.assign(total_ + 1, 0);
    std::vector<int> counts(n_, 0);
    for (int c = 0; c < m_; ++c)
      for (const Term& t : model_.row(c)) ++counts[t.var];
    for (int j = 0; j < n_; ++j) col_ptr_[j + 1] = col_ptr_[j] + counts[j];
    const int struct_nnz = col_ptr_[n_];
    col_row_.resize(struct_nnz);
    col_val_.resize(struct_nnz);
    std::vector<int> fill(n_, 0);
    for (int c = 0; c < m_; ++c) {
      for (const Term& t : model_.row(c)) {
        const int pos = col_ptr_[t.var] + fill[t.var]++;
        col_row_[pos] = c;
        col_val_[pos] = t.coef;
      }
    }
    // Slack and artificial columns are singletons (e_i, sigma_i e_i); they
    // are synthesized on the fly by for_each_in_column().
    for (int j = n_; j <= total_ - 1; ++j) col_ptr_[j + 1] = col_ptr_[n_];
  }

  template <typename Fn>
  void for_each_in_column(int j, Fn&& fn) const {
    if (j < n_) {
      for (int p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) fn(col_row_[p], col_val_[p]);
    } else if (j < n_ + m_) {
      fn(j - n_, 1.0);
    } else {
      fn(j - n_ - m_, art_sign_[j - n_ - m_]);
    }
  }

  void build_bounds_and_costs() {
    lb_.resize(total_);
    ub_.resize(total_);
    cost_.assign(total_, 0.0);
    const double sign = model_.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (int j = 0; j < n_; ++j) {
      lb_[j] = model_.lower_bound(j);
      ub_[j] = model_.upper_bound(j);
      cost_[j] = sign * model_.objective_coef(j);
    }
    b_.resize(m_);
    rhs_scale_ = 1.0;
    for (int c = 0; c < m_; ++c) {
      b_[c] = model_.rhs(c);
      rhs_scale_ = std::max(rhs_scale_, std::fabs(b_[c]));
      const int s = n_ + c;
      switch (model_.relation(c)) {
        case Relation::LessEqual:
          lb_[s] = 0.0;
          ub_[s] = kInf;
          break;
        case Relation::GreaterEqual:
          lb_[s] = -kInf;
          ub_[s] = 0.0;
          break;
        case Relation::Equal:
          lb_[s] = ub_[s] = 0.0;
          break;
      }
    }
    art_sign_.assign(m_, 1.0);
    for (int i = 0; i < m_; ++i) {
      const int a = n_ + m_ + i;
      lb_[a] = ub_[a] = 0.0;  // widened per-row in init_basis when needed
    }
  }

  /// Starting point: every structural variable nonbasic at its bound
  /// nearest zero (or free at 0), slacks basic. Rows whose slack value
  /// falls outside the slack bounds get an artificial basic instead.
  void init_basis() {
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (std::isfinite(lb_[j]) &&
          (std::fabs(lb_[j]) <= std::fabs(ub_[j]) || !std::isfinite(ub_[j]))) {
        set_nonbasic_value(j, VarStatus::AtLower);
      } else if (std::isfinite(ub_[j])) {
        set_nonbasic_value(j, VarStatus::AtUpper);
      } else {
        set_nonbasic_value(j, VarStatus::Free);
      }
    }

    // Row activity of the nonbasic start.
    std::vector<double> r = b_;
    for (int j = 0; j < n_; ++j) {
      if (value_[j] == 0.0) continue;
      for_each_in_column(j, [&](int row, double coef) { r[row] -= coef * value_[j]; });
    }

    basis_.resize(m_);
    xb_.resize(m_);
    if (dense_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    need_phase1_ = false;
    for (int i = 0; i < m_; ++i) {
      const int s = n_ + i;
      const bool fits = r[i] >= lb_[s] - opt_.feas_tol && r[i] <= ub_[s] + opt_.feas_tol;
      if (fits) {
        basis_[i] = s;
        xb_[i] = r[i];
        status_[s] = VarStatus::Basic;
        if (dense_) binv_at(i, i) = 1.0;
      } else {
        // Park the slack at the violated side's bound and absorb the
        // remainder into a fresh artificial of matching sign.
        const double parked = r[i] > ub_[s] ? ub_[s] : lb_[s];
        set_nonbasic_value(s, r[i] > ub_[s] ? VarStatus::AtUpper : VarStatus::AtLower);
        const double residual = r[i] - parked;
        const int a = n_ + m_ + i;
        art_sign_[i] = residual >= 0.0 ? 1.0 : -1.0;
        lb_[a] = 0.0;
        ub_[a] = kInf;
        cost_[a] = 0.0;  // phase-1 pricing adds the +1 cost virtually
        basis_[i] = a;
        xb_[i] = std::fabs(residual);
        status_[a] = VarStatus::Basic;
        if (dense_) binv_at(i, i) = art_sign_[i];  // B = diag(sigma) on art. rows
        need_phase1_ = true;
      }
    }
    if (!dense_) {
      // The all-logical start is diagonal (+/-1), so factorizing cannot
      // fail; it also recomputes xb_, reproducing the values above.
      const bool ok = refactor();
      DLS_ASSERT(ok);
    }
    pivots_since_refactor_ = 0;
    iters_ = 0;
    stall_ = 0;
    use_bland_ = false;
  }

  /// Maps a saved status back, sanitized against bounds that may have
  /// moved since the basis was taken: a resting place that no longer
  /// exists falls back the way the cold start picks resting places
  /// (nearest-zero finite bound, else free). Basic entries are collected
  /// into basis_ unless `keep_basis_order` (the capsule path, where the
  /// saved row order must match the saved inverse).
  void place_status(int j, BasisStatus st, bool keep_basis_order) {
    if (st == BasisStatus::Basic) {
      if (!keep_basis_order) basis_.push_back(j);
      status_[j] = VarStatus::Basic;
      return;
    }
    VarStatus want = st == BasisStatus::AtUpper   ? VarStatus::AtUpper
                     : st == BasisStatus::AtLower ? VarStatus::AtLower
                                                  : VarStatus::Free;
    if (want == VarStatus::AtLower && !std::isfinite(lb_[j]))
      want = std::isfinite(ub_[j]) ? VarStatus::AtUpper : VarStatus::Free;
    if (want == VarStatus::AtUpper && !std::isfinite(ub_[j]))
      want = std::isfinite(lb_[j]) ? VarStatus::AtLower : VarStatus::Free;
    if (want == VarStatus::Free && std::isfinite(lb_[j]) &&
        (std::fabs(lb_[j]) <= std::fabs(ub_[j]) || !std::isfinite(ub_[j])))
      want = VarStatus::AtLower;
    else if (want == VarStatus::Free && std::isfinite(ub_[j]))
      want = VarStatus::AtUpper;
    set_nonbasic_value(j, want);
  }

  /// Shared tail of both warm paths: reset the iteration counters and
  /// derive the basic values from the restored inverse. A restored basis
  /// needs no artificial phase 1 (artificials stay pinned nonbasic at
  /// zero); basic values pushed outside their bounds by bound changes
  /// are flagged for the composite bound phase 1 instead.
  bool finish_warm_init() {
    iters_ = 0;
    stall_ = 0;
    use_bland_ = false;
    need_phase1_ = false;
    xb_.resize(m_);
    recompute_basic_values();
    const double tol = opt_.feas_tol * std::max(1.0, rhs_scale_);
    warm_infeasible_ = false;
    for (int i = 0; i < m_; ++i) {
      const int bvar = basis_[i];
      if (xb_[i] < lb_[bvar] - tol || xb_[i] > ub_[bvar] + tol)
        warm_infeasible_ = true;
    }
    return true;
  }

  /// Restores a statuses-only basis: the factorization must be rebuilt
  /// from scratch. Returns false — leaving the caller to run the cold
  /// start — when the basis has the wrong cardinality, is singular, or
  /// is no longer primal feasible.
  bool init_basis_warm(const Basis& warm) {
    if (static_cast<int>(warm.variables.size()) != n_ ||
        static_cast<int>(warm.slacks.size()) != m_)
      return false;
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    basis_.clear();
    for (int j = 0; j < n_; ++j) place_status(j, warm.variables[j], false);
    for (int i = 0; i < m_; ++i) place_status(n_ + i, warm.slacks[i], false);
    if (static_cast<int>(basis_.size()) != m_) return false;
    // Artificials stay pinned at their [0,0] bounds from build_bounds_and_costs.

    xb_.assign(m_, 0.0);
    if (dense_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    pivots_since_refactor_ = 0;
    if (!refactor()) return false;
    return finish_warm_init();
  }

  /// Restores a capsule: statuses plus the saved factorization, O(m +
  /// nnz). Requires the capsule to come from the same constraint matrix
  /// (the fingerprint check); bounds, costs and rhs may differ. The
  /// capsule's heavy buffers are *moved* into the worker (the capsule is
  /// marked consumed); save_state moves them back after an Optimal
  /// solve. A capsule without a usable factorization (saved by the
  /// dense-inverse path, or consumed under a different Factorization)
  /// still warm-starts from its basic set via a refactorization.
  bool init_from_state(WarmState& state) {
    if (static_cast<int>(state.basis.variables.size()) != n_ ||
        static_cast<int>(state.basis.slacks.size()) != m_ ||
        static_cast<int>(state.basic_vars.size()) != m_ ||
        state.fingerprint != fingerprint_)
      return false;
    status_.assign(total_, VarStatus::AtLower);
    value_.assign(total_, 0.0);
    for (int j = 0; j < n_; ++j) place_status(j, state.basis.variables[j], true);
    for (int i = 0; i < m_; ++i)
      place_status(n_ + i, state.basis.slacks[i], true);
    int basics = 0;
    for (int j = 0; j < n_ + m_; ++j) basics += status_[j] == VarStatus::Basic;
    if (basics != m_) return false;
    // Each Basic-marked variable must appear in basic_vars exactly once;
    // a duplicate entry would desynchronize basis_ from the factorization.
    std::vector<char> seen(static_cast<std::size_t>(n_ + m_), 0);
    for (int b : state.basic_vars) {
      if (b < 0 || b >= n_ + m_ || status_[b] != VarStatus::Basic ||
          seen[static_cast<std::size_t>(b)])
        return false;
      seen[static_cast<std::size_t>(b)] = 1;
    }
    basis_ = std::move(state.basic_vars);
    state.valid = false;  // consumed; save_state re-validates after the solve
    if (!dense_ && state.lu.dimension() == m_) {
      lu_ = std::move(state.lu);
      pivots_since_refactor_ = state.pivots_since_refactor;
    } else {
      xb_.assign(m_, 0.0);
      if (dense_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
      pivots_since_refactor_ = 0;
      if (!refactor()) return false;
    }
    return finish_warm_init();
  }

  /// Refreshes the caller's capsule from the optimal basis just reached
  /// (moving the heavy buffers: the worker is done with them). A
  /// degenerate optimum with an artificial still basic cannot be
  /// captured (its column lives outside the public index space); the
  /// capsule is invalidated so the next solve runs cold.
  void save_state(const Solution& sol, WarmState& state) {
    for (int b : basis_)
      if (b >= n_ + m_) {
        state.valid = false;
        return;
      }
    state.basis = sol.basis;
    state.basic_vars = std::move(basis_);
    if (dense_)
      state.lu.clear();  // the dense inverse is not persisted
    else
      state.lu = std::move(lu_);
    state.pivots_since_refactor = pivots_since_refactor_;
    state.fingerprint = fingerprint_;
    state.valid = true;
  }

  /// FNV-1a over the constraint rows (shape, relations, and every term's
  /// variable and coefficient bits). Bounds, costs and rhs are excluded:
  /// those may change between the solves a capsule spans.
  std::uint64_t matrix_fingerprint() const {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(n_));
    mix(static_cast<std::uint64_t>(m_));
    for (int c = 0; c < m_; ++c) {
      mix(static_cast<std::uint64_t>(model_.relation(c)) + 0x517c);
      for (const Term& t : model_.row(c)) {
        mix(static_cast<std::uint64_t>(t.var));
        std::uint64_t bits = 0;
        std::memcpy(&bits, &t.coef, sizeof(bits));
        mix(bits);
      }
    }
    return h;
  }

  void set_nonbasic_value(int j, VarStatus st) {
    status_[j] = st;
    switch (st) {
      case VarStatus::AtLower: value_[j] = lb_[j]; break;
      case VarStatus::AtUpper: value_[j] = ub_[j]; break;
      case VarStatus::Free: value_[j] = 0.0; break;
      case VarStatus::Basic: DLS_ASSERT(false);
    }
  }

  // ---- iteration ---------------------------------------------------------

  double current_cost(int j) const {
    if (in_phase1_) return j >= n_ + m_ ? 1.0 : 0.0;
    return cost_[j];
  }

  /// Phase-dependent cost of the basic variable in row i. The composite
  /// bound phase 1 charges violated basics +/-1 (recomputed every
  /// iteration: the charge drops once the variable re-enters its range).
  double basis_cost(int i) const {
    if (!in_phase1_) return cost_[basis_[i]];
    if (!bound_phase1_) return basis_[i] >= n_ + m_ ? 1.0 : 0.0;
    const int b = basis_[i];
    const double tol = opt_.feas_tol * std::max(1.0, rhs_scale_);
    if (xb_[i] > ub_[b] + tol) return 1.0;
    if (xb_[i] < lb_[b] - tol) return -1.0;
    return 0.0;
  }

  double infeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i)
      if (basis_[i] >= n_ + m_) total += std::max(0.0, xb_[i]);
    return total;
  }

  /// Total bound violation of the basic values (composite phase 1).
  double bound_infeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[i];
      total += std::max(0.0, xb_[i] - ub_[b]) + std::max(0.0, lb_[b] - xb_[i]);
    }
    return total;
  }

  SolveStatus iterate(int max_iters) {
    std::vector<double> y(m_), w(m_);
    while (true) {
      if (iters_ >= max_iters) return SolveStatus::IterationLimit;

      // BTRAN: y = c_B' B^{-1}.
      if (dense_) {
        std::fill(y.begin(), y.end(), 0.0);
        for (int i = 0; i < m_; ++i) {
          const double cb = basis_cost(i);
          if (cb == 0.0) continue;
          const double* row = &binv_[static_cast<std::size_t>(i) * m_];
          for (int k = 0; k < m_; ++k) y[k] += cb * row[k];
        }
      } else {
        for (int i = 0; i < m_; ++i) y[i] = basis_cost(i);
        lu_.btran(y);
      }

      // Pricing. Dantzig scores that are mathematically tied differ only
      // by representation noise (dense inverse vs LU arithmetic), so a
      // candidate must beat the incumbent by a relative margin to take
      // over — ties then resolve to the lowest index whichever basis
      // factorization computed y, keeping the visited vertex (and the
      // rounding heuristics built on it) stable across representations.
      constexpr double kTieMargin = 1e-9;
      int q = -1;
      bool increase = true;
      double best_score = opt_.opt_tol;
      for (int j = 0; j < total_; ++j) {
        if (status_[j] == VarStatus::Basic) continue;
        if (lb_[j] == ub_[j]) continue;  // fixed: can never move
        double d = current_cost(j);
        for_each_in_column(j, [&](int row, double coef) { d -= y[row] * coef; });
        const bool can_up = status_[j] != VarStatus::AtUpper;
        const bool can_down = status_[j] != VarStatus::AtLower;
        if (use_bland_) {
          if (can_up && d < -opt_.opt_tol) { q = j; increase = true; break; }
          if (can_down && d > opt_.opt_tol) { q = j; increase = false; break; }
        } else {
          const double bar = best_score * (1.0 + kTieMargin);
          if (can_up && -d > bar) { best_score = -d; q = j; increase = true; }
          if (can_down && d > bar) { best_score = d; q = j; increase = false; }
        }
      }
      if (q < 0) return SolveStatus::Optimal;

      // FTRAN: w = B^{-1} A_q.
      std::fill(w.begin(), w.end(), 0.0);
      if (dense_) {
        for_each_in_column(q, [&](int row, double coef) {
          for (int i = 0; i < m_; ++i) w[i] += binv_at(i, row) * coef;
        });
      } else {
        for_each_in_column(q, [&](int row, double coef) { w[row] += coef; });
        lu_.ftran(w);
      }

      const double dir = increase ? 1.0 : -1.0;

      // Ratio test. The entering variable can move t >= 0 in direction
      // dir until (a) it reaches its own opposite bound, or (b) a basic
      // variable reaches one of its bounds. In the composite bound
      // phase 1 a basic *outside* its bounds blocks only when moving
      // back toward its violated bound (it stops there, where its +/-1
      // charge drops); moving further away it imposes no limit — the
      // pricing step only selects directions that shrink the total
      // violation.
      const double btol =
          bound_phase1_ ? opt_.feas_tol * std::max(1.0, rhs_scale_) : 0.0;
      double t_best = kInf;
      int leave = -1;  // row index; -1 = entering flips to its other bound
      bool leave_upper = false;  // which bound the leaving basic rests at
      if (std::isfinite(lb_[q]) && std::isfinite(ub_[q])) t_best = ub_[q] - lb_[q];
      double leave_pivot = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double delta = -dir * w[i];  // d(x_B[i]) / dt
        if (std::fabs(delta) <= opt_.pivot_tol) continue;
        const int bvar = basis_[i];
        double limit = kInf;
        bool at_upper = false;
        if (bound_phase1_ && xb_[i] > ub_[bvar] + btol) {
          if (delta < 0.0) {
            limit = (ub_[bvar] - xb_[i]) / delta;
            at_upper = true;
          }
        } else if (bound_phase1_ && xb_[i] < lb_[bvar] - btol) {
          if (delta > 0.0) limit = (lb_[bvar] - xb_[i]) / delta;
        } else if (delta > 0.0) {
          if (std::isfinite(ub_[bvar])) {
            limit = (ub_[bvar] - xb_[i]) / delta;
            at_upper = true;
          }
        } else {
          if (std::isfinite(lb_[bvar])) limit = (lb_[bvar] - xb_[i]) / delta;
        }
        if (limit == kInf) continue;
        limit = std::max(limit, 0.0);  // clamp tolerance-level negatives
        // Prefer strictly smaller limits; on near-ties keep the row with
        // the largest pivot magnitude for numerical stability. The pivot
        // comparison carries the same relative margin as pricing so that
        // mathematically tied pivots resolve by row order, not by
        // factorization-dependent noise.
        if (limit < t_best - 1e-12 ||
            (limit < t_best + 1e-12 &&
             std::fabs(w[i]) > std::fabs(leave_pivot) * (1.0 + kTieMargin))) {
          t_best = limit;
          leave = i;
          leave_pivot = w[i];
          leave_upper = at_upper;
        }
      }

      if (t_best == kInf) {
        DLS_ASSERT(!in_phase1_);  // phase-1 objective is bounded below
        return SolveStatus::Unbounded;
      }

      ++iters_;
      if (t_best > 1e-10) {
        stall_ = 0;
      } else if (++stall_ > opt_.stall_limit) {
        use_bland_ = true;  // anti-cycling fallback; never switched back
      }

      // Apply the step to the basic values.
      for (int i = 0; i < m_; ++i) xb_[i] -= dir * t_best * w[i];

      if (leave < 0) {
        // Bound flip: basis unchanged.
        set_nonbasic_value(q, increase ? VarStatus::AtUpper : VarStatus::AtLower);
        continue;
      }

      // Pivot: q enters at row `leave`, the old basic leaves to the bound
      // it just reached.
      const int old_var = basis_[leave];
      set_nonbasic_value(old_var,
                         leave_upper ? VarStatus::AtUpper : VarStatus::AtLower);
      // An artificial that leaves the basis is pinned for good.
      if (old_var >= n_ + m_) {
        lb_[old_var] = ub_[old_var] = 0.0;
        set_nonbasic_value(old_var, VarStatus::AtLower);
      }
      const double enter_value = value_[q] + dir * t_best;
      basis_[leave] = q;
      status_[q] = VarStatus::Basic;
      xb_[leave] = enter_value;

      if (dense_) {
        update_binv(leave, w);
      } else if (!lu_.update(leave, w, opt_.pivot_tol)) {
        // The ratio test guarantees a usable pivot, so this is a pure
        // numerical-drift escape hatch: rebuild from the updated basis.
        if (!refactor()) return SolveStatus::NumericalError;
      }

      if (++pivots_since_refactor_ >= refactor_interval()) {
        if (!refactor()) return SolveStatus::NumericalError;
      }
    }
  }

  int refactor_interval() const {
    // Dense Gauss-Jordan rebuilds are O(m^3), so they are spaced out on
    // big bases. A sparse refactorization costs O(nnz + fill) — there
    // the eta file is the real per-iteration cost and the configured
    // interval is used as-is.
    return dense_ ? std::max(opt_.refactor_interval, m_ / 4)
                  : opt_.refactor_interval;
  }

  /// Elementary row transformation of B^{-1} for a pivot in row r with
  /// FTRAN column w: row r scales by 1/w_r, other rows eliminate w_i.
  void update_binv(int r, const std::vector<double>& w) {
    const double piv = w[r];
    DLS_ASSERT(std::fabs(piv) > 0.0);
    double* prow = &binv_[static_cast<std::size_t>(r) * m_];
    const double inv = 1.0 / piv;
    for (int k = 0; k < m_; ++k) prow[k] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == r || w[i] == 0.0) continue;
      const double f = w[i];
      double* irow = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
    }
  }

  /// Rebuilds the basis factorization from scratch and recomputes the
  /// basic values. SparseLu gathers the basic columns in CSC form and
  /// runs the Markowitz LU; DenseInverse runs the legacy Gauss-Jordan
  /// inversion. Returns false on a singular basis.
  bool refactor() {
    pivots_since_refactor_ = 0;
    if (!dense_) {
      csc_ptr_.assign(m_ + 1, 0);
      csc_row_.clear();
      csc_val_.clear();
      for (int i = 0; i < m_; ++i) {
        for_each_in_column(basis_[i], [&](int row, double coef) {
          csc_row_.push_back(row);
          csc_val_.push_back(coef);
        });
        csc_ptr_[i + 1] = static_cast<int>(csc_row_.size());
      }
      if (!lu_.factorize(m_, csc_ptr_, csc_row_, csc_val_)) return false;
      recompute_basic_values();
      return true;
    }
    // Gather B (dense, column per basic variable).
    scratch_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      for_each_in_column(basis_[i],
                         [&](int row, double coef) { scratch_at(row, i) = coef; });
    }
    // Invert scratch into binv_.
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < m_; ++i) binv_at(i, i) = 1.0;
    for (int col = 0; col < m_; ++col) {
      int piv_row = col;
      double piv_val = std::fabs(scratch_at(col, col));
      for (int i = col + 1; i < m_; ++i) {
        if (std::fabs(scratch_at(i, col)) > piv_val) {
          piv_val = std::fabs(scratch_at(i, col));
          piv_row = i;
        }
      }
      if (piv_val < 1e-12) return false;
      if (piv_row != col) {
        swap_rows(scratch_, piv_row, col);
        swap_rows(binv_, piv_row, col);
      }
      const double inv = 1.0 / scratch_at(col, col);
      for (int k = 0; k < m_; ++k) {
        scratch_at(col, k) *= inv;
        binv_at(col, k) *= inv;
      }
      for (int i = 0; i < m_; ++i) {
        if (i == col) continue;
        const double f = scratch_at(i, col);
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          scratch_at(i, k) -= f * scratch_at(col, k);
          binv_at(i, k) -= f * binv_at(col, k);
        }
      }
    }
    recompute_basic_values();
    return true;
  }

  /// x_B = B^{-1} (b - N x_N) from the current factorization and
  /// nonbasic values.
  void recompute_basic_values() {
    std::vector<double> r = b_;
    for (int j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::Basic || value_[j] == 0.0) continue;
      for_each_in_column(j, [&](int row, double coef) { r[row] -= coef * value_[j]; });
    }
    if (!dense_) {
      lu_.ftran(r);
      xb_ = std::move(r);
      return;
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      const double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) v += row[k] * r[k];
      xb_[i] = v;
    }
  }

  void swap_rows(std::vector<double>& mat, int a, int bb) {
    double* ra = &mat[static_cast<std::size_t>(a) * m_];
    double* rb = &mat[static_cast<std::size_t>(bb) * m_];
    std::swap_ranges(ra, ra + m_, rb);
  }

  // ---- extraction --------------------------------------------------------

  Solution solve_unconstrained() {
    // No rows: each variable independently goes to its best bound.
    Solution sol;
    sol.x.assign(n_, 0.0);
    const double sign = model_.sense() == Sense::Maximize ? -1.0 : 1.0;
    for (int j = 0; j < n_; ++j) {
      const double c = sign * model_.objective_coef(j);
      if (c > 0.0) {
        if (!std::isfinite(lb_[j])) { sol.status = SolveStatus::Unbounded; return sol; }
        sol.x[j] = lb_[j];
      } else if (c < 0.0) {
        if (!std::isfinite(ub_[j])) { sol.status = SolveStatus::Unbounded; return sol; }
        sol.x[j] = ub_[j];
      } else {
        sol.x[j] = std::isfinite(lb_[j]) ? lb_[j] : (std::isfinite(ub_[j]) ? ub_[j] : 0.0);
      }
    }
    sol.status = SolveStatus::Optimal;
    sol.objective = model_.objective_value(sol.x);
    return sol;
  }

  void extract(Solution& sol) const {
    sol.x.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) sol.x[j] = value_[j];
    for (int i = 0; i < m_; ++i)
      if (basis_[i] < n_) sol.x[basis_[i]] = xb_[i];
    // Snap solver noise onto the bounds so downstream validation is clean.
    for (int j = 0; j < n_; ++j) {
      if (std::isfinite(lb_[j])) sol.x[j] = std::max(sol.x[j], lb_[j]);
      if (std::isfinite(ub_[j])) sol.x[j] = std::min(sol.x[j], ub_[j]);
    }
    if (sol.status == SolveStatus::Optimal) {
      const auto public_status = [&](int j) {
        switch (status_[j]) {
          case VarStatus::Basic: return BasisStatus::Basic;
          case VarStatus::AtUpper: return BasisStatus::AtUpper;
          case VarStatus::Free: return BasisStatus::Free;
          case VarStatus::AtLower: break;
        }
        return BasisStatus::AtLower;
      };
      sol.basis.variables.resize(n_);
      sol.basis.slacks.resize(m_);
      for (int j = 0; j < n_; ++j) sol.basis.variables[j] = public_status(j);
      for (int i = 0; i < m_; ++i) sol.basis.slacks[i] = public_status(n_ + i);
      sol.objective = model_.objective_value(sol.x);
      if (opt_.compute_duals) {
        // Shadow prices: y = c_B' B^{-1} of the internal minimize form,
        // negated back for Maximize so duals are d(objective)/d(rhs).
        sol.duals.assign(m_, 0.0);
        if (dense_) {
          for (int i = 0; i < m_; ++i) {
            const double cb = cost_[basis_[i]];
            if (cb == 0.0) continue;
            const double* row = &binv_[static_cast<std::size_t>(i) * m_];
            for (int k = 0; k < m_; ++k) sol.duals[k] += cb * row[k];
          }
        } else {
          for (int i = 0; i < m_; ++i) sol.duals[i] = cost_[basis_[i]];
          lu_.btran(sol.duals);
        }
        if (model_.sense() == Sense::Maximize)
          for (double& d : sol.duals) d = -d;
      }
    }
  }

  double& binv_at(int i, int j) { return binv_[static_cast<std::size_t>(i) * m_ + j]; }
  double binv_at(int i, int j) const { return binv_[static_cast<std::size_t>(i) * m_ + j]; }
  double& scratch_at(int i, int j) { return scratch_[static_cast<std::size_t>(i) * m_ + j]; }

  const Model& model_;
  const SimplexOptions& opt_;
  bool dense_ = false;  ///< Factorization::DenseInverse baseline path
  int n_ = 0, m_ = 0, total_ = 0;

  // Column-wise structural matrix.
  std::vector<int> col_ptr_, col_row_;
  std::vector<double> col_val_;
  std::vector<double> art_sign_;

  std::vector<double> lb_, ub_, cost_, b_;
  std::vector<VarStatus> status_;
  std::vector<double> value_;  // nonbasic resting values (basics in xb_)
  std::vector<int> basis_;
  std::vector<double> xb_;
  BasisLu lu_;                         // sparse path
  std::vector<int> csc_ptr_, csc_row_; // basis-gather scratch (sparse path)
  std::vector<double> csc_val_;
  std::vector<double> binv_, scratch_; // dense path

  double rhs_scale_ = 1.0;
  std::uint64_t fingerprint_ = 0;  ///< computed only when a capsule is in play
  bool need_phase1_ = false;
  bool in_phase1_ = false;
  bool bound_phase1_ = false;      ///< composite flavor: basics carry violation
  bool warm_infeasible_ = false;   ///< warm restore left basics out of bounds
  bool use_bland_ = false;
  int iters_ = 0, stall_ = 0, pivots_since_refactor_ = 0;
};

}  // namespace

bool Basis::compatible(const Model& model) const {
  return static_cast<int>(variables.size()) == model.num_variables() &&
         static_cast<int>(slacks.size()) == model.num_constraints();
}

std::size_t WarmState::memory_bytes() const {
  return basis.variables.size() * sizeof(BasisStatus) +
         basis.slacks.size() * sizeof(BasisStatus) +
         basic_vars.size() * sizeof(int) + lu.memory_bytes() + sizeof(*this);
}

Solution SimplexSolver::solve(const Model& model, const Basis* warm) const {
  Worker worker(model, options_);
  return worker.run(warm != nullptr && warm->compatible(model) ? warm : nullptr,
                    nullptr);
}

Solution SimplexSolver::solve(const Model& model, WarmState* state) const {
  Worker worker(model, options_);
  return worker.run(nullptr, state);
}

}  // namespace dls::lp
