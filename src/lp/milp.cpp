#include "lp/milp.hpp"

#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace dls::lp {

namespace {

struct Node {
  std::vector<double> lb, ub;
  int depth = 0;
};

}  // namespace

MilpResult BranchAndBound::solve(const Model& model) const {
  MilpResult result;
  const bool maximize = model.sense() == Sense::Maximize;
  // "a is strictly better than b" in the model's sense.
  const auto better = [maximize](double a, double b) {
    return maximize ? a > b : a < b;
  };

  Model work = model;  // bounds are mutated per node; rows are shared copies
  SimplexSolver solver(options_.lp);

  const int n = model.num_variables();
  std::vector<int> int_vars;
  for (int j = 0; j < n; ++j)
    if (model.is_integer(j)) int_vars.push_back(j);

  Node root;
  root.lb.resize(n);
  root.ub.resize(n);
  for (int j = 0; j < n; ++j) {
    root.lb[j] = model.lower_bound(j);
    root.ub[j] = model.upper_bound(j);
  }

  std::vector<Node> stack;
  stack.push_back(std::move(root));
  bool have_incumbent = false;
  bool exhausted = true;

  while (!stack.empty()) {
    if (result.nodes >= options_.max_nodes) {
      exhausted = false;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    for (int j = 0; j < n; ++j) work.set_bounds(j, node.lb[j], node.ub[j]);
    ++result.nodes;
    const Solution rel = solver.solve(work);

    if (rel.status == SolveStatus::Infeasible) continue;
    if (rel.status == SolveStatus::Unbounded) {
      // Unbounded relaxation at the root means the MILP is unbounded or
      // infeasible; report unbounded and let the caller decide.
      result.status = SolveStatus::Unbounded;
      return result;
    }
    if (rel.status != SolveStatus::Optimal) {
      // Numerical trouble in a node: treat conservatively as unexplored.
      exhausted = false;
      continue;
    }
    if (have_incumbent) {
      // Prune when the relaxation bound cannot beat the incumbent by more
      // than the gap tolerance.
      const double margin = maximize ? rel.objective - result.objective
                                     : result.objective - rel.objective;
      if (margin <= options_.gap_tol) continue;
    }

    // Most-fractional branching variable.
    int branch_var = -1;
    double branch_frac = options_.int_tol;
    for (int j : int_vars) {
      const double v = rel.x[j];
      const double frac = std::fabs(v - std::round(v));
      if (frac > branch_frac) {
        branch_frac = frac;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integer feasible.
      if (!have_incumbent || better(rel.objective, result.objective)) {
        have_incumbent = true;
        result.objective = rel.objective;
        result.x = rel.x;
        // Snap integer variables exactly.
        for (int j : int_vars) result.x[j] = std::round(result.x[j]);
      }
      continue;
    }

    const double v = rel.x[branch_var];
    Node down = node;
    down.ub[branch_var] = std::floor(v);
    down.depth = node.depth + 1;
    Node up = std::move(node);
    up.lb[branch_var] = std::ceil(v);
    up.depth = down.depth;

    // Explore the side nearer the relaxation value first (pushed last).
    if (v - std::floor(v) < 0.5) {
      if (up.lb[branch_var] <= up.ub[branch_var]) stack.push_back(std::move(up));
      if (down.lb[branch_var] <= down.ub[branch_var]) stack.push_back(std::move(down));
    } else {
      if (down.lb[branch_var] <= down.ub[branch_var]) stack.push_back(std::move(down));
      if (up.lb[branch_var] <= up.ub[branch_var]) stack.push_back(std::move(up));
    }
  }

  if (have_incumbent) {
    result.status = exhausted ? SolveStatus::Optimal : SolveStatus::NodeLimit;
  } else {
    result.status = exhausted ? SolveStatus::Infeasible : SolveStatus::NodeLimit;
  }
  return result;
}

}  // namespace dls::lp
