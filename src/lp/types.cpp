#include "lp/types.hpp"

namespace dls::lp {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
    case SolveStatus::NodeLimit: return "node-limit";
    case SolveStatus::NumericalError: return "numerical-error";
  }
  return "unknown";
}

std::string to_string(Relation r) {
  switch (r) {
    case Relation::LessEqual: return "<=";
    case Relation::Equal: return "=";
    case Relation::GreaterEqual: return ">=";
  }
  return "?";
}

std::string to_string(Sense s) {
  return s == Sense::Minimize ? "minimize" : "maximize";
}

}  // namespace dls::lp
