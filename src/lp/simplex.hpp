// Bounded-variable primal revised simplex.
//
// Design (following standard texts, e.g. Chvátal and Maros):
//   * computational form: minimize c'x subject to Ax + s = b, where one
//     logical (slack) variable s_i per row carries the row relation in its
//     bounds (<=: [0,inf), >=: (-inf,0], =: [0,0]);
//   * nonbasic variables sit at a finite bound (or at 0 if free); basic
//     values are x_B = B^{-1}(b - N x_N);
//   * the basis inverse is kept as a dense matrix updated by elementary
//     row operations at each pivot and rebuilt from scratch (Gauss-Jordan
//     with partial pivoting) every `refactor_interval` pivots to bound
//     numerical drift;
//   * feasibility is restored in phase 1 by per-row artificial columns
//     (+/- e_i) minimized to zero, after which their bounds collapse to
//     [0,0] and phase 2 optimizes the true objective;
//   * Dantzig pricing with an automatic switch to Bland's rule after a
//     long degenerate stall, which guarantees termination.
//
// This is the LP engine behind every rational relaxation in the paper
// (the "LP" upper-bound comparator and the LPR/LPRG/LPRR heuristics).
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/types.hpp"

namespace dls::lp {

struct SimplexOptions {
  double feas_tol = 1e-7;    ///< bound/row violation considered zero
  double opt_tol = 1e-9;     ///< reduced-cost threshold for optimality
  double pivot_tol = 1e-9;   ///< smallest acceptable pivot magnitude
  int max_iterations = 0;    ///< 0 = automatic (scales with model size)
  int refactor_interval = 100;  ///< pivots between basis-inverse rebuilds
  int stall_limit = 500;     ///< degenerate pivots before switching to Bland
};

/// Result of a solve. `x` has one entry per model variable.
/// `duals` holds one shadow price per row: d(objective)/d(rhs) in the
/// model's own sense (so for a Maximize model with <= rows, duals >= 0).
struct Solution {
  SolveStatus status = SolveStatus::NumericalError;
  double objective = 0.0;
  std::vector<double> x;
  std::vector<double> duals;
  int iterations = 0;        ///< total pivots across both phases
  int phase1_iterations = 0;
};

class SimplexSolver {
public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model's continuous relaxation (integrality marks ignored).
  [[nodiscard]] Solution solve(const Model& model) const;

  [[nodiscard]] const SimplexOptions& options() const { return options_; }

private:
  SimplexOptions options_;
};

}  // namespace dls::lp
