// Bounded-variable primal revised simplex.
//
// Design (following standard texts, e.g. Chvátal and Maros):
//   * computational form: minimize c'x subject to Ax + s = b, where one
//     logical (slack) variable s_i per row carries the row relation in its
//     bounds (<=: [0,inf), >=: (-inf,0], =: [0,0]);
//   * nonbasic variables sit at a finite bound (or at 0 if free); basic
//     values are x_B = B^{-1}(b - N x_N);
//   * the basis is kept factorized. The default representation is a
//     sparse Markowitz LU with product-form (eta) updates per pivot
//     (lp/basis_lu.hpp), answering the FTRAN/BTRAN solves in O(nnz);
//     the original dense explicit inverse — elementary row updates,
//     Gauss-Jordan rebuilds — survives as Factorization::DenseInverse,
//     the measured baseline of bench/lp_scaling.cpp, and is auto-selected
//     for small bases where its cache behavior wins (the crossover is
//     SimplexOptions::dense_crossover_rows);
//   * the sparse factorization is rebuilt when the eta file's accumulated
//     fill exceeds a multiple of the base LU's nonzeros (plus a pivot
//     cap against numerical drift), instead of on a fixed pivot count;
//   * feasibility is restored in phase 1 by per-row artificial columns
//     (+/- e_i) minimized to zero, after which their bounds collapse to
//     [0,0] and phase 2 optimizes the true objective;
//   * pricing is pluggable (SimplexOptions::pricing). Dantzig full-scan
//     pricing — one BTRAN plus a dot product per column per iteration —
//     is kept as the oracle rule; the fast rules (partial pricing with a
//     cycling candidate window, and steepest-edge with Devex-style
//     reference weights) maintain the whole reduced-cost vector
//     incrementally from the pivot row, so an iteration costs O(fill)
//     instead of O(rows x cols). Every rule switches to Bland's rule
//     after a long degenerate stall, which guarantees termination.
//
// This is the LP engine behind every rational relaxation in the paper
// (the "LP" upper-bound comparator and the LPR/LPRG/LPRR heuristics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lp/basis_lu.hpp"
#include "lp/model.hpp"
#include "lp/types.hpp"

namespace dls::lp {

/// Basis representation used by the solver.
enum class Factorization : unsigned char {
  /// DenseInverse below SimplexOptions::dense_crossover_rows, SparseLu
  /// above it (default): small bases fit the dense inverse in cache and
  /// skip the sparse bookkeeping; large bases need O(nnz) solves.
  Auto,
  SparseLu,      ///< Markowitz LU + eta updates (O(nnz) solves)
  DenseInverse,  ///< explicit m x m inverse (legacy baseline; O(m^2) solves)
};

/// Entering-variable selection rule.
enum class Pricing : unsigned char {
  Auto,     ///< currently SteepestEdge (the measured fastest; may re-gate)
  /// Full scan with freshly computed reduced costs every iteration (one
  /// BTRAN + one dot product per column). The reference oracle: slowest,
  /// simplest, and the rule every other rule is equivalence-tested
  /// against.
  Dantzig,
  /// Dantzig scores over an incrementally maintained reduced-cost
  /// vector, scanned through a cycling candidate window of
  /// `partial_window` columns per iteration.
  Partial,
  /// Steepest-edge with Devex reference weights: picks the entering
  /// variable maximizing d_j^2 / w_j, with the weights updated per pivot
  /// from the pivot row. Cuts both the per-iteration cost (incremental
  /// reduced costs, candidate-list scan) and the pivot count.
  SteepestEdge,
};

struct SimplexOptions {
  double feas_tol = 1e-7;    ///< bound/row violation considered zero
  double opt_tol = 1e-9;     ///< reduced-cost threshold for optimality
  double pivot_tol = 1e-9;   ///< smallest acceptable pivot magnitude
  int max_iterations = 0;    ///< 0 = automatic (scales with model size)
  /// Pivot cap between refactorizations: numerical-drift bound for the
  /// dense path (which refactors on this fixed interval) and the safety
  /// cap for the sparse path (which normally refactors earlier, when the
  /// eta file outgrows `refactor_fill`).
  int refactor_interval = 100;
  /// Sparse path: refactorize when the eta file's nonzeros exceed this
  /// multiple of the base LU's nonzeros. Bounds the FTRAN/BTRAN cost per
  /// pivot by the basis fill instead of the pivot count; <= 0 disables
  /// the fill trigger (the pivot cap then governs alone).
  double refactor_fill = 2.0;
  /// Warm-capsule eta compression: when a capsule is saved with an eta
  /// file above this multiple of the base LU nnz, the basis is
  /// refactorized first so the capsule carries a compact factorization
  /// (WarmState stays O(base nnz) across arbitrarily long warm chains).
  /// < 0 disables compression.
  double capsule_eta_fill = 0.25;
  int stall_limit = 500;     ///< degenerate pivots before switching to Bland
  /// Fill Solution::duals (one extra BTRAN). The adaptive rescheduler
  /// turns this off: its per-event solves never read duals.
  bool compute_duals = true;
  /// Basis representation; Auto resolves per model via
  /// `dense_crossover_rows`.
  Factorization factorization = Factorization::Auto;
  /// Auto factorization crossover: bases with at most this many rows use
  /// the dense inverse (measured faster up to K~16 platforms, m <= ~100);
  /// larger bases use the sparse LU.
  int dense_crossover_rows = 112;
  /// Hypersparse (reach-set) basis solves on the sparse path: the
  /// FTRAN of the entering column, the BTRAN of the pricing unit vector
  /// and the eta append run a Gilbert–Peierls symbolic pass first and
  /// touch only the solution's support, instead of sweeping all m rows.
  /// Pivot sequences and optima are bit-identical either way; disable
  /// only to measure the dense-pass baseline (bench/lp_scaling's
  /// no-hypersparse arm).
  bool hypersparse = true;
  /// Reach-set density cutoff: a symbolic pass that reaches more than
  /// this fraction of the elimination steps abandons the sparse solve
  /// and falls back to the dense pass for the remaining stages (the
  /// sort/scatter bookkeeping would cost more than the straight sweep).
  /// 1.0 never falls back; 0.0 always takes the dense pass. The default
  /// is deliberately strict: on the bench federations the dense sweeps
  /// win from a few percent density up, so only genuinely tiny reaches
  /// should stay on the sparse route.
  double hypersparse_crossover = 0.03;
  /// Entering-variable rule; Auto currently resolves to SteepestEdge.
  Pricing pricing = Pricing::Auto;
  /// Partial pricing window (columns scanned per iteration before the
  /// cursor cycles on). 0 = automatic: max(64, total columns / 16).
  int partial_window = 0;
  /// Steepest-edge candidate cap: every pricing refresh keeps only the
  /// strongest this-many candidates (by reduced-cost magnitude, with the
  /// cutoff binade truncated in index order to land exactly on the cap),
  /// which bounds the per-pivot scan and update cost on wide models.
  /// Columns left off the list go stale until a windowed refill (a dry
  /// list triggers one before any full-width refresh) or the fresh
  /// confirmation pass that gates optimality brings them back. 0 =
  /// automatic (currently a flat 512 — per-pivot cost beats the extra
  /// refills on every width we benchmark); negative = unbounded.
  int se_candidate_cap = 0;
  /// Basis repair across constraint-matrix changes: when a warm capsule
  /// is rejected by the matrix fingerprint but its statuses still fit
  /// the model's shape, retry them as a statuses-only start against the
  /// new matrix — refactorize the basic set and let the composite bound
  /// phase 1 repair any primal infeasibility — instead of starting cold.
  /// Off by default: it only makes sense when successive models are
  /// small perturbations of one another (the dynamics rescheduler's
  /// capacity events); a capsule from an unrelated model should be
  /// discarded, not repaired.
  bool warm_repair = false;
};

/// Resting place of one variable in a basis snapshot.
enum class BasisStatus : unsigned char { AtLower, AtUpper, Basic, Free };

/// A restart point for solve(): the status of every structural variable
/// and of every row's slack at some basis. Obtained from Solution::basis
/// and fed back as solve()'s `warm` argument, typically against a
/// neighbouring model of identical shape whose bounds, costs or rhs
/// moved (the adaptive rescheduler's arrival/departure re-solves). A
/// basis that does not fit the model — wrong shape, singular, or primal
/// infeasible under the new data — is ignored and the solve falls back
/// to the cold all-slack start, so passing a stale basis is always safe.
struct Basis {
  std::vector<BasisStatus> variables;  ///< one per structural variable
  std::vector<BasisStatus> slacks;     ///< one per constraint row
  [[nodiscard]] bool empty() const { return variables.empty() && slacks.empty(); }
  /// Shape check only; feasibility is verified during the solve.
  [[nodiscard]] bool compatible(const Model& model) const;
};

/// Persistent warm-start capsule: the statuses PLUS the factorized
/// basis (sparse LU + eta file), carried across solves of models that
/// share one constraint matrix (bounds, costs and rhs may change freely
/// — the adaptive rescheduler's arrival/departure re-solves). Restoring
/// from a capsule costs O(m + nnz) (move + basic-value recompute)
/// instead of the refactorization a statuses-only Basis needs, which is
/// what makes warm solves cheaper than cold ones even on models whose
/// cold start needs no phase 1; capsule memory scales with the
/// factorization's nonzeros, not with m^2, and an oversized eta file is
/// compressed away by a refactorization before the capsule is written
/// (SimplexOptions::capsule_eta_fill), so long warm chains cannot grow
/// it. A fingerprint of the constraint rows guards reuse: a capsule
/// taken from a different matrix is ignored. solve() both consumes and
/// refreshes the capsule, so callers just keep handing the same object
/// back. A capsule written by a dense-inverse solve carries no
/// factorization (the dense inverse is not persisted); restoring it
/// refactorizes from the saved basic set instead.
struct WarmState {
  Basis basis;
  std::vector<int> basic_vars;   ///< row -> basic variable (internal index)
  BasisLu lu;                    ///< factorized basis + eta stack (may be empty)
  int pivots_since_refactor = 0; ///< drift budget carried across solves
  std::uint64_t fingerprint = 0; ///< constraint-matrix hash
  bool valid = false;

  /// Forces the next solve cold while still refreshing the capsule.
  void invalidate() { valid = false; }

  /// Heap footprint of the capsule (statuses + basic set + factorization).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// How a solve was seeded.
enum class WarmKind : unsigned char {
  Cold,     ///< all-slack start (no usable warm state)
  /// Capsule restored against its own constraint matrix (fingerprint
  /// matched; the saved factorization is reused when present).
  Capsule,
  /// Statuses-only start: the basic set was refactorized against a
  /// matrix the basis was not taken from (a plain Basis argument, or —
  /// under SimplexOptions::warm_repair — a capsule whose matrix
  /// fingerprint no longer matched).
  Basis,
};

/// Result of a solve. `x` has one entry per model variable.
/// `duals` holds one shadow price per row: d(objective)/d(rhs) in the
/// model's own sense (so for a Maximize model with <= rows, duals >= 0).
struct Solution {
  SolveStatus status = SolveStatus::NumericalError;
  double objective = 0.0;
  std::vector<double> x;
  std::vector<double> duals;
  int iterations = 0;        ///< total pivots across both phases
  int phase1_iterations = 0;
  /// Optimal basis, filled when status == Optimal; reusable as a warm
  /// start for a same-shaped model.
  Basis basis;
  /// True when a supplied warm basis was accepted (phase 1 was skipped).
  bool warm_used = false;
  /// Which start actually seeded the solve (Cold when warm_used is
  /// false). phase1_iterations > 0 with a warm kind means the composite
  /// bound phase 1 had to repair the restored basis first.
  WarmKind warm_kind = WarmKind::Cold;
  /// What the Auto options actually resolved to, plus factorization
  /// telemetry for bench/lp_scaling's per-rule columns.
  Factorization factorization_used = Factorization::SparseLu;
  Pricing pricing_used = Pricing::Dantzig;
  int refactorizations = 0;      ///< basis rebuilds during the solve
  int pricing_refreshes = 0;     ///< full reduced-cost recomputations
  std::size_t eta_peak_nnz = 0;  ///< largest eta file reached between rebuilds
  bool column_cache_hit = false; ///< column structure came from a cache
};

namespace detail {

/// Column-wise sparse copy of a model's structural constraint matrix —
/// the solver-internal representation every solve needs. Immutable once
/// built, keyed by the constraint-matrix fingerprint, and shared across
/// solves (and threads) of models with identical rows: the batch API's
/// "one symbolic analysis per campaign cell".
struct ColumnCache {
  std::uint64_t fingerprint = 0;
  int rows = 0;
  int cols = 0;
  std::vector<int> col_ptr;   ///< size cols+1
  std::vector<int> col_row;
  std::vector<double> col_val;
};

/// FNV-1a over the constraint rows (shape, relations, and every term's
/// variable and coefficient bits). Bounds, costs and rhs are excluded:
/// those may change between the solves a warm capsule (or a column
/// cache) spans.
[[nodiscard]] std::uint64_t matrix_fingerprint(const Model& model);

/// Builds the column-wise structure for `model`.
[[nodiscard]] std::shared_ptr<const ColumnCache> build_column_cache(
    const Model& model);

struct ArenaImpl;  ///< all reusable solver buffers; defined in simplex.cpp

}  // namespace detail

/// Thread-safe store of column caches keyed by matrix fingerprint: the
/// shared symbolic analysis behind BatchSolver. Arenas attached to the
/// same store publish the structures they build and reuse each other's.
class ColumnCacheStore {
 public:
  [[nodiscard]] std::shared_ptr<const detail::ColumnCache> find(
      std::uint64_t fingerprint) const;
  void insert(std::shared_ptr<const detail::ColumnCache> cache);
  /// Lookup counters (hits/misses across all attached arenas).
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const detail::ColumnCache>>
      caches_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

/// Reusable solver workspace: every buffer a solve needs (bounds, costs,
/// statuses, factorization scratch, pricing vectors, the column-wise
/// matrix copy) lives here and is recycled across solves, so a solve on
/// a previously seen shape allocates nothing. One arena serves one
/// thread at a time (solves reset what they read, so sharing sequentially
/// is always safe — results are bit-identical with or without an arena).
/// Attach a ColumnCacheStore to share column structures across arenas.
class SolveArena {
 public:
  SolveArena();
  explicit SolveArena(std::shared_ptr<ColumnCacheStore> store);
  ~SolveArena();
  SolveArena(SolveArena&&) noexcept;
  SolveArena& operator=(SolveArena&&) noexcept;
  SolveArena(const SolveArena&) = delete;
  SolveArena& operator=(const SolveArena&) = delete;

  [[nodiscard]] detail::ArenaImpl& impl() { return *impl_; }

 private:
  std::unique_ptr<detail::ArenaImpl> impl_;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model's continuous relaxation (integrality marks ignored).
  /// A non-null `warm` basis seeds the solve when it fits the model and
  /// is primal feasible under its current bounds; otherwise it is
  /// silently ignored (Solution::warm_used reports which happened).
  [[nodiscard]] Solution solve(const Model& model,
                               const Basis* warm = nullptr) const;

  /// Capsule form: seeds from `state` when it is valid, fits the model's
  /// shape, was taken from the same constraint matrix, and is still
  /// primal feasible; falls back to the cold start otherwise. Either
  /// way, an Optimal solve refreshes the capsule for the next call.
  [[nodiscard]] Solution solve(const Model& model, WarmState* state) const;

  /// Arena forms: identical results, but all scratch comes from (and
  /// stays in) `arena` — the no-per-solve-allocation path BatchSolver
  /// and the campaign kernels run on.
  [[nodiscard]] Solution solve(const Model& model, SolveArena& arena) const;
  [[nodiscard]] Solution solve(const Model& model, const Basis* warm,
                               SolveArena& arena) const;
  [[nodiscard]] Solution solve(const Model& model, WarmState* state,
                               SolveArena& arena) const;

  [[nodiscard]] const SimplexOptions& options() const { return options_; }

 private:
  SimplexOptions options_;
};

}  // namespace dls::lp
