// Bounded-variable primal revised simplex.
//
// Design (following standard texts, e.g. Chvátal and Maros):
//   * computational form: minimize c'x subject to Ax + s = b, where one
//     logical (slack) variable s_i per row carries the row relation in its
//     bounds (<=: [0,inf), >=: (-inf,0], =: [0,0]);
//   * nonbasic variables sit at a finite bound (or at 0 if free); basic
//     values are x_B = B^{-1}(b - N x_N);
//   * the basis is kept factorized. The default representation is a
//     sparse Markowitz LU with product-form (eta) updates per pivot
//     (lp/basis_lu.hpp), answering the FTRAN/BTRAN solves in O(nnz);
//     the original dense explicit inverse — elementary row updates,
//     Gauss-Jordan rebuilds — survives as Factorization::DenseInverse,
//     the measured baseline of bench/lp_scaling.cpp. Either way the
//     factorization is rebuilt every `refactor_interval` pivots to
//     bound numerical drift;
//   * feasibility is restored in phase 1 by per-row artificial columns
//     (+/- e_i) minimized to zero, after which their bounds collapse to
//     [0,0] and phase 2 optimizes the true objective;
//   * Dantzig pricing with an automatic switch to Bland's rule after a
//     long degenerate stall, which guarantees termination.
//
// This is the LP engine behind every rational relaxation in the paper
// (the "LP" upper-bound comparator and the LPR/LPRG/LPRR heuristics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/basis_lu.hpp"
#include "lp/model.hpp"
#include "lp/types.hpp"

namespace dls::lp {

/// Basis representation used by the solver.
enum class Factorization : unsigned char {
  SparseLu,      ///< Markowitz LU + eta updates (default; O(nnz) solves)
  DenseInverse,  ///< explicit m x m inverse (legacy baseline; O(m^2) solves)
};

struct SimplexOptions {
  double feas_tol = 1e-7;    ///< bound/row violation considered zero
  double opt_tol = 1e-9;     ///< reduced-cost threshold for optimality
  double pivot_tol = 1e-9;   ///< smallest acceptable pivot magnitude
  int max_iterations = 0;    ///< 0 = automatic (scales with model size)
  int refactor_interval = 100;  ///< pivots between basis refactorizations
  int stall_limit = 500;     ///< degenerate pivots before switching to Bland
  /// Fill Solution::duals (one extra BTRAN). The adaptive rescheduler
  /// turns this off: its per-event solves never read duals.
  bool compute_duals = true;
  /// Basis representation; SparseLu unless a bench/test wants the dense
  /// baseline.
  Factorization factorization = Factorization::SparseLu;
  /// Basis repair across constraint-matrix changes: when a warm capsule
  /// is rejected by the matrix fingerprint but its statuses still fit
  /// the model's shape, retry them as a statuses-only start against the
  /// new matrix — refactorize the basic set and let the composite bound
  /// phase 1 repair any primal infeasibility — instead of starting cold.
  /// Off by default: it only makes sense when successive models are
  /// small perturbations of one another (the dynamics rescheduler's
  /// capacity events); a capsule from an unrelated model should be
  /// discarded, not repaired.
  bool warm_repair = false;
};

/// Resting place of one variable in a basis snapshot.
enum class BasisStatus : unsigned char { AtLower, AtUpper, Basic, Free };

/// A restart point for solve(): the status of every structural variable
/// and of every row's slack at some basis. Obtained from Solution::basis
/// and fed back as solve()'s `warm` argument, typically against a
/// neighbouring model of identical shape whose bounds, costs or rhs
/// moved (the adaptive rescheduler's arrival/departure re-solves). A
/// basis that does not fit the model — wrong shape, singular, or primal
/// infeasible under the new data — is ignored and the solve falls back
/// to the cold all-slack start, so passing a stale basis is always safe.
struct Basis {
  std::vector<BasisStatus> variables;  ///< one per structural variable
  std::vector<BasisStatus> slacks;     ///< one per constraint row
  [[nodiscard]] bool empty() const { return variables.empty() && slacks.empty(); }
  /// Shape check only; feasibility is verified during the solve.
  [[nodiscard]] bool compatible(const Model& model) const;
};

/// Persistent warm-start capsule: the statuses PLUS the factorized
/// basis (sparse LU + eta file), carried across solves of models that
/// share one constraint matrix (bounds, costs and rhs may change freely
/// — the adaptive rescheduler's arrival/departure re-solves). Restoring
/// from a capsule costs O(m + nnz) (move + basic-value recompute)
/// instead of the refactorization a statuses-only Basis needs, which is
/// what makes warm solves cheaper than cold ones even on models whose
/// cold start needs no phase 1; capsule memory scales with the
/// factorization's nonzeros, not with m^2. A fingerprint of the
/// constraint rows guards reuse: a capsule taken from a different
/// matrix is ignored. solve() both consumes and refreshes the capsule,
/// so callers just keep handing the same object back. A capsule written
/// by a Factorization::DenseInverse solve carries no factorization (the
/// dense inverse is not persisted); restoring it refactorizes from the
/// saved basic set instead.
struct WarmState {
  Basis basis;
  std::vector<int> basic_vars;   ///< row -> basic variable (internal index)
  BasisLu lu;                    ///< factorized basis + eta stack (may be empty)
  int pivots_since_refactor = 0; ///< drift budget carried across solves
  std::uint64_t fingerprint = 0; ///< constraint-matrix hash
  bool valid = false;

  /// Forces the next solve cold while still refreshing the capsule.
  void invalidate() { valid = false; }

  /// Heap footprint of the capsule (statuses + basic set + factorization).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// How a solve was seeded.
enum class WarmKind : unsigned char {
  Cold,     ///< all-slack start (no usable warm state)
  /// Capsule restored against its own constraint matrix (fingerprint
  /// matched; the saved factorization is reused when present).
  Capsule,
  /// Statuses-only start: the basic set was refactorized against a
  /// matrix the basis was not taken from (a plain Basis argument, or —
  /// under SimplexOptions::warm_repair — a capsule whose matrix
  /// fingerprint no longer matched).
  Basis,
};

/// Result of a solve. `x` has one entry per model variable.
/// `duals` holds one shadow price per row: d(objective)/d(rhs) in the
/// model's own sense (so for a Maximize model with <= rows, duals >= 0).
struct Solution {
  SolveStatus status = SolveStatus::NumericalError;
  double objective = 0.0;
  std::vector<double> x;
  std::vector<double> duals;
  int iterations = 0;        ///< total pivots across both phases
  int phase1_iterations = 0;
  /// Optimal basis, filled when status == Optimal; reusable as a warm
  /// start for a same-shaped model.
  Basis basis;
  /// True when a supplied warm basis was accepted (phase 1 was skipped).
  bool warm_used = false;
  /// Which start actually seeded the solve (Cold when warm_used is
  /// false). phase1_iterations > 0 with a warm kind means the composite
  /// bound phase 1 had to repair the restored basis first.
  WarmKind warm_kind = WarmKind::Cold;
};

class SimplexSolver {
public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model's continuous relaxation (integrality marks ignored).
  /// A non-null `warm` basis seeds the solve when it fits the model and
  /// is primal feasible under its current bounds; otherwise it is
  /// silently ignored (Solution::warm_used reports which happened).
  [[nodiscard]] Solution solve(const Model& model,
                               const Basis* warm = nullptr) const;

  /// Capsule form: seeds from `state` when it is valid, fits the model's
  /// shape, was taken from the same constraint matrix, and is still
  /// primal feasible; falls back to the cold start otherwise. Either
  /// way, an Optimal solve refreshes the capsule for the next call.
  [[nodiscard]] Solution solve(const Model& model, WarmState* state) const;

  [[nodiscard]] const SimplexOptions& options() const { return options_; }

private:
  SimplexOptions options_;
};

}  // namespace dls::lp
