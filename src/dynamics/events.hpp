// Platform dynamics: timed events that make the platform a first-class
// time-varying object.
//
// The paper's steady-state model (§2) freezes bandwidths, max-connect
// budgets and topology for the whole run and defers dynamics to future
// work (§7). This subsystem supplies the missing axis: a vocabulary of
// platform events (capacity rescales, link and router failures, cluster
// churn), stochastic generators for them (Weibull/exponential
// failure-repair processes, mean-reverting bandwidth drift, exponential
// membership churn), and a trace-driven `.events` text format mirroring
// the online engine's `.workload`:
//
//   dls-events 1
//   event <time> <kind> <target> [<value>]
//
// with kind one of link-bw, link-maxconn, link-down, link-up,
// gateway-bw, cluster-leave, cluster-join, router-down, router-up.
// Values are written with 17 significant digits, so write/read round
// trips are bit-exact. Applying a trace to a platform is the job of
// DynamicPlatform (dynamic_platform.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "support/rng.hpp"

namespace dls::dynamics {

enum class EventKind : unsigned char {
  LinkBandwidth,    ///< re-prices a link's per-connection bw (value = new bw)
  LinkMaxConnect,   ///< rescales a link's max-connect (value = new budget)
  LinkDown,         ///< link fails; routed pairs detour or lose their route
  LinkUp,           ///< link repaired; severed pairs are re-offered routes
  GatewayBandwidth, ///< degrades/restores a cluster's gateway (value = new g_k)
  ClusterLeave,     ///< cluster churns out (isolated, compute disabled)
  ClusterJoin,      ///< cluster churns back in
  RouterDown,       ///< transit-router failure: every incident up link fails
  RouterUp,         ///< router repaired: the links *it* took down come back
};

/// The `.events` keyword of a kind ("link-bw", "cluster-leave", ...).
[[nodiscard]] const char* to_string(EventKind kind);

/// True for kinds that carry a value operand.
[[nodiscard]] bool has_value(EventKind kind);

/// One platform event: `kind` applied to `target` (a link, cluster or
/// router id, per kind) at `time`, with `value` the new capacity for the
/// rescale kinds (ignored otherwise).
struct PlatformEvent {
  double time = 0.0;
  EventKind kind = EventKind::LinkBandwidth;
  int target = 0;
  double value = 0.0;
};

/// A time-sorted stream of platform events.
struct EventTrace {
  std::vector<PlatformEvent> events;  ///< sorted by non-decreasing time

  [[nodiscard]] int size() const { return static_cast<int>(events.size()); }
  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Throws dls::Error unless times are finite, non-negative and
  /// non-decreasing, targets name existing links/clusters/routers of the
  /// platform, and rescale values are positive and finite (max-connect
  /// values additionally integral and >= 0).
  void validate(const platform::Platform& plat) const;

  /// Stable merge of two sorted traces (ties keep `a` before `b`).
  [[nodiscard]] static EventTrace merge(const EventTrace& a, const EventTrace& b);
};

// ---- stochastic generators --------------------------------------------------
//
// All generators are deterministic given (params, platform, rng state)
// and emit time-sorted traces over [0, horizon).

/// Alternating failure/repair processes for backbone links and (when
/// router_mtbf > 0) transit routers. Time-to-failure is Weibull with the
/// given shape (shape 1 = the classical exponential/Poisson failure
/// process; shape < 1 = infant-mortality-heavy, > 1 = wear-out);
/// repair times are exponential.
struct FailureRepairParams {
  double horizon = 1000.0;
  double link_mtbf = 2000.0;    ///< Weibull scale of link time-to-failure
  double weibull_shape = 1.0;   ///< Weibull shape (1 = exponential)
  double mean_repair = 100.0;   ///< exponential mean link repair time
  /// Weibull scale of router time-to-failure; 0 disables router events.
  /// Only routers named "transit*" (the generator's transit routers) or
  /// routers with no attached cluster are eligible: failing a cluster's
  /// home router is modelled as cluster churn instead.
  double router_mtbf = 0.0;
  double router_mean_repair = 100.0;
};

[[nodiscard]] EventTrace failure_repair_trace(const platform::Platform& plat,
                                              const FailureRepairParams& params,
                                              Rng& rng);

/// Mean-reverting multiplicative bandwidth drift: each link's bandwidth
/// is base_bw * exp(x_t) where x_t follows the discretized
/// Ornstein-Uhlenbeck recurrence
///   x' = x * exp(-step/revert_tau) + sigma * sqrt(1 - exp(-2 step/tau)) * N(0,1),
/// sampled every `step` time units — the classical model of backbone
/// capacity sagging under background cross-traffic and recovering.
/// Factors are clamped to [floor_factor, 1/floor_factor].
struct DriftParams {
  double horizon = 1000.0;
  double step = 25.0;          ///< sampling interval
  double sigma = 0.15;         ///< stationary stddev of log-bandwidth
  double revert_tau = 200.0;   ///< mean-reversion time constant
  double floor_factor = 0.05;  ///< clamp on the multiplicative factor
  /// Probability that a link's re-sampled bandwidth is emitted as an
  /// event at each step. The OU state always advances; thinning the
  /// emissions lets low event-rate scenarios spread drift over the
  /// horizon instead of dumping every link each step.
  double sample_fraction = 1.0;
  bool gateways = false;       ///< also drift cluster gateway bandwidths
};

[[nodiscard]] EventTrace drift_trace(const platform::Platform& plat,
                                     const DriftParams& params, Rng& rng);

/// Cluster membership churn: a `churn_fraction` subset of clusters
/// alternates exponential present (mean_up) / absent (mean_down)
/// periods, emitting cluster-leave / cluster-join pairs.
struct ChurnParams {
  double horizon = 1000.0;
  double mean_up = 600.0;
  double mean_down = 150.0;
  double churn_fraction = 0.25;  ///< fraction of clusters subject to churn
};

[[nodiscard]] EventTrace churn_trace(const platform::Platform& plat,
                                     const ChurnParams& params, Rng& rng);

// ---- scenario grid ----------------------------------------------------------

/// Table-1-style grid of churn scenarios for sweeps: event rate (mean
/// platform events per time unit, split across failures, drift and
/// churn) crossed with severity (how deep capacity cuts go and how long
/// outages last, 0 = imperceptible .. 1 = crippling).
struct ChurnScenarioGrid {
  std::vector<double> event_rate{0.005, 0.02, 0.08, 0.32};
  std::vector<double> severity{0.2, 0.4, 0.6, 0.8};
};

/// One cell of the grid, expanded into generator parameters for the
/// given horizon and platform size. Rate scales MTBFs and drift steps
/// inversely; severity scales drift sigma, repair/absence durations and
/// the churned-cluster fraction.
struct ScenarioParams {
  FailureRepairParams failures;
  DriftParams drift;
  ChurnParams churn;
};
[[nodiscard]] ScenarioParams scenario_params(double event_rate, double severity,
                                             double horizon,
                                             const platform::Platform& plat);

/// Full scenario trace for one grid cell: merged failure + drift + churn
/// streams. Deterministic given (cell, horizon, platform, rng state).
[[nodiscard]] EventTrace scenario_trace(double event_rate, double severity,
                                        double horizon,
                                        const platform::Platform& plat, Rng& rng);

// ---- serialization ----------------------------------------------------------

/// Writes the `.events` format (17 significant digits; bit-exact round
/// trips).
void write_events(const EventTrace& trace, std::ostream& os);

/// Reads a `.events` stream; throws dls::Error naming the line and the
/// defect (bad header, unknown kind, truncated line, negative or
/// out-of-order time, malformed number).
[[nodiscard]] EventTrace read_events(std::istream& is);

[[nodiscard]] std::string to_text(const EventTrace& trace);
[[nodiscard]] EventTrace from_text(const std::string& text);

}  // namespace dls::dynamics
