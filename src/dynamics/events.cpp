#include "dynamics/events.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numbers>
#include <ostream>
#include <sstream>

namespace dls::dynamics {

namespace {

/// Exponential draw of the given mean via inversion (uniform01() is in
/// [0, 1), so the log argument stays positive).
double exponential(Rng& rng, double mean) {
  return -mean * std::log1p(-rng.uniform01());
}

/// Weibull draw: scale * (-ln(1-U))^(1/shape); shape 1 is exponential.
double weibull(Rng& rng, double scale, double shape) {
  return scale * std::pow(-std::log1p(-rng.uniform01()), 1.0 / shape);
}

/// Standard normal via Box-Muller. Two uniforms per draw, no caching:
/// the stream layout stays obvious for reproducibility.
double normal01(Rng& rng) {
  const double u1 = rng.uniform01();
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log1p(-u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

/// Generation order is per-entity; a stable sort by time merges the
/// streams while keeping ties in entity order.
void sort_by_time(EventTrace& trace) {
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const PlatformEvent& a, const PlatformEvent& b) {
                     return a.time < b.time;
                   });
}

/// Alternating failure/repair stream for one entity over [0, horizon).
template <typename Fail, typename Repair>
void emit_failure_repair(EventTrace& out, double horizon, EventKind down,
                         EventKind up, int target, Fail&& next_failure,
                         Repair&& next_repair) {
  double t = next_failure();
  while (t < horizon) {
    out.events.push_back({t, down, target, 0.0});
    t += next_repair();
    if (t >= horizon) return;  // never repaired inside the horizon
    out.events.push_back({t, up, target, 0.0});
    t += next_failure();
  }
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::LinkBandwidth: return "link-bw";
    case EventKind::LinkMaxConnect: return "link-maxconn";
    case EventKind::LinkDown: return "link-down";
    case EventKind::LinkUp: return "link-up";
    case EventKind::GatewayBandwidth: return "gateway-bw";
    case EventKind::ClusterLeave: return "cluster-leave";
    case EventKind::ClusterJoin: return "cluster-join";
    case EventKind::RouterDown: return "router-down";
    case EventKind::RouterUp: return "router-up";
  }
  return "?";
}

bool has_value(EventKind kind) {
  return kind == EventKind::LinkBandwidth || kind == EventKind::LinkMaxConnect ||
         kind == EventKind::GatewayBandwidth;
}

void EventTrace::validate(const platform::Platform& plat) const {
  double prev = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const PlatformEvent& e = events[i];
    const std::string at = " at event " + std::to_string(i);
    require(std::isfinite(e.time) && e.time >= 0.0,
            "event trace: bad event time" + at);
    require(e.time >= prev, "event trace: times must be non-decreasing" + at);
    prev = e.time;
    switch (e.kind) {
      case EventKind::LinkBandwidth:
        require(e.target >= 0 && e.target < plat.num_links(),
                "event trace: link id out of range" + at);
        require(std::isfinite(e.value) && e.value > 0.0,
                "event trace: bandwidth must be positive" + at);
        break;
      case EventKind::LinkMaxConnect:
        require(e.target >= 0 && e.target < plat.num_links(),
                "event trace: link id out of range" + at);
        require(std::isfinite(e.value) && e.value >= 0.0 &&
                    e.value == std::floor(e.value),
                "event trace: max-connect must be a non-negative integer" + at);
        break;
      case EventKind::LinkDown:
      case EventKind::LinkUp:
        require(e.target >= 0 && e.target < plat.num_links(),
                "event trace: link id out of range" + at);
        break;
      case EventKind::GatewayBandwidth:
        require(e.target >= 0 && e.target < plat.num_clusters(),
                "event trace: cluster id out of range" + at);
        require(std::isfinite(e.value) && e.value > 0.0,
                "event trace: bandwidth must be positive" + at);
        break;
      case EventKind::ClusterLeave:
      case EventKind::ClusterJoin:
        require(e.target >= 0 && e.target < plat.num_clusters(),
                "event trace: cluster id out of range" + at);
        break;
      case EventKind::RouterDown:
      case EventKind::RouterUp:
        require(e.target >= 0 && e.target < plat.num_routers(),
                "event trace: router id out of range" + at);
        break;
    }
  }
}

EventTrace EventTrace::merge(const EventTrace& a, const EventTrace& b) {
  EventTrace out;
  out.events.resize(a.events.size() + b.events.size());
  std::merge(a.events.begin(), a.events.end(), b.events.begin(), b.events.end(),
             out.events.begin(),
             [](const PlatformEvent& x, const PlatformEvent& y) {
               return x.time < y.time;
             });
  return out;
}

EventTrace failure_repair_trace(const platform::Platform& plat,
                                const FailureRepairParams& p, Rng& rng) {
  require(p.horizon > 0.0 && std::isfinite(p.horizon),
          "failure_repair_trace: horizon must be positive");
  require(p.link_mtbf > 0.0 && p.mean_repair > 0.0,
          "failure_repair_trace: MTBF and repair means must be positive");
  require(p.weibull_shape > 0.0, "failure_repair_trace: shape must be positive");
  require(p.router_mtbf >= 0.0 && p.router_mean_repair > 0.0,
          "failure_repair_trace: router means must be positive");

  EventTrace out;
  for (platform::LinkId i = 0; i < plat.num_links(); ++i) {
    emit_failure_repair(
        out, p.horizon, EventKind::LinkDown, EventKind::LinkUp, i,
        [&] { return weibull(rng, p.link_mtbf, p.weibull_shape); },
        [&] { return exponential(rng, p.mean_repair); });
  }
  if (p.router_mtbf > 0.0) {
    // Only transit routers fail as routers: losing a cluster's home
    // router is cluster churn, not a backbone event.
    std::vector<char> hosts(plat.num_routers(), 0);
    for (int k = 0; k < plat.num_clusters(); ++k) hosts[plat.cluster(k).router] = 1;
    for (platform::RouterId r = 0; r < plat.num_routers(); ++r) {
      if (hosts[r]) continue;
      emit_failure_repair(
          out, p.horizon, EventKind::RouterDown, EventKind::RouterUp, r,
          [&] { return weibull(rng, p.router_mtbf, p.weibull_shape); },
          [&] { return exponential(rng, p.router_mean_repair); });
    }
  }
  sort_by_time(out);
  return out;
}

EventTrace drift_trace(const platform::Platform& plat, const DriftParams& p,
                       Rng& rng) {
  require(p.horizon > 0.0 && p.step > 0.0 && std::isfinite(p.horizon),
          "drift_trace: horizon and step must be positive");
  require(p.sigma >= 0.0 && p.revert_tau > 0.0,
          "drift_trace: sigma must be >= 0 and revert_tau positive");
  require(p.floor_factor > 0.0 && p.floor_factor <= 1.0,
          "drift_trace: floor_factor out of (0, 1]");
  require(p.sample_fraction >= 0.0 && p.sample_fraction <= 1.0,
          "drift_trace: sample_fraction out of [0, 1]");

  const double decay = std::exp(-p.step / p.revert_tau);
  const double shock = p.sigma * std::sqrt(1.0 - decay * decay);
  const auto clamp_factor = [&](double f) {
    return std::clamp(f, p.floor_factor, 1.0 / p.floor_factor);
  };

  EventTrace out;
  std::vector<double> link_x(plat.num_links(), 0.0);
  std::vector<double> gw_x(p.gateways ? plat.num_clusters() : 0, 0.0);
  // Time-major generation: the trace comes out already sorted.
  for (double t = p.step; t < p.horizon; t += p.step) {
    for (platform::LinkId i = 0; i < plat.num_links(); ++i) {
      link_x[i] = link_x[i] * decay + shock * normal01(rng);
      if (p.sample_fraction < 1.0 && !rng.bernoulli(p.sample_fraction)) continue;
      out.events.push_back({t, EventKind::LinkBandwidth, i,
                            plat.link(i).bw * clamp_factor(std::exp(link_x[i]))});
    }
    for (int k = 0; k < static_cast<int>(gw_x.size()); ++k) {
      gw_x[k] = gw_x[k] * decay + shock * normal01(rng);
      if (p.sample_fraction < 1.0 && !rng.bernoulli(p.sample_fraction)) continue;
      out.events.push_back(
          {t, EventKind::GatewayBandwidth, k,
           plat.cluster(k).gateway_bw * clamp_factor(std::exp(gw_x[k]))});
    }
  }
  return out;
}

EventTrace churn_trace(const platform::Platform& plat, const ChurnParams& p,
                       Rng& rng) {
  require(p.horizon > 0.0 && std::isfinite(p.horizon),
          "churn_trace: horizon must be positive");
  require(p.mean_up > 0.0 && p.mean_down > 0.0,
          "churn_trace: membership means must be positive");
  require(p.churn_fraction >= 0.0 && p.churn_fraction <= 1.0,
          "churn_trace: churn fraction out of [0, 1]");

  EventTrace out;
  for (int k = 0; k < plat.num_clusters(); ++k) {
    if (!rng.bernoulli(p.churn_fraction)) continue;
    emit_failure_repair(
        out, p.horizon, EventKind::ClusterLeave, EventKind::ClusterJoin, k,
        [&] { return exponential(rng, p.mean_up); },
        [&] { return exponential(rng, p.mean_down); });
  }
  sort_by_time(out);
  return out;
}

ScenarioParams scenario_params(double event_rate, double severity,
                               double horizon, const platform::Platform& plat) {
  require(event_rate > 0.0 && std::isfinite(event_rate),
          "scenario_params: event rate must be positive");
  require(severity >= 0.0 && severity <= 1.0,
          "scenario_params: severity out of [0, 1]");
  require(horizon > 0.0 && std::isfinite(horizon),
          "scenario_params: horizon must be positive");
  const double links = std::max(1, plat.num_links());

  // Budget split: ~60% of events are drift samples, ~30% link
  // failure/repair pairs, ~10% churn pairs. Severity deepens the cuts
  // (drift sigma), lengthens outages relative to the horizon, and
  // widens the churned-cluster fraction.
  ScenarioParams out;
  out.drift.horizon = horizon;
  // A fixed cadence with thinned per-link emission: expected drift
  // events per time unit = links * sample_fraction / step = 0.6 * rate,
  // spread over the horizon even at low rates.
  out.drift.step = std::max(1.0, horizon / 32.0);
  out.drift.sample_fraction =
      std::min(1.0, 0.6 * event_rate * out.drift.step / links);
  out.drift.sigma = 0.05 + 0.45 * severity;
  out.drift.revert_tau = std::max(4.0 * out.drift.step, horizon / 8.0);

  out.failures.horizon = horizon;
  // Each failure contributes a down/up pair: rate * 0.3 events per time
  // unit across `links` links means a per-link MTBF of 2 links / that.
  out.failures.link_mtbf = 2.0 * links / (0.3 * event_rate);
  out.failures.mean_repair =
      std::min(0.8 * out.failures.link_mtbf, (0.02 + 0.18 * severity) * horizon);
  out.failures.weibull_shape = 1.0;

  out.churn.horizon = horizon;
  out.churn.churn_fraction = 0.1 + 0.4 * severity;
  out.churn.mean_up = std::max(horizon / 4.0,
                               2.0 * plat.num_clusters() / (0.1 * event_rate));
  out.churn.mean_down = (0.05 + 0.2 * severity) * horizon;
  return out;
}

EventTrace scenario_trace(double event_rate, double severity, double horizon,
                          const platform::Platform& plat, Rng& rng) {
  const ScenarioParams p = scenario_params(event_rate, severity, horizon, plat);
  EventTrace trace = failure_repair_trace(plat, p.failures, rng);
  trace = EventTrace::merge(trace, drift_trace(plat, p.drift, rng));
  return EventTrace::merge(trace, churn_trace(plat, p.churn, rng));
}

// ---- serialization ----------------------------------------------------------

void write_events(const EventTrace& trace, std::ostream& os) {
  os.precision(17);
  os << "dls-events 1\n";
  for (const PlatformEvent& e : trace.events) {
    os << "event " << e.time << ' ' << to_string(e.kind) << ' ' << e.target;
    if (has_value(e.kind)) os << ' ' << e.value;
    os << '\n';
  }
}

namespace {

EventKind parse_kind(const std::string& token, int line) {
  for (EventKind kind :
       {EventKind::LinkBandwidth, EventKind::LinkMaxConnect, EventKind::LinkDown,
        EventKind::LinkUp, EventKind::GatewayBandwidth, EventKind::ClusterLeave,
        EventKind::ClusterJoin, EventKind::RouterDown, EventKind::RouterUp}) {
    if (token == to_string(kind)) return kind;
  }
  throw Error("read_events: line " + std::to_string(line) +
              ": unknown event kind '" + token + "'");
}

double parse_double(std::istringstream& iss, const char* what, int line) {
  double v = 0.0;
  if (!(iss >> v)) {
    throw Error("read_events: line " + std::to_string(line) +
                ": truncated or malformed line (expected " + what + ")");
  }
  return v;
}

}  // namespace

EventTrace read_events(std::istream& is) {
  std::string line;
  int line_no = 0;
  // Header: the first non-blank line must be "dls-events 1".
  std::string header;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    header = line;
    break;
  }
  {
    std::istringstream iss(header);
    std::string magic;
    int version = 0;
    iss >> magic >> version;
    require(static_cast<bool>(iss) && magic == "dls-events" && version == 1,
            "read_events: bad header (expected 'dls-events 1')");
  }

  EventTrace trace;
  double prev = 0.0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream iss(line);
    std::string keyword;
    iss >> keyword;
    if (keyword != "event") {
      throw Error("read_events: line " + std::to_string(line_no) +
                  ": unknown keyword '" + keyword + "'");
    }
    PlatformEvent e;
    e.time = parse_double(iss, "a time", line_no);
    if (!std::isfinite(e.time) || e.time < 0.0) {
      throw Error("read_events: line " + std::to_string(line_no) +
                  ": event time must be finite and non-negative");
    }
    if (e.time < prev) {
      throw Error("read_events: line " + std::to_string(line_no) +
                  ": out-of-order event time (trace must be sorted)");
    }
    prev = e.time;
    std::string kind_token;
    if (!(iss >> kind_token)) {
      throw Error("read_events: line " + std::to_string(line_no) +
                  ": truncated or malformed line (expected an event kind)");
    }
    e.kind = parse_kind(kind_token, line_no);
    const double target = parse_double(iss, "a target id", line_no);
    if (target != std::floor(target) || target < 0.0 || target > 1e9) {
      throw Error("read_events: line " + std::to_string(line_no) +
                  ": target must be a non-negative integer id");
    }
    e.target = static_cast<int>(target);
    if (has_value(e.kind)) e.value = parse_double(iss, "a value", line_no);
    std::string extra;
    if (iss >> extra) {
      throw Error("read_events: line " + std::to_string(line_no) +
                  ": unexpected trailing token '" + extra + "'");
    }
    trace.events.push_back(e);
  }
  return trace;
}

std::string to_text(const EventTrace& trace) {
  std::ostringstream oss;
  write_events(trace, oss);
  return oss.str();
}

EventTrace from_text(const std::string& text) {
  std::istringstream iss(text);
  return read_events(iss);
}

}  // namespace dls::dynamics
