#include "dynamics/dynamic_platform.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace dls::dynamics {

namespace {

// Platform-event telemetry: events by the scope they actually
// invalidated (a no-op LinkUp on an admin-up link counts under "none")
// and the number of backbone routes rebuilt or torn down as a result.
struct DynObs {
  obs::Counter none, capacity, topology, routes_changed;
  DynObs() {
    auto& reg = obs::registry();
    const std::string name = "dls_platform_events_total";
    const std::string help = "Platform events applied, by resulting scope";
    none = reg.counter(name, help, "scope=\"none\"");
    capacity = reg.counter(name, help, "scope=\"capacity\"");
    topology = reg.counter(name, help, "scope=\"topology\"");
    routes_changed = reg.counter("dls_platform_routes_changed_total",
                                 "Backbone routes changed by platform events");
  }
};

DynObs& dyn_obs() {
  static DynObs handles;
  return handles;
}

}  // namespace

const char* to_string(ChangeScope scope) {
  switch (scope) {
    case ChangeScope::None: return "none";
    case ChangeScope::Capacity: return "capacity";
    case ChangeScope::Topology: return "topology";
  }
  return "?";
}

ChangeScope merge_scope(ChangeScope a, ChangeScope b) {
  return static_cast<ChangeScope>(
      std::max(static_cast<unsigned char>(a), static_cast<unsigned char>(b)));
}

DynamicPlatform::DynamicPlatform(platform::Platform base)
    : plat_(std::move(base)),
      present_(plat_.num_clusters(), 1),
      saved_speed_(plat_.num_clusters(), 0.0),
      link_admin_up_(plat_.num_links()),
      router_up_(plat_.num_routers(), 1) {
  for (platform::LinkId i = 0; i < plat_.num_links(); ++i)
    link_admin_up_[i] = plat_.link(i).up;
}

bool DynamicPlatform::cluster_present(platform::ClusterId k) const {
  require(k >= 0 && k < static_cast<int>(present_.size()),
          "DynamicPlatform: cluster id out of range");
  return present_[k] != 0;
}

platform::Platform::RouteFilter DynamicPlatform::present_filter() const {
  return [this](platform::ClusterId k, platform::ClusterId l) {
    return present_[k] != 0 && present_[l] != 0;
  };
}

bool DynamicPlatform::effective_up(platform::LinkId i) const {
  const platform::BackboneLink& link = plat_.link(i);
  return link_admin_up_[i] != 0 && router_up_[link.a] != 0 &&
         router_up_[link.b] != 0;
}

int DynamicPlatform::sync_link(platform::LinkId i) {
  const bool desired = effective_up(i);
  if (plat_.link(i).up == desired) return 0;
  // The recovery pass on a restore is presence-filtered, so routes are
  // never offered to churned-out clusters in the first place.
  const int changed = plat_.set_link_up(i, desired, present_filter());
  dyn_obs().routes_changed.inc(static_cast<std::uint64_t>(changed));
  return changed;
}

ChangeScope DynamicPlatform::apply(const PlatformEvent& e) {
  const ChangeScope scope = apply_impl(e);
  switch (scope) {
    case ChangeScope::None: dyn_obs().none.inc(); break;
    case ChangeScope::Capacity: dyn_obs().capacity.inc(); break;
    case ChangeScope::Topology: dyn_obs().topology.inc(); break;
  }
  return scope;
}

ChangeScope DynamicPlatform::apply_impl(const PlatformEvent& e) {
  switch (e.kind) {
    case EventKind::LinkBandwidth: {
      if (plat_.link(e.target).bw == e.value) return ChangeScope::None;
      plat_.set_link_bandwidth(e.target, e.value);
      // Unrouted links have no LP row and no cached pbw entries.
      return plat_.num_routes_through(e.target) > 0 ? ChangeScope::Capacity
                                                    : ChangeScope::None;
    }
    case EventKind::LinkMaxConnect: {
      const int budget = static_cast<int>(e.value);
      if (plat_.link(e.target).max_connections == budget) return ChangeScope::None;
      plat_.set_link_max_connections(e.target, budget);
      return plat_.num_routes_through(e.target) > 0 ? ChangeScope::Capacity
                                                    : ChangeScope::None;
    }
    case EventKind::LinkDown: {
      if (!link_admin_up_[e.target]) return ChangeScope::None;
      link_admin_up_[e.target] = 0;
      return sync_link(e.target) > 0 ? ChangeScope::Topology : ChangeScope::None;
    }
    case EventKind::LinkUp: {
      if (link_admin_up_[e.target]) return ChangeScope::None;
      link_admin_up_[e.target] = 1;
      // Stays pending (platform link still down) while an endpoint
      // router is failed; the router's repair completes the restore.
      return sync_link(e.target) > 0 ? ChangeScope::Topology : ChangeScope::None;
    }
    case EventKind::GatewayBandwidth: {
      if (plat_.cluster(e.target).gateway_bw == e.value) return ChangeScope::None;
      plat_.set_cluster_gateway_bw(e.target, e.value);
      return present_[e.target] ? ChangeScope::Capacity : ChangeScope::None;
    }
    case EventKind::ClusterLeave: {
      if (!present_[e.target]) return ChangeScope::None;
      present_[e.target] = 0;
      saved_speed_[e.target] = plat_.cluster(e.target).speed;
      plat_.set_cluster_speed(e.target, 0.0);
      // Isolated and compute-disabled: the cluster neither computes nor
      // exchanges load, but keeps its id so online bookkeeping is
      // index-stable (the paper-level alternative, remove_cluster,
      // renumbers every cluster above it).
      dyn_obs().routes_changed.inc(
          static_cast<std::uint64_t>(plat_.clear_cluster_routes(e.target)));
      return ChangeScope::Topology;
    }
    case EventKind::ClusterJoin: {
      if (present_[e.target]) return ChangeScope::None;
      present_[e.target] = 1;
      plat_.set_cluster_speed(e.target, saved_speed_[e.target]);
      dyn_obs().routes_changed.inc(static_cast<std::uint64_t>(
          plat_.reroute_missing_pairs(present_filter())));
      // Even a still-disconnected rejoiner computes locally again.
      return ChangeScope::Topology;
    }
    case EventKind::RouterDown: {
      if (!router_up_[e.target]) return ChangeScope::None;
      router_up_[e.target] = 0;
      int changed = 0;
      for (platform::LinkId i = 0; i < plat_.num_links(); ++i) {
        const platform::BackboneLink& link = plat_.link(i);
        if (link.a == e.target || link.b == e.target) changed += sync_link(i);
      }
      return changed > 0 ? ChangeScope::Topology : ChangeScope::None;
    }
    case EventKind::RouterUp: {
      if (router_up_[e.target]) return ChangeScope::None;
      router_up_[e.target] = 1;
      int changed = 0;
      for (platform::LinkId i = 0; i < plat_.num_links(); ++i) {
        const platform::BackboneLink& link = plat_.link(i);
        if (link.a == e.target || link.b == e.target) changed += sync_link(i);
      }
      return changed > 0 ? ChangeScope::Topology : ChangeScope::None;
    }
  }
  throw Error("DynamicPlatform::apply: unknown event kind");
}

}  // namespace dls::dynamics
