// DynamicPlatform: a Platform copy that platform events are applied to,
// one at a time, through the Platform's incremental mutators.
//
// Besides forwarding the mutation it tracks the state the Platform
// itself does not carry:
//   * cluster membership — a churned-out cluster keeps its id (the
//     online engine's bookkeeping stays index-stable) but is isolated:
//     its routes are dropped, its speed is parked at 0 and arrivals for
//     it are rejected until it rejoins;
//   * router up/down state and each link's own (administrative)
//     up/down state, composed into the platform's effective link state:
//     a link carries traffic iff its own process has it up AND both of
//     its endpoint routers are up. A link repair that fires while an
//     endpoint router is still down therefore stays pending until the
//     router recovers (independent failure processes routinely
//     interleave that way), and a router repair never revives a link
//     whose own failure is unrepaired or whose far-end router is down;
//   * the change scope of each event, so the rescheduler can decide
//     between capsule reuse, basis repair and a cold solve.
//
// Scope classification:
//   * Capacity — the route set is intact; only capacities moved. Pure
//     rhs/bound moves (max-connect, gateway, speed) keep even the
//     simplex matrix fingerprint; bandwidth moves re-price coefficients
//     and take the basis-repair path.
//   * Topology — routes were added/dropped or membership changed: the
//     LP reshapes and warm state is unusable.
//   * None — the event changed nothing the steady-state model can see
//     (duplicate down/up, drift on an unrouted link, ...). None-scoped
//     events still mutate the platform (e.g. a down link stays down).
#pragma once

#include "dynamics/events.hpp"
#include "platform/platform.hpp"

namespace dls::dynamics {

enum class ChangeScope : unsigned char { None, Capacity, Topology };

[[nodiscard]] const char* to_string(ChangeScope scope);

/// The wider of two scopes (None < Capacity < Topology), for folding a
/// batch of simultaneous events into one rescheduler notification.
[[nodiscard]] ChangeScope merge_scope(ChangeScope a, ChangeScope b);

class DynamicPlatform {
public:
  explicit DynamicPlatform(platform::Platform base);

  [[nodiscard]] const platform::Platform& plat() const { return plat_; }

  /// True when cluster k has not churned out.
  [[nodiscard]] bool cluster_present(platform::ClusterId k) const;

  /// Applies one event and reports how much of the steady-state model it
  /// invalidated. Throws dls::Error on out-of-range targets or invalid
  /// values (EventTrace::validate catches these up front).
  ChangeScope apply(const PlatformEvent& event);

private:
  /// apply() body; the public wrapper reports the returned scope and
  /// route churn to obs.
  ChangeScope apply_impl(const PlatformEvent& event);
  /// Both-endpoints-present filter for Platform recovery passes.
  [[nodiscard]] platform::Platform::RouteFilter present_filter() const;
  /// admin state && both endpoint routers up.
  [[nodiscard]] bool effective_up(platform::LinkId i) const;
  /// Re-syncs one link's platform state to its effective state; returns
  /// the number of routes that changed.
  int sync_link(platform::LinkId i);

  platform::Platform plat_;
  std::vector<char> present_;
  std::vector<double> saved_speed_;       ///< speed parked by a leave
  std::vector<char> link_admin_up_;       ///< the link's own failure state
  std::vector<char> router_up_;
};

}  // namespace dls::dynamics
