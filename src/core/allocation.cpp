#include "core/allocation.hpp"

#include <cmath>

namespace dls::core {

Allocation::Allocation(int num_clusters) : k_(num_clusters) {
  require(num_clusters >= 1, "Allocation: need at least one cluster");
  alpha_.assign(static_cast<std::size_t>(k_) * k_, 0.0);
  beta_.assign(static_cast<std::size_t>(k_) * k_, 0.0);
}

void Allocation::set_alpha(int k, int l, double value) {
  require(std::isfinite(value) && value >= 0.0, "Allocation: invalid alpha");
  alpha_[index(k, l)] = value;
}

void Allocation::set_beta(int k, int l, double value) {
  require(std::isfinite(value) && value >= 0.0, "Allocation: invalid beta");
  beta_[index(k, l)] = value;
}

void Allocation::add_alpha(int k, int l, double delta) {
  set_alpha(k, l, alpha(k, l) + delta);
}

void Allocation::add_beta(int k, int l, double delta) {
  set_beta(k, l, beta(k, l) + delta);
}

double Allocation::total_alpha(int k) const {
  double total = 0.0;
  for (int l = 0; l < k_; ++l) total += alpha(k, l);
  return total;
}

double Allocation::load_on(int l) const {
  double total = 0.0;
  for (int k = 0; k < k_; ++k) total += alpha(k, l);
  return total;
}

double Allocation::gateway_traffic(int k) const {
  double total = 0.0;
  for (int l = 0; l < k_; ++l) {
    if (l == k) continue;
    total += alpha(k, l) + alpha(l, k);
  }
  return total;
}

bool Allocation::has_integral_betas(double eps) const {
  for (double b : beta_)
    if (std::fabs(b - std::round(b)) > eps) return false;
  return true;
}

}  // namespace dls::core
