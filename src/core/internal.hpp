// Shared internals between the greedy pass and the LP-based heuristics.
// Not part of the public API.
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/heuristics.hpp"
#include "core/problem.hpp"

namespace dls::core::internal {

/// Residual capacities plus the allocation built so far. LPRG seeds this
/// from a rounded LP solution; G starts from the full capacities.
struct GreedyState {
  Allocation alloc;
  std::vector<double> res_speed;    ///< per cluster
  std::vector<double> res_gateway;  ///< per cluster
  std::vector<double> res_maxcon;   ///< per backbone link

  [[nodiscard]] static GreedyState fresh(const SteadyStateProblem& problem);
  /// Residuals left by an existing allocation; throws if it already
  /// exceeds some capacity.
  [[nodiscard]] static GreedyState after(const SteadyStateProblem& problem,
                                         const Allocation& alloc);
};

/// Runs the greedy loop (paper §5.1 steps 2-7) until no application can
/// make progress, mutating the state in place.
void greedy_fill(const SteadyStateProblem& problem, GreedyState& state,
                 const GreedyOptions& options);

}  // namespace dls::core::internal
