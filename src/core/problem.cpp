#include "core/problem.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "lp/types.hpp"

namespace dls::core {

namespace {
constexpr double kEps = 1e-9;

std::string pair_name(const char* prefix, int k, int l) {
  return std::string(prefix) + "_" + std::to_string(k) + "_" + std::to_string(l);
}

// Variable/row names for non-canonical load sets carry the load index
// (the source cluster is implied by the load). Canonical sets keep the
// original "a_k_l" names so the emitted model is byte-identical.
std::string load_name(const char* prefix, int load, int l) {
  return std::string(prefix) + std::to_string(load) + "_" + std::to_string(l);
}
}  // namespace

std::string to_string(Objective o) {
  return o == Objective::Sum ? "SUM" : "MAXMIN";
}

namespace {
LoadSet payoff_loads(const platform::Platform& plat,
                     const std::vector<double>& payoffs) {
  require(static_cast<int>(payoffs.size()) == plat.num_clusters(),
          "SteadyStateProblem: one payoff per cluster required");
  return LoadSet::from_payoffs(payoffs);
}
}  // namespace

SteadyStateProblem::SteadyStateProblem(const platform::Platform& plat,
                                       std::vector<double> payoffs,
                                       Objective objective)
    : SteadyStateProblem(plat, payoff_loads(plat, payoffs), objective) {}

SteadyStateProblem::SteadyStateProblem(const platform::Platform& plat,
                                       LoadSet loads, Objective objective)
    : plat_(&plat), loads_(std::move(loads)), objective_(objective) {
  const int n = plat.num_clusters();
  loads_.validate(n);
  canonical_ = loads_.canonical(n);
  if (canonical_) payoffs_ = loads_.weights();

  auto table = std::make_shared<RouteTable>();
  table->route_id.assign(static_cast<std::size_t>(n) * n, -1);
  table->link_routes.assign(plat.num_links(), {});
  for (int k = 0; k < n; ++k) {
    for (int l = 0; l < n; ++l) {
      if (!plat.has_route(k, l)) continue;
      Route r;
      r.k = k;
      r.l = l;
      r.pbw = plat.route_bottleneck_bw(k, l);
      r.needs_beta = k != l && !plat.route(k, l).empty();
      const int id = static_cast<int>(table->routes.size());
      table->route_id[static_cast<std::size_t>(k) * n + l] = id;
      table->routes.push_back(r);
      if (k != l)
        for (platform::LinkId li : plat.route(k, l))
          table->link_routes[li].push_back(id);
    }
  }
  table_ = std::move(table);
  build_load_table();
}

void SteadyStateProblem::build_load_table() {
  const int n = plat_->num_clusters();
  const int num_loads = loads_.size();
  auto lt = std::make_shared<LoadTable>();
  lt->lroute_id.assign(static_cast<std::size_t>(num_loads) * n, -1);
  lt->link_lroutes.assign(plat_->num_links(), {});
  lt->loads_at.assign(n, {});
  for (int j = 0; j < num_loads; ++j) {
    const int src = loads_.loads[j].source;
    lt->loads_at[src].push_back(j);
    for (int l = 0; l < n; ++l) {
      const int r = table_->route_id[static_cast<std::size_t>(src) * n + l];
      if (r < 0) continue;
      const int id = static_cast<int>(lt->lroutes.size());
      lt->lroute_id[static_cast<std::size_t>(j) * n + l] = id;
      lt->lroutes.push_back({j, r});
      if (src != l)
        for (platform::LinkId li : plat_->route(src, l))
          lt->link_lroutes[li].push_back(id);
    }
  }
  ltable_ = std::move(lt);
}

SteadyStateProblem SteadyStateProblem::with_payoffs(
    std::vector<double> payoffs) const {
  require(canonical_, "with_payoffs: canonical problems only; use with_loads");
  require(payoffs.size() == payoffs_.size(),
          "with_payoffs: one payoff per cluster required");
  bool any_positive = false;
  for (double p : payoffs) {
    require(p >= 0.0 && std::isfinite(p), "with_payoffs: payoffs must be >= 0");
    any_positive |= p > 0.0;
  }
  require(any_positive, "with_payoffs: at least one positive payoff required");
  SteadyStateProblem copy = *this;
  for (std::size_t k = 0; k < payoffs.size(); ++k)
    copy.loads_.loads[k].weight = payoffs[k];
  copy.payoffs_ = std::move(payoffs);
  return copy;
}

SteadyStateProblem SteadyStateProblem::with_loads(LoadSet loads) const {
  loads.validate(num_clusters());
  SteadyStateProblem copy = *this;
  copy.loads_ = std::move(loads);
  copy.canonical_ = copy.loads_.canonical(num_clusters());
  copy.payoffs_ = copy.canonical_ ? copy.loads_.weights() : std::vector<double>{};
  copy.build_load_table();
  return copy;
}

SteadyStateProblem SteadyStateProblem::with_load_weights(
    const std::vector<double>& weights) const {
  require(weights.size() == loads_.loads.size(),
          "with_load_weights: one weight per load required");
  SteadyStateProblem copy = *this;
  bool any_positive = false;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    require(weights[j] >= 0.0 && std::isfinite(weights[j]),
            "with_load_weights: weights must be finite and >= 0");
    any_positive |= weights[j] > 0.0;
    copy.loads_.loads[j].weight = weights[j];
  }
  require(any_positive,
          "with_load_weights: at least one positive weight required");
  if (canonical_) copy.payoffs_ = weights;
  return copy;
}

int SteadyStateProblem::route_id(int k, int l) const {
  const int n = num_clusters();
  require(k >= 0 && k < n && l >= 0 && l < n, "route_id: cluster out of range");
  return table_->route_id[static_cast<std::size_t>(k) * n + l];
}

int SteadyStateProblem::load_route_id(int j, int l) const {
  const int n = num_clusters();
  require(j >= 0 && j < num_loads() && l >= 0 && l < n,
          "load_route_id: load or cluster out of range");
  return ltable_->lroute_id[static_cast<std::size_t>(j) * n + l];
}

SteadyStateProblem::ReducedModel SteadyStateProblem::build_reduced(
    const std::vector<BetaFixing>& fixings) const {
  const int n = num_clusters();
  const auto& lroutes = ltable_->lroutes;
  ReducedModel out;
  out.has_fixings = !fixings.empty();
  lp::Model& m = out.model;
  m.set_sense(lp::Sense::Maximize);

  // Fixing lookup: load-route -> fixed beta value (or -1 when free). The
  // LPRR fixing API is per platform route, which only identifies one
  // column on canonical sets (load-route id == route id there).
  require(fixings.empty() || canonical_,
          "build_reduced: beta fixings require a canonical load set");
  std::vector<int> fixed(lroutes.size(), -1);
  for (const BetaFixing& f : fixings) {
    require(f.route >= 0 && f.route < static_cast<int>(table_->routes.size()) &&
                table_->routes[f.route].needs_beta && f.value >= 0,
            "build_reduced: invalid beta fixing");
    fixed[f.route] = f.value;
  }

  // Alpha variables, one per (load, reachable destination).
  out.alpha_var.resize(lroutes.size());
  for (std::size_t r = 0; r < lroutes.size(); ++r) {
    const LoadSpec& load = loads_.loads[lroutes[r].load];
    const Route& route = table_->routes[lroutes[r].route];
    double ub = lp::kInf;
    if (load.weight == 0.0) {
      ub = 0.0;  // no application on this load slot: nothing to send
    } else if (fixed[r] >= 0) {
      // (7e) with beta pinned: data_ratio * alpha <= beta * pbw.
      ub = fixed[r] * route.pbw / load.data_ratio;
    }
    out.alpha_var[r] = m.add_variable(
        0.0, ub, 0.0,
        canonical_ ? pair_name("a", route.k, route.l)
                   : load_name("a", lroutes[r].load, route.l));
  }

  // (7b) compute capacity of each cluster, summed over every load.
  for (int l = 0; l < n; ++l) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < num_loads(); ++j) {
      const int r = load_route_id(j, l);
      if (r >= 0) terms.push_back({out.alpha_var[r], 1.0});
    }
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(l).speed, "speed_" + std::to_string(l));
  }

  // (7c) gateway capacity. A cluster with no remote routes (single-
  // cluster or fully-disconnected platforms, churned-out clusters) sends
  // no gateway traffic at all: emitting its row would add a degenerate
  // 0 <= g_k constraint (and a slack column) per isolated cluster.
  // Each unit of load j ships data_ratio_j bytes through both gateways.
  for (int k = 0; k < n; ++k) {
    std::vector<lp::Term> terms;
    for (int l = 0; l < n; ++l) {
      if (l == k) continue;
      for (int j : ltable_->loads_at[k])
        if (const int out_r = load_route_id(j, l); out_r >= 0)
          terms.push_back({out.alpha_var[out_r], loads_.loads[j].data_ratio});
      for (int j : ltable_->loads_at[l])
        if (const int in_r = load_route_id(j, k); in_r >= 0)
          terms.push_back({out.alpha_var[in_r], loads_.loads[j].data_ratio});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(k).gateway_bw, "gateway_" + std::to_string(k));
  }

  // (7d) with beta substituted: sum data_ratio * alpha / pbw over free
  // load-routes through the link, against the budget left by the fixed.
  for (platform::LinkId li = 0; li < plat_->num_links(); ++li) {
    if (ltable_->link_lroutes[li].empty()) continue;
    std::vector<lp::Term> terms;
    double budget = plat_->link(li).max_connections;
    for (int r : ltable_->link_lroutes[li]) {
      if (fixed[r] >= 0) {
        budget -= fixed[r];
      } else {
        terms.push_back({out.alpha_var[r],
                         loads_.loads[lroutes[r].load].data_ratio /
                             table_->routes[lroutes[r].route].pbw});
      }
    }
    require(budget >= -kEps, "build_reduced: beta fixings exceed a link budget");
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     std::max(budget, 0.0), "maxcon_" + std::to_string(li));
  }

  // Amdahl-like per-load caps: sum_l alpha_{j,l} <= cap_j. Absent for
  // canonical sets (cap = +inf), so the legacy layout is untouched.
  for (int j = 0; j < num_loads(); ++j) {
    if (!std::isfinite(loads_.loads[j].cap)) continue;
    std::vector<lp::Term> terms;
    for (int l = 0; l < n; ++l) {
      const int r = load_route_id(j, l);
      if (r >= 0) terms.push_back({out.alpha_var[r], 1.0});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     loads_.loads[j].cap, "cap_" + std::to_string(j));
  }

  // Objective.
  if (objective_ == Objective::Sum) {
    for (std::size_t r = 0; r < lroutes.size(); ++r)
      m.set_objective_coef(out.alpha_var[r], loads_.loads[lroutes[r].load].weight);
  } else {
    out.t_var = m.add_variable(0.0, lp::kInf, 1.0, "t");
    for (int j = 0; j < num_loads(); ++j) {
      const double w = loads_.loads[j].weight;
      if (w <= 0.0) continue;
      std::vector<lp::Term> terms{{out.t_var, 1.0}};
      for (int l = 0; l < n; ++l) {
        const int r = load_route_id(j, l);
        if (r >= 0) terms.push_back({out.alpha_var[r], -w});
      }
      m.add_constraint(std::move(terms), lp::Relation::LessEqual, 0.0,
                       "fair_" + std::to_string(j));
    }
  }
  return out;
}

void SteadyStateProblem::update_reduced_payoffs(ReducedModel& reduced) const {
  require(objective_ == Objective::Sum,
          "update_reduced_payoffs: MaxMin reshapes the model per payoff "
          "support; rebuild with build_reduced instead");
  require(reduced.alpha_var.size() == ltable_->lroutes.size() &&
              reduced.t_var == -1,
          "update_reduced_payoffs: model does not match this problem");
  require(!reduced.has_fixings,
          "update_reduced_payoffs: model was built with beta fixings, whose "
          "(7e) caps live in the alpha bounds this would overwrite");
  for (std::size_t r = 0; r < ltable_->lroutes.size(); ++r) {
    const double w = loads_.loads[ltable_->lroutes[r].load].weight;
    const int var = reduced.alpha_var[r];
    reduced.model.set_bounds(var, 0.0, w == 0.0 ? 0.0 : lp::kInf);
    reduced.model.set_objective_coef(var, w);
  }
}

SteadyStateProblem::FullModel SteadyStateProblem::build_full(bool integer_betas) const {
  const int n = num_clusters();
  const auto& lroutes = ltable_->lroutes;
  FullModel out;
  out.integer_betas = integer_betas;
  lp::Model& m = out.model;
  m.set_sense(lp::Sense::Maximize);

  out.alpha_var.resize(lroutes.size());
  out.beta_var.assign(lroutes.size(), -1);
  for (std::size_t r = 0; r < lroutes.size(); ++r) {
    const LoadSpec& load = loads_.loads[lroutes[r].load];
    const Route& route = table_->routes[lroutes[r].route];
    const double ub = load.weight == 0.0 ? 0.0 : lp::kInf;
    out.alpha_var[r] = m.add_variable(
        0.0, ub, 0.0,
        canonical_ ? pair_name("a", route.k, route.l)
                   : load_name("a", lroutes[r].load, route.l));
    if (route.needs_beta) {
      out.beta_var[r] = m.add_variable(
          0.0, lp::kInf, 0.0,
          canonical_ ? pair_name("b", route.k, route.l)
                     : load_name("b", lroutes[r].load, route.l));
      if (integer_betas) m.set_integer(out.beta_var[r]);
    }
  }

  for (int l = 0; l < n; ++l) {  // (7b)
    std::vector<lp::Term> terms;
    for (int j = 0; j < num_loads(); ++j) {
      const int r = load_route_id(j, l);
      if (r >= 0) terms.push_back({out.alpha_var[r], 1.0});
    }
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(l).speed, "speed_" + std::to_string(l));
  }
  for (int k = 0; k < n; ++k) {  // (7c); isolated clusters skip their row
    std::vector<lp::Term> terms;
    for (int l = 0; l < n; ++l) {
      if (l == k) continue;
      for (int j : ltable_->loads_at[k])
        if (const int out_r = load_route_id(j, l); out_r >= 0)
          terms.push_back({out.alpha_var[out_r], loads_.loads[j].data_ratio});
      for (int j : ltable_->loads_at[l])
        if (const int in_r = load_route_id(j, k); in_r >= 0)
          terms.push_back({out.alpha_var[in_r], loads_.loads[j].data_ratio});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(k).gateway_bw, "gateway_" + std::to_string(k));
  }
  for (platform::LinkId li = 0; li < plat_->num_links(); ++li) {  // (7d)
    if (ltable_->link_lroutes[li].empty()) continue;
    std::vector<lp::Term> terms;
    for (int r : ltable_->link_lroutes[li])
      terms.push_back({out.beta_var[r], 1.0});
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->link(li).max_connections, "maxcon_" + std::to_string(li));
  }
  for (std::size_t r = 0; r < lroutes.size(); ++r) {  // (7e)
    const Route& route = table_->routes[lroutes[r].route];
    if (!route.needs_beta) continue;
    m.add_constraint({{out.alpha_var[r], loads_.loads[lroutes[r].load].data_ratio},
                      {out.beta_var[r], -route.pbw}},
                     lp::Relation::LessEqual, 0.0,
                     canonical_ ? pair_name("bw", route.k, route.l)
                                : load_name("bw", lroutes[r].load, route.l));
  }
  for (int j = 0; j < num_loads(); ++j) {  // Amdahl-like caps
    if (!std::isfinite(loads_.loads[j].cap)) continue;
    std::vector<lp::Term> terms;
    for (int l = 0; l < n; ++l) {
      const int r = load_route_id(j, l);
      if (r >= 0) terms.push_back({out.alpha_var[r], 1.0});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     loads_.loads[j].cap, "cap_" + std::to_string(j));
  }

  if (objective_ == Objective::Sum) {
    for (std::size_t r = 0; r < lroutes.size(); ++r)
      m.set_objective_coef(out.alpha_var[r], loads_.loads[lroutes[r].load].weight);
  } else {
    out.t_var = m.add_variable(0.0, lp::kInf, 1.0, "t");
    for (int j = 0; j < num_loads(); ++j) {
      const double w = loads_.loads[j].weight;
      if (w <= 0.0) continue;
      std::vector<lp::Term> terms{{out.t_var, 1.0}};
      for (int l = 0; l < n; ++l) {
        const int r = load_route_id(j, l);
        if (r >= 0) terms.push_back({out.alpha_var[r], -w});
      }
      m.add_constraint(std::move(terms), lp::Relation::LessEqual, 0.0,
                       "fair_" + std::to_string(j));
    }
  }
  return out;
}

Allocation SteadyStateProblem::allocation_from_reduced(
    const ReducedModel& reduced, const std::vector<double>& x,
    const std::vector<BetaFixing>& fixings) const {
  require(canonical_,
          "allocation_from_reduced: cluster-by-cluster allocations only "
          "exist for canonical load sets; use load_allocation_from_reduced");
  require(x.size() == static_cast<std::size_t>(reduced.model.num_variables()),
          "allocation_from_reduced: assignment size mismatch");
  std::vector<int> fixed(table_->routes.size(), -1);
  for (const BetaFixing& f : fixings) fixed[f.route] = f.value;

  Allocation alloc(num_clusters());
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    const double a = std::max(0.0, x[reduced.alpha_var[r]]);
    alloc.set_alpha(route.k, route.l, a);
    if (route.needs_beta) {
      alloc.set_beta(route.k, route.l,
                     fixed[r] >= 0 ? fixed[r] : a / route.pbw);
    }
  }
  return alloc;
}

Allocation SteadyStateProblem::allocation_from_full(const FullModel& full,
                                                    const std::vector<double>& x) const {
  require(canonical_,
          "allocation_from_full: cluster-by-cluster allocations only "
          "exist for canonical load sets");
  require(x.size() == static_cast<std::size_t>(full.model.num_variables()),
          "allocation_from_full: assignment size mismatch");
  Allocation alloc(num_clusters());
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    alloc.set_alpha(route.k, route.l, std::max(0.0, x[full.alpha_var[r]]));
    if (full.beta_var[r] >= 0)
      alloc.set_beta(route.k, route.l, std::max(0.0, x[full.beta_var[r]]));
  }
  return alloc;
}

LoadAllocation SteadyStateProblem::load_allocation_from_reduced(
    const ReducedModel& reduced, const std::vector<double>& x) const {
  require(x.size() == static_cast<std::size_t>(reduced.model.num_variables()),
          "load_allocation_from_reduced: assignment size mismatch");
  require(reduced.alpha_var.size() == ltable_->lroutes.size(),
          "load_allocation_from_reduced: model does not match this problem");
  LoadAllocation alloc(num_loads(), num_clusters());
  for (std::size_t r = 0; r < ltable_->lroutes.size(); ++r) {
    const LoadRoute& lr = ltable_->lroutes[r];
    alloc.set_alpha(lr.load, table_->routes[lr.route].l,
                    std::max(0.0, x[reduced.alpha_var[r]]));
  }
  return alloc;
}

double SteadyStateProblem::objective_of(const Allocation& alloc) const {
  const int n = num_clusters();
  require(alloc.num_clusters() == n, "objective_of: cluster count mismatch");
  if (objective_ == Objective::Sum) {
    double total = 0.0;
    for (int k = 0; k < n; ++k) total += payoffs()[k] * alloc.total_alpha(k);
    return total;
  }
  double worst = std::numeric_limits<double>::infinity();
  bool any = false;
  for (int k = 0; k < n; ++k) {
    if (payoffs()[k] <= 0.0) continue;
    any = true;
    worst = std::min(worst, payoffs()[k] * alloc.total_alpha(k));
  }
  return any ? worst : 0.0;
}

ValidationReport validate_allocation(const SteadyStateProblem& problem,
                                     const Allocation& alloc, double eps,
                                     bool require_integer_betas) {
  ValidationReport report;
  auto fail = [&report](std::string msg) {
    report.ok = false;
    report.violations.push_back(std::move(msg));
  };

  const platform::Platform& plat = problem.plat();
  const int n = plat.num_clusters();
  if (alloc.num_clusters() != n) {
    fail("allocation size does not match platform");
    return report;
  }

  for (int k = 0; k < n; ++k) {
    for (int l = 0; l < n; ++l) {
      const double a = alloc.alpha(k, l);
      const double b = alloc.beta(k, l);
      if (a < -eps) fail("(7f) alpha negative at " + pair_name("a", k, l));
      if (b < -eps) fail("beta negative at " + pair_name("b", k, l));
      const int r = problem.route_id(k, l);
      if (r < 0) {
        if (a > eps) fail("alpha on missing route " + pair_name("a", k, l));
        if (b > eps) fail("beta on missing route " + pair_name("b", k, l));
        continue;
      }
      if (problem.payoffs()[k] == 0.0 && a > eps)
        fail("alpha from payoff-0 cluster " + pair_name("a", k, l));
      const auto& route = problem.routes()[r];
      if (!route.needs_beta && b > eps)
        fail("beta on local/linkless route " + pair_name("b", k, l));
      if (route.needs_beta && a > b * route.pbw + eps)
        fail("(7e) bandwidth exceeded on route " + pair_name("a", k, l));
      if (require_integer_betas && std::fabs(b - std::round(b)) > eps)
        fail("(7g) beta not integral at " + pair_name("b", k, l));
    }
  }

  for (int l = 0; l < n; ++l)  // (7b)
    if (alloc.load_on(l) > plat.cluster(l).speed + eps)
      fail("(7b) speed exceeded on cluster " + std::to_string(l));
  for (int k = 0; k < n; ++k)  // (7c)
    if (alloc.gateway_traffic(k) > plat.cluster(k).gateway_bw + eps)
      fail("(7c) gateway exceeded on cluster " + std::to_string(k));

  for (platform::LinkId li = 0; li < plat.num_links(); ++li) {  // (7d)
    double used = 0.0;
    for (int r : problem.routes_through_link()[li]) {
      const auto& route = problem.routes()[r];
      used += alloc.beta(route.k, route.l);
    }
    if (used > plat.link(li).max_connections + eps)
      fail("(7d) max-connect exceeded on link " + std::to_string(li));
  }
  return report;
}

}  // namespace dls::core
