#include "core/problem.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "lp/types.hpp"

namespace dls::core {

namespace {
constexpr double kEps = 1e-9;

std::string pair_name(const char* prefix, int k, int l) {
  return std::string(prefix) + "_" + std::to_string(k) + "_" + std::to_string(l);
}
}  // namespace

std::string to_string(Objective o) {
  return o == Objective::Sum ? "SUM" : "MAXMIN";
}

SteadyStateProblem::SteadyStateProblem(const platform::Platform& plat,
                                       std::vector<double> payoffs,
                                       Objective objective)
    : plat_(&plat), payoffs_(std::move(payoffs)), objective_(objective) {
  const int n = plat.num_clusters();
  require(static_cast<int>(payoffs_.size()) == n,
          "SteadyStateProblem: one payoff per cluster required");
  bool any_positive = false;
  for (double p : payoffs_) {
    require(p >= 0.0 && std::isfinite(p), "SteadyStateProblem: payoffs must be >= 0");
    any_positive |= p > 0.0;
  }
  // With no application at all the MaxMin objective would be unbounded
  // (and the problem meaningless); demand at least one.
  require(any_positive, "SteadyStateProblem: at least one positive payoff required");

  auto table = std::make_shared<RouteTable>();
  table->route_id.assign(static_cast<std::size_t>(n) * n, -1);
  table->link_routes.assign(plat.num_links(), {});
  for (int k = 0; k < n; ++k) {
    for (int l = 0; l < n; ++l) {
      if (!plat.has_route(k, l)) continue;
      Route r;
      r.k = k;
      r.l = l;
      r.pbw = plat.route_bottleneck_bw(k, l);
      r.needs_beta = k != l && !plat.route(k, l).empty();
      const int id = static_cast<int>(table->routes.size());
      table->route_id[static_cast<std::size_t>(k) * n + l] = id;
      table->routes.push_back(r);
      if (k != l)
        for (platform::LinkId li : plat.route(k, l))
          table->link_routes[li].push_back(id);
    }
  }
  table_ = std::move(table);
}

SteadyStateProblem SteadyStateProblem::with_payoffs(
    std::vector<double> payoffs) const {
  require(payoffs.size() == payoffs_.size(),
          "with_payoffs: one payoff per cluster required");
  bool any_positive = false;
  for (double p : payoffs) {
    require(p >= 0.0 && std::isfinite(p), "with_payoffs: payoffs must be >= 0");
    any_positive |= p > 0.0;
  }
  require(any_positive, "with_payoffs: at least one positive payoff required");
  SteadyStateProblem copy = *this;
  copy.payoffs_ = std::move(payoffs);
  return copy;
}

int SteadyStateProblem::route_id(int k, int l) const {
  const int n = num_clusters();
  require(k >= 0 && k < n && l >= 0 && l < n, "route_id: cluster out of range");
  return table_->route_id[static_cast<std::size_t>(k) * n + l];
}

SteadyStateProblem::ReducedModel SteadyStateProblem::build_reduced(
    const std::vector<BetaFixing>& fixings) const {
  const int n = num_clusters();
  ReducedModel out;
  out.has_fixings = !fixings.empty();
  lp::Model& m = out.model;
  m.set_sense(lp::Sense::Maximize);

  // Fixing lookup: route -> fixed beta value (or -1 when free).
  std::vector<int> fixed(table_->routes.size(), -1);
  for (const BetaFixing& f : fixings) {
    require(f.route >= 0 && f.route < static_cast<int>(table_->routes.size()) &&
                table_->routes[f.route].needs_beta && f.value >= 0,
            "build_reduced: invalid beta fixing");
    fixed[f.route] = f.value;
  }

  // Alpha variables.
  out.alpha_var.resize(table_->routes.size());
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    double ub = lp::kInf;
    if (payoffs_[route.k] == 0.0) {
      ub = 0.0;  // no application on this cluster: nothing to send
    } else if (fixed[r] >= 0) {
      ub = fixed[r] * route.pbw;  // (7e) with beta pinned
    }
    out.alpha_var[r] = m.add_variable(0.0, ub, 0.0, pair_name("a", route.k, route.l));
  }

  // (7b) compute capacity of each cluster.
  for (int l = 0; l < n; ++l) {
    std::vector<lp::Term> terms;
    for (int k = 0; k < n; ++k) {
      const int r = route_id(k, l);
      if (r >= 0) terms.push_back({out.alpha_var[r], 1.0});
    }
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(l).speed, "speed_" + std::to_string(l));
  }

  // (7c) gateway capacity. A cluster with no remote routes (single-
  // cluster or fully-disconnected platforms, churned-out clusters) sends
  // no gateway traffic at all: emitting its row would add a degenerate
  // 0 <= g_k constraint (and a slack column) per isolated cluster.
  for (int k = 0; k < n; ++k) {
    std::vector<lp::Term> terms;
    for (int l = 0; l < n; ++l) {
      if (l == k) continue;
      if (const int out_r = route_id(k, l); out_r >= 0)
        terms.push_back({out.alpha_var[out_r], 1.0});
      if (const int in_r = route_id(l, k); in_r >= 0)
        terms.push_back({out.alpha_var[in_r], 1.0});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(k).gateway_bw, "gateway_" + std::to_string(k));
  }

  // (7d) with beta substituted: sum alpha/pbw over free routes through the
  // link, against the budget left by the fixed routes.
  for (platform::LinkId li = 0; li < plat_->num_links(); ++li) {
    if (table_->link_routes[li].empty()) continue;
    std::vector<lp::Term> terms;
    double budget = plat_->link(li).max_connections;
    for (int r : table_->link_routes[li]) {
      if (fixed[r] >= 0) {
        budget -= fixed[r];
      } else {
        terms.push_back({out.alpha_var[r], 1.0 / table_->routes[r].pbw});
      }
    }
    require(budget >= -kEps, "build_reduced: beta fixings exceed a link budget");
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     std::max(budget, 0.0), "maxcon_" + std::to_string(li));
  }

  // Objective.
  if (objective_ == Objective::Sum) {
    for (std::size_t r = 0; r < table_->routes.size(); ++r)
      m.set_objective_coef(out.alpha_var[r], payoffs_[table_->routes[r].k]);
  } else {
    out.t_var = m.add_variable(0.0, lp::kInf, 1.0, "t");
    for (int k = 0; k < n; ++k) {
      if (payoffs_[k] <= 0.0) continue;
      std::vector<lp::Term> terms{{out.t_var, 1.0}};
      for (int l = 0; l < n; ++l) {
        const int r = route_id(k, l);
        if (r >= 0) terms.push_back({out.alpha_var[r], -payoffs_[k]});
      }
      m.add_constraint(std::move(terms), lp::Relation::LessEqual, 0.0,
                       "fair_" + std::to_string(k));
    }
  }
  return out;
}

void SteadyStateProblem::update_reduced_payoffs(ReducedModel& reduced) const {
  require(objective_ == Objective::Sum,
          "update_reduced_payoffs: MaxMin reshapes the model per payoff "
          "support; rebuild with build_reduced instead");
  require(reduced.alpha_var.size() == table_->routes.size() && reduced.t_var == -1,
          "update_reduced_payoffs: model does not match this problem");
  require(!reduced.has_fixings,
          "update_reduced_payoffs: model was built with beta fixings, whose "
          "(7e) caps live in the alpha bounds this would overwrite");
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    const int var = reduced.alpha_var[r];
    reduced.model.set_bounds(var, 0.0,
                             payoffs_[route.k] == 0.0 ? 0.0 : lp::kInf);
    reduced.model.set_objective_coef(var, payoffs_[route.k]);
  }
}

SteadyStateProblem::FullModel SteadyStateProblem::build_full(bool integer_betas) const {
  const int n = num_clusters();
  FullModel out;
  out.integer_betas = integer_betas;
  lp::Model& m = out.model;
  m.set_sense(lp::Sense::Maximize);

  out.alpha_var.resize(table_->routes.size());
  out.beta_var.assign(table_->routes.size(), -1);
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    const double ub = payoffs_[route.k] == 0.0 ? 0.0 : lp::kInf;
    out.alpha_var[r] = m.add_variable(0.0, ub, 0.0, pair_name("a", route.k, route.l));
    if (route.needs_beta) {
      out.beta_var[r] = m.add_variable(0.0, lp::kInf, 0.0,
                                       pair_name("b", route.k, route.l));
      if (integer_betas) m.set_integer(out.beta_var[r]);
    }
  }

  for (int l = 0; l < n; ++l) {  // (7b)
    std::vector<lp::Term> terms;
    for (int k = 0; k < n; ++k) {
      const int r = route_id(k, l);
      if (r >= 0) terms.push_back({out.alpha_var[r], 1.0});
    }
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(l).speed, "speed_" + std::to_string(l));
  }
  for (int k = 0; k < n; ++k) {  // (7c); isolated clusters skip their row
    std::vector<lp::Term> terms;
    for (int l = 0; l < n; ++l) {
      if (l == k) continue;
      if (const int out_r = route_id(k, l); out_r >= 0)
        terms.push_back({out.alpha_var[out_r], 1.0});
      if (const int in_r = route_id(l, k); in_r >= 0)
        terms.push_back({out.alpha_var[in_r], 1.0});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->cluster(k).gateway_bw, "gateway_" + std::to_string(k));
  }
  for (platform::LinkId li = 0; li < plat_->num_links(); ++li) {  // (7d)
    if (table_->link_routes[li].empty()) continue;
    std::vector<lp::Term> terms;
    for (int r : table_->link_routes[li]) terms.push_back({out.beta_var[r], 1.0});
    m.add_constraint(std::move(terms), lp::Relation::LessEqual,
                     plat_->link(li).max_connections, "maxcon_" + std::to_string(li));
  }
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {  // (7e)
    if (!table_->routes[r].needs_beta) continue;
    m.add_constraint({{out.alpha_var[r], 1.0}, {out.beta_var[r], -table_->routes[r].pbw}},
                     lp::Relation::LessEqual, 0.0,
                     pair_name("bw", table_->routes[r].k, table_->routes[r].l));
  }

  if (objective_ == Objective::Sum) {
    for (std::size_t r = 0; r < table_->routes.size(); ++r)
      m.set_objective_coef(out.alpha_var[r], payoffs_[table_->routes[r].k]);
  } else {
    out.t_var = m.add_variable(0.0, lp::kInf, 1.0, "t");
    for (int k = 0; k < n; ++k) {
      if (payoffs_[k] <= 0.0) continue;
      std::vector<lp::Term> terms{{out.t_var, 1.0}};
      for (int l = 0; l < n; ++l) {
        const int r = route_id(k, l);
        if (r >= 0) terms.push_back({out.alpha_var[r], -payoffs_[k]});
      }
      m.add_constraint(std::move(terms), lp::Relation::LessEqual, 0.0,
                       "fair_" + std::to_string(k));
    }
  }
  return out;
}

Allocation SteadyStateProblem::allocation_from_reduced(
    const ReducedModel& reduced, const std::vector<double>& x,
    const std::vector<BetaFixing>& fixings) const {
  require(x.size() == static_cast<std::size_t>(reduced.model.num_variables()),
          "allocation_from_reduced: assignment size mismatch");
  std::vector<int> fixed(table_->routes.size(), -1);
  for (const BetaFixing& f : fixings) fixed[f.route] = f.value;

  Allocation alloc(num_clusters());
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    const double a = std::max(0.0, x[reduced.alpha_var[r]]);
    alloc.set_alpha(route.k, route.l, a);
    if (route.needs_beta) {
      alloc.set_beta(route.k, route.l,
                     fixed[r] >= 0 ? fixed[r] : a / route.pbw);
    }
  }
  return alloc;
}

Allocation SteadyStateProblem::allocation_from_full(const FullModel& full,
                                                    const std::vector<double>& x) const {
  require(x.size() == static_cast<std::size_t>(full.model.num_variables()),
          "allocation_from_full: assignment size mismatch");
  Allocation alloc(num_clusters());
  for (std::size_t r = 0; r < table_->routes.size(); ++r) {
    const Route& route = table_->routes[r];
    alloc.set_alpha(route.k, route.l, std::max(0.0, x[full.alpha_var[r]]));
    if (full.beta_var[r] >= 0)
      alloc.set_beta(route.k, route.l, std::max(0.0, x[full.beta_var[r]]));
  }
  return alloc;
}

double SteadyStateProblem::objective_of(const Allocation& alloc) const {
  const int n = num_clusters();
  require(alloc.num_clusters() == n, "objective_of: cluster count mismatch");
  if (objective_ == Objective::Sum) {
    double total = 0.0;
    for (int k = 0; k < n; ++k) total += payoffs_[k] * alloc.total_alpha(k);
    return total;
  }
  double worst = std::numeric_limits<double>::infinity();
  bool any = false;
  for (int k = 0; k < n; ++k) {
    if (payoffs_[k] <= 0.0) continue;
    any = true;
    worst = std::min(worst, payoffs_[k] * alloc.total_alpha(k));
  }
  return any ? worst : 0.0;
}

ValidationReport validate_allocation(const SteadyStateProblem& problem,
                                     const Allocation& alloc, double eps,
                                     bool require_integer_betas) {
  ValidationReport report;
  auto fail = [&report](std::string msg) {
    report.ok = false;
    report.violations.push_back(std::move(msg));
  };

  const platform::Platform& plat = problem.plat();
  const int n = plat.num_clusters();
  if (alloc.num_clusters() != n) {
    fail("allocation size does not match platform");
    return report;
  }

  for (int k = 0; k < n; ++k) {
    for (int l = 0; l < n; ++l) {
      const double a = alloc.alpha(k, l);
      const double b = alloc.beta(k, l);
      if (a < -eps) fail("(7f) alpha negative at " + pair_name("a", k, l));
      if (b < -eps) fail("beta negative at " + pair_name("b", k, l));
      const int r = problem.route_id(k, l);
      if (r < 0) {
        if (a > eps) fail("alpha on missing route " + pair_name("a", k, l));
        if (b > eps) fail("beta on missing route " + pair_name("b", k, l));
        continue;
      }
      if (problem.payoffs()[k] == 0.0 && a > eps)
        fail("alpha from payoff-0 cluster " + pair_name("a", k, l));
      const auto& route = problem.routes()[r];
      if (!route.needs_beta && b > eps)
        fail("beta on local/linkless route " + pair_name("b", k, l));
      if (route.needs_beta && a > b * route.pbw + eps)
        fail("(7e) bandwidth exceeded on route " + pair_name("a", k, l));
      if (require_integer_betas && std::fabs(b - std::round(b)) > eps)
        fail("(7g) beta not integral at " + pair_name("b", k, l));
    }
  }

  for (int l = 0; l < n; ++l)  // (7b)
    if (alloc.load_on(l) > plat.cluster(l).speed + eps)
      fail("(7b) speed exceeded on cluster " + std::to_string(l));
  for (int k = 0; k < n; ++k)  // (7c)
    if (alloc.gateway_traffic(k) > plat.cluster(k).gateway_bw + eps)
      fail("(7c) gateway exceeded on cluster " + std::to_string(k));

  for (platform::LinkId li = 0; li < plat.num_links(); ++li) {  // (7d)
    double used = 0.0;
    for (int r : problem.routes_through_link()[li]) {
      const auto& route = problem.routes()[r];
      used += alloc.beta(route.k, route.l);
    }
    if (used > plat.link(li).max_connections + eps)
      fail("(7d) max-connect exceeded on link " + std::to_string(li));
  }
  return report;
}

}  // namespace dls::core
