// Periodic schedule reconstruction (paper §3.2).
//
// Given a valid allocation, every rate alpha_{k,l} is approximated by a
// rational u/v with bounded denominator, the period is T_p = lcm of the
// denominators, and within each period cluster l computes an integer
// chunk alpha_{k,l}*T_p for application k while cluster k ships the
// chunks destined elsewhere. Data received in period p is computed in
// period p+1, so the steady state pipeline needs one warm-up and one
// drain period.
//
// Rates are rationalized *downwards* (never above the allocation's rate),
// so every capacity bound that held for the allocation holds for the
// schedule; the price is a throughput loss below 1/max_denominator per
// route. When the lcm of the individual best-approximation denominators
// would exceed `max_period`, all rates fall back to the common
// denominator `max_denominator`, which bounds the period outright.
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "support/rational.hpp"

namespace dls::core {

/// Work executed each period: `units` load of application `app` on
/// cluster `on_cluster` (the data arrived during the previous period,
/// or is local).
struct ComputeTask {
  int app = -1;
  int on_cluster = -1;
  std::int64_t units = 0;
};

/// Data shipped each period: `units` load of application `from`'s input
/// moving from cluster `from` to cluster `to` over `connections` opened
/// connections.
struct Transfer {
  int from = -1;
  int to = -1;
  std::int64_t units = 0;
  int connections = 0;
};

struct PeriodicSchedule {
  std::int64_t period = 1;  ///< T_p, in time units
  std::vector<ComputeTask> compute;
  std::vector<Transfer> transfers;

  /// Steady-state throughput of application k: load per time unit.
  [[nodiscard]] double throughput(int app) const;
  /// Total load of application k computed per period.
  [[nodiscard]] std::int64_t load_per_period(int app) const;
};

struct ScheduleOptions {
  std::int64_t max_denominator = 1000;  ///< rationalization bound per rate
  std::int64_t max_period = 1'000'000'000;  ///< lcm cap before fallback
};

/// Builds the periodic schedule realizing (close to) the allocation's
/// throughput. The allocation must satisfy equations (7) — fractional
/// betas are accepted (an LP-bound allocation reconstructs fine: the
/// schedule's integer connection counts are derived from the
/// rationalized rates, not from beta); throws dls::Error otherwise.
[[nodiscard]] PeriodicSchedule build_periodic_schedule(
    const SteadyStateProblem& problem, const Allocation& alloc,
    const ScheduleOptions& options = {});

/// Checks the schedule against the platform's per-period capacities:
/// compute (7b), gateway traffic (7c), connection counts (7d) and route
/// bandwidth (7e), all scaled by the period.
[[nodiscard]] ValidationReport validate_schedule(const SteadyStateProblem& problem,
                                                 const PeriodicSchedule& schedule);

}  // namespace dls::core
