// LP-based heuristics (paper §5.2) and the rational upper bound.
#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "core/heuristics.hpp"
#include "core/internal.hpp"

namespace dls::core {

namespace {

constexpr double kEps = 1e-9;
// Slack when flooring a beta so 2.999999 (solver noise) counts as 3.
constexpr double kFloorSnap = 1e-7;

HeuristicResult failed(const SteadyStateProblem& problem, lp::SolveStatus status) {
  HeuristicResult r{Allocation(problem.num_clusters()), 0.0, 0, status};
  return r;
}

/// Rounds a reduced-model LP solution down: beta_hat = floor(beta_tilde),
/// alpha_hat = min(alpha_tilde, beta_hat * pbw). This is LPR's whole job
/// and the starting point of LPRG.
Allocation round_down(const SteadyStateProblem& problem,
                      const SteadyStateProblem::ReducedModel& reduced,
                      const std::vector<double>& x) {
  Allocation alloc(problem.num_clusters());
  for (std::size_t r = 0; r < problem.routes().size(); ++r) {
    const auto& route = problem.routes()[r];
    const double a = std::max(0.0, x[reduced.alpha_var[r]]);
    if (!route.needs_beta) {
      alloc.set_alpha(route.k, route.l, a);
      continue;
    }
    const double beta_tilde = a / route.pbw;
    const double beta_hat = std::floor(beta_tilde + kFloorSnap);
    alloc.set_beta(route.k, route.l, beta_hat);
    alloc.set_alpha(route.k, route.l, std::min(a, beta_hat * route.pbw));
  }
  return alloc;
}

/// Solves the reduced relaxation, threading the optional warm-start
/// capsule through the simplex (which consumes and refreshes it).
lp::Solution solve_relaxation(const SteadyStateProblem::ReducedModel& reduced,
                              const lp::SimplexOptions& lp_options,
                              LpWarmStart* warm) {
  const lp::SimplexSolver solver(lp_options);
  lp::WarmState* state = warm != nullptr ? warm->state : nullptr;
  lp::SolveArena* arena = warm != nullptr ? warm->arena : nullptr;
  lp::Solution sol = arena != nullptr ? solver.solve(reduced.model, state, *arena)
                                      : (state != nullptr
                                             ? solver.solve(reduced.model, state)
                                             : solver.solve(reduced.model));
  if (warm != nullptr) {
    warm->used = sol.warm_used;
    warm->kind = sol.warm_kind;
  }
  return sol;
}

/// The caller's cached reduced model when one was supplied, else a
/// freshly built one kept alive in `own`.
const SteadyStateProblem::ReducedModel& reduced_for(
    const SteadyStateProblem& problem, LpWarmStart* warm,
    std::optional<SteadyStateProblem::ReducedModel>& own) {
  if (warm != nullptr && warm->reduced != nullptr) return *warm->reduced;
  own.emplace(problem.build_reduced());
  return *own;
}

}  // namespace

LpBoundResult lp_upper_bound(const SteadyStateProblem& problem,
                             const lp::SimplexOptions& lp_options,
                             LpWarmStart* warm) {
  std::optional<SteadyStateProblem::ReducedModel> own;
  const auto& reduced = reduced_for(problem, warm, own);
  const lp::Solution sol = solve_relaxation(reduced, lp_options, warm);
  LpBoundResult out{0.0, Allocation(problem.num_clusters()), sol.status,
                    sol.iterations};
  if (sol.status != lp::SolveStatus::Optimal) return out;
  out.objective = sol.objective;
  out.allocation = problem.allocation_from_reduced(reduced, sol.x);
  return out;
}

HeuristicResult run_lpr(const SteadyStateProblem& problem,
                        const lp::SimplexOptions& lp_options, LpWarmStart* warm) {
  std::optional<SteadyStateProblem::ReducedModel> own;
  const auto& reduced = reduced_for(problem, warm, own);
  const lp::Solution sol = solve_relaxation(reduced, lp_options, warm);
  if (sol.status != lp::SolveStatus::Optimal) return failed(problem, sol.status);

  HeuristicResult result{round_down(problem, reduced, sol.x), 0.0, 1,
                         lp::SolveStatus::Optimal, sol.iterations};
  result.objective = problem.objective_of(result.allocation);
  return result;
}

HeuristicResult run_lprg(const SteadyStateProblem& problem,
                         const lp::SimplexOptions& lp_options,
                         const GreedyOptions& greedy_options, LpWarmStart* warm) {
  std::optional<SteadyStateProblem::ReducedModel> own;
  const auto& reduced = reduced_for(problem, warm, own);
  const lp::Solution sol = solve_relaxation(reduced, lp_options, warm);
  if (sol.status != lp::SolveStatus::Optimal) return failed(problem, sol.status);

  internal::GreedyState st = internal::GreedyState::after(
      problem, round_down(problem, reduced, sol.x));
  internal::greedy_fill(problem, st, greedy_options);
  HeuristicResult result{std::move(st.alloc), 0.0, 1, lp::SolveStatus::Optimal,
                         sol.iterations};
  result.objective = problem.objective_of(result.allocation);
  return result;
}

HeuristicResult run_lprr(const SteadyStateProblem& problem, Rng& rng,
                         const LprrOptions& options) {
  const lp::SimplexSolver solver(options.lp);
  const auto solve_lp = [&](const lp::Model& model) {
    return options.arena != nullptr ? solver.solve(model, *options.arena)
                                    : solver.solve(model);
  };

  std::vector<SteadyStateProblem::BetaFixing> fixings;
  std::vector<char> is_fixed(problem.routes().size(), 0);
  std::vector<int> unfixed;
  for (std::size_t r = 0; r < problem.routes().size(); ++r)
    if (problem.routes()[r].needs_beta) unfixed.push_back(static_cast<int>(r));

  // Residual max-connect budget under the current fixings, used to demote
  // an up-rounding that would not fit (keeps LPRR always feasible).
  std::vector<double> budget(problem.plat().num_links());
  for (platform::LinkId li = 0; li < problem.plat().num_links(); ++li)
    budget[li] = problem.plat().link(li).max_connections;

  // Rounds route r's fractional beta to an integer (coin per `options`),
  // demoting an up-round that would not fit the links' residual budget,
  // then records the fixing.
  const auto fix_route = [&](int r, double beta_tilde) {
    const auto& route = problem.routes()[r];
    const int fl = static_cast<int>(std::floor(beta_tilde + kFloorSnap));
    const double frac = std::max(0.0, beta_tilde - fl);
    int value = fl;
    if (frac > kEps) {
      const double p_up = options.equal_probability ? 0.5 : frac;
      if (rng.bernoulli(p_up)) value = fl + 1;
    }
    if (value > fl) {
      for (platform::LinkId li : problem.plat().route(route.k, route.l)) {
        if (budget[li] < value - kEps) {
          value = fl;
          break;
        }
      }
    }
    for (platform::LinkId li : problem.plat().route(route.k, route.l))
      budget[li] -= value;
    fixings.push_back({r, value});
    is_fixed[r] = 1;
  };

  int lp_solves = 0;
  if (options.resolve_between_fixings) {
    while (!unfixed.empty()) {
      const auto reduced = problem.build_reduced(fixings);
      const lp::Solution sol = solve_lp(reduced.model);
      ++lp_solves;
      if (sol.status != lp::SolveStatus::Optimal) {
        HeuristicResult r = failed(problem, sol.status);
        r.lp_solves = lp_solves;
        return r;
      }

      // Candidate routes: still free, with a nonzero fractional beta.
      std::vector<int> candidates;
      for (int r : unfixed) {
        const double beta =
            sol.x[reduced.alpha_var[r]] / problem.routes()[r].pbw;
        if (beta > kEps) candidates.push_back(r);
      }
      if (candidates.empty()) {
        // Everything left is at beta ~ 0: pin them all; final solve below.
        for (int r : unfixed) fix_route(r, 0.0);
        unfixed.clear();
        break;
      }

      const int r = candidates[rng.index(candidates.size())];
      fix_route(r, sol.x[reduced.alpha_var[r]] / problem.routes()[r].pbw);
      unfixed.erase(std::find(unfixed.begin(), unfixed.end(), r));
    }
  } else if (!unfixed.empty()) {
    // One-shot: round every beta from a single relaxation solve, in a
    // random order (the order matters through the budget demotions).
    const auto reduced = problem.build_reduced();
    const lp::Solution sol = solve_lp(reduced.model);
    ++lp_solves;
    if (sol.status != lp::SolveStatus::Optimal) {
      HeuristicResult r = failed(problem, sol.status);
      r.lp_solves = lp_solves;
      return r;
    }
    std::vector<int> order = unfixed;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.index(i)]);
    for (int r : order)
      fix_route(r, sol.x[reduced.alpha_var[r]] / problem.routes()[r].pbw);
    unfixed.clear();
  }

  // Final solve with every beta pinned gives the best alphas under them.
  const auto reduced = problem.build_reduced(fixings);
  const lp::Solution sol = solve_lp(reduced.model);
  ++lp_solves;
  if (sol.status != lp::SolveStatus::Optimal) {
    HeuristicResult r = failed(problem, sol.status);
    r.lp_solves = lp_solves;
    return r;
  }
  HeuristicResult result{problem.allocation_from_reduced(reduced, sol.x, fixings),
                         0.0, lp_solves, lp::SolveStatus::Optimal};
  result.objective = problem.objective_of(result.allocation);
  return result;
}

ExactResult solve_exact(const SteadyStateProblem& problem,
                        const lp::MilpOptions& options) {
  const auto full = problem.build_full(/*integer_betas=*/true);
  const lp::MilpResult milp = lp::BranchAndBound(options).solve(full.model);
  ExactResult out{0.0, Allocation(problem.num_clusters()), milp.status, milp.nodes};
  if (milp.status != lp::SolveStatus::Optimal &&
      milp.status != lp::SolveStatus::NodeLimit)
    return out;
  if (milp.x.empty()) return out;
  out.allocation = problem.allocation_from_full(full, milp.x);
  out.objective = problem.objective_of(out.allocation);
  return out;
}

}  // namespace dls::core
