#include "core/multi_solve.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace dls::core {

namespace {

/// Mirrors the single-load heuristics' warm-threading: consume and
/// refresh the caller's capsule/arena, report how the seed was used.
lp::Solution solve_reduced(const SteadyStateProblem::ReducedModel& reduced,
                           const lp::SimplexOptions& lp_options,
                           LpWarmStart* warm) {
  const lp::SimplexSolver solver(lp_options);
  lp::WarmState* state = warm != nullptr ? warm->state : nullptr;
  lp::SolveArena* arena = warm != nullptr ? warm->arena : nullptr;
  lp::Solution sol = arena != nullptr ? solver.solve(reduced.model, state, *arena)
                                      : (state != nullptr
                                             ? solver.solve(reduced.model, state)
                                             : solver.solve(reduced.model));
  if (warm != nullptr) {
    warm->used = sol.warm_used;
    warm->kind = sol.warm_kind;
  }
  return sol;
}

void read_throughputs(const SteadyStateProblem& problem,
                      const SteadyStateProblem::ReducedModel& reduced,
                      const lp::Solution& sol, MultiLoadSolution& out) {
  out.alloc = problem.load_allocation_from_reduced(reduced, sol.x);
  out.throughput.assign(problem.num_loads(), 0.0);
  for (int j = 0; j < problem.num_loads(); ++j)
    out.throughput[j] = out.alloc.total(j);
}

MultiLoadSolution solve_single_lp(const SteadyStateProblem& problem,
                                  const MultiLoadSolveOptions& options,
                                  LpWarmStart* warm) {
  std::optional<SteadyStateProblem::ReducedModel> own;
  const SteadyStateProblem::ReducedModel* reduced =
      warm != nullptr && warm->reduced != nullptr ? warm->reduced : nullptr;
  if (reduced == nullptr) {
    own.emplace(problem.build_reduced());
    reduced = &*own;
  }
  const lp::Solution sol = solve_reduced(*reduced, options.lp, warm);
  MultiLoadSolution out;
  out.status = sol.status;
  out.lp_solves = 1;
  out.lp_iterations = sol.iterations;
  out.warm = warm != nullptr && warm->used;
  out.repaired = warm != nullptr && warm->kind == lp::WarmKind::Basis;
  if (sol.status != lp::SolveStatus::Optimal) return out;
  out.objective = sol.objective;
  read_throughputs(problem, *reduced, sol, out);
  return out;
}

MultiLoadSolution solve_prop_fair(const SteadyStateProblem& problem,
                                  const MultiLoadSolveOptions& options,
                                  LpWarmStart* warm) {
  // The iteration re-patches objective coefficients between rounds, so it
  // owns its model: a caller-cached reduced model (warm->reduced) is NOT
  // used here. The capsule/arena still thread through — coefficient
  // patches are non-structural, so round 2..R warm-start off round 1,
  // and round 1 warm-starts off the caller's previous event.
  SteadyStateProblem::ReducedModel reduced = problem.build_reduced();
  // Thread the caller's capsule/arena when given; otherwise chain the
  // rounds through a local capsule so they still warm-start each other.
  lp::WarmState local_state;
  LpWarmStart chain;
  if (warm != nullptr) chain = *warm;
  if (chain.state == nullptr) chain.state = &local_state;
  chain.reduced = nullptr;
  LpWarmStart* thread = &chain;

  const LoadSet& loads = problem.loads();
  const int num_loads = problem.num_loads();
  const double floor = options.pf_floor;

  lp::Solution sol = solve_reduced(reduced, options.lp, thread);
  MultiLoadSolution out;
  out.status = sol.status;
  out.lp_solves = 1;
  out.lp_iterations = sol.iterations;
  out.warm = thread->used;
  out.repaired = thread->kind == lp::WarmKind::Basis;
  if (warm != nullptr) {  // event-level semantics: how round 1 was seeded
    warm->used = out.warm;
    warm->kind = thread->kind;
  }
  if (sol.status != lp::SolveStatus::Optimal) return out;
  read_throughputs(problem, reduced, sol, out);

  std::vector<double> ref = out.throughput;
  for (int round = 1; round < options.pf_max_rounds; ++round) {
    // Linearize sum w_j log(x_j) at the reference point: coefficient
    // w_j / ref_j, floored so starved loads pull hard instead of
    // dividing by zero. The floor is RELATIVE to the best-served load:
    // round 1 optimizes a weighted sum whose vertex may starve a load
    // outright, and w / pf_floor would put ~1e9-scale coefficients into
    // the simplex (iteration-limit territory). A 1e-6 relative floor
    // still pulls the starved load up by six orders of magnitude while
    // keeping the objective's dynamic range factorable.
    double ref_max = floor;
    for (int j = 0; j < num_loads; ++j)
      if (loads.loads[j].weight > 0.0) ref_max = std::max(ref_max, ref[j]);
    const double lin_floor = std::max(floor, 1e-6 * ref_max);
    for (std::size_t r = 0; r < reduced.alpha_var.size(); ++r) {
      const double w = loads.loads[problem.load_routes()[r].load].weight;
      reduced.model.set_objective_coef(
          reduced.alpha_var[r],
          w > 0.0 ? w / std::max(ref[problem.load_routes()[r].load], lin_floor)
                  : 0.0);
    }
    sol = solve_reduced(reduced, options.lp, thread);
    ++out.lp_solves;
    out.lp_iterations += sol.iterations;
    if (sol.status != lp::SolveStatus::Optimal) {
      out.status = sol.status;
      return out;
    }
    read_throughputs(problem, reduced, sol, out);

    double delta = 0.0;
    for (int j = 0; j < num_loads; ++j) {
      if (loads.loads[j].weight <= 0.0) continue;
      delta = std::max(delta, std::fabs(out.throughput[j] - ref[j]) /
                                  std::max(ref[j], floor));
    }
    if (delta < options.pf_tol) break;
    // Damped reference update: averaging prevents two-cycle oscillation
    // between vertices of a degenerate optimum face.
    for (int j = 0; j < num_loads; ++j)
      ref[j] = 0.5 * (ref[j] + out.throughput[j]);
  }

  out.objective = 0.0;
  for (int j = 0; j < num_loads; ++j) {
    const double w = loads.loads[j].weight;
    if (w <= 0.0) continue;
    out.objective += w * std::log(std::max(out.throughput[j], floor));
  }
  return out;
}

}  // namespace

MultiLoadSolution solve_loads(const SteadyStateProblem& problem,
                              const MultiLoadSolveOptions& options,
                              LpWarmStart* warm) {
  if (options.objective == MultiObjective::PropFair)
    return solve_prop_fair(problem, options, warm);
  const Objective want = options.objective == MultiObjective::MaxMin
                             ? Objective::MaxMin
                             : Objective::Sum;
  require(problem.objective() == want,
          "solve_loads: problem objective does not match the requested "
          "multi-load objective");
  return solve_single_lp(problem, options, warm);
}

MultiLoadSolution solve_loads(const platform::Platform& plat,
                              const LoadSet& loads,
                              const MultiLoadSolveOptions& options,
                              LpWarmStart* warm) {
  const Objective obj = options.objective == MultiObjective::MaxMin
                            ? Objective::MaxMin
                            : Objective::Sum;
  const SteadyStateProblem problem(plat, loads, obj);
  return solve_loads(problem, options, warm);
}

}  // namespace dls::core
