// Steady-state allocations (alpha, beta) — the decision variables of the
// paper's program (7).
//
// alpha(k, l) is the amount of application A_k's load shipped from cluster
// k and computed on cluster l per time unit (alpha(k, k) is the locally
// processed share). beta(k, l) is the number of connections opened for
// that transfer. Betas are stored as doubles so the same type can carry
// the rational relaxation (where beta = alpha / pbw may be fractional);
// valid allocations in the paper's sense have integral betas, which
// validate_allocation checks.
#pragma once

#include <string>
#include <vector>

#include "support/error.hpp"

namespace dls::core {

class Allocation {
public:
  explicit Allocation(int num_clusters);

  [[nodiscard]] int num_clusters() const { return k_; }

  [[nodiscard]] double alpha(int k, int l) const { return alpha_[index(k, l)]; }
  [[nodiscard]] double beta(int k, int l) const { return beta_[index(k, l)]; }

  void set_alpha(int k, int l, double value);
  void set_beta(int k, int l, double value);
  void add_alpha(int k, int l, double delta);
  void add_beta(int k, int l, double delta);

  /// alpha_k = sum_l alpha(k, l): application k's total throughput.
  [[nodiscard]] double total_alpha(int k) const;

  /// Load computed on cluster l per time unit: sum_k alpha(k, l).
  [[nodiscard]] double load_on(int l) const;

  /// Gateway traffic of cluster k: outgoing + incoming remote load (7c lhs).
  [[nodiscard]] double gateway_traffic(int k) const;

  /// True if every beta is within eps of an integer.
  [[nodiscard]] bool has_integral_betas(double eps = 1e-6) const;

private:
  [[nodiscard]] std::size_t index(int k, int l) const {
    DLS_ASSERT(k >= 0 && k < k_ && l >= 0 && l < k_);
    return static_cast<std::size_t>(k) * k_ + l;
  }

  int k_;
  std::vector<double> alpha_;
  std::vector<double> beta_;
};

}  // namespace dls::core
