// Joint solves for N concurrent divisible loads (ISSUE 8).
//
// solve_loads builds the reduced relaxation of the multi-load
// steady-state problem (problem.hpp) and optimizes one of three
// objectives over the shared platform polytope:
//
//   WeightedSum  max sum_j w_j * throughput_j          (one LP)
//   MaxMin       max min_j w_j * throughput_j          (one LP, aux t)
//   PropFair     max sum_j w_j * log(throughput_j)     (Dinkelbach-style
//                iteration: each round solves the weighted-sum LP with
//                coefficients w_j / throughput_j^(t) — the linearization
//                of the log objective at the damped reference point —
//                until the throughput vector stops moving. Objective
//                coefficient patches are non-structural, so every round
//                after the first warm-starts from the previous capsule.)
//
// The LpWarmStart contract matches the single-load heuristics: a capsule
// plus arena threaded across calls makes event-sequenced solves warm,
// and results are bit-identical with or without the arena.
#pragma once

#include "core/heuristics.hpp"
#include "core/loads.hpp"
#include "core/problem.hpp"
#include "lp/simplex.hpp"

namespace dls::core {

struct MultiLoadSolveOptions {
  MultiObjective objective = MultiObjective::WeightedSum;
  lp::SimplexOptions lp;
  /// PropFair iteration controls: at most pf_max_rounds reweighted LPs,
  /// stopping when the largest relative throughput change drops below
  /// pf_tol; pf_floor keeps the reweighting finite for starved loads.
  int pf_max_rounds = 24;
  double pf_tol = 1e-7;
  double pf_floor = 1e-9;
};

struct MultiLoadSolution {
  lp::SolveStatus status = lp::SolveStatus::Infeasible;
  /// Objective value under the requested MultiObjective (for PropFair:
  /// sum_j w_j log(max(throughput_j, pf_floor)) over positive weights).
  double objective = 0.0;
  std::vector<double> throughput;  ///< per load: sum_l alpha_{j,l}
  LoadAllocation alloc;
  int lp_solves = 0;
  int lp_iterations = 0;  ///< simplex pivots summed over all solves
  bool warm = false;      ///< the first solve reused the caller's capsule
  bool repaired = false;  ///< ... through the basis-repair path
};

/// Solves the joint N-load problem on `plat`. Throws dls::Error on an
/// invalid load set; solver failures come back in `status`.
[[nodiscard]] MultiLoadSolution solve_loads(const platform::Platform& plat,
                                            const LoadSet& loads,
                                            const MultiLoadSolveOptions& options = {},
                                            LpWarmStart* warm = nullptr);

/// Same, over a pre-built problem whose Objective matches the requested
/// MultiObjective (Sum for WeightedSum/PropFair, MaxMin for MaxMin) —
/// the path for callers that cache the problem across events. When
/// `warm->reduced` is set it is used instead of building a fresh reduced
/// model — except under PropFair, whose iteration re-patches objective
/// coefficients and therefore always owns a private model (the capsule
/// and arena still thread through).
[[nodiscard]] MultiLoadSolution solve_loads(const SteadyStateProblem& problem,
                                            const MultiLoadSolveOptions& options = {},
                                            LpWarmStart* warm = nullptr);

}  // namespace dls::core
