// The greedy heuristic G (paper §5.1) and the shared residual-capacity
// pass that LPRG reuses on top of a rounded LP solution.
//
// Interpretation notes (documented in DESIGN.md):
//  * Only clusters with positive payoff host applications; the rest never
//    appear in the candidate list L but still offer CPU/gateway capacity.
//  * Application selection minimizes alpha_k * payoff_k; ties go to the
//    higher payoff (the paper's prose; its lexicographic formula would
//    order ties the other way).
//  * The local-allocation cap (step 5) measures what another application
//    m could have run on C^k, so it is computed along the m -> k route
//    direction.
//  * If the local cap is zero (no other application could reach C^k at
//    all) the application takes the whole remaining local speed; the
//    paper leaves this case unspecified and the heuristic would otherwise
//    loop forever allocating zero.
#include "core/heuristics.hpp"
#include "core/internal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace dls::core {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

namespace internal {

GreedyState GreedyState::fresh(const SteadyStateProblem& problem) {
  const platform::Platform& plat = problem.plat();
  GreedyState st{Allocation(plat.num_clusters()), {}, {}, {}};
  const int n = plat.num_clusters();
  st.res_speed.resize(n);
  st.res_gateway.resize(n);
  for (int k = 0; k < n; ++k) {
    st.res_speed[k] = plat.cluster(k).speed;
    st.res_gateway[k] = plat.cluster(k).gateway_bw;
  }
  st.res_maxcon.resize(plat.num_links());
  for (platform::LinkId li = 0; li < plat.num_links(); ++li)
    st.res_maxcon[li] = plat.link(li).max_connections;
  return st;
}

GreedyState GreedyState::after(const SteadyStateProblem& problem,
                               const Allocation& alloc) {
  GreedyState st = fresh(problem);
  const int n = problem.num_clusters();
  st.alloc = alloc;
  for (int l = 0; l < n; ++l) st.res_speed[l] -= alloc.load_on(l);
  for (int k = 0; k < n; ++k) st.res_gateway[k] -= alloc.gateway_traffic(k);
  for (platform::LinkId li = 0; li < problem.plat().num_links(); ++li)
    for (int r : problem.routes_through_link()[li]) {
      const auto& route = problem.routes()[r];
      st.res_maxcon[li] -= alloc.beta(route.k, route.l);
    }
  for (int k = 0; k < n; ++k) {
    require(st.res_speed[k] >= -1e-6 && st.res_gateway[k] >= -1e-6,
            "GreedyState::after: allocation already exceeds capacities");
    st.res_speed[k] = std::max(0.0, st.res_speed[k]);
    st.res_gateway[k] = std::max(0.0, st.res_gateway[k]);
  }
  for (double& m : st.res_maxcon) m = std::max(0.0, m);
  return st;
}

void greedy_fill(const SteadyStateProblem& problem, GreedyState& st,
                 const GreedyOptions& options) {
  const platform::Platform& plat = problem.plat();
  const int n = problem.num_clusters();
  const std::vector<double>& payoff = problem.payoffs();

  std::vector<int> live;  // applications still in the candidate list L
  for (int k = 0; k < n; ++k)
    if (payoff[k] > 0.0) live.push_back(k);

  // Generous termination guard; every iteration either consumes capacity
  // or removes an application, so this should never trigger.
  double total_maxcon = 0.0;
  for (double m : st.res_maxcon) total_maxcon += m;
  long guard = 1000 + 50L * n * n + 20L * static_cast<long>(total_maxcon) +
               20L * static_cast<long>(st.res_speed.size()) * 100;

  while (!live.empty()) {
    require(guard-- > 0, "greedy_fill: step guard exceeded (non-termination bug)");

    // Step 3: application with the smallest alpha_k * payoff_k; ties to
    // the larger payoff, then the lower index for determinism.
    int k = -1;
    double best_key = std::numeric_limits<double>::infinity();
    for (int cand : live) {
      const double key = st.alloc.total_alpha(cand) * payoff[cand];
      if (key < best_key - kEps ||
          (key < best_key + kEps &&
           (k < 0 || payoff[cand] > payoff[k] + kEps))) {
        best_key = std::min(best_key, key);
        k = cand;
      }
    }
    DLS_ASSERT(k >= 0);

    // Step 4: most profitable target cluster for one connection's worth.
    int l = k;
    double best_benefit = st.res_speed[k];  // local candidate
    for (int m = 0; m < n; ++m) {
      if (m == k) continue;
      const int r = problem.route_id(k, m);
      if (r < 0) continue;
      bool connection_free = true;
      for (platform::LinkId li : plat.route(k, m)) {
        if (st.res_maxcon[li] < 1.0 - kEps) {
          connection_free = false;
          break;
        }
      }
      if (!connection_free) continue;
      const double benefit =
          std::min({st.res_gateway[k], problem.routes()[r].pbw, st.res_gateway[m],
                    st.res_speed[m]});
      if (benefit > best_benefit + kEps) {
        best_benefit = benefit;
        l = m;
      }
    }

    if (best_benefit <= kEps) {
      live.erase(std::find(live.begin(), live.end(), k));
      continue;
    }

    if (l != k) {
      // Step 5/6, remote: one connection carrying `best_benefit` load.
      const double amount = best_benefit;
      st.res_speed[l] -= amount;
      st.res_gateway[k] -= amount;
      st.res_gateway[l] -= amount;
      for (platform::LinkId li : plat.route(k, l)) st.res_maxcon[li] -= 1.0;
      st.alloc.add_alpha(k, l, amount);
      if (!plat.route(k, l).empty()) st.alloc.add_beta(k, l, 1.0);
    } else {
      // Step 5/6, local: cap at the largest amount any other application
      // could have run here (m -> k direction), to keep C^k useful.
      double cap = 0.0;
      for (int m = 0; m < n; ++m) {
        if (m == k) continue;
        const int r = problem.route_id(m, k);
        if (r < 0) continue;
        cap = std::max(cap, std::min({st.res_gateway[k], problem.routes()[r].pbw,
                                      st.res_gateway[m], st.res_speed[k]}));
      }
      double amount = cap;
      if (cap <= kEps) {
        if (options.local_exhaust == LocalExhaustPolicy::DropApplication) {
          live.erase(std::find(live.begin(), live.end(), k));
          continue;
        }
        amount = st.res_speed[k];
      }
      st.res_speed[k] -= amount;
      st.alloc.add_alpha(k, k, amount);
    }
    // Clamp tolerance-level negatives so later mins stay clean.
    st.res_speed[l] = std::max(0.0, st.res_speed[l]);
    st.res_gateway[k] = std::max(0.0, st.res_gateway[k]);
    st.res_gateway[l] = std::max(0.0, st.res_gateway[l]);
  }
}

}  // namespace internal

HeuristicResult run_greedy(const SteadyStateProblem& problem,
                           const GreedyOptions& options) {
  internal::GreedyState st = internal::GreedyState::fresh(problem);
  internal::greedy_fill(problem, st, options);
  HeuristicResult result{std::move(st.alloc), 0.0, 0, lp::SolveStatus::Optimal};
  result.objective = problem.objective_of(result.allocation);
  return result;
}

HeuristicResult run_greedy_warm(const SteadyStateProblem& problem,
                                const Allocation& previous,
                                const GreedyOptions& options) {
  const int n = problem.num_clusters();
  require(previous.num_clusters() == n,
          "run_greedy_warm: allocation size does not match problem");
  // Restrict the seed to the problem's current applications: routes owned
  // by a payoff-0 cluster drop out entirely, releasing their compute,
  // gateway and connection capacities for the greedy pass to re-assign.
  Allocation seed(n);
  for (const auto& route : problem.routes()) {
    if (problem.payoffs()[route.k] <= 0.0) continue;
    seed.set_alpha(route.k, route.l, previous.alpha(route.k, route.l));
    if (route.needs_beta)
      seed.set_beta(route.k, route.l, previous.beta(route.k, route.l));
  }
  internal::GreedyState st = internal::GreedyState::after(problem, seed);
  internal::greedy_fill(problem, st, options);
  HeuristicResult result{std::move(st.alloc), 0.0, 0, lp::SolveStatus::Optimal};
  result.objective = problem.objective_of(result.allocation);
  return result;
}

}  // namespace dls::core
