// NP-completeness apparatus for Theorem 1 (paper §4).
//
// The reduction maps an instance of MAXIMUM-INDEPENDENT-SET to an
// instance of STEADY-STATE-DIVISIBLE-LOAD whose optimal throughput equals
// the maximum independent set size:
//   * clusters C^0 (g = n, s = 0, payoff 1) and C^1..C^n (g = s = 1,
//     payoff 0) — C^0 owns the only application and must delegate all work;
//   * per edge e_k = (V_i, V_j): routers Qa_k, Qb_k joined by the link
//     lcommon_k with bw = 1 and max-connect = 1, which both routes
//     L(0,i) and L(0,j) traverse;
//   * chain links l^i_j (bw = 1, max-connect = 1) threading C^0's router
//     through cluster i's gadget sequence to C^i's router.
// Lemma 1: routes L(0,i) and L(0,j) share a backbone link iff (V_i, V_j)
// is an edge of G.
//
// An exact maximum-independent-set solver (branch and bound) is included
// so tests can certify the equivalence on arbitrary small graphs.
#pragma once

#include <utility>
#include <vector>

#include "platform/platform.hpp"

namespace dls::core::npc {

/// Simple undirected graph on vertices 0..n-1 (no loops, no multi-edges).
class Graph {
public:
  explicit Graph(int num_vertices);

  void add_edge(int u, int v);
  [[nodiscard]] int num_vertices() const { return n_; }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] bool has_edge(int u, int v) const;
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<int>& neighbors(int v) const { return adj_[v]; }

private:
  int n_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adj_;
};

/// Exact maximum independent set via branch and bound (exponential; meant
/// for n up to ~40). Returns one maximum set, sorted ascending.
[[nodiscard]] std::vector<int> maximum_independent_set(const Graph& g);

/// The platform instance I2 built from graph instance I1.
struct ReductionInstance {
  platform::Platform platform;
  std::vector<double> payoffs;                ///< 1, 0, 0, ..., 0
  std::vector<platform::LinkId> common_links; ///< lcommon_k per edge k
};

[[nodiscard]] ReductionInstance build_reduction(const Graph& g);

/// Verifies Lemma 1 on a built instance: routes (C0,Ci) and (C0,Cj) share
/// a backbone link iff (Vi, Vj) is an edge of g.
[[nodiscard]] bool lemma1_holds(const Graph& g, const ReductionInstance& instance);

}  // namespace dls::core::npc
