#include "core/npc/reduction.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "support/error.hpp"

namespace dls::core::npc {

Graph::Graph(int num_vertices) : n_(num_vertices), adj_(num_vertices) {
  require(num_vertices >= 0, "Graph: negative vertex count");
}

void Graph::add_edge(int u, int v) {
  require(u >= 0 && u < n_ && v >= 0 && v < n_, "Graph::add_edge: vertex out of range");
  require(u != v, "Graph::add_edge: self-loop");
  require(!has_edge(u, v), "Graph::add_edge: duplicate edge");
  edges_.emplace_back(u, v);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
}

bool Graph::has_edge(int u, int v) const {
  require(u >= 0 && u < n_ && v >= 0 && v < n_, "Graph::has_edge: vertex out of range");
  return std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end();
}

namespace {

/// Branch and bound: pick the highest-degree live vertex; branch on
/// excluding it versus including it (which removes its neighborhood).
void mis_search(const Graph& g, std::vector<char>& alive, int alive_count,
                std::vector<int>& current, std::vector<int>& best) {
  if (current.size() + alive_count <= best.size()) return;  // bound

  int pivot = -1, pivot_deg = -1;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!alive[v]) continue;
    int deg = 0;
    for (int u : g.neighbors(v)) deg += alive[u];
    if (deg > pivot_deg) {
      pivot_deg = deg;
      pivot = v;
    }
  }
  if (pivot < 0) {  // no live vertex: current is maximal here
    if (current.size() > best.size()) best = current;
    return;
  }
  if (pivot_deg == 0) {
    // All live vertices are pairwise non-adjacent: take them all.
    std::vector<int> take = current;
    for (int v = 0; v < g.num_vertices(); ++v)
      if (alive[v]) take.push_back(v);
    if (take.size() > best.size()) best = std::move(take);
    return;
  }

  // Branch 1: include the pivot (kill it and its live neighbors).
  std::vector<int> killed{pivot};
  alive[pivot] = 0;
  for (int u : g.neighbors(pivot)) {
    if (alive[u]) {
      alive[u] = 0;
      killed.push_back(u);
    }
  }
  current.push_back(pivot);
  mis_search(g, alive, alive_count - static_cast<int>(killed.size()), current, best);
  current.pop_back();
  for (int v : killed) alive[v] = 1;

  // Branch 2: exclude the pivot.
  alive[pivot] = 0;
  mis_search(g, alive, alive_count - 1, current, best);
  alive[pivot] = 1;
}

}  // namespace

std::vector<int> maximum_independent_set(const Graph& g) {
  std::vector<char> alive(g.num_vertices(), 1);
  std::vector<int> current, best;
  mis_search(g, alive, g.num_vertices(), current, best);
  std::sort(best.begin(), best.end());
  return best;
}

ReductionInstance build_reduction(const Graph& g) {
  const int n = g.num_vertices();
  require(n >= 1, "build_reduction: need at least one vertex");
  ReductionInstance inst;
  platform::Platform& plat = inst.platform;

  // Routers: one per cluster, then Qa_k/Qb_k per edge.
  const platform::RouterId r0 = plat.add_router("R0");
  std::vector<platform::RouterId> cluster_router(n);
  for (int i = 0; i < n; ++i)
    cluster_router[i] = plat.add_router("R" + std::to_string(i + 1));
  std::vector<platform::RouterId> qa(g.num_edges()), qb(g.num_edges());
  for (int k = 0; k < g.num_edges(); ++k) {
    qa[k] = plat.add_router("Qa" + std::to_string(k));
    qb[k] = plat.add_router("Qb" + std::to_string(k));
  }

  // Clusters: C0 (g = n, s = 0) then C1..Cn (g = s = 1).
  plat.add_cluster(0.0, static_cast<double>(n), r0, "C0");
  for (int i = 0; i < n; ++i)
    plat.add_cluster(1.0, 1.0, cluster_router[i], "C" + std::to_string(i + 1));

  // Common links lcommon_k = (Qa_k, Qb_k), bw = 1, max-connect = 1.
  inst.common_links.resize(g.num_edges());
  for (int k = 0; k < g.num_edges(); ++k)
    inst.common_links[k] =
        plat.add_backbone(qa[k], qb[k], 1.0, 1, "lcommon" + std::to_string(k));

  // Route(i): the edges incident to vertex i, in edge-index order.
  std::vector<std::vector<int>> route_edges(n);
  for (int k = 0; k < g.num_edges(); ++k) {
    route_edges[g.edges()[k].first].push_back(k);
    route_edges[g.edges()[k].second].push_back(k);
  }

  // Chain links and the explicit routing path L(0, i).
  for (int i = 0; i < n; ++i) {
    std::vector<platform::LinkId> path;
    platform::RouterId at = r0;
    for (std::size_t j = 0; j < route_edges[i].size(); ++j) {
      const int k = route_edges[i][j];
      path.push_back(plat.add_backbone(at, qa[k], 1.0, 1,
                                       "l_" + std::to_string(i) + "_" +
                                           std::to_string(j + 1)));
      path.push_back(inst.common_links[k]);
      at = qb[k];
    }
    path.push_back(plat.add_backbone(at, cluster_router[i], 1.0, 1,
                                     "l_" + std::to_string(i) + "_last"));
    plat.set_route(0, i + 1, std::move(path));
  }

  inst.payoffs.assign(n + 1, 0.0);
  inst.payoffs[0] = 1.0;
  plat.validate();
  return inst;
}

bool lemma1_holds(const Graph& g, const ReductionInstance& inst) {
  const platform::Platform& plat = inst.platform;
  const int n = g.num_vertices();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto route_i = plat.route(0, i + 1);
      const auto route_j = plat.route(0, j + 1);
      const std::set<platform::LinkId> set_i(route_i.begin(), route_i.end());
      bool share = false;
      for (platform::LinkId li : route_j)
        if (set_i.count(li)) share = true;
      if (share != g.has_edge(i, j)) return false;
    }
  }
  return true;
}

}  // namespace dls::core::npc
