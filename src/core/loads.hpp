// Load sets: the demand side of the steady-state problem, split out of
// the platform description (ISSUE 8). A LoadSpec describes one divisible
// load: the cluster holding its input data, its objective weight, how
// many bytes each unit of load ships relative to the paper's baseline
// (data_ratio scales the gateway and max-connect rows), and an optional
// Amdahl-like cap on its aggregate throughput (the load stops scaling
// past its sequential fraction no matter how much capacity is thrown at
// it — Cao/Wu/Robertazzi's resource-sharing variant).
//
// The paper's original formulation is the *canonical* load set: exactly
// one load per cluster, load j sourced at cluster j, weight = payoff_j,
// data_ratio 1, no cap. SteadyStateProblem emits byte-identical LPs for
// canonical sets, which is what keeps the single-load pivot-sequence
// oracles valid (see problem.hpp).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dls::core {

struct LoadSpec {
  int source = 0;       ///< cluster holding this load's input data
  double weight = 1.0;  ///< objective weight; 0 = load not present
  /// Bytes shipped per unit of load, relative to the paper's baseline:
  /// gateway traffic and per-connection bandwidth use scale by this.
  double data_ratio = 1.0;
  /// Amdahl-like aggregate throughput cap (sum over destinations);
  /// +inf = perfectly divisible, no sequential fraction.
  double cap = std::numeric_limits<double>::infinity();
  std::string name;  ///< optional, for diagnostics only
};

struct LoadSet {
  std::vector<LoadSpec> loads;

  /// The canonical set for a payoff vector: one load per cluster, load j
  /// sourced at cluster j with weight payoffs[j], ratio 1, no cap.
  [[nodiscard]] static LoadSet from_payoffs(const std::vector<double>& payoffs);

  [[nodiscard]] int size() const { return static_cast<int>(loads.size()); }

  /// True when this set has the paper's one-load-per-cluster shape (see
  /// header comment); weights are free. Canonical sets are exactly the
  /// ones whose LP layout matches the original single-load builder.
  [[nodiscard]] bool canonical(int num_clusters) const;

  /// Throws dls::Error on out-of-range sources, negative/non-finite
  /// weights, non-positive ratios or caps, or no positive-weight load.
  void validate(int num_clusters) const;

  [[nodiscard]] std::vector<double> weights() const;
};

/// Per-load allocation: alpha(j, l) = units of load j computed on
/// cluster l per time unit. The multi-load analogue of core::Allocation
/// (which is cluster-by-cluster and only meaningful for canonical sets).
class LoadAllocation {
public:
  LoadAllocation() = default;
  LoadAllocation(int num_loads, int num_clusters)
      : num_loads_(num_loads), num_clusters_(num_clusters),
        alpha_(static_cast<std::size_t>(num_loads) * num_clusters, 0.0) {}

  [[nodiscard]] int num_loads() const { return num_loads_; }
  [[nodiscard]] int num_clusters() const { return num_clusters_; }

  [[nodiscard]] double alpha(int j, int l) const { return alpha_[idx(j, l)]; }
  void set_alpha(int j, int l, double value) { alpha_[idx(j, l)] = value; }

  /// Aggregate throughput of load j (its drain rate).
  [[nodiscard]] double total(int j) const;
  /// Compute load landing on cluster l across all loads.
  [[nodiscard]] double load_on(int l) const;

private:
  [[nodiscard]] std::size_t idx(int j, int l) const {
    DLS_ASSERT(j >= 0 && j < num_loads_ && l >= 0 && l < num_clusters_);
    return static_cast<std::size_t>(j) * num_clusters_ + l;
  }

  int num_loads_ = 0;
  int num_clusters_ = 0;
  std::vector<double> alpha_;
};

/// Multi-load objectives (solve_loads in multi_solve.hpp). WeightedSum
/// and MaxMin are single LPs; PropFair runs a Dinkelbach-style iteration
/// of reweighted WeightedSum LPs toward max sum_j w_j log(throughput_j).
enum class MultiObjective {
  WeightedSum,
  MaxMin,
  PropFair,
};

[[nodiscard]] std::string to_string(MultiObjective o);
/// Accepts "sum", "maxmin", "pf"; returns false on anything else.
[[nodiscard]] bool parse_multi_objective(const std::string& text,
                                         MultiObjective& out);

}  // namespace dls::core
