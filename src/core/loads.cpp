#include "core/loads.hpp"

#include <cmath>

namespace dls::core {

LoadSet LoadSet::from_payoffs(const std::vector<double>& payoffs) {
  LoadSet set;
  set.loads.reserve(payoffs.size());
  for (std::size_t k = 0; k < payoffs.size(); ++k) {
    LoadSpec load;
    load.source = static_cast<int>(k);
    load.weight = payoffs[k];
    set.loads.push_back(std::move(load));
  }
  return set;
}

bool LoadSet::canonical(int num_clusters) const {
  if (size() != num_clusters) return false;
  for (int j = 0; j < size(); ++j) {
    const LoadSpec& load = loads[j];
    if (load.source != j || load.data_ratio != 1.0 ||
        load.cap != std::numeric_limits<double>::infinity())
      return false;
  }
  return true;
}

void LoadSet::validate(int num_clusters) const {
  require(!loads.empty(), "LoadSet: at least one load required");
  bool any_positive = false;
  for (const LoadSpec& load : loads) {
    require(load.source >= 0 && load.source < num_clusters,
            "LoadSet: load source cluster out of range");
    require(load.weight >= 0.0 && std::isfinite(load.weight),
            "LoadSet: load weights must be finite and >= 0");
    require(load.data_ratio > 0.0 && std::isfinite(load.data_ratio),
            "LoadSet: data_ratio must be finite and positive");
    require(load.cap > 0.0, "LoadSet: throughput cap must be positive");
    any_positive |= load.weight > 0.0;
  }
  require(any_positive, "LoadSet: at least one positive-weight load required");
}

std::vector<double> LoadSet::weights() const {
  std::vector<double> w;
  w.reserve(loads.size());
  for (const LoadSpec& load : loads) w.push_back(load.weight);
  return w;
}

double LoadAllocation::total(int j) const {
  double sum = 0.0;
  for (int l = 0; l < num_clusters_; ++l) sum += alpha(j, l);
  return sum;
}

double LoadAllocation::load_on(int l) const {
  double sum = 0.0;
  for (int j = 0; j < num_loads_; ++j) sum += alpha(j, l);
  return sum;
}

std::string to_string(MultiObjective o) {
  switch (o) {
    case MultiObjective::WeightedSum: return "sum";
    case MultiObjective::MaxMin: return "maxmin";
    case MultiObjective::PropFair: return "pf";
  }
  return "?";
}

bool parse_multi_objective(const std::string& text, MultiObjective& out) {
  if (text == "sum") {
    out = MultiObjective::WeightedSum;
  } else if (text == "maxmin") {
    out = MultiObjective::MaxMin;
  } else if (text == "pf") {
    out = MultiObjective::PropFair;
  } else {
    return false;
  }
  return true;
}

}  // namespace dls::core
