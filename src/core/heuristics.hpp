// The paper's §5 heuristics for STEADY-STATE-DIVISIBLE-LOAD, plus the LP
// upper bound used as the comparator in §6 and an exact MILP solve for
// small instances.
//
//   G     run_greedy       resource-by-resource greedy (§5.1)
//   LPR   run_lpr          relaxation + round all betas down (§5.2.1)
//   LPRG  run_lprg         LPR, then G on the residual capacities (§5.2.2)
//   LPRR  run_lprr         iterative randomized rounding (§5.2.3);
//                          options.equal_probability switches to the
//                          up/down-with-probability-1/2 variant the paper
//                          reports as much worse (§6.2)
//   LP    lp_upper_bound   rational relaxation (not a valid allocation:
//                          betas are fractional); upper-bounds the optimum
//   MLP   solve_exact      branch-and-bound on the full program (7)
//
// Every heuristic returns a *valid* allocation (integral betas, all of
// equations (7) satisfied), which tests enforce via validate_allocation.
#pragma once

#include <cstdint>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "lp/milp.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace dls::core {

struct HeuristicResult {
  Allocation allocation;
  double objective = 0.0;  ///< problem.objective_of(allocation)
  int lp_solves = 0;       ///< number of LP relaxations solved
  lp::SolveStatus status = lp::SolveStatus::Optimal;
  int lp_iterations = 0;   ///< total simplex pivots across those solves
};

/// Simplex warm-start context threaded through the LP-based heuristics
/// (the core hook behind the online rescheduler's adaptive re-solves).
/// `state` is a persistent capsule (lp::WarmState) that seeds the
/// relaxation solve when it fits the model and is still primal feasible
/// (the solver otherwise ignores it) and is refreshed from the solve's
/// optimal basis for the next event. The relaxation's objective value
/// is identical warm or cold (both solve to optimality); the *vertex*
/// is not guaranteed to be, so the rounded allocation of lpr/lprg may
/// differ between the two paths on degenerate optima.
struct LpWarmStart {
  lp::WarmState* state = nullptr;
  /// Optional solve arena (lp::SolveArena, typically
  /// lp::BatchSolver::local_arena()): reuses simplex working storage
  /// and the shared column-structure cache across solves. Pure
  /// performance — results are bit-identical with or without it.
  lp::SolveArena* arena = nullptr;
  /// Optional pre-built fixing-free reduced model for this problem
  /// (typically one cached instance patched per event with
  /// SteadyStateProblem::update_reduced_payoffs). When null the
  /// heuristic builds its own.
  const SteadyStateProblem::ReducedModel* reduced = nullptr;
  bool used = false;  ///< set by the heuristic: the seed was accepted
  /// How the relaxation solve was seeded (lp::WarmKind::Basis = the
  /// capsule was repaired across a constraint-matrix change, see
  /// lp::SimplexOptions::warm_repair).
  lp::WarmKind kind = lp::WarmKind::Cold;
};

/// What the greedy does when an application picks its local cluster but
/// the paper's step-5 cap (the largest amount another application could
/// have run there) is zero.
enum class LocalExhaustPolicy {
  /// Take all remaining local speed: nobody else can reach this cluster,
  /// so reserving it is pure waste. Our default (strictly dominates).
  TakeRemaining,
  /// Drop the application from the candidate list, leaving the residual
  /// speed unused — the literal reading of the paper's step 5, which
  /// allocates 0 (and would otherwise loop forever). Kept as an ablation.
  DropApplication,
};

struct GreedyOptions {
  LocalExhaustPolicy local_exhaust = LocalExhaustPolicy::TakeRemaining;
};

/// The greedy heuristic G. Deterministic; solves no LP.
[[nodiscard]] HeuristicResult run_greedy(const SteadyStateProblem& problem,
                                         const GreedyOptions& options = {});

/// Warm-started greedy: seeds the residual-capacity pass from `previous`
/// restricted to the problem's current applications (load sent by
/// clusters whose payoff is now 0 is dropped, freeing their capacities),
/// then lets the greedy loop fill what the restriction released. The
/// result is a valid allocation whenever `previous` was one for the same
/// platform, but — unlike the simplex basis warm start — it is NOT
/// guaranteed to match run_greedy's cold objective: the seed pins the
/// surviving applications' shares. Kept for rescheduling policies that
/// value allocation stability over re-optimization.
[[nodiscard]] HeuristicResult run_greedy_warm(const SteadyStateProblem& problem,
                                              const Allocation& previous,
                                              const GreedyOptions& options = {});

/// LPR: rational relaxation, betas rounded down, alphas clipped to the
/// rounded bandwidth.
[[nodiscard]] HeuristicResult run_lpr(const SteadyStateProblem& problem,
                                      const lp::SimplexOptions& lp_options = {},
                                      LpWarmStart* warm = nullptr);

/// LPRG: LPR, then the greedy pass reclaims the rounding losses.
[[nodiscard]] HeuristicResult run_lprg(const SteadyStateProblem& problem,
                                       const lp::SimplexOptions& lp_options = {},
                                       const GreedyOptions& greedy_options = {},
                                       LpWarmStart* warm = nullptr);

struct LprrOptions {
  /// false: round up with probability frac(beta) (the paper's LPRR);
  /// true: round up/down with probability 1/2 each (the ablation variant).
  bool equal_probability = false;
  /// true (paper's LPRR, ~K^2 LP solves): re-solve the relaxation after
  /// every fixing so later roundings compensate earlier ones. false:
  /// classical one-shot randomized rounding (Motwani-Naor-Raghavan
  /// style): one relaxation solve, every beta rounded from it, one final
  /// clean-up solve. The ablation bench shows the re-solve is what makes
  /// equal-probability rounding survivable.
  bool resolve_between_fixings = true;
  lp::SimplexOptions lp;
  /// Optional solve arena shared across LPRR's ~K^2 relaxation solves
  /// (same contract as LpWarmStart::arena: faster, bit-identical).
  lp::SolveArena* arena = nullptr;
};

/// LPRR: one LP re-solve per fixed route (~K^2 solves); rounding up is
/// demoted to rounding down whenever it would exceed a link's residual
/// max-connect, so the result is always feasible.
[[nodiscard]] HeuristicResult run_lprr(const SteadyStateProblem& problem, Rng& rng,
                                       const LprrOptions& options = {});

struct LpBoundResult {
  double objective = 0.0;
  Allocation allocation;  ///< fractional betas: NOT a valid allocation
  lp::SolveStatus status = lp::SolveStatus::Optimal;
  int iterations = 0;
};

/// The "LP" comparator: optimum of the rational relaxation.
[[nodiscard]] LpBoundResult lp_upper_bound(const SteadyStateProblem& problem,
                                           const lp::SimplexOptions& lp_options = {},
                                           LpWarmStart* warm = nullptr);

struct ExactResult {
  double objective = 0.0;
  Allocation allocation;
  lp::SolveStatus status = lp::SolveStatus::Infeasible;
  std::int64_t nodes = 0;
};

/// Exact mixed solve of program (7); exponential — small instances only.
[[nodiscard]] ExactResult solve_exact(const SteadyStateProblem& problem,
                                      const lp::MilpOptions& options = {});

}  // namespace dls::core
