// The steady-state multi-application divisible-load scheduling problem
// (paper §3): platform + per-application payoffs + objective, and the
// construction of the linear programs that describe it.
//
// Two formulations are provided:
//
//   * build_full(): the paper's program (7) verbatim — explicit integer
//     beta variables, rows (7b)-(7e). With integrality enforced this is
//     the exact MLP; relaxed it is the "LP" comparator.
//
//   * build_reduced(): the relaxation with beta substituted out. In the
//     rational program beta_{k,l} appears only in (7d) and (7e) and
//     shrinking it is always feasible, so an optimal solution can take
//     beta = alpha / pbw(k,l) exactly (pbw = the route's per-connection
//     bottleneck bandwidth). Substituting turns (7d) into
//         sum_{routes (k,l) through link i} alpha_{k,l} / pbw(k,l)
//             <= max-connect(l_i)
//     and removes (7e) and all beta columns: K^2 fewer variables and K^2
//     fewer rows. Tests assert both formulations have equal optima.
//     Integer fixings beta_{k,l} = v (used by LPRR) enter the reduced
//     form as the bound alpha_{k,l} <= v*pbw plus a reduction of the
//     link budgets on that route.
//
// Clusters with payoff 0 host no application (paper §3.1); their alpha
// variables are fixed to zero but their CPU and gateway still serve
// other applications.
//
// Multi-load generalization (ISSUE 8): the problem is a platform-side
// route table plus a core::LoadSet. Each load j contributes one alpha
// variable per destination reachable from its source cluster; compute
// rows sum every load landing on a cluster, gateway and max-connect rows
// scale each load's terms by its data_ratio, and finite caps add one
// per-load throughput row. The paper's original formulation is the
// *canonical* load set (one load per cluster, ratio 1, no caps, see
// loads.hpp): for it the generalized builder enumerates variables and
// rows in exactly the original order with the original names and
// coefficients, so the emitted LP is byte-identical to the single-load
// builder and the existing pivot-sequence oracles keep passing.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/allocation.hpp"
#include "core/loads.hpp"
#include "lp/model.hpp"
#include "platform/platform.hpp"

namespace dls::core {

enum class Objective {
  Sum,     ///< maximize sum_k payoff_k * alpha_k            (Eq. 5)
  MaxMin,  ///< maximize min over payoff_k > 0 of payoff_k * alpha_k (Eq. 6)
};

[[nodiscard]] std::string to_string(Objective o);

class SteadyStateProblem {
public:
  /// payoffs has one entry per cluster; payoff 0 = no application there.
  /// Builds the canonical load set (LoadSet::from_payoffs).
  SteadyStateProblem(const platform::Platform& plat, std::vector<double> payoffs,
                     Objective objective);

  /// General N-load form: any number of loads, any sources, per-load
  /// data ratios and caps. `loads` is validated against the platform.
  SteadyStateProblem(const platform::Platform& plat, LoadSet loads,
                     Objective objective);

  /// A copy of this problem with the payoff vector replaced. The route
  /// table, per-route bottleneck bandwidths and link incidence lists do
  /// not depend on payoffs, so they are copied instead of recomputed —
  /// the cheap path the online rescheduler takes on every arrival or
  /// departure event. Same validation as the constructor. Canonical only.
  [[nodiscard]] SteadyStateProblem with_payoffs(std::vector<double> payoffs) const;

  /// A copy with a different load set. Shares the platform route table;
  /// the per-load route bindings are rebuilt (O(N*K + links)).
  [[nodiscard]] SteadyStateProblem with_loads(LoadSet loads) const;

  /// A copy with the same load structure but new weights (one per load).
  /// Shares both tables — the O(N) path the multi-load rescheduler takes
  /// per event.
  [[nodiscard]] SteadyStateProblem with_load_weights(
      const std::vector<double>& weights) const;

  [[nodiscard]] const platform::Platform& plat() const { return *plat_; }
  /// The per-cluster payoff view of a canonical load set; throws for
  /// general load sets (use loads() there).
  [[nodiscard]] const std::vector<double>& payoffs() const {
    require(canonical_, "payoffs: only canonical (one-load-per-cluster) "
                        "problems have a payoff vector; use loads()");
    return payoffs_;
  }
  [[nodiscard]] const LoadSet& loads() const { return loads_; }
  [[nodiscard]] int num_loads() const { return loads_.size(); }
  /// True when the load set has the paper's one-load-per-cluster shape:
  /// load-route ids coincide with route ids and the legacy per-cluster
  /// APIs (payoffs, Allocation) apply.
  [[nodiscard]] bool is_canonical() const { return canonical_; }
  [[nodiscard]] Objective objective() const { return objective_; }
  [[nodiscard]] int num_clusters() const { return plat_->num_clusters(); }

  /// One entry per ordered cluster pair that can exchange load (including
  /// the local pairs k == l, which carry alpha(k,k)).
  struct Route {
    int k = -1;          ///< source cluster (application owner)
    int l = -1;          ///< destination cluster (computes the load)
    double pbw = 0.0;    ///< per-connection bottleneck bandwidth; +inf if no
                         ///< backbone link is traversed
    bool needs_beta = false;  ///< true iff remote and traverses >= 1 link
  };

  [[nodiscard]] const std::vector<Route>& routes() const { return table_->routes; }
  /// Index into routes() for (k, l), or -1 when the pair cannot exchange.
  [[nodiscard]] int route_id(int k, int l) const;
  /// For each platform link: the route ids whose path traverses it.
  [[nodiscard]] const std::vector<std::vector<int>>& routes_through_link() const {
    return table_->link_routes;
  }

  /// One LP column per (load, reachable destination). For canonical load
  /// sets load-route ids equal route ids.
  struct LoadRoute {
    int load = -1;   ///< index into loads()
    int route = -1;  ///< index into routes() (source = the load's source)
  };
  [[nodiscard]] const std::vector<LoadRoute>& load_routes() const {
    return ltable_->lroutes;
  }
  /// Index into load_routes() for (load j, destination l), or -1.
  [[nodiscard]] int load_route_id(int j, int l) const;

  /// A fixing pins beta of route `route` to the integer `value`.
  struct BetaFixing {
    int route = -1;
    int value = 0;
  };

  struct ReducedModel {
    lp::Model model;
    std::vector<int> alpha_var;  ///< per load-route id (== route id when canonical)
    int t_var = -1;              ///< MaxMin auxiliary; -1 for Sum
    /// True when beta fixings shaped this model (alpha bounds carry the
    /// pinned (7e) caps); such a model cannot be re-payoffed in place.
    bool has_fixings = false;
  };
  [[nodiscard]] ReducedModel build_reduced(
      const std::vector<BetaFixing>& fixings = {}) const;

  /// Re-payoffs a fixing-free reduced model in place instead of
  /// rebuilding it: payoffs enter a Sum-objective model only through the
  /// alpha upper bounds (0 for idle clusters) and the objective
  /// coefficients, so the constraint rows — and any simplex warm-start
  /// capsule keyed on them — survive. Requires Objective::Sum: MaxMin
  /// grows one fairness row per active cluster, which reshapes the model.
  /// The online rescheduler patches one cached model per event with this
  /// instead of paying build_reduced's allocations thousands of times.
  /// Works for any load set (weights enter the same way payoffs do).
  void update_reduced_payoffs(ReducedModel& reduced) const;

  struct FullModel {
    lp::Model model;
    std::vector<int> alpha_var;  ///< per load-route id
    std::vector<int> beta_var;   ///< per load-route id; -1 where needs_beta is false
    int t_var = -1;
    bool integer_betas = false;  ///< whether betas were integer-marked
  };
  /// integer_betas = true yields the exact MLP (solve with BranchAndBound);
  /// false yields the paper's "LP" relaxation with explicit betas.
  [[nodiscard]] FullModel build_full(bool integer_betas) const;

  /// Reads an allocation out of a reduced-model solution. Free routes get
  /// the canonical beta = alpha / pbw (fractional in general); fixed
  /// routes get their fixed integer value.
  [[nodiscard]] Allocation allocation_from_reduced(
      const ReducedModel& reduced, const std::vector<double>& x,
      const std::vector<BetaFixing>& fixings = {}) const;

  /// Reads an allocation out of a full-model solution.
  [[nodiscard]] Allocation allocation_from_full(const FullModel& full,
                                                const std::vector<double>& x) const;

  /// Reads the per-load allocation out of a reduced-model solution.
  /// Works for any load set (the N-load analogue of allocation_from_reduced).
  [[nodiscard]] LoadAllocation load_allocation_from_reduced(
      const ReducedModel& reduced, const std::vector<double>& x) const;

  /// Objective value of an allocation under this problem's objective.
  /// MaxMin with no positive-payoff application is defined as 0.
  [[nodiscard]] double objective_of(const Allocation& alloc) const;

private:
  /// Route structure derived from the platform alone. Immutable once
  /// built and shared between payoff variants (with_payoffs), so the
  /// online rescheduler's per-event problem copies cost O(K) instead of
  /// re-copying K^2 routes and the per-link incidence lists.
  struct RouteTable {
    std::vector<Route> routes;
    std::vector<int> route_id;  // dense K*K -> route id or -1
    std::vector<std::vector<int>> link_routes;
  };

  /// Per-load route bindings derived from (load sources, route table).
  /// Weight changes don't touch it, so with_payoffs/with_load_weights
  /// share it; with_loads rebuilds it against the shared route table.
  struct LoadTable {
    std::vector<LoadRoute> lroutes;
    std::vector<int> lroute_id;  // dense N*K -> load-route id or -1
    std::vector<std::vector<int>> link_lroutes;
    std::vector<std::vector<int>> loads_at;  // cluster -> load ids sourced there
  };

  void build_load_table();

  const platform::Platform* plat_;
  std::vector<double> payoffs_;  ///< weight view; only kept canonical
  LoadSet loads_;
  bool canonical_ = false;
  Objective objective_;
  std::shared_ptr<const RouteTable> table_;
  std::shared_ptr<const LoadTable> ltable_;
};

/// Checks an allocation against equations (7a)-(7g) plus the structural
/// rules (no load on missing routes, none from payoff-0 clusters).
struct ValidationReport {
  bool ok = true;
  std::vector<std::string> violations;
};
[[nodiscard]] ValidationReport validate_allocation(const SteadyStateProblem& problem,
                                                   const Allocation& alloc,
                                                   double eps = 1e-6,
                                                   bool require_integer_betas = true);

}  // namespace dls::core
