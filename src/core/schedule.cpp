#include "core/schedule.hpp"

#include <cmath>
#include <string>

#include "support/rationalize.hpp"

namespace dls::core {

double PeriodicSchedule::throughput(int app) const {
  return static_cast<double>(load_per_period(app)) / static_cast<double>(period);
}

std::int64_t PeriodicSchedule::load_per_period(int app) const {
  std::int64_t total = 0;
  for (const ComputeTask& t : compute)
    if (t.app == app) total += t.units;
  return total;
}

PeriodicSchedule build_periodic_schedule(const SteadyStateProblem& problem,
                                         const Allocation& alloc,
                                         const ScheduleOptions& options) {
  require(options.max_denominator >= 1 && options.max_period >= 1,
          "build_periodic_schedule: invalid options");
  // Fractional (relaxed) betas reconstruct fine: the schedule's integer
  // connection counts come from the rationalized rates below.
  const ValidationReport report = validate_allocation(
      problem, alloc, 1e-6, /*require_integer_betas=*/false);
  require(report.ok, "build_periodic_schedule: allocation is not valid: " +
                         (report.violations.empty() ? std::string("?")
                                                    : report.violations.front()));

  const int n = problem.num_clusters();

  // Rationalize every nonzero rate downwards.
  struct RouteRate {
    int k, l;
    Rational rate;
  };
  std::vector<RouteRate> rates;
  bool overflow = false;
  std::int64_t period = 1;
  for (int k = 0; k < n; ++k) {
    for (int l = 0; l < n; ++l) {
      const double a = alloc.alpha(k, l);
      if (a <= 0.0) continue;
      Rational r = rationalize_floor(a, options.max_denominator);
      if (r.num() < 0) r = Rational(0);
      if (r.is_zero()) continue;
      rates.push_back({k, l, r});
      if (!overflow) {
        try {
          period = lcm64(period, r.den());
          if (period > options.max_period) overflow = true;
        } catch (const Error&) {
          overflow = true;
        }
      }
    }
  }
  if (overflow) {
    // Common-denominator fallback: floor every rate onto the grid
    // 1/max_denominator; period is then exactly max_denominator. The
    // floor must be strict — nudging the product upward before flooring
    // (the old `+ 1e-9`) rounds a rate sitting within epsilon below an
    // integer *up*, violating the round-down capacity invariant
    // (DESIGN.md section 4).
    period = options.max_denominator;
    for (RouteRate& rr : rates) {
      const double a = alloc.alpha(rr.k, rr.l);
      const auto num = static_cast<std::int64_t>(
          std::floor(a * static_cast<double>(period)));
      rr.rate = Rational(num, period);
    }
  }

  PeriodicSchedule sched;
  sched.period = period;
  const platform::Platform& plat = problem.plat();
  for (const RouteRate& rr : rates) {
    std::int64_t units = rr.rate.num() * (period / rr.rate.den());
    if (units <= 0) continue;
    int connections = 0;
    if (rr.k != rr.l) {
      // Connection count for (7e): the smallest number of connections
      // whose per-connection bandwidth sustains the *scheduled* (i.e.
      // rationalized) rate, never exceeding the allocation's beta
      // rounded down. Rounding the relaxed beta to nearest — the old
      // llround — could round a fractional beta up past the link's
      // max-connect budget (7d) even when the scheduled rate never
      // needed the extra connection; and since sum(floor(beta)) <=
      // sum(beta) <= max-connect, the floor cap keeps every link budget
      // intact. A rate the capped connections cannot carry is rounded
      // down with them (the LPR treatment of fractional betas: round
      // down, clip the rate to the rounded bandwidth).
      // Link-free remote routes (clusters sharing a router) keep
      // connections = 0: beta is 0 there by (7g) validation, exactly
      // what the previous llround(beta) emitted.
      const double pbw = plat.route_bottleneck_bw(rr.k, rr.l);
      if (std::isfinite(pbw) && pbw > 0.0) {
        const double needed =
            static_cast<double>(units) / (static_cast<double>(period) * pbw);
        // At least 1 (any positive rate ships over a connection); the
        // comparison with `granted` stays in double so an absurd
        // `needed` cannot overflow the int cast.
        const double needed_conn = std::max(1.0, std::ceil(needed - 1e-9));
        const int granted = static_cast<int>(
            std::floor(alloc.beta(rr.k, rr.l) + 1e-9));
        connections = static_cast<double>(granted) < needed_conn
                          ? granted
                          : static_cast<int>(needed_conn);
        if (connections <= 0) continue;  // no whole connection: drop route
        units = std::min(units,
                         static_cast<std::int64_t>(std::floor(
                             connections * pbw * static_cast<double>(period))));
        if (units <= 0) continue;
      }
    }
    sched.compute.push_back({rr.k, rr.l, units});
    if (rr.k != rr.l) sched.transfers.push_back({rr.k, rr.l, units, connections});
  }
  return sched;
}

ValidationReport validate_schedule(const SteadyStateProblem& problem,
                                   const PeriodicSchedule& schedule) {
  ValidationReport report;
  auto fail = [&report](std::string msg) {
    report.ok = false;
    report.violations.push_back(std::move(msg));
  };
  const platform::Platform& plat = problem.plat();
  const int n = plat.num_clusters();
  const auto period = static_cast<double>(schedule.period);
  constexpr double kEps = 1e-6;

  if (schedule.period < 1) {
    fail("period must be >= 1");
    return report;
  }

  // (7b): per-period compute load.
  std::vector<double> load(n, 0.0);
  for (const ComputeTask& t : schedule.compute) {
    if (t.app < 0 || t.app >= n || t.on_cluster < 0 || t.on_cluster >= n) {
      fail("compute task with out-of-range cluster");
      continue;
    }
    if (t.units < 0) fail("negative compute units");
    load[t.on_cluster] += static_cast<double>(t.units);
  }
  for (int l = 0; l < n; ++l)
    if (load[l] > plat.cluster(l).speed * period * (1 + kEps))
      fail("(7b) period compute exceeds speed on cluster " + std::to_string(l));

  // (7c)/(7d)/(7e): transfers.
  std::vector<double> gateway(n, 0.0);
  std::vector<double> connections(plat.num_links(), 0.0);
  for (const Transfer& t : schedule.transfers) {
    if (t.from < 0 || t.from >= n || t.to < 0 || t.to >= n || t.from == t.to) {
      fail("transfer with bad endpoints");
      continue;
    }
    if (!plat.has_route(t.from, t.to)) {
      fail("transfer on missing route");
      continue;
    }
    gateway[t.from] += static_cast<double>(t.units);
    gateway[t.to] += static_cast<double>(t.units);
    const auto route = plat.route(t.from, t.to);
    for (platform::LinkId li : route) connections[li] += t.connections;
    if (!route.empty()) {
      const double cap = t.connections * plat.route_bottleneck_bw(t.from, t.to);
      if (static_cast<double>(t.units) > cap * period * (1 + kEps))
        fail("(7e) transfer exceeds its connections' bandwidth");
    }
  }
  for (int k = 0; k < n; ++k)
    if (gateway[k] > plat.cluster(k).gateway_bw * period * (1 + kEps))
      fail("(7c) period gateway traffic exceeded on cluster " + std::to_string(k));
  for (platform::LinkId li = 0; li < plat.num_links(); ++li)
    if (connections[li] > plat.link(li).max_connections + kEps)
      fail("(7d) connections exceeded on link " + std::to_string(li));

  return report;
}

}  // namespace dls::core
