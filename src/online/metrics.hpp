// Online metrics: per-application response/wait/slowdown statistics plus
// time-weighted platform utilization and fairness, aggregated with the
// support/stats accumulators.
//
// Slowdown uses the home cluster's solo service time load / s_k as its
// reference: the time the application would need computing purely
// locally with its whole cluster. Values below 1 mean the network won
// the application remote help; values above 1 measure queueing plus
// contention. Fairness is Jain's index over the active applications'
// payoff-weighted rates, averaged over time (each inter-event interval
// contributes with weight = its duration).
#pragma once

#include <span>
#include <vector>

#include "support/stats.hpp"

namespace dls::online {

/// Jain's fairness index (Σx)² / (n·Σx²) for non-negative shares; 1 is
/// perfectly even, 1/n maximally skewed. Defined as 1 for an empty or
/// all-zero span (nobody is being treated unequally).
[[nodiscard]] double jain_index(std::span<const double> xs);

/// Weighted streaming mean, used for the time-weighted series (weights
/// are interval durations).
class TimeWeighted {
public:
  void add(double value, double weight);
  [[nodiscard]] double mean() const;  ///< 0 when no weight accumulated
  [[nodiscard]] double total_weight() const { return weight_; }

private:
  double sum_ = 0.0;
  double weight_ = 0.0;
};

/// How an application's lifecycle ended. Everything but Completed only
/// occurs under platform dynamics (src/dynamics/ cluster churn) or an
/// explicit client request against the serving daemon (src/serve/).
enum class AppOutcome : unsigned char {
  Pending,       ///< still in flight (never in a final report)
  Completed,     ///< load fully drained
  AbortedChurn,  ///< active or queued when its home cluster churned out
  RejectedChurn, ///< arrived while its home cluster was churned out
  Cancelled,     ///< withdrawn by a client `depart` request (serve only)
};

/// Lifecycle record of one application, filled in by the engine as the
/// application moves arrive -> admit -> depart.
struct AppRecord {
  int id = -1;
  int cluster = -1;
  double payoff = 0.0;
  double load = 0.0;
  double arrival = 0.0;
  double admit = 0.0;    ///< left the queue, became the cluster's active app
  double depart = 0.0;   ///< load fully drained (abort time for AbortedChurn)
  double slowdown = 0.0; ///< response / (load / home cluster speed)
  AppOutcome outcome = AppOutcome::Pending;

  /// Meaningful for outcome == Completed only.
  [[nodiscard]] double response() const { return depart - arrival; }
  [[nodiscard]] double wait() const { return admit - arrival; }
};

/// Aggregated online metrics. The engine calls record_interval once per
/// inter-event segment (with the rates that held over it) and
/// record_completion once per departing application.
struct OnlineMetrics {
  Accumulator response;   ///< per-app: depart - arrival
  Accumulator wait;       ///< per-app: admit - arrival (queueing delay)
  Accumulator slowdown;   ///< per-app: response / solo service time
  TimeWeighted utilization;  ///< Σ active rates / Σ cluster speeds
  TimeWeighted fairness;     ///< Jain over active payoff*rate
  TimeWeighted active_apps;  ///< number of running applications

  void record_completion(const AppRecord& app);
  /// `weighted_rates` holds payoff_k * rate_k for each currently active
  /// application; `work_rate` is the plain rate sum.
  void record_interval(double duration, double work_rate, double total_speed,
                       std::span<const double> weighted_rates);
};

}  // namespace dls::online
