// Online workloads: timed application arrivals for the online engine.
//
// The paper schedules a fixed application mix in steady state; the online
// subsystem serves a *stream* of applications instead. An arrival is a
// finite amount of divisible load that shows up at a home cluster at a
// point in time, runs at whatever steady-state rate the adaptive
// rescheduler grants it, and departs once the load drains (engine.hpp
// owns that lifecycle).
//
// Three arrival models are provided:
//   * Poisson — i.i.d. exponential inter-arrival gaps at a fixed rate,
//     the classical open-system workload;
//   * bursty ON/OFF — alternating exponential ON windows (arrivals at a
//     high rate) and OFF windows (silence), modelling diurnal or
//     campaign-driven traffic;
//   * trace-driven — a `.workload` text file, line-oriented in the
//     spirit of platform/serialization:
//
//       dls-workload 1
//       app <arrival_time> <cluster> <payoff> <load> <name?>
//
//     Times must be non-decreasing; names may not contain whitespace and
//     are written as "-" when absent.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace dls::online {

/// One application arrival: `load` units of divisible work appearing at
/// cluster `cluster` at time `time`, weighted by `payoff` while active.
struct AppArrival {
  double time = 0.0;
  int cluster = 0;
  double payoff = 1.0;
  double load = 0.0;
  std::string name;
};

struct Workload {
  std::vector<AppArrival> arrivals;  ///< sorted by non-decreasing time

  [[nodiscard]] int size() const { return static_cast<int>(arrivals.size()); }
  /// Throws dls::Error unless times are finite, non-negative and sorted,
  /// clusters lie in [0, num_clusters), and payoffs/loads are positive.
  void validate(int num_clusters) const;
};

/// Shared shape of the sampled per-application attributes: the home
/// cluster is uniform over the platform, load is uniform in
/// mean_load*(1 ± load_spread) and payoff uniform in 1 ± payoff_spread
/// (the same spread convention as exp::CaseConfig).
struct PoissonParams {
  int count = 1000;            ///< number of arrivals to draw
  double rate = 1.0;           ///< mean arrivals per time unit
  double mean_load = 500.0;
  double load_spread = 0.5;
  double payoff_spread = 0.5;
};

/// Poisson arrival process; deterministic given (params, rng state).
[[nodiscard]] Workload poisson_workload(const PoissonParams& params,
                                        int num_clusters, Rng& rng);

/// Closed batch: `params.count` applications all arriving at t = 0
/// (params.rate is ignored). The campaign subsystem's `workload batch`
/// kind; same sampling and validation as the open-system models.
[[nodiscard]] Workload batch_workload(const PoissonParams& params,
                                      int num_clusters, Rng& rng);

/// Bursty ON/OFF process: exponential ON windows of mean `mean_on` during
/// which arrivals are Poisson at `burst_rate`, separated by exponential
/// OFF windows of mean `mean_off` with no arrivals.
struct OnOffParams {
  int count = 1000;
  double burst_rate = 4.0;   ///< arrivals per time unit inside a burst
  double mean_on = 25.0;     ///< mean ON-window duration
  double mean_off = 75.0;    ///< mean OFF-window duration
  double mean_load = 500.0;
  double load_spread = 0.5;
  double payoff_spread = 0.5;
};

[[nodiscard]] Workload onoff_workload(const OnOffParams& params,
                                      int num_clusters, Rng& rng);

/// Writes the `.workload` format shown above (17 significant digits, so
/// replays are bit-exact).
void write_workload(const Workload& workload, std::ostream& os);

/// Reads a `.workload` stream; throws dls::Error on malformed input.
[[nodiscard]] Workload read_workload(std::istream& is);

[[nodiscard]] std::string to_text(const Workload& workload);
[[nodiscard]] Workload from_text(const std::string& text);

}  // namespace dls::online
