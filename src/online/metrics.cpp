#include "online/metrics.hpp"

#include "support/error.hpp"

namespace dls::online {

double jain_index(std::span<const double> xs) {
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

void TimeWeighted::add(double value, double weight) {
  DLS_ASSERT(weight >= 0.0);
  sum_ += value * weight;
  weight_ += weight;
}

double TimeWeighted::mean() const { return weight_ > 0.0 ? sum_ / weight_ : 0.0; }

void OnlineMetrics::record_completion(const AppRecord& app) {
  response.add(app.response());
  wait.add(app.wait());
  slowdown.add(app.slowdown);
}

void OnlineMetrics::record_interval(double duration, double work_rate,
                                    double total_speed,
                                    std::span<const double> weighted_rates) {
  if (duration <= 0.0) return;
  utilization.add(total_speed > 0.0 ? work_rate / total_speed : 0.0, duration);
  fairness.add(jain_index(weighted_rates), duration);
  active_apps.add(static_cast<double>(weighted_rates.size()), duration);
}

}  // namespace dls::online
