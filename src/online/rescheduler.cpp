#include "online/rescheduler.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "support/timer.hpp"

namespace dls::online {

namespace {

int support_change(const std::vector<double>& a, const std::vector<double>& b) {
  int changed = 0;
  for (std::size_t k = 0; k < a.size(); ++k)
    changed += (a[k] > 0.0) != (b[k] > 0.0);
  return changed;
}

// Rescheduler-level series: solves by (mode, start kind), the slot
// universe's churn (seat/unseat patches, geometric growth), and queue
// depth. The lp layer separately counts the underlying simplex work.
struct ReschedObs {
  obs::Counter single_cold, single_warm, single_repaired;
  obs::Counter multi_cold, multi_warm, multi_repaired;
  obs::Counter seats, unseats, slot_grow;
  obs::Gauge slots, active_loads;
  ReschedObs() {
    auto& reg = obs::registry();
    const std::string solves = "dls_resched_solves_total";
    const std::string help = "Rescheduler solves by mode and start kind";
    single_cold = reg.counter(solves, help, "mode=\"single\",start=\"cold\"");
    single_warm = reg.counter(solves, help, "mode=\"single\",start=\"warm\"");
    single_repaired =
        reg.counter(solves, help, "mode=\"single\",start=\"repaired\"");
    multi_cold = reg.counter(solves, help, "mode=\"multi\",start=\"cold\"");
    multi_warm = reg.counter(solves, help, "mode=\"multi\",start=\"warm\"");
    multi_repaired =
        reg.counter(solves, help, "mode=\"multi\",start=\"repaired\"");
    seats = reg.counter("dls_resched_seats_total",
                        "Loads seated onto shared-LP slots");
    unseats = reg.counter("dls_resched_unseats_total",
                          "Slots released by departed loads");
    slot_grow = reg.counter("dls_resched_slot_grow_total",
                            "Slot-universe rebuilds (geometric growth)");
    slots = reg.gauge("dls_resched_slots", "Current shared-LP slot count");
    active_loads =
        reg.gauge("dls_resched_active_loads", "Loads in the last reschedule");
  }
};

ReschedObs& resched_obs() {
  static ReschedObs handles;
  return handles;
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::Greedy: return "greedy";
    case Method::Lpr: return "lpr";
    case Method::Lprg: return "lprg";
    case Method::LpBound: return "lp";
  }
  return "?";
}

AdaptiveRescheduler::AdaptiveRescheduler(const platform::Platform& plat,
                                         ReschedulerOptions options)
    : plat_(&plat), options_(options) {
  require(options_.max_support_change >= 0,
          "AdaptiveRescheduler: max_support_change cannot be negative");
  // Per-event solves never read shadow prices; skip their extraction.
  options_.lp.compute_duals = false;
  // Successive models here are always small perturbations of one
  // another, the setting basis repair is designed for. With a static
  // platform the matrix fingerprint always matches and the flag is
  // inert; after a capacity event it turns the forced cold solve into a
  // statuses-only repair.
  options_.lp.warm_repair = true;
}

void AdaptiveRescheduler::reset() {
  warm_state_.invalidate();
  prev_allocation_.reset();
  prev_payoffs_.clear();
}

void AdaptiveRescheduler::platform_capacity_changed() {
  // The route table snapshot caches per-route pbw and the reduced model
  // caches capacities in bounds/rhs/coefficients: both are stale.
  base_problem_.reset();
  reduced_cache_.reset();
  // Keep warm_state_ (capsule reuse or repair) and prev_payoffs_ (the
  // support-change rule is about payoffs, which did not move). The
  // greedy seed allocation may violate the new capacities; drop it.
  prev_allocation_.reset();
}

void AdaptiveRescheduler::platform_topology_changed() {
  base_problem_.reset();
  reduced_cache_.reset();
  reset();
}

Reschedule AdaptiveRescheduler::reschedule(const std::vector<double>& payoffs) {
  if (!base_problem_) {
    base_problem_.emplace(*plat_, payoffs, options_.objective);
  }
  const core::SteadyStateProblem problem = base_problem_->with_payoffs(payoffs);

  // Invalidation rule 1; rules 2 (model shape) and 3 (primal feasibility)
  // live inside the simplex, which rejects a basis that fails them.
  const bool have_prev = !prev_payoffs_.empty();
  const bool small_change =
      have_prev &&
      support_change(prev_payoffs_, payoffs) <= options_.max_support_change;
  const bool try_warm = options_.warm != WarmPolicy::Never &&
                        (options_.warm == WarmPolicy::Always ? have_prev
                                                             : small_change);

  WallTimer timer;
  Reschedule out{core::Allocation(problem.num_clusters())};
  if (options_.method == Method::Greedy) {
    // Auto keeps greedy cold: it solves no LP, so there is no phase-1
    // work to skip, and the seeded variant changes the objective.
    const bool seed = options_.warm == WarmPolicy::Always && try_warm &&
                      prev_allocation_.has_value();
    core::HeuristicResult r =
        seed ? core::run_greedy_warm(problem, *prev_allocation_, options_.greedy)
             : core::run_greedy(problem, options_.greedy);
    require(r.status == lp::SolveStatus::Optimal, "reschedule: greedy failed");
    out.allocation = std::move(r.allocation);
    out.objective = r.objective;
    out.warm = seed;
  } else {
    // The solve refreshes the capsule either way; invalidating first is
    // how rule 1 forces a cold start without losing the refresh.
    if (!try_warm) warm_state_.invalidate();
    core::LpWarmStart warm;
    warm.state = &warm_state_;
    warm.arena = &arena_;
    if (options_.objective == core::Objective::Sum) {
      if (!reduced_cache_) {
        reduced_cache_ = problem.build_reduced();
      } else {
        problem.update_reduced_payoffs(*reduced_cache_);
      }
      warm.reduced = &*reduced_cache_;
    }
    if (options_.method == Method::LpBound) {
      core::LpBoundResult r = core::lp_upper_bound(problem, options_.lp, &warm);
      require(r.status == lp::SolveStatus::Optimal, "reschedule: LP bound failed");
      out.allocation = std::move(r.allocation);
      out.objective = r.objective;
      out.lp_iterations = r.iterations;
    } else {
      core::HeuristicResult r =
          options_.method == Method::Lpr
              ? core::run_lpr(problem, options_.lp, &warm)
              : core::run_lprg(problem, options_.lp, options_.greedy, &warm);
      require(r.status == lp::SolveStatus::Optimal,
              std::string("reschedule: method ") + to_string(options_.method) +
                  " failed");
      out.allocation = std::move(r.allocation);
      out.objective = r.objective;
      out.lp_iterations = r.lp_iterations;
    }
    out.warm = warm.used;
    out.repaired = warm.kind == lp::WarmKind::Basis;
  }
  out.seconds = timer.seconds();

  if (out.warm) {
    ++stats_.warm_solves;
    stats_.repaired_solves += out.repaired;
    stats_.warm_seconds += out.seconds;
    stats_.warm_iterations += out.lp_iterations;
    (out.repaired ? resched_obs().single_repaired : resched_obs().single_warm)
        .inc();
  } else {
    ++stats_.cold_solves;
    stats_.cold_seconds += out.seconds;
    stats_.cold_iterations += out.lp_iterations;
    resched_obs().single_cold.inc();
  }
  prev_payoffs_ = payoffs;
  prev_allocation_ = out.allocation;
  return out;
}

MultiLoadRescheduler::MultiLoadRescheduler(const platform::Platform& plat,
                                           MultiReschedulerOptions options)
    : plat_(&plat), options_(options) {
  // Same solver posture as the single-load rescheduler: per-event solves
  // never read duals, and successive models are small perturbations of
  // one another, so basis repair is always worth attempting.
  options_.solve.lp.compute_duals = false;
  options_.solve.lp.warm_repair = true;
}

void MultiLoadRescheduler::reset() {
  warm_state_.invalidate();
  slot_of_.clear();
  std::fill(slot_app_.begin(), slot_app_.end(), -1);
}

void MultiLoadRescheduler::platform_capacity_changed() {
  // Cached problems bake per-route pbw, and the reduced model bakes
  // capacities into bounds/rhs/coefficients: both are stale. The capsule
  // survives for a whole (rhs-only) or repaired (re-priced) warm start.
  problem_.reset();
  maxmin_problem_.reset();
  reduced_cache_.reset();
}

void MultiLoadRescheduler::platform_topology_changed() {
  problem_.reset();
  maxmin_problem_.reset();
  reduced_cache_.reset();
  slots_per_cluster_.clear();
  slot_base_.clear();
  slot_app_.clear();
  total_slots_ = 0;
  reset();
}

void MultiLoadRescheduler::rebuild_slots(const std::vector<int>& needed) {
  const int n = plat_->num_clusters();
  if (static_cast<int>(slots_per_cluster_.size()) != n)
    slots_per_cluster_.assign(n, 1);
  // Geometric growth: doubling amortizes rebuilds to O(log max-concurrency)
  // cold solves per cluster over a whole run.
  for (int c = 0; c < n; ++c)
    if (needed[c] > slots_per_cluster_[c])
      slots_per_cluster_[c] = std::max(needed[c], 2 * slots_per_cluster_[c]);
  slot_base_.assign(n, 0);
  total_slots_ = 0;
  for (int c = 0; c < n; ++c) {
    slot_base_[c] = total_slots_;
    total_slots_ += slots_per_cluster_[c];
  }
  slot_app_.assign(total_slots_, -1);
  slot_of_.clear();
  // The model reshapes: a capsule saved against the old slot universe
  // cannot fit and rejecting it eagerly keeps the stats honest.
  warm_state_.invalidate();
  problem_.reset();
  reduced_cache_.reset();
  resched_obs().slot_grow.inc();
  resched_obs().slots.set(static_cast<double>(total_slots_));
}

MultiReschedule MultiLoadRescheduler::solve_shared(
    const std::vector<ActiveLoad>& loads) {
  const int n = plat_->num_clusters();
  std::vector<int> needed(n, 0);
  for (const ActiveLoad& load : loads) ++needed[load.cluster];

  bool grown = static_cast<int>(slots_per_cluster_.size()) != n;
  for (int c = 0; !grown && c < n; ++c) grown = needed[c] > slots_per_cluster_[c];
  if (grown) rebuild_slots(needed);

  // Release slots of departed loads, then seat new arrivals on the
  // lowest idle slot of their cluster (deterministic in call order).
  std::vector<char> present(slot_app_.size(), 0);
  for (const ActiveLoad& load : loads) {
    auto it = slot_of_.find(load.id);
    if (it != slot_of_.end()) present[it->second] = 1;
  }
  for (int s = 0; s < total_slots_; ++s) {
    if (slot_app_[s] >= 0 && !present[s]) {
      slot_of_.erase(slot_app_[s]);
      slot_app_[s] = -1;
      resched_obs().unseats.inc();
    }
  }
  for (const ActiveLoad& load : loads) {
    if (slot_of_.count(load.id)) continue;
    resched_obs().seats.inc();
    int slot = -1;
    for (int s = slot_base_[load.cluster];
         s < slot_base_[load.cluster] + slots_per_cluster_[load.cluster]; ++s) {
      if (slot_app_[s] < 0) {
        slot = s;
        break;
      }
    }
    DLS_ASSERT(slot >= 0);
    slot_app_[slot] = load.id;
    slot_of_[load.id] = slot;
  }

  std::vector<double> weights(total_slots_, 0.0);
  for (const ActiveLoad& load : loads) weights[slot_of_[load.id]] = load.weight;

  if (!problem_) {
    core::LoadSet slots;
    slots.loads.reserve(total_slots_);
    for (int c = 0; c < n; ++c)
      for (int s = 0; s < slots_per_cluster_[c]; ++s) {
        core::LoadSpec spec;
        spec.source = c;
        spec.weight = weights[slot_base_[c] + s];
        slots.loads.push_back(std::move(spec));
      }
    problem_.emplace(*plat_, std::move(slots), core::Objective::Sum);
  } else {
    problem_ = problem_->with_load_weights(weights);
  }
  if (!reduced_cache_) {
    reduced_cache_ = problem_->build_reduced();
  } else {
    problem_->update_reduced_payoffs(*reduced_cache_);
  }

  if (options_.warm == WarmPolicy::Never) warm_state_.invalidate();
  core::LpWarmStart warm;
  warm.state = &warm_state_;
  warm.arena = &arena_;
  warm.reduced = &*reduced_cache_;

  const core::MultiLoadSolution sol =
      core::solve_loads(*problem_, options_.solve, &warm);
  require(sol.status == lp::SolveStatus::Optimal,
          "MultiLoadRescheduler: shared LP solve failed");

  MultiReschedule out;
  out.rate.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i)
    out.rate[i] = sol.throughput[slot_of_[loads[i].id]];
  out.objective = sol.objective;
  out.warm = sol.warm;
  out.repaired = sol.repaired;
  out.lp_iterations = sol.lp_iterations;
  out.lp_solves = sol.lp_solves;
  return out;
}

MultiReschedule MultiLoadRescheduler::solve_maxmin(
    const std::vector<ActiveLoad>& loads) {
  core::LoadSet set;
  set.loads.reserve(loads.size());
  for (const ActiveLoad& load : loads) {
    core::LoadSpec spec;
    spec.source = load.cluster;
    spec.weight = load.weight;
    set.loads.push_back(std::move(spec));
  }
  maxmin_problem_ = maxmin_problem_
                        ? maxmin_problem_->with_loads(std::move(set))
                        : core::SteadyStateProblem(*plat_, std::move(set),
                                                   core::Objective::MaxMin);

  if (options_.warm == WarmPolicy::Never) warm_state_.invalidate();
  core::LpWarmStart warm;
  warm.state = &warm_state_;
  warm.arena = &arena_;

  const core::MultiLoadSolution sol =
      core::solve_loads(*maxmin_problem_, options_.solve, &warm);
  require(sol.status == lp::SolveStatus::Optimal,
          "MultiLoadRescheduler: max-min solve failed");

  MultiReschedule out;
  out.rate = sol.throughput;
  out.objective = sol.objective;
  out.warm = sol.warm;
  out.repaired = sol.repaired;
  out.lp_iterations = sol.lp_iterations;
  out.lp_solves = sol.lp_solves;
  return out;
}

MultiReschedule MultiLoadRescheduler::reschedule(
    const std::vector<ActiveLoad>& loads) {
  require(!loads.empty(), "MultiLoadRescheduler: no active loads");
  const int n = plat_->num_clusters();
  std::vector<int> ids;
  ids.reserve(loads.size());
  for (const ActiveLoad& load : loads) {
    require(load.cluster >= 0 && load.cluster < n,
            "MultiLoadRescheduler: load cluster out of range");
    require(load.weight > 0.0, "MultiLoadRescheduler: load weight must be > 0");
    ids.push_back(load.id);
  }
  std::sort(ids.begin(), ids.end());
  require(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
          "MultiLoadRescheduler: duplicate load id");

  WallTimer timer;
  MultiReschedule out =
      options_.solve.objective == core::MultiObjective::MaxMin
          ? solve_maxmin(loads)
          : solve_shared(loads);
  out.seconds = timer.seconds();

  if (out.warm) {
    ++stats_.warm_solves;
    stats_.repaired_solves += out.repaired;
    stats_.warm_seconds += out.seconds;
    stats_.warm_iterations += out.lp_iterations;
    (out.repaired ? resched_obs().multi_repaired : resched_obs().multi_warm)
        .inc();
  } else {
    ++stats_.cold_solves;
    stats_.cold_seconds += out.seconds;
    stats_.cold_iterations += out.lp_iterations;
    resched_obs().multi_cold.inc();
  }
  resched_obs().active_loads.set(static_cast<double>(loads.size()));
  return out;
}

}  // namespace dls::online
