#include "online/rescheduler.hpp"

#include <utility>

#include "support/timer.hpp"

namespace dls::online {

namespace {

int support_change(const std::vector<double>& a, const std::vector<double>& b) {
  int changed = 0;
  for (std::size_t k = 0; k < a.size(); ++k)
    changed += (a[k] > 0.0) != (b[k] > 0.0);
  return changed;
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::Greedy: return "greedy";
    case Method::Lpr: return "lpr";
    case Method::Lprg: return "lprg";
    case Method::LpBound: return "lp";
  }
  return "?";
}

AdaptiveRescheduler::AdaptiveRescheduler(const platform::Platform& plat,
                                         ReschedulerOptions options)
    : plat_(&plat), options_(options) {
  require(options_.max_support_change >= 0,
          "AdaptiveRescheduler: max_support_change cannot be negative");
  // Per-event solves never read shadow prices; skip their extraction.
  options_.lp.compute_duals = false;
  // Successive models here are always small perturbations of one
  // another, the setting basis repair is designed for. With a static
  // platform the matrix fingerprint always matches and the flag is
  // inert; after a capacity event it turns the forced cold solve into a
  // statuses-only repair.
  options_.lp.warm_repair = true;
}

void AdaptiveRescheduler::reset() {
  warm_state_.invalidate();
  prev_allocation_.reset();
  prev_payoffs_.clear();
}

void AdaptiveRescheduler::platform_capacity_changed() {
  // The route table snapshot caches per-route pbw and the reduced model
  // caches capacities in bounds/rhs/coefficients: both are stale.
  base_problem_.reset();
  reduced_cache_.reset();
  // Keep warm_state_ (capsule reuse or repair) and prev_payoffs_ (the
  // support-change rule is about payoffs, which did not move). The
  // greedy seed allocation may violate the new capacities; drop it.
  prev_allocation_.reset();
}

void AdaptiveRescheduler::platform_topology_changed() {
  base_problem_.reset();
  reduced_cache_.reset();
  reset();
}

Reschedule AdaptiveRescheduler::reschedule(const std::vector<double>& payoffs) {
  if (!base_problem_) {
    base_problem_.emplace(*plat_, payoffs, options_.objective);
  }
  const core::SteadyStateProblem problem = base_problem_->with_payoffs(payoffs);

  // Invalidation rule 1; rules 2 (model shape) and 3 (primal feasibility)
  // live inside the simplex, which rejects a basis that fails them.
  const bool have_prev = !prev_payoffs_.empty();
  const bool small_change =
      have_prev &&
      support_change(prev_payoffs_, payoffs) <= options_.max_support_change;
  const bool try_warm = options_.warm != WarmPolicy::Never &&
                        (options_.warm == WarmPolicy::Always ? have_prev
                                                             : small_change);

  WallTimer timer;
  Reschedule out{core::Allocation(problem.num_clusters())};
  if (options_.method == Method::Greedy) {
    // Auto keeps greedy cold: it solves no LP, so there is no phase-1
    // work to skip, and the seeded variant changes the objective.
    const bool seed = options_.warm == WarmPolicy::Always && try_warm &&
                      prev_allocation_.has_value();
    core::HeuristicResult r =
        seed ? core::run_greedy_warm(problem, *prev_allocation_, options_.greedy)
             : core::run_greedy(problem, options_.greedy);
    require(r.status == lp::SolveStatus::Optimal, "reschedule: greedy failed");
    out.allocation = std::move(r.allocation);
    out.objective = r.objective;
    out.warm = seed;
  } else {
    // The solve refreshes the capsule either way; invalidating first is
    // how rule 1 forces a cold start without losing the refresh.
    if (!try_warm) warm_state_.invalidate();
    core::LpWarmStart warm;
    warm.state = &warm_state_;
    warm.arena = &arena_;
    if (options_.objective == core::Objective::Sum) {
      if (!reduced_cache_) {
        reduced_cache_ = problem.build_reduced();
      } else {
        problem.update_reduced_payoffs(*reduced_cache_);
      }
      warm.reduced = &*reduced_cache_;
    }
    if (options_.method == Method::LpBound) {
      core::LpBoundResult r = core::lp_upper_bound(problem, options_.lp, &warm);
      require(r.status == lp::SolveStatus::Optimal, "reschedule: LP bound failed");
      out.allocation = std::move(r.allocation);
      out.objective = r.objective;
      out.lp_iterations = r.iterations;
    } else {
      core::HeuristicResult r =
          options_.method == Method::Lpr
              ? core::run_lpr(problem, options_.lp, &warm)
              : core::run_lprg(problem, options_.lp, options_.greedy, &warm);
      require(r.status == lp::SolveStatus::Optimal,
              std::string("reschedule: method ") + to_string(options_.method) +
                  " failed");
      out.allocation = std::move(r.allocation);
      out.objective = r.objective;
      out.lp_iterations = r.lp_iterations;
    }
    out.warm = warm.used;
    out.repaired = warm.kind == lp::WarmKind::Basis;
  }
  out.seconds = timer.seconds();

  if (out.warm) {
    ++stats_.warm_solves;
    stats_.repaired_solves += out.repaired;
    stats_.warm_seconds += out.seconds;
    stats_.warm_iterations += out.lp_iterations;
  } else {
    ++stats_.cold_solves;
    stats_.cold_seconds += out.seconds;
    stats_.cold_iterations += out.lp_iterations;
  }
  prev_payoffs_ = payoffs;
  prev_allocation_ = out.allocation;
  return out;
}

}  // namespace dls::online
