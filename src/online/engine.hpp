// The online workload engine: application lifecycle over a platform.
//
// Applications arrive (workload.hpp), are admitted — each cluster hosts
// at most one active application; later arrivals for a busy cluster wait
// in its FIFO queue — run at the steady-state rate the adaptive
// rescheduler (rescheduler.hpp) grants their home cluster, and depart
// when their total load has drained. Every admission or departure
// changes the payoff vector and triggers a reschedule; an arrival that
// merely joins a queue does not.
//
// Event model: the engine advances from event to event (next arrival vs
// earliest projected drain). Unlike sim::SimEngine's lazily-invalidated
// calendar — where one completion perturbs only its connected component
// — a reschedule here changes *every* active application's rate at once,
// so a heap of projected finish times would be fully stale after each
// event. The engine therefore recomputes the earliest departure by
// scanning the <= K active applications, which is also O(K) but with no
// stale entries to skip.
//
// Progress: as long as any application is active, the solved allocation
// gives at least one of them a positive rate (granting an application
// its idle local speed always improves both objectives, so an all-zero
// optimum is impossible on platforms with positive cluster speeds), and
// each event admits or departs at least one application — the loop
// terminates after exactly 2 * |workload| lifecycle transitions. An
// individual application can still be starved for a while under
// Objective::Sum; it drains once enough competitors leave.
//
// Rate models: Fluid trusts the allocation (rate = total_alpha of the
// home cluster, the paper's steady-state reading). Simulated additionally
// reconstructs the periodic schedule after each reschedule and plays a
// short segment on the flow-level simulator (sim::simulate_schedule)
// under a chosen sharing policy, using the *achieved* throughputs as
// drain rates — bandwidth-sharing overruns then stretch response times
// instead of being invisible.
#pragma once

#include <vector>

#include "online/metrics.hpp"
#include "online/rescheduler.hpp"
#include "online/workload.hpp"
#include "sim/simulator.hpp"

namespace dls::online {

enum class RateModel {
  Fluid,      ///< allocation rates verbatim
  Simulated,  ///< achieved throughput of a simulated schedule segment
};

struct OnlineOptions {
  ReschedulerOptions sched;
  RateModel rate_model = RateModel::Fluid;
  /// Sharing policy, segment length and per-connection window (used by
  /// SharingPolicy::BoundedWindow) for RateModel::Simulated.
  sim::SharingPolicy sim_policy = sim::SharingPolicy::MaxMin;
  int sim_periods = 2;
  double sim_window_units = 50.0;
  /// Remaining load at or below this is treated as drained (absolute;
  /// loads are O(100) so this absorbs accumulated drain rounding).
  double load_eps = 1e-6;
};

struct OnlineReport {
  int arrivals = 0;
  int completed = 0;
  int reschedules = 0;       ///< solver invocations (support changed)
  int queued_arrivals = 0;   ///< arrivals that had to wait in a queue
  int warm_solves = 0;
  int cold_solves = 0;
  double warm_seconds = 0.0;
  double cold_seconds = 0.0;
  double makespan = 0.0;     ///< last departure time
  double total_work = 0.0;   ///< load units drained (== sum of loads)
  int peak_active = 0;
  int peak_queued = 0;       ///< largest single-cluster queue length
  OnlineMetrics metrics;
  /// One record per application, in arrival order, all completed.
  std::vector<AppRecord> apps;
};

class OnlineEngine {
public:
  OnlineEngine(const platform::Platform& plat, OnlineOptions options);

  /// Replays the workload to completion. Deterministic: the report is a
  /// pure function of (platform, workload, options). Throws dls::Error
  /// on invalid workloads or solver failure.
  [[nodiscard]] OnlineReport run(const Workload& workload) const;

private:
  const platform::Platform* plat_;
  OnlineOptions options_;
};

}  // namespace dls::online
