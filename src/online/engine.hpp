// The online workload engine: application lifecycle over a platform.
//
// Applications arrive (workload.hpp), are admitted — each cluster hosts
// at most one active application; later arrivals for a busy cluster wait
// in its FIFO queue — run at the steady-state rate the adaptive
// rescheduler (rescheduler.hpp) grants their home cluster, and depart
// when their total load has drained. Every admission or departure
// changes the payoff vector and triggers a reschedule; an arrival that
// merely joins a queue does not.
//
// Event model: the engine advances from event to event (next arrival vs
// earliest projected drain). Unlike sim::SimEngine's lazily-invalidated
// calendar — where one completion perturbs only its connected component
// — a reschedule here changes *every* active application's rate at once,
// so a heap of projected finish times would be fully stale after each
// event. The engine therefore recomputes the earliest departure by
// scanning the <= K active applications, which is also O(K) but with no
// stale entries to skip.
//
// Progress: as long as any application is active, the solved allocation
// gives at least one of them a positive rate (granting an application
// its idle local speed always improves both objectives, so an all-zero
// optimum is impossible on platforms with positive cluster speeds), and
// each event admits or departs at least one application — the loop
// terminates after exactly 2 * |workload| lifecycle transitions. An
// individual application can still be starved for a while under
// Objective::Sum; it drains once enough competitors leave.
//
// Rate models: Fluid trusts the allocation (rate = total_alpha of the
// home cluster, the paper's steady-state reading). Simulated additionally
// reconstructs the periodic schedule after each reschedule and plays a
// short segment on the flow-level simulator (sim::simulate_schedule)
// under a chosen sharing policy, using the *achieved* throughputs as
// drain rates — bandwidth-sharing overruns then stretch response times
// instead of being invisible.
// Platform dynamics (run(workload, trace)): the event loop additionally
// merges a time-sorted stream of platform events (src/dynamics/). Each
// due event mutates a private DynamicPlatform copy through the
// incremental cache-updating mutators; the rescheduler is notified with
// the folded change scope (capacity events keep the warm capsule for a
// whole or repaired warm start, topology events force a cold solve) and
// every active application is re-rated. Cluster churn is destructive:
// a leaving cluster aborts its active and queued applications and
// rejects arrivals until it rejoins (so every replay terminates). An
// empty trace takes the exact same code path as run(workload) and
// reproduces its report bit for bit.
#pragma once

#include <vector>

#include "dynamics/events.hpp"
#include "online/metrics.hpp"
#include "online/rescheduler.hpp"
#include "online/workload.hpp"
#include "sim/simulator.hpp"

namespace dls::online {

enum class RateModel {
  Fluid,      ///< allocation rates verbatim
  Simulated,  ///< achieved throughput of a simulated schedule segment
};

struct OnlineOptions {
  ReschedulerOptions sched;
  RateModel rate_model = RateModel::Fluid;
  /// Sharing policy, segment length and per-connection window (used by
  /// SharingPolicy::BoundedWindow) for RateModel::Simulated.
  sim::SharingPolicy sim_policy = sim::SharingPolicy::MaxMin;
  int sim_periods = 2;
  double sim_window_units = 50.0;
  /// Remaining load at or below this is treated as drained (absolute;
  /// loads are O(100) so this absorbs accumulated drain rounding).
  double load_eps = 1e-6;
  /// Multi-load mode (ISSUE 8): every arrival is admitted immediately as
  /// a load in ONE shared LP (MultiLoadRescheduler) — clusters host any
  /// number of concurrent applications and no FIFO queues form
  /// (queued_arrivals/peak_queued stay 0). Arrival payoffs become the
  /// loads' objective weights and must be positive. Requires
  /// RateModel::Fluid; `sched` is ignored in favour of `multi`.
  bool multi_load = false;
  MultiReschedulerOptions multi;
};

struct OnlineReport {
  int arrivals = 0;
  int completed = 0;
  int aborted = 0;           ///< killed by their home cluster churning out
  int rejected = 0;          ///< arrived while their home cluster was out
  int reschedules = 0;       ///< solver invocations (support changed)
  int queued_arrivals = 0;   ///< arrivals that had to wait in a queue
  int platform_events = 0;   ///< dynamics events applied during the replay
  int warm_solves = 0;
  int cold_solves = 0;
  /// Warm solves that went through the basis-repair path (capacity
  /// events re-priced the model under the capsule); subset of warm.
  int repaired_solves = 0;
  double warm_seconds = 0.0;
  double cold_seconds = 0.0;
  double makespan = 0.0;     ///< last departure (completion) time
  double total_work = 0.0;   ///< load units drained (aborts drain partially)
  int peak_active = 0;
  int peak_queued = 0;       ///< largest single-cluster queue length
  OnlineMetrics metrics;
  /// One record per application, in arrival order; check outcome —
  /// dynamics replays may abort or reject applications.
  std::vector<AppRecord> apps;
};

class OnlineEngine {
public:
  OnlineEngine(const platform::Platform& plat, OnlineOptions options);

  /// Replays the workload to completion. Deterministic: the report is a
  /// pure function of (platform, workload, options). Throws dls::Error
  /// on invalid workloads or solver failure.
  [[nodiscard]] OnlineReport run(const Workload& workload) const;

  /// Replays the workload against a stream of platform events (see the
  /// header comment). Deterministic in (platform, workload, trace,
  /// options); an empty trace reproduces run(workload) bit for bit.
  [[nodiscard]] OnlineReport run(const Workload& workload,
                                 const dynamics::EventTrace& trace) const;

private:
  [[nodiscard]] OnlineReport run_multi(const Workload& workload,
                                       const dynamics::EventTrace& trace) const;

  const platform::Platform* plat_;
  OnlineOptions options_;
};

}  // namespace dls::online
