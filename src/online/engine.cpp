#include "online/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "core/schedule.hpp"
#include "dynamics/dynamic_platform.hpp"

namespace dls::online {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

OnlineEngine::OnlineEngine(const platform::Platform& plat, OnlineOptions options)
    : plat_(&plat), options_(options) {
  require(plat.num_clusters() >= 1, "OnlineEngine: platform has no clusters");
  require(options_.sim_periods >= 1, "OnlineEngine: sim_periods must be >= 1");
  require(options_.load_eps > 0.0, "OnlineEngine: load_eps must be positive");
}

OnlineReport OnlineEngine::run(const Workload& workload) const {
  return run(workload, dynamics::EventTrace{});
}

OnlineReport OnlineEngine::run(const Workload& workload,
                               const dynamics::EventTrace& trace) const {
  if (options_.multi_load) return run_multi(workload, trace);
  const int n = plat_->num_clusters();
  workload.validate(n);
  trace.validate(*plat_);
  for (const AppArrival& a : workload.arrivals)
    require(a.load > options_.load_eps,
            "OnlineEngine: application loads must exceed load_eps");

  OnlineReport report;
  report.arrivals = workload.size();
  report.apps.reserve(workload.arrivals.size());
  for (std::size_t i = 0; i < workload.arrivals.size(); ++i) {
    const AppArrival& a = workload.arrivals[i];
    AppRecord rec;
    rec.id = static_cast<int>(i);
    rec.cluster = a.cluster;
    rec.payoff = a.payoff;
    rec.load = a.load;
    rec.arrival = a.time;
    report.apps.push_back(rec);
  }

  // The replay mutates a private platform copy; the rescheduler and the
  // simulated rate model read it through this stable reference.
  dynamics::DynamicPlatform dyn(*plat_);
  const platform::Platform& plat = dyn.plat();

  double total_speed = 0.0;
  for (int k = 0; k < n; ++k) total_speed += plat.cluster(k).speed;

  AdaptiveRescheduler scheduler(plat, options_.sched);
  std::optional<core::SteadyStateProblem> sim_base;
  sim::SimOptions sim_options;
  sim_options.policy = options_.sim_policy;
  sim_options.periods = options_.sim_periods;
  sim_options.window_units = options_.sim_window_units;
  sim_options.warmup_periods = 1;

  std::vector<int> active(n, -1);          // app id hosted by each cluster
  std::vector<std::deque<int>> queue(n);   // waiting app ids, FIFO
  std::vector<double> payoffs(n, 0.0);
  std::vector<double> remaining(workload.arrivals.size(), 0.0);
  std::vector<double> rate(n, 0.0);        // drain rate of each active app
  std::vector<double> weighted_rates;      // scratch for the fairness metric
  int num_active = 0;
  double now = 0.0;
  std::size_t next_arrival = 0;
  std::size_t next_event = 0;

  const auto admit = [&](int app, double at) {
    const int c = report.apps[app].cluster;
    DLS_ASSERT(active[c] < 0);
    active[c] = app;
    payoffs[c] = report.apps[app].payoff;
    remaining[app] = report.apps[app].load;
    report.apps[app].admit = at;
    ++num_active;
  };

  // Re-solves the steady state for the current payoff vector and refreshes
  // every active application's drain rate.
  const auto reschedule = [&] {
    std::fill(rate.begin(), rate.end(), 0.0);
    if (num_active == 0) return;
    const Reschedule r = scheduler.reschedule(payoffs);
    ++report.reschedules;
    if (r.warm) {
      ++report.warm_solves;
      report.repaired_solves += r.repaired;
      report.warm_seconds += r.seconds;
    } else {
      ++report.cold_solves;
      report.cold_seconds += r.seconds;
    }
    if (options_.rate_model == RateModel::Fluid) {
      for (int c = 0; c < n; ++c)
        if (active[c] >= 0) rate[c] = r.allocation.total_alpha(c);
      return;
    }
    // Simulated: play a schedule segment and adopt achieved throughputs.
    // The route table is payoff-independent: build it once, re-payoff it
    // per event (with_payoffs is O(K); a fresh problem is O(K^2 + links)).
    if (!sim_base) sim_base.emplace(plat, payoffs, options_.sched.objective);
    const core::SteadyStateProblem problem = sim_base->with_payoffs(payoffs);
    const auto schedule = core::build_periodic_schedule(problem, r.allocation);
    const auto sim = sim::simulate_schedule(problem, schedule, sim_options);
    for (int c = 0; c < n; ++c)
      if (active[c] >= 0) rate[c] = sim.throughput[c];
  };

  // Churn kill: an application whose home cluster left the platform.
  const auto abort_app = [&](int app) {
    AppRecord& rec = report.apps[app];
    rec.depart = now;
    rec.outcome = AppOutcome::AbortedChurn;
    ++report.aborted;
  };

  while (next_arrival < workload.arrivals.size() || num_active > 0) {
    // Next event: first unprocessed arrival vs earliest projected drain
    // vs next platform event.
    const double t_arrival = next_arrival < workload.arrivals.size()
                                 ? workload.arrivals[next_arrival].time
                                 : kInf;
    const double t_platform = next_event < trace.events.size()
                                  ? trace.events[next_event].time
                                  : kInf;
    double t_drain = kInf;
    for (int c = 0; c < n; ++c) {
      if (active[c] < 0 || rate[c] <= 0.0) continue;
      t_drain = std::min(t_drain, now + remaining[active[c]] / rate[c]);
    }
    double t_next = std::min({t_arrival, t_drain, t_platform});
    require(std::isfinite(t_next),
            "online engine stalled: active applications but no draining rate "
            "and no arrivals or platform events pending");
    t_next = std::max(t_next, now);  // projected drains cannot move time back

    // Drain the interval [now, t_next) at the rates that held over it,
    // and fold it into the time-weighted metrics.
    const double dt = t_next - now;
    if (dt > 0.0) {
      double work_rate = 0.0;
      weighted_rates.clear();
      for (int c = 0; c < n; ++c) {
        if (active[c] < 0) continue;
        work_rate += rate[c];
        weighted_rates.push_back(payoffs[c] * rate[c]);
        remaining[active[c]] -= rate[c] * dt;
        report.total_work += rate[c] * dt;
      }
      report.metrics.record_interval(dt, work_rate, total_speed, weighted_rates);
    }
    now = t_next;

    bool support_changed = false;
    // Departures due now (drain rounding can leave a sliver below eps).
    for (int c = 0; c < n; ++c) {
      const int app = active[c];
      if (app < 0 || remaining[app] > options_.load_eps) continue;
      AppRecord& rec = report.apps[app];
      rec.depart = now;
      rec.outcome = AppOutcome::Completed;
      rec.slowdown = plat.cluster(c).speed > 0.0
                         ? rec.response() / (rec.load / plat.cluster(c).speed)
                         : 0.0;
      report.metrics.record_completion(rec);
      ++report.completed;
      report.makespan = now;
      active[c] = -1;
      payoffs[c] = 0.0;
      --num_active;
      support_changed = true;
      if (!queue[c].empty()) {  // FIFO hand-over to the next waiting app
        const int heir = queue[c].front();
        queue[c].pop_front();
        admit(heir, now);
      }
    }
    // Platform events due now: mutate the platform copy, fold the change
    // scopes, and let churn kill the affected applications.
    dynamics::ChangeScope scope = dynamics::ChangeScope::None;
    while (next_event < trace.events.size() &&
           trace.events[next_event].time <= now) {
      const dynamics::PlatformEvent& ev = trace.events[next_event++];
      scope = merge_scope(scope, dyn.apply(ev));
      ++report.platform_events;
      if (ev.kind == dynamics::EventKind::ClusterLeave) {
        const int c = ev.target;
        if (active[c] >= 0) {
          abort_app(active[c]);
          active[c] = -1;
          payoffs[c] = 0.0;
          --num_active;
          support_changed = true;
        }
        for (int app : queue[c]) abort_app(app);
        queue[c].clear();
      }
    }
    bool platform_changed = false;
    if (scope != dynamics::ChangeScope::None) {
      platform_changed = true;
      if (scope == dynamics::ChangeScope::Capacity) {
        scheduler.platform_capacity_changed();
      } else {
        scheduler.platform_topology_changed();
      }
      sim_base.reset();  // its cached route table is stale
      total_speed = 0.0;
      for (int k = 0; k < n; ++k) total_speed += plat.cluster(k).speed;
    }
    // Arrivals due now.
    while (next_arrival < workload.arrivals.size() &&
           workload.arrivals[next_arrival].time <= now) {
      const int app = static_cast<int>(next_arrival++);
      const int c = report.apps[app].cluster;
      if (!dyn.cluster_present(c)) {
        report.apps[app].outcome = AppOutcome::RejectedChurn;
        ++report.rejected;
      } else if (active[c] < 0) {
        admit(app, now);
        support_changed = true;
      } else {
        queue[c].push_back(app);
        ++report.queued_arrivals;
        report.peak_queued =
            std::max(report.peak_queued, static_cast<int>(queue[c].size()));
      }
    }
    report.peak_active = std::max(report.peak_active, num_active);

    if (support_changed || platform_changed) reschedule();
  }

  return report;
}

// Multi-load replay: same event skeleton as run() but with concurrent
// applications per cluster and rates from the shared LP. No queues — an
// arrival is admitted the moment its home cluster is present.
OnlineReport OnlineEngine::run_multi(const Workload& workload,
                                     const dynamics::EventTrace& trace) const {
  require(options_.rate_model == RateModel::Fluid,
          "OnlineEngine: multi-load mode requires RateModel::Fluid (the "
          "periodic-schedule reconstruction is single-load)");
  const int n = plat_->num_clusters();
  workload.validate(n);
  trace.validate(*plat_);
  for (const AppArrival& a : workload.arrivals) {
    require(a.load > options_.load_eps,
            "OnlineEngine: application loads must exceed load_eps");
    require(a.payoff > 0.0,
            "OnlineEngine: multi-load mode uses payoffs as objective "
            "weights; they must be positive");
  }

  OnlineReport report;
  report.arrivals = workload.size();
  report.apps.reserve(workload.arrivals.size());
  for (std::size_t i = 0; i < workload.arrivals.size(); ++i) {
    const AppArrival& a = workload.arrivals[i];
    AppRecord rec;
    rec.id = static_cast<int>(i);
    rec.cluster = a.cluster;
    rec.payoff = a.payoff;
    rec.load = a.load;
    rec.arrival = a.time;
    report.apps.push_back(rec);
  }

  dynamics::DynamicPlatform dyn(*plat_);
  const platform::Platform& plat = dyn.plat();
  double total_speed = 0.0;
  for (int k = 0; k < n; ++k) total_speed += plat.cluster(k).speed;

  MultiLoadRescheduler scheduler(plat, options_.multi);

  std::vector<int> active_ids;  // admission order; erased on departure
  std::vector<double> remaining(workload.arrivals.size(), 0.0);
  std::vector<double> rate(workload.arrivals.size(), 0.0);
  std::vector<ActiveLoad> loads;           // scratch for reschedule calls
  std::vector<double> weighted_rates;      // scratch for the fairness metric
  double now = 0.0;
  std::size_t next_arrival = 0;
  std::size_t next_event = 0;

  const auto reschedule = [&] {
    for (int app : active_ids) rate[app] = 0.0;
    if (active_ids.empty()) return;
    loads.clear();
    for (int app : active_ids)
      loads.push_back({app, report.apps[app].cluster, report.apps[app].payoff});
    const MultiReschedule r = scheduler.reschedule(loads);
    ++report.reschedules;
    if (r.warm) {
      ++report.warm_solves;
      report.repaired_solves += r.repaired;
      report.warm_seconds += r.seconds;
    } else {
      ++report.cold_solves;
      report.cold_seconds += r.seconds;
    }
    for (std::size_t i = 0; i < active_ids.size(); ++i)
      rate[active_ids[i]] = r.rate[i];
  };

  const auto abort_app = [&](int app) {
    AppRecord& rec = report.apps[app];
    rec.depart = now;
    rec.outcome = AppOutcome::AbortedChurn;
    ++report.aborted;
  };

  while (next_arrival < workload.arrivals.size() || !active_ids.empty()) {
    const double t_arrival = next_arrival < workload.arrivals.size()
                                 ? workload.arrivals[next_arrival].time
                                 : kInf;
    const double t_platform = next_event < trace.events.size()
                                  ? trace.events[next_event].time
                                  : kInf;
    double t_drain = kInf;
    for (int app : active_ids) {
      if (rate[app] <= 0.0) continue;
      t_drain = std::min(t_drain, now + remaining[app] / rate[app]);
    }
    double t_next = std::min({t_arrival, t_drain, t_platform});
    require(std::isfinite(t_next),
            "online engine stalled: active applications but no draining rate "
            "and no arrivals or platform events pending");
    t_next = std::max(t_next, now);

    const double dt = t_next - now;
    if (dt > 0.0) {
      double work_rate = 0.0;
      weighted_rates.clear();
      for (int app : active_ids) {
        work_rate += rate[app];
        weighted_rates.push_back(report.apps[app].payoff * rate[app]);
        remaining[app] -= rate[app] * dt;
        report.total_work += rate[app] * dt;
      }
      report.metrics.record_interval(dt, work_rate, total_speed, weighted_rates);
    }
    now = t_next;

    bool support_changed = false;
    // Departures due now.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_ids.size(); ++i) {
      const int app = active_ids[i];
      if (remaining[app] > options_.load_eps) {
        active_ids[keep++] = app;
        continue;
      }
      AppRecord& rec = report.apps[app];
      rec.depart = now;
      rec.outcome = AppOutcome::Completed;
      const double speed = plat.cluster(rec.cluster).speed;
      rec.slowdown =
          speed > 0.0 ? rec.response() / (rec.load / speed) : 0.0;
      report.metrics.record_completion(rec);
      ++report.completed;
      report.makespan = now;
      support_changed = true;
    }
    active_ids.resize(keep);
    // Platform events due now.
    dynamics::ChangeScope scope = dynamics::ChangeScope::None;
    while (next_event < trace.events.size() &&
           trace.events[next_event].time <= now) {
      const dynamics::PlatformEvent& ev = trace.events[next_event++];
      scope = merge_scope(scope, dyn.apply(ev));
      ++report.platform_events;
      if (ev.kind == dynamics::EventKind::ClusterLeave) {
        const int c = ev.target;
        keep = 0;
        for (std::size_t i = 0; i < active_ids.size(); ++i) {
          const int app = active_ids[i];
          if (report.apps[app].cluster != c) {
            active_ids[keep++] = app;
            continue;
          }
          abort_app(app);
          support_changed = true;
        }
        active_ids.resize(keep);
      }
    }
    bool platform_changed = false;
    if (scope != dynamics::ChangeScope::None) {
      platform_changed = true;
      if (scope == dynamics::ChangeScope::Capacity) {
        scheduler.platform_capacity_changed();
      } else {
        scheduler.platform_topology_changed();
      }
      total_speed = 0.0;
      for (int k = 0; k < n; ++k) total_speed += plat.cluster(k).speed;
    }
    // Arrivals due now: admitted immediately (no per-cluster exclusivity).
    while (next_arrival < workload.arrivals.size() &&
           workload.arrivals[next_arrival].time <= now) {
      const int app = static_cast<int>(next_arrival++);
      const int c = report.apps[app].cluster;
      if (!dyn.cluster_present(c)) {
        report.apps[app].outcome = AppOutcome::RejectedChurn;
        ++report.rejected;
        continue;
      }
      active_ids.push_back(app);
      remaining[app] = report.apps[app].load;
      report.apps[app].admit = now;
      support_changed = true;
    }
    report.peak_active =
        std::max(report.peak_active, static_cast<int>(active_ids.size()));

    if (support_changed || platform_changed) reschedule();
  }

  return report;
}

}  // namespace dls::online
