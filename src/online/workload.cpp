#include "online/workload.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace dls::online {

namespace {

/// Exponential draw of the given mean via inversion; uniform01() is in
/// [0, 1) so the log argument stays positive.
double exponential(Rng& rng, double mean) {
  return -mean * std::log1p(-rng.uniform01());
}

AppArrival sample_app(Rng& rng, int num_clusters, double time, double mean_load,
                      double load_spread, double payoff_spread) {
  AppArrival app;
  app.time = time;
  app.cluster = static_cast<int>(rng.index(static_cast<std::size_t>(num_clusters)));
  app.payoff = rng.uniform(1.0 - payoff_spread, 1.0 + payoff_spread);
  app.load = rng.uniform(mean_load * (1.0 - load_spread),
                         mean_load * (1.0 + load_spread));
  return app;
}

void check_sampling_params(int num_clusters, int count, double mean_load,
                           double load_spread, double payoff_spread) {
  require(num_clusters >= 1, "workload: need at least one cluster");
  require(count >= 0, "workload: arrival count cannot be negative");
  require(mean_load > 0.0, "workload: mean load must be positive");
  require(load_spread >= 0.0 && load_spread < 1.0,
          "workload: load spread out of [0,1)");
  require(payoff_spread >= 0.0 && payoff_spread < 1.0,
          "workload: payoff spread out of [0,1)");
}

std::string name_or_dash(const std::string& name) {
  require(name.find_first_of(" \t\n") == std::string::npos,
          "write_workload: names may not contain whitespace");
  return name.empty() ? "-" : name;
}

}  // namespace

void Workload::validate(int num_clusters) const {
  double prev = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const AppArrival& a = arrivals[i];
    const std::string at = " at arrival " + std::to_string(i);
    require(std::isfinite(a.time) && a.time >= 0.0,
            "workload: bad arrival time" + at);
    require(a.time >= prev, "workload: arrival times must be non-decreasing" + at);
    require(a.cluster >= 0 && a.cluster < num_clusters,
            "workload: cluster out of range" + at);
    require(std::isfinite(a.payoff) && a.payoff > 0.0,
            "workload: payoff must be positive" + at);
    require(std::isfinite(a.load) && a.load > 0.0,
            "workload: load must be positive" + at);
    prev = a.time;
  }
}

Workload poisson_workload(const PoissonParams& p, int num_clusters, Rng& rng) {
  check_sampling_params(num_clusters, p.count, p.mean_load, p.load_spread,
                        p.payoff_spread);
  require(p.rate > 0.0, "poisson_workload: rate must be positive");
  Workload wl;
  wl.arrivals.reserve(static_cast<std::size_t>(p.count));
  double t = 0.0;
  for (int i = 0; i < p.count; ++i) {
    t += exponential(rng, 1.0 / p.rate);
    wl.arrivals.push_back(sample_app(rng, num_clusters, t, p.mean_load,
                                     p.load_spread, p.payoff_spread));
  }
  return wl;
}

Workload batch_workload(const PoissonParams& p, int num_clusters, Rng& rng) {
  check_sampling_params(num_clusters, p.count, p.mean_load, p.load_spread,
                        p.payoff_spread);
  Workload wl;
  wl.arrivals.reserve(static_cast<std::size_t>(p.count));
  for (int i = 0; i < p.count; ++i)
    wl.arrivals.push_back(sample_app(rng, num_clusters, 0.0, p.mean_load,
                                     p.load_spread, p.payoff_spread));
  return wl;
}

Workload onoff_workload(const OnOffParams& p, int num_clusters, Rng& rng) {
  check_sampling_params(num_clusters, p.count, p.mean_load, p.load_spread,
                        p.payoff_spread);
  require(p.burst_rate > 0.0, "onoff_workload: burst rate must be positive");
  require(p.mean_on > 0.0 && p.mean_off >= 0.0,
          "onoff_workload: mean_on must be positive and mean_off non-negative");
  Workload wl;
  wl.arrivals.reserve(static_cast<std::size_t>(p.count));
  double t = 0.0;
  while (wl.size() < p.count) {
    // One ON window: Poisson arrivals at burst_rate until the window ends.
    const double window_end = t + exponential(rng, p.mean_on);
    while (wl.size() < p.count) {
      t += exponential(rng, 1.0 / p.burst_rate);
      if (t >= window_end) break;
      wl.arrivals.push_back(sample_app(rng, num_clusters, t, p.mean_load,
                                       p.load_spread, p.payoff_spread));
    }
    t = window_end + exponential(rng, p.mean_off);
  }
  return wl;
}

void write_workload(const Workload& workload, std::ostream& os) {
  os.precision(17);
  os << "dls-workload 1\n";
  for (const AppArrival& a : workload.arrivals)
    os << "app " << a.time << ' ' << a.cluster << ' ' << a.payoff << ' '
       << a.load << ' ' << name_or_dash(a.name) << '\n';
}

namespace {

[[noreturn]] void parse_fail(int line, const std::string& what) {
  throw Error("read_workload: line " + std::to_string(line) + ": " + what);
}

double parse_field(std::istringstream& iss, const char* what, int line) {
  double v = 0.0;
  if (!(iss >> v))
    parse_fail(line, std::string("truncated or malformed line (expected ") +
                         what + ")");
  return v;
}

}  // namespace

Workload read_workload(std::istream& is) {
  // Line-based parse with explicit diagnostics (truncated lines, negative
  // times, out-of-order arrivals all name their line); the `.events`
  // parser (dynamics/events.cpp) mirrors this style.
  std::string line;
  int line_no = 0;
  std::string header;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    header = line;
    break;
  }
  {
    std::istringstream iss(header);
    std::string magic;
    int version = 0;
    iss >> magic >> version;
    require(static_cast<bool>(iss) && magic == "dls-workload" && version == 1,
            "read_workload: bad header (expected 'dls-workload 1')");
  }

  Workload wl;
  double prev = 0.0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream iss(line);
    std::string keyword;
    iss >> keyword;
    if (keyword != "app") parse_fail(line_no, "unknown keyword '" + keyword + "'");
    AppArrival a;
    a.time = parse_field(iss, "an arrival time", line_no);
    if (!std::isfinite(a.time) || a.time < 0.0)
      parse_fail(line_no, "arrival time must be finite and non-negative");
    if (a.time < prev)
      parse_fail(line_no, "out-of-order arrival time (times must be non-decreasing)");
    prev = a.time;
    const double cluster = parse_field(iss, "a cluster id", line_no);
    if (cluster != std::floor(cluster) || cluster < 0.0 || cluster > 1e9)
      parse_fail(line_no, "cluster must be a non-negative integer id");
    a.cluster = static_cast<int>(cluster);
    a.payoff = parse_field(iss, "a payoff", line_no);
    if (!std::isfinite(a.payoff) || a.payoff <= 0.0)
      parse_fail(line_no, "payoff must be positive");
    a.load = parse_field(iss, "a load", line_no);
    if (!std::isfinite(a.load) || a.load <= 0.0)
      parse_fail(line_no, "load must be positive");
    // The name is optional: the rest of the line may be empty, "-" (the
    // writer's no-name marker), or a single token.
    std::string name, extra;
    if (iss >> name) {
      if (iss >> extra)
        parse_fail(line_no, "unexpected trailing token '" + extra + "'");
      if (name != "-") a.name = std::move(name);
    }
    wl.arrivals.push_back(std::move(a));
  }
  return wl;
}

std::string to_text(const Workload& workload) {
  std::ostringstream oss;
  write_workload(workload, oss);
  return oss.str();
}

Workload from_text(const std::string& text) {
  std::istringstream iss(text);
  return read_workload(iss);
}

}  // namespace dls::online
