// Adaptive steady-state rescheduling for the online engine.
//
// Every arrival or departure changes the payoff vector of the
// steady-state problem (clusters host at most one active application;
// an idle cluster has payoff 0). The AdaptiveRescheduler re-solves the
// problem at each such event, reusing work from the previous solve:
//
//   * LP-based methods (LPR, LPRG, LP bound) warm-start the simplex from
//     the previous event's optimal basis (core::LpWarmStart). Both the
//     warm and the cold path run the same solver to optimality on the
//     same model, so the *LP relaxation objective* is provably identical
//     either way (Method::LpBound therefore matches cold exactly); the
//     rounding heuristics inherit that value but not the vertex, and a
//     degenerate optimum can round to a slightly different valid
//     allocation than the cold path's vertex would.
//   * The greedy method can seed its residual-capacity pass from the
//     previous allocation (core::run_greedy_warm) under
//     WarmPolicy::Always; since greedy solves no LP, WarmPolicy::Auto
//     runs it cold — a cold greedy is already cheap and the seeded
//     variant trades objective for allocation stability.
//
// Warm-start invalidation (the "mix changed too much" rule):
//   1. the number of clusters whose activity flipped since the last
//      solve must not exceed max_support_change (one normal event flips
//      exactly one), and
//   2. the saved basis must still fit the model — under Objective::Sum
//      the model shape is payoff-independent so this always holds, while
//      Objective::MaxMin adds one fairness row per *active* cluster and
//      therefore reshapes the model whenever the active count changes
//      (warm-starts then only survive paired arrival+departure events);
//   3. the basis must still be primal feasible — a departure that leaves
//      load allocated to now-forbidden routes fails this check inside
//      the solver and falls back to a cold start automatically.
// Rules 2 and 3 are enforced by the simplex itself; the rescheduler only
// applies rule 1 and the bookkeeping.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/heuristics.hpp"
#include "core/multi_solve.hpp"
#include "core/problem.hpp"
#include "platform/platform.hpp"

namespace dls::online {

enum class Method {
  Greedy,   ///< paper §5.1 G: no LP, fastest, always valid
  Lpr,      ///< one LP + round-down
  Lprg,     ///< one LP + round-down + greedy reclaim (paper's best cheap mix)
  LpBound,  ///< rational relaxation: fluid rates, fractional betas
};

[[nodiscard]] const char* to_string(Method method);

enum class WarmPolicy {
  Auto,    ///< warm-start when the invalidation rules allow (greedy: cold)
  Never,   ///< always cold-solve (the reference behaviour)
  Always,  ///< additionally seed the greedy from the previous allocation
};

struct ReschedulerOptions {
  Method method = Method::Greedy;
  core::Objective objective = core::Objective::MaxMin;
  WarmPolicy warm = WarmPolicy::Auto;
  /// Invalidation rule 1: cold-solve when more than this many clusters
  /// changed between active and idle since the previous solve.
  int max_support_change = 4;
  lp::SimplexOptions lp;
  core::GreedyOptions greedy;
};

/// One reschedule outcome. `warm` reports whether previous-solve state
/// was actually reused (a warm attempt the solver rejected counts cold).
struct Reschedule {
  core::Allocation allocation;
  double objective = 0.0;
  bool warm = false;
  /// True when the warm start went through the basis-repair path: the
  /// platform changed under the capsule (capacity event) and its
  /// statuses were refactorized against the rebuilt model instead of
  /// being restored whole (lp::WarmKind::Basis). Always false for
  /// greedy and for cold solves.
  bool repaired = false;
  double seconds = 0.0;    ///< wall time of this solve
  int lp_iterations = 0;   ///< simplex pivots (0 for greedy)
};

class AdaptiveRescheduler {
public:
  AdaptiveRescheduler(const platform::Platform& plat, ReschedulerOptions options);

  /// Solves the steady-state problem for the given payoff vector (one
  /// entry per cluster, 0 = idle) and records warm state for the next
  /// call. Throws dls::Error if the underlying method fails.
  [[nodiscard]] Reschedule reschedule(const std::vector<double>& payoffs);

  /// Drops all warm state; the next reschedule solves cold.
  void reset();

  /// Tells the rescheduler the platform's capacities changed under it
  /// (bandwidth/max-connect/gateway/speed rescale — the route set is
  /// intact). Cached models are rebuilt on the next reschedule; the
  /// simplex capsule is kept so the solve can warm-start whole (pure
  /// rhs/bound moves keep the matrix fingerprint) or repair the carried
  /// basis against the re-priced matrix (lp::SimplexOptions::warm_repair,
  /// enabled here). The previous greedy allocation is dropped: reseeding
  /// it could overfill shrunk capacities.
  void platform_capacity_changed();

  /// Tells the rescheduler the platform's topology changed (routes
  /// added/dropped, clusters joined/left): the model reshapes, so all
  /// warm state is dropped and the next solve runs cold.
  void platform_topology_changed();

  struct Stats {
    int warm_solves = 0;
    int cold_solves = 0;
    /// Warm solves that took the basis-repair path (subset of warm).
    int repaired_solves = 0;
    double warm_seconds = 0.0;
    double cold_seconds = 0.0;
    std::int64_t warm_iterations = 0;
    std::int64_t cold_iterations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ReschedulerOptions& options() const { return options_; }

private:
  const platform::Platform* plat_;
  ReschedulerOptions options_;
  /// Route tables are payoff-independent; built on the first reschedule
  /// and re-payoffed (SteadyStateProblem::with_payoffs) on every event.
  std::optional<core::SteadyStateProblem> base_problem_;
  /// Factorized-basis capsule reused across LP solves. Under
  /// Objective::Sum arrivals and departures only move variable bounds
  /// and costs, so the capsule survives every event; under MaxMin the
  /// model reshapes with the active count and the solver's fingerprint
  /// check rejects it (rule 2 of the invalidation policy).
  lp::WarmState warm_state_;
  /// Simplex working storage reused across every event's LP solves —
  /// after the first event a reschedule allocates nothing in the solver.
  lp::SolveArena arena_;
  /// Cached fixing-free reduced model, patched per event with
  /// update_reduced_payoffs (Sum objective only; MaxMin rebuilds).
  std::optional<core::SteadyStateProblem::ReducedModel> reduced_cache_;
  std::optional<core::Allocation> prev_allocation_;
  std::vector<double> prev_payoffs_;
  Stats stats_;
};

/// One running application in the shared multi-load LP.
struct ActiveLoad {
  int id = -1;          ///< caller's stable identifier (e.g. app id)
  int cluster = -1;     ///< home cluster holding the load's data
  double weight = 1.0;  ///< objective weight; must be positive
};

struct MultiReschedulerOptions {
  /// Objective plus LP/PropFair controls (core::solve_loads). The
  /// rescheduler disables dual extraction and enables warm_repair, like
  /// the single-load path.
  core::MultiLoadSolveOptions solve;
  WarmPolicy warm = WarmPolicy::Auto;
};

/// Outcome of one shared-LP reschedule. `rate[i]` is the drain rate of
/// `loads[i]` from the call.
struct MultiReschedule {
  std::vector<double> rate;
  double objective = 0.0;
  bool warm = false;
  bool repaired = false;
  double seconds = 0.0;
  int lp_iterations = 0;
  int lp_solves = 0;  ///< > 1 only under PropFair
};

/// The multi-load counterpart of AdaptiveRescheduler (ISSUE 8): all
/// running applications are loads in ONE shared LP, and arrivals and
/// departures become column patches on it instead of N independent
/// solves.
///
/// Under WeightedSum and PropFair the LP is built over a fixed universe
/// of per-cluster load *slots* (grown geometrically when a cluster's
/// concurrency outgrows it, which rebuilds the model and solves cold
/// once). An arrival claims an idle slot of its home cluster; a
/// departure releases one. Both only move the slot's column bounds and
/// objective coefficients — the constraint matrix, and therefore the
/// lp::WarmState capsule keyed on its fingerprint, survive every event
/// whole. Platform capacity events re-price the matrix under the
/// capsule, which warm_repair turns into a statuses-only repair; only
/// topology events (and slot growth) force a cold start.
///
/// MaxMin reshapes the model with the active set (one fairness row per
/// running load), so it rebuilds the LP per event and warm-starts only
/// when consecutive events keep the shape (paired arrival+departure).
class MultiLoadRescheduler {
public:
  using Stats = AdaptiveRescheduler::Stats;

  MultiLoadRescheduler(const platform::Platform& plat,
                       MultiReschedulerOptions options);

  /// Solves the shared LP for the given active set (any order, unique
  /// positive-weight ids) and refreshes warm state for the next call.
  /// Throws dls::Error on solver failure or an empty/invalid set.
  [[nodiscard]] MultiReschedule reschedule(const std::vector<ActiveLoad>& loads);

  /// Drops warm state and slot assignments; the next call solves cold.
  void reset();

  /// Capacity rescale under the model: cached problems/models rebuild on
  /// the next call, the capsule is kept for a whole or repaired start.
  void platform_capacity_changed();

  /// Topology change: everything (including the slot universe) resets.
  void platform_topology_changed();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Total load slots in the current shared LP (0 before the first
  /// solve); observability for tests and benches.
  [[nodiscard]] int slot_count() const { return total_slots_; }

private:
  void rebuild_slots(const std::vector<int>& needed);
  [[nodiscard]] MultiReschedule solve_shared(const std::vector<ActiveLoad>& loads);
  [[nodiscard]] MultiReschedule solve_maxmin(const std::vector<ActiveLoad>& loads);

  const platform::Platform* plat_;
  MultiReschedulerOptions options_;
  /// Slot universe (WeightedSum/PropFair): per-cluster slot counts, the
  /// cluster-major base index of each cluster's slots, and occupancy.
  std::vector<int> slots_per_cluster_;
  std::vector<int> slot_base_;
  int total_slots_ = 0;
  std::unordered_map<int, int> slot_of_;  // load id -> global slot index
  std::vector<int> slot_app_;             // global slot -> load id or -1
  /// Slot problem (Objective::Sum), re-weighted per event with
  /// with_load_weights; MaxMin keeps its own per-event problem to share
  /// the route table across with_loads calls.
  std::optional<core::SteadyStateProblem> problem_;
  std::optional<core::SteadyStateProblem> maxmin_problem_;
  std::optional<core::SteadyStateProblem::ReducedModel> reduced_cache_;
  lp::WarmState warm_state_;
  lp::SolveArena arena_;
  Stats stats_;
};

}  // namespace dls::online
