#!/usr/bin/env bash
# Distributed-campaign smoke test with real processes (the loopback unit
# tests cover the same paths in-process; this exercises actual fork/exec,
# SIGKILL and sockets):
#
#   phase A: coordinator + 2 workers, one worker SIGKILLed mid-range —
#            the report must be byte-identical to the single-process
#            reference and the lost range must have been re-queued.
#   phase B: coordinator stopped after 2 snapshots (simulated crash),
#            restarted with --resume and a fresh fleet — byte-identical
#            again, with completed ranges not re-executed.
#
# usage: dist_smoke.sh <dls-binary> <spec.campaign>
set -euo pipefail

DLS=${1:?usage: dist_smoke.sh <dls-binary> <spec.campaign>}
SPEC=${2:?usage: dist_smoke.sh <dls-binary> <spec.campaign>}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

wait_port() {
  for _ in $(seq 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "dist_smoke: coordinator never wrote its port file $1" >&2
  return 1
}

echo "== reference: single-process run"
"$DLS" campaign --spec "$SPEC" --jobs 2 --json > "$TMP/ref.json"

echo "== phase A: 2 workers, one SIGKILLed mid-range"
rm -f "$TMP/port"
"$DLS" campaign --spec "$SPEC" --serve 0 --port-file "$TMP/port" \
  --range-size 4 --heartbeat-timeout 10 --json \
  > "$TMP/a.json" 2> "$TMP/a.log" &
COORD=$!
wait_port "$TMP/port"
PORT=$(cat "$TMP/port")
# --die-mid-range raises SIGKILL on receipt of the 2nd lease: a real
# process death with the lease outstanding.
"$DLS" worker --connect "127.0.0.1:$PORT" --jobs 2 --die-mid-range 2 \
  > /dev/null 2>&1 || true &
"$DLS" worker --connect "127.0.0.1:$PORT" --jobs 2 > /dev/null 2>&1 &
wait "$COORD" && COORD_CODE=0 || COORD_CODE=$?
wait || true
[ "$COORD_CODE" -eq 0 ] || {
  echo "dist_smoke: phase A coordinator failed ($COORD_CODE)" >&2
  cat "$TMP/a.log" >&2
  exit 1
}
cmp "$TMP/ref.json" "$TMP/a.json" || {
  echo "dist_smoke: phase A report differs from the reference" >&2
  exit 1
}
grep -q "requeued range" "$TMP/a.log" || {
  echo "dist_smoke: expected a requeued range in the coordinator log" >&2
  cat "$TMP/a.log" >&2
  exit 1
}
echo "   OK: bit-identical report, lost range re-queued"

echo "== phase B: coordinator crash after 2 snapshots, then --resume"
rm -f "$TMP/port"
"$DLS" campaign --spec "$SPEC" --serve 0 --port-file "$TMP/port" \
  --checkpoint "$TMP/ckpt" --snapshot-every 1 --range-size 4 \
  --exit-after-snapshots 2 --json > /dev/null 2> "$TMP/b1.log" &
COORD=$!
wait_port "$TMP/port"
PORT=$(cat "$TMP/port")
"$DLS" worker --connect "127.0.0.1:$PORT" --jobs 2 > /dev/null 2>&1 &
wait "$COORD" && COORD_CODE=0 || COORD_CODE=$?
wait || true
# Exit 3 = stopped before completion with the checkpoint retained.
[ "$COORD_CODE" -eq 3 ] || {
  echo "dist_smoke: phase B interrupted coordinator exited $COORD_CODE, wanted 3" >&2
  cat "$TMP/b1.log" >&2
  exit 1
}
[ -s "$TMP/ckpt" ] || {
  echo "dist_smoke: no checkpoint written" >&2
  exit 1
}

rm -f "$TMP/port"
"$DLS" campaign --spec "$SPEC" --serve 0 --port-file "$TMP/port" \
  --checkpoint "$TMP/ckpt" --snapshot-every 4 --range-size 4 --resume \
  --json > "$TMP/b.json" 2> "$TMP/b2.log" &
COORD=$!
wait_port "$TMP/port"
PORT=$(cat "$TMP/port")
"$DLS" worker --connect "127.0.0.1:$PORT" --jobs 2 > /dev/null 2>&1 &
"$DLS" worker --connect "127.0.0.1:$PORT" --jobs 2 > /dev/null 2>&1 &
wait "$COORD" && COORD_CODE=0 || COORD_CODE=$?
wait || true
[ "$COORD_CODE" -eq 0 ] || {
  echo "dist_smoke: phase B resumed coordinator failed ($COORD_CODE)" >&2
  cat "$TMP/b2.log" >&2
  exit 1
}
cmp "$TMP/ref.json" "$TMP/b.json" || {
  echo "dist_smoke: resumed report differs from the reference" >&2
  exit 1
}
grep -q "resumed from" "$TMP/b2.log" || {
  echo "dist_smoke: expected a resume line in the coordinator log" >&2
  cat "$TMP/b2.log" >&2
  exit 1
}
echo "   OK: resumed run bit-identical, completed ranges skipped"
echo "dist_smoke: PASS"
