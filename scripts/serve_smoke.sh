#!/usr/bin/env bash
# Serve-daemon smoke test with a real process and real sockets (the
# serve unit tests cover the engine and parser in-process):
#
#   phase A: daemon on an ephemeral port replays a recorded workload at
#            unlimited speed; /metrics is scraped twice and every
#            *_total counter must be monotonic between the scrapes.
#   phase B: the same replay run twice end-to-end — the final counter
#            values (solver, rescheduler, serve lifecycle) must be
#            bit-identical across the two runs.
#   phase C: SIGTERM mid-grace — /health must report "draining" before
#            the daemon exits cleanly (code 0).
#
# Scraping uses bash's /dev/tcp so the test has no curl/nc dependency.
#
# usage: serve_smoke.sh <dls-binary>
set -euo pipefail

DLS=${1:?usage: serve_smoke.sh <dls-binary>}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

wait_port() {
  for _ in $(seq 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "serve_smoke: daemon never wrote its port file $1" >&2
  return 1
}

# scrape <port> <path> — prints the response body.
scrape() {
  local port=$1 path=$2
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'GET %s HTTP/1.1\r\nHost: smoke\r\n\r\n' "$path" >&3
  # Connection: close — read to EOF, then strip the header block.
  sed '1,/^\r*$/d' <&3
  exec 3<&-
}

# post <port> <path-with-query> — prints the response body.
post() {
  local port=$1 path=$2
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'POST %s HTTP/1.1\r\nHost: smoke\r\nContent-Length: 0\r\n\r\n' \
    "$path" >&3
  sed '1,/^\r*$/d' <&3
  exec 3<&-
}

echo "== setup: platform + recorded workload"
"$DLS" generate --clusters 4 --seed 5 --out "$TMP/plat" > /dev/null
"$DLS" online --platform "$TMP/plat" --loads --arrivals 40 --arrival-rate 2 \
  --mean-load 300 --seed 9 --save-workload "$TMP/replay.workload" > /dev/null

echo "== phase A: replay + two scrapes, counters must be monotonic"
rm -f "$TMP/port"
"$DLS" serve --platform "$TMP/plat" --replay "$TMP/replay.workload" \
  --speed 0 --exit-after-replay --drain-grace 5 --port-file "$TMP/port" \
  > "$TMP/a.log" 2>&1 &
SERVE=$!
wait_port "$TMP/port"
PORT=$(cat "$TMP/port")
scrape "$PORT" /metrics > "$TMP/scrape1"
scrape "$PORT" /metrics > "$TMP/scrape2"
grep -q 'dls_lp_solves_total{start="warm"}' "$TMP/scrape1" || {
  echo "serve_smoke: /metrics is missing the solver series" >&2
  cat "$TMP/scrape1" >&2
  exit 1
}
grep -q 'dls_resched_solves_total{mode="multi"' "$TMP/scrape1" || {
  echo "serve_smoke: /metrics is missing the rescheduler series" >&2
  exit 1
}
grep -q 'dls_serve_event_loop_lag_seconds_bucket' "$TMP/scrape1" || {
  echo "serve_smoke: /metrics is missing the event-loop lag histogram" >&2
  exit 1
}
grep -q 'dls_lp_ftran_reach_fraction_bucket' "$TMP/scrape1" || {
  echo "serve_smoke: /metrics is missing the ftran reach histogram" >&2
  exit 1
}
grep -q 'dls_lp_btran_reach_fraction_bucket' "$TMP/scrape1" || {
  echo "serve_smoke: /metrics is missing the btran reach histogram" >&2
  exit 1
}
grep -q 'dls_serve_response_seconds_bucket{outcome="completed"' "$TMP/scrape1" || {
  echo "serve_smoke: /metrics is missing the response-time histogram" >&2
  exit 1
}
# Every *_total series must be monotonic between the two scrapes.
paste -d' ' \
  <(grep -E '^[a-z_]+_total(\{[^}]*\})? ' "$TMP/scrape1" | awk '{print $NF}') \
  <(grep -E '^[a-z_]+_total(\{[^}]*\})? ' "$TMP/scrape2" | awk '{print $NF}') |
while read -r before after; do
  awk -v a="$before" -v b="$after" 'BEGIN { exit !(b >= a) }' || {
    echo "serve_smoke: counter went backwards ($before -> $after)" >&2
    exit 1
  }
done
scrape "$PORT" /stats > "$TMP/stats"
grep -q '"arrivals":40' "$TMP/stats" || {
  echo "serve_smoke: /stats did not report the 40 replayed arrivals" >&2
  cat "$TMP/stats" >&2
  exit 1
}
wait "$SERVE" || {
  echo "serve_smoke: phase A daemon exited non-zero" >&2
  cat "$TMP/a.log" >&2
  exit 1
}

echo "== phase B: deterministic replay, final counters bit-identical"
final_counters() {
  # One full replay; scrape the engine lifecycle counters from /stats
  # after the replay has drained (the daemon holds the socket open for
  # the drain grace). Timing series are excluded by construction —
  # /stats carries only the deterministic engine counters.
  local log=$1 port
  rm -f "$TMP/port"
  "$DLS" serve --platform "$TMP/plat" --replay "$TMP/replay.workload" \
    --speed 0 --exit-after-replay --drain-grace 5 --port-file "$TMP/port" \
    > "$log" 2>&1 &
  local pid=$!
  wait_port "$TMP/port"
  port=$(cat "$TMP/port")
  # Wait until the replay has fully drained (active back to 0).
  for _ in $(seq 100); do
    scrape "$port" /stats > "$TMP/stats.b"
    grep -q '"replay_pending":0' "$TMP/stats.b" &&
      grep -q '"active":0' "$TMP/stats.b" &&
      grep -q '"draining":true' "$TMP/stats.b" && break
    sleep 0.1
  done
  sed 's/"vt":[^,]*,//' "$TMP/stats.b"  # vt is wall-paced; drop it
  wait "$pid"
}
final_counters "$TMP/b1.log" > "$TMP/b1.stats"
final_counters "$TMP/b2.log" > "$TMP/b2.stats"
cmp "$TMP/b1.stats" "$TMP/b2.stats" || {
  echo "serve_smoke: replay counters differ across two identical runs" >&2
  diff "$TMP/b1.stats" "$TMP/b2.stats" >&2 || true
  exit 1
}

echo "== phase C: SIGTERM -> draining health -> clean exit"
rm -f "$TMP/port"
"$DLS" serve --platform "$TMP/plat" --drain-grace 5 --port-file "$TMP/port" \
  > "$TMP/c.log" 2>&1 &
SERVE=$!
wait_port "$TMP/port"
PORT=$(cat "$TMP/port")
scrape "$PORT" /health > "$TMP/health1"
grep -q '"status":"ok"' "$TMP/health1" || {
  echo "serve_smoke: /health not ok before SIGTERM" >&2
  cat "$TMP/health1" >&2
  exit 1
}
# An interactively arrived load must show up in the /loads inventory
# with its identity, home cluster, age and current rate.
post "$PORT" "/arrive?cluster=0&payoff=1&load=1000&name=smokeload" \
  > "$TMP/arrive"
grep -q 'ok admitted' "$TMP/arrive" || {
  echo "serve_smoke: POST /arrive not admitted" >&2
  cat "$TMP/arrive" >&2
  exit 1
}
scrape "$PORT" /loads > "$TMP/loads"
for field in '"name":"smokeload"' '"cluster":0' '"age":' '"rate":'; do
  grep -q "$field" "$TMP/loads" || {
    echo "serve_smoke: /loads is missing $field" >&2
    cat "$TMP/loads" >&2
    exit 1
  }
done

kill -TERM "$SERVE"
sleep 0.5
scrape "$PORT" /health > "$TMP/health2"
grep -q '"status":"draining"' "$TMP/health2" || {
  echo "serve_smoke: /health not draining after SIGTERM" >&2
  cat "$TMP/health2" >&2
  exit 1
}
wait "$SERVE" || {
  echo "serve_smoke: daemon exited non-zero after SIGTERM" >&2
  cat "$TMP/c.log" >&2
  exit 1
}
grep -q "draining (stop requested)" "$TMP/c.log" || {
  echo "serve_smoke: expected the drain log line" >&2
  cat "$TMP/c.log" >&2
  exit 1
}

echo "serve_smoke: all phases passed"
